//! Property tests for the dual-fidelity contract: the pre-decoded
//! fast path ([`wsp::xr32::xjit`]) must be architecturally
//! indistinguishable from the cycle-accurate pipeline — same final
//! registers, same whole-memory digest, same retired-instruction
//! count — over random stimuli drawn from the kreg stimulus spaces,
//! at every accelerator level (so custom instructions are covered),
//! and a fast-path divergence must surface as a typed
//! [`wsp::kreg::KernelError`], never a panic.

use proptest::prelude::*;
use wsp::kreg::{self, id, KernelError, LibKind};
use wsp::secproc::issops::{ArchState, IssMpn, KernelVariant};
use wsp::xr32::config::CpuConfig;
use wsp::xr32::{ExtensionSet, Fidelity};

/// Every accelerator level the A-D curves measure, plus the base core:
/// the fast path must resolve the custom-instruction handlers of each.
const LEVELS: [KernelVariant; 5] = [
    KernelVariant::Base,
    KernelVariant::Accelerated {
        add_lanes: 2,
        mac_lanes: 1,
    },
    KernelVariant::Accelerated {
        add_lanes: 4,
        mac_lanes: 2,
    },
    KernelVariant::Accelerated {
        add_lanes: 8,
        mac_lanes: 4,
    },
    KernelVariant::Accelerated {
        add_lanes: 16,
        mac_lanes: 4,
    },
];

/// Drives every register-convention kernel in the registry at both
/// radices and returns the end-of-sweep architectural state pair.
fn sweep(
    variant: KernelVariant,
    fidelity: Fidelity,
    n: usize,
    seed: u64,
) -> (ArchState, ArchState) {
    let mut iss = IssMpn::with_variant(CpuConfig::default(), variant);
    iss.set_fidelity(fidelity);
    for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
        iss.verify32(desc.id, n, seed)
            .unwrap_or_else(|e| panic!("{} r32 under {variant:?}: {e}", desc.id));
        iss.verify16(desc.id, n, seed)
            .unwrap_or_else(|e| panic!("{} r16 under {variant:?}: {e}", desc.id));
    }
    assert!(
        iss.take_kernel_errors().is_empty(),
        "sweep under {variant:?} must be divergence-free"
    );
    (iss.arch_state32(), iss.arch_state16())
}

// Each case sweeps the whole registry on two engines at five levels;
// keep the case count low.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// Fast and cycle-accurate execution agree bit-for-bit on final
    /// registers, memory digest and retired count over random kreg
    /// stimuli, at every accelerator level.
    #[test]
    fn fast_and_accurate_agree_at_every_level(
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        for variant in LEVELS {
            prop_assert_eq!(
                sweep(variant, Fidelity::Fast, n, seed),
                sweep(variant, Fidelity::CycleAccurate, n, seed),
                "variant {:?}", variant
            );
        }
    }

    /// A wrong kernel driven on the fast path with verification on is
    /// reported as a typed divergence — same error class the
    /// cycle-accurate engine reports — never a panic.
    #[test]
    fn fast_path_divergence_is_a_typed_kernel_error(seed in any::<u64>()) {
        // "add" that drops the carry chain: wrong for carrying inputs.
        let wrong = "
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:
    movi a6, 0
.lp:
    lw   a4, a1, 0
    lw   a5, a2, 0
    add  a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi a3, a3, -1
    bne  a3, a6, .lp
    movi a0, 0
    ret
";
        let run = |fidelity: Fidelity| {
            let mut iss =
                IssMpn::with_library(CpuConfig::default(), wrong, ExtensionSet::new());
            iss.set_fidelity(fidelity);
            // 8 limbs of random data virtually always carry somewhere.
            let result = iss.verify32(id::ADD_N, 8, seed);
            (result, iss.take_kernel_errors())
        };
        let (fast_result, fast_errors) = run(Fidelity::Fast);
        let (acc_result, acc_errors) = run(Fidelity::CycleAccurate);
        prop_assert_eq!(&fast_errors, &acc_errors, "error streams must agree");
        prop_assert_eq!(&fast_result, &acc_result);
        if let Err(e) = fast_result {
            prop_assert!(matches!(e, KernelError::Divergence { .. }), "{}", e);
            prop_assert!(!fast_errors.is_empty());
        }
    }
}
