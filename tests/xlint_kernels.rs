//! Static-analysis integration tests: every shipped kernel must be
//! lint-clean under `xlint`, and a deliberately leaky kernel must be
//! flagged with rule, pc and source line.

use std::collections::BTreeSet;

use wsp::secproc::insns::{cipher_extension_set, mpn_extension_set};
use wsp::secproc::kernels::{aes, des, mpn, sha};
use wsp::tie::insn::CustomInsn;
use wsp::xlint::{analyze_source, Report, Rule, SecretSpec};
use wsp::xr32::asm::assemble;
use wsp::xr32::ext::ExtensionSet;
use wsp::xr32::isa::Insn;

/// Analyzes `src` and asserts there are no error-severity findings.
fn assert_clean(name: &str, src: &str) {
    let report = analyze_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(report.no_errors(), "{name} has lint errors:\n{report}");
}

#[test]
fn mpn_base32_kernels_are_clean() {
    assert_clean("mpn base32", &mpn::base32_source());
}

#[test]
fn mpn_base16_kernels_are_clean() {
    assert_clean("mpn base16", &mpn::base16_source());
}

#[test]
fn mpn_accel32_kernels_are_clean_for_all_lane_configs() {
    for add_lanes in [2u32, 4, 8, 16] {
        for mac_lanes in [1u32, 2, 4] {
            assert_clean(
                &format!("mpn accel32 al={add_lanes} ml={mac_lanes}"),
                &mpn::accel32_source(add_lanes, mac_lanes),
            );
        }
    }
}

#[test]
fn des_kernels_are_clean() {
    let map = des::MemoryMap::default();
    assert_clean("des base", &des::base_source(&map));
    assert_clean("des accel", &des::accel_source(&map));
}

#[test]
fn aes_kernels_are_clean() {
    let map = aes::MemoryMap::default();
    assert_clean("aes base", &aes::base_source(&map));
    assert_clean("aes accel", &aes::accel_source(&map));
}

#[test]
fn sha_kernel_is_clean() {
    let map = sha::MemoryMap::default();
    assert_clean("sha1", &sha::source(&map));
}

/// A deliberately leaky kernel: branches on a secret and indexes a
/// table with one. Both leaks must be reported with the right rule,
/// the right pc, and the right source line.
const LEAKY: &str = "\
;! entry leaky inputs=a0,a1 secret=a1
leaky:
    movi a2, 0
    beq  a1, a2, skip
    nop
skip:
    movi a3, 0x1000
    add  a3, a3, a1
    lw   a4, a3, 0
    ret
";

fn finding(report: &Report, rule: Rule) -> &wsp::xlint::Finding {
    report
        .findings()
        .iter()
        .find(|f| f.rule == rule)
        .unwrap_or_else(|| panic!("no {rule} finding in:\n{report}"))
}

#[test]
fn leaky_fixture_is_flagged_with_rule_pc_and_line() {
    let report = analyze_source(LEAKY).expect("leaky fixture analyzes");
    assert!(!report.no_errors(), "leak went undetected:\n{report}");
    let program = assemble(LEAKY).expect("leaky fixture assembles");

    let branch = finding(&report, Rule::SecretBranch);
    // pc 0: movi, pc 1: beq.
    assert_eq!(branch.pc, 1, "got {branch}");
    assert_eq!(branch.line, program.line_of(branch.pc), "got {branch}");
    assert_eq!(branch.line, Some(4), "got {branch}");

    let load = finding(&report, Rule::SecretLoad);
    assert_eq!(load.pc, 5, "got {load}");
    assert_eq!(load.line, Some(9), "got {load}");
}

/// Every `cust` mnemonic an accelerated kernel uses must carry a
/// `;! cust` operand signature (so the operand lint actually checks
/// it) and must exist in the extension set the kernel is run under.
fn assert_custom_usage_covered(name: &str, src: &str, ext: &ExtensionSet) {
    let spec = SecretSpec::from_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let program = assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let used: BTreeSet<&str> = program
        .insns()
        .iter()
        .filter_map(|i| match i {
            Insn::Custom(op) => Some(op.name.as_str()),
            _ => None,
        })
        .collect();
    assert!(!used.is_empty(), "{name}: accel kernel uses no cust insns?");
    let registered: BTreeSet<&str> = ext.names().collect();
    for mnemonic in used {
        assert!(
            spec.sig(mnemonic).is_some(),
            "{name}: `{mnemonic}` has no `;! cust` signature annotation"
        );
        assert!(
            registered.contains(mnemonic),
            "{name}: `{mnemonic}` is not in the kernel's extension set"
        );
    }
}

#[test]
fn accel_kernel_custom_usage_is_annotated_and_registered() {
    for add_lanes in [2u32, 4, 8, 16] {
        for mac_lanes in [1u32, 2, 4] {
            assert_custom_usage_covered(
                &format!("mpn accel32 al={add_lanes} ml={mac_lanes}"),
                &mpn::accel32_source(add_lanes, mac_lanes),
                &mpn_extension_set(add_lanes, mac_lanes),
            );
        }
    }
    let ext = cipher_extension_set();
    assert_custom_usage_covered(
        "des accel",
        &des::accel_source(&des::MemoryMap::default()),
        &ext,
    );
    assert_custom_usage_covered(
        "aes accel",
        &aes::accel_source(&aes::MemoryMap::default()),
        &ext,
    );
}

/// TIE design points name instructions `family_level`; the assembler
/// and the `;! cust` annotations use the fused mnemonic. The bridge
/// must agree with what the extension sets register.
#[test]
fn tie_mnemonics_match_extension_set_names() {
    for (add_lanes, mac_lanes) in [(2u32, 1u32), (16, 4)] {
        let ext = mpn_extension_set(add_lanes, mac_lanes);
        let registered: BTreeSet<&str> = ext.names().collect();
        for family in ["add", "sub"] {
            let m = CustomInsn::new(family, add_lanes, 0).mnemonic();
            assert!(registered.contains(m.as_str()), "missing {m}");
        }
        for family in ["mac", "msub"] {
            let m = CustomInsn::new(family, mac_lanes, 0).mnemonic();
            assert!(registered.contains(m.as_str()), "missing {m}");
        }
    }
}

/// The allowlist is what keeps the software S-box variants "clean":
/// stripping the `;! allow` annotations must resurface the accepted
/// table-lookup leaks in the base DES and AES kernels.
#[test]
fn sbox_leaks_resurface_without_allow_annotations() {
    for (name, src) in [
        ("des base", des::base_source(&des::MemoryMap::default())),
        ("aes base", aes::base_source(&aes::MemoryMap::default())),
    ] {
        let stripped: String = src
            .lines()
            .map(|l| match l.find(";! allow(") {
                Some(ix) => &l[..ix],
                None => l,
            })
            .collect::<Vec<_>>()
            .join("\n");
        let report = analyze_source(&stripped).expect("kernel analyzes");
        assert!(
            report.findings().iter().any(|f| f.rule == Rule::SecretLoad),
            "{name}: expected secret-load findings once allows are stripped:\n{report}"
        );
    }
}
