//! Registry-driven property tests: every kernel registered in
//! [`wsp::kreg`] must assemble, run on the cycle-accurate ISS, and
//! match the golden host reference embedded in its descriptor; its
//! cache identities must be unique; and its assembly must carry an
//! xlint entry spec and analyze clean. Adding a kernel to the registry
//! automatically enrolls it in every one of these checks.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wsp::kreg::{self, id, CallConv, LibKind};
use wsp::secproc::issops::IssMpn;
use wsp::secproc::simcipher::SimSha1;
use wsp::xlint::analyze_source;
use wsp::xr32::asm::assemble;
use wsp::xr32::config::CpuConfig;
use wsp::xr32::Fidelity;

/// The audit CI gates on holds, and the individual identity
/// derivations it summarizes are collision-free.
#[test]
fn registry_audit_is_clean_and_identities_are_unique() {
    assert_eq!(kreg::audit(), Vec::<String>::new());

    let mut tags = BTreeSet::new();
    let mut units = BTreeSet::new();
    for desc in kreg::registry() {
        assert!(tags.insert(desc.cache_tag()), "tag {}", desc.cache_tag());
        for &width in desc.widths() {
            assert!(units.insert(desc.charact_unit(width)));
        }
        assert!(units.insert(desc.curve_unit()));
    }
}

/// Every assembly library the registry enumerates assembles, is
/// lint-clean, and between them the libraries carry an annotated
/// `;! entry` spec for every registered kernel.
#[test]
fn every_registered_kernel_has_a_lintable_annotated_entry() {
    let units = kreg::lint_units();
    for unit in &units {
        assemble(&unit.source).unwrap_or_else(|e| panic!("{} does not assemble: {e}", unit.label));
        let report = analyze_source(&unit.source)
            .unwrap_or_else(|e| panic!("{} does not analyze: {e}", unit.label));
        assert!(
            report.no_errors(),
            "{} has lint errors:\n{report}",
            unit.label
        );
    }
    for desc in kreg::registry() {
        let annotated = format!(";! entry {}", desc.entry);
        assert!(
            units.iter().any(|u| u.source.contains(&annotated)),
            "kernel {} has no annotated entry in any lint unit",
            desc.id
        );
    }
}

// Each ISS case executes thousands of simulated instructions, so keep
// the case count low.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// Every register-convention kernel in the registry runs on the ISS
    /// at every supported radix and matches its descriptor's golden
    /// reference (verify mode checks each call; a mismatch would be
    /// recorded as a [`wsp::kreg::KernelError::Divergence`]).
    #[test]
    fn registered_mpn_kernels_match_their_goldens_on_the_iss(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut iss = IssMpn::base(CpuConfig::default());
        for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
            iss.measure32(desc.id, n, seed).expect("mpn kernel measures at radix 32");
            iss.measure16(desc.id, n, seed).expect("mpn kernel measures at radix 16");
        }
        let errors = iss.take_kernel_errors();
        prop_assert!(errors.is_empty(), "divergences: {errors:?}");
    }

    /// The pre-decoded fast path verifies every register-convention
    /// kernel against the same goldens, and its end-of-sweep
    /// architectural state (registers, memory digest, retired count)
    /// is bit-identical to the cycle-accurate engine's.
    #[test]
    fn fast_path_golden_sweeps_match_cycle_accurate(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let sweep = |fidelity: Fidelity| {
            let mut iss = IssMpn::base(CpuConfig::default());
            iss.set_fidelity(fidelity);
            for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
                iss.verify32(desc.id, n, seed).expect("mpn kernel verifies at radix 32");
                iss.verify16(desc.id, n, seed).expect("mpn kernel verifies at radix 16");
            }
            let errors = iss.take_kernel_errors();
            prop_assert!(errors.is_empty(), "divergences: {errors:?}");
            Ok((iss.arch_state32(), iss.arch_state16()))
        };
        prop_assert_eq!(sweep(Fidelity::Fast)?, sweep(Fidelity::CycleAccurate)?);
    }

    /// The block-memory SHA-1 kernel matches the golden reference the
    /// registry carries in its calling convention, compared explicitly
    /// here (engine verification disabled so the registry's own
    /// function pointer is what decides).
    #[test]
    fn registered_sha1_kernel_matches_its_registry_golden(
        state in any::<[u32; 5]>(),
        block in any::<[u8; 64]>(),
    ) {
        let desc = kreg::get(id::SHA1).expect("sha1 is registered");
        let CallConv::BlockMem { golden_sha1 } = desc.conv else {
            panic!("sha1 must use the block-memory convention");
        };
        let mut sim = SimSha1::new(CpuConfig::default());
        sim.set_verify(false);
        let (out, cycles) = sim.compress(state, &block);
        let mut expect = state;
        golden_sha1(&mut expect, &block);
        prop_assert_eq!(out, expect);
        prop_assert!(cycles > 0);
    }
}
