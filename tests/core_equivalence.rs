//! Property tests for the core-model contract: out-of-order execution
//! ([`wsp::xr32::xcore`]) reorders *timing*, never *results*. The
//! scoreboarded out-of-order pipeline, the in-order pipeline and the
//! pre-decoded fast path must be architecturally indistinguishable —
//! same final registers, same whole-memory digest, same
//! retired-instruction count — over random stimuli drawn from the kreg
//! stimulus spaces, at every accelerator level (so custom-instruction
//! latencies flow through the scoreboard too), and a divergence must
//! surface as the same typed [`wsp::kreg::KernelError`] stream on
//! every engine, never a panic.

use proptest::prelude::*;
use wsp::kreg::{self, id, KernelError, LibKind};
use wsp::secproc::issops::{ArchState, IssMpn, KernelVariant};
use wsp::xr32::config::CpuConfig;
use wsp::xr32::{ExtensionSet, Fidelity};

/// Every accelerator level the A-D curves measure, plus the base core:
/// each core model must agree under the custom instructions of each.
const LEVELS: [KernelVariant; 5] = [
    KernelVariant::Base,
    KernelVariant::Accelerated {
        add_lanes: 2,
        mac_lanes: 1,
    },
    KernelVariant::Accelerated {
        add_lanes: 4,
        mac_lanes: 2,
    },
    KernelVariant::Accelerated {
        add_lanes: 8,
        mac_lanes: 4,
    },
    KernelVariant::Accelerated {
        add_lanes: 16,
        mac_lanes: 4,
    },
];

/// Drives every register-convention kernel in the registry at both
/// radices and returns the end-of-sweep architectural state pair.
fn sweep(
    config: &CpuConfig,
    variant: KernelVariant,
    fidelity: Fidelity,
    n: usize,
    seed: u64,
) -> (ArchState, ArchState) {
    let mut iss = IssMpn::with_variant(config.clone(), variant);
    iss.set_fidelity(fidelity);
    for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
        iss.verify32(desc.id, n, seed)
            .unwrap_or_else(|e| panic!("{} r32 under {variant:?}: {e}", desc.id));
        iss.verify16(desc.id, n, seed)
            .unwrap_or_else(|e| panic!("{} r16 under {variant:?}: {e}", desc.id));
    }
    assert!(
        iss.take_kernel_errors().is_empty(),
        "sweep under {variant:?} must be divergence-free"
    );
    (iss.arch_state32(), iss.arch_state16())
}

// Each case sweeps the whole registry on three engines at five levels;
// keep the case count low.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// In-order, out-of-order and fast-path execution agree bit-for-bit
    /// on final registers, memory digest and retired count over random
    /// kreg stimuli, at every accelerator level.
    #[test]
    fn all_core_models_agree_at_every_level(
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let io = CpuConfig::default();
        let ooo = CpuConfig::ooo();
        for variant in LEVELS {
            let reference = sweep(&io, variant, Fidelity::CycleAccurate, n, seed);
            prop_assert_eq!(
                &sweep(&ooo, variant, Fidelity::CycleAccurate, n, seed),
                &reference,
                "out-of-order vs in-order, variant {:?}", variant
            );
            prop_assert_eq!(
                &sweep(&io, variant, Fidelity::Fast, n, seed),
                &reference,
                "fast path vs in-order, variant {:?}", variant
            );
        }
    }

    /// A wrong kernel driven with verification on is reported as the
    /// same typed divergence stream on every engine — the checker sits
    /// above the core model — never a panic.
    #[test]
    fn divergence_streams_agree_across_core_models(seed in any::<u64>()) {
        // "add" that drops the carry chain: wrong for carrying inputs.
        let wrong = "
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:
    movi a6, 0
.lp:
    lw   a4, a1, 0
    lw   a5, a2, 0
    add  a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi a3, a3, -1
    bne  a3, a6, .lp
    movi a0, 0
    ret
";
        let run = |config: &CpuConfig, fidelity: Fidelity| {
            let mut iss =
                IssMpn::with_library(config.clone(), wrong, ExtensionSet::new());
            iss.set_fidelity(fidelity);
            // 8 limbs of random data virtually always carry somewhere.
            let result = iss.verify32(id::ADD_N, 8, seed);
            (result, iss.take_kernel_errors())
        };
        let (io_result, io_errors) = run(&CpuConfig::default(), Fidelity::CycleAccurate);
        let (ooo_result, ooo_errors) = run(&CpuConfig::ooo(), Fidelity::CycleAccurate);
        let (fast_result, fast_errors) = run(&CpuConfig::default(), Fidelity::Fast);
        prop_assert_eq!(&ooo_errors, &io_errors, "error streams must agree (ooo)");
        prop_assert_eq!(&fast_errors, &io_errors, "error streams must agree (fast)");
        prop_assert_eq!(&ooo_result, &io_result);
        prop_assert_eq!(&fast_result, &io_result);
        if let Err(e) = io_result {
            prop_assert!(matches!(e, KernelError::Divergence { .. }), "{}", e);
            prop_assert!(!io_errors.is_empty());
        }
    }
}
