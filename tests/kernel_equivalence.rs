//! Property-based integration tests: every XR32 assembly kernel must be
//! functionally identical to the native Rust implementation it models,
//! across operand sizes, values and kernel variants.

use proptest::prelude::*;
use wsp::pubkey::ops::MpnOps;
use wsp::secproc::issops::IssMpn;
use wsp::secproc::simcipher::{SimAes, SimDes, SimSha1, Variant};
use wsp::xr32::config::CpuConfig;

// Keep cases low: each case executes thousands of simulated
// instructions.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    #[test]
    fn base32_kernels_equal_native(
        a in prop::collection::vec(any::<u32>(), 1..24),
        b_scalar in any::<u32>(),
    ) {
        // IssMpn verify-mode panics on any divergence from the native
        // implementation, so running the ops IS the assertion.
        let mut iss = IssMpn::base(CpuConfig::default());
        let n = a.len();
        let b: Vec<u32> = a.iter().rev().copied().collect();
        let mut out = vec![0u32; n];
        MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
        MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
        MpnOps::<u32>::mul_1(&mut iss, &mut out, &a, b_scalar);
        let mut acc = b.clone();
        MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, b_scalar);
        MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, b_scalar);
        MpnOps::<u32>::lshift(&mut iss, &mut out, &a, 1 + (b_scalar % 31));
        MpnOps::<u32>::rshift(&mut iss, &mut out, &a, 1 + (b_scalar % 31));
    }

    #[test]
    fn base16_kernels_equal_native(
        a in prop::collection::vec(any::<u16>(), 1..24),
        b_scalar in any::<u16>(),
    ) {
        let mut iss = IssMpn::base(CpuConfig::default());
        let n = a.len();
        let b: Vec<u16> = a.iter().map(|&x| x ^ 0x5a5a).collect();
        let mut out = vec![0u16; n];
        MpnOps::<u16>::add_n(&mut iss, &mut out, &a, &b);
        MpnOps::<u16>::sub_n(&mut iss, &mut out, &a, &b);
        MpnOps::<u16>::mul_1(&mut iss, &mut out, &a, b_scalar);
        let mut acc = b.clone();
        MpnOps::<u16>::addmul_1(&mut iss, &mut acc, &a, b_scalar);
        MpnOps::<u16>::submul_1(&mut iss, &mut acc, &a, b_scalar);
        MpnOps::<u16>::lshift(&mut iss, &mut out, &a, 1 + (b_scalar as u32 % 15));
        MpnOps::<u16>::rshift(&mut iss, &mut out, &a, 1 + (b_scalar as u32 % 15));
    }

    #[test]
    fn accel_kernels_equal_native(
        a in prop::collection::vec(any::<u32>(), 1..24),
        lanes_sel in 0usize..4,
        b_scalar in any::<u32>(),
    ) {
        let (al, ml) = [(2, 1), (4, 2), (8, 4), (16, 4)][lanes_sel];
        let mut iss = IssMpn::accelerated(CpuConfig::default(), al, ml);
        let n = a.len();
        let b: Vec<u32> = a.iter().map(|&x| x.rotate_left(7)).collect();
        let mut out = vec![0u32; n];
        MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
        MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
        let mut acc = b.clone();
        MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, b_scalar);
        MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, b_scalar);
    }

    #[test]
    fn div_qhat_kernels_equal_reference(
        d1 in 0x8000_0000u32..,
        d0 in any::<u32>(),
        n1 in any::<u32>(),
        n0 in any::<u32>(),
        n2_frac in any::<u32>(),
    ) {
        let mut iss = IssMpn::base(CpuConfig::default());
        let n2 = n2_frac % d1;
        MpnOps::<u32>::div_qhat(&mut iss, n2, n1, n0, d1, d0);
        // Include the clamp edge case explicitly.
        MpnOps::<u32>::div_qhat(&mut iss, d1, n1, n0, d1, d0);
    }

    #[test]
    fn des_kernels_equal_reference(key in any::<u64>(), block in any::<u64>()) {
        for variant in [Variant::Base, Variant::Accelerated] {
            let mut sim = SimDes::new(CpuConfig::default(), variant, key.to_be_bytes());
            // verify-mode compares against ciphers::Des internally.
            let (ct, _) = sim.crypt_block(block, false);
            let (pt, _) = sim.crypt_block(ct, true);
            prop_assert_eq!(pt, block);
        }
    }

    #[test]
    fn aes_kernels_equal_reference(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        for variant in [Variant::Base, Variant::Accelerated] {
            let mut sim = SimAes::new(CpuConfig::default(), variant, &key);
            let (_, cycles) = sim.encrypt_block(&block);
            prop_assert!(cycles > 0);
        }
    }

    #[test]
    fn sha1_kernel_equals_reference(block in any::<[u8; 64]>(), s0 in any::<u32>()) {
        let mut sim = SimSha1::new(CpuConfig::default());
        let state = [s0, s0 ^ 0xdead_beef, !s0, s0.rotate_left(13), 0x1234_5678];
        let (out, _) = sim.compress(state, &block);
        prop_assert_ne!(out, state);
    }
}
