//! Integration tests of the platform facade, the SSL model, and the
//! processing-gap model working from measured data.

use rand::SeedableRng;
use wsp::ciphers::{BlockCipher, TripleDes};
use wsp::mpint::Natural;
use wsp::secproc::platform::{Algorithm, PlatformKind, SecurityProcessor};
use wsp::secproc::ssl::{speedup_series, SslCostModel};
use wsp::secproc::{gap, measure};
use wsp::xr32::config::CpuConfig;

#[test]
fn platform_speedups_match_paper_shape() {
    let mut base = SecurityProcessor::new(PlatformKind::Baseline);
    let mut opt = SecurityProcessor::new(PlatformKind::Optimized);
    for (algo, lo, hi) in [(Algorithm::Des, 8.0, 80.0), (Algorithm::Aes128, 5.0, 60.0)] {
        let b = base.symmetric_cycles_per_byte(algo);
        let o = opt.symmetric_cycles_per_byte(algo);
        let s = b / o;
        assert!(
            s > lo && s < hi,
            "{algo:?} speedup {s:.1} outside [{lo},{hi}]"
        );
    }
    // SHA-1 is unaccelerated: both platforms cost the same.
    let bs = base.symmetric_cycles_per_byte(Algorithm::Sha1);
    let os = opt.symmetric_cycles_per_byte(Algorithm::Sha1);
    assert!((bs - os).abs() / bs < 0.05, "sha1 {bs:.1} vs {os:.1}");
}

#[test]
fn platform_bulk_crypto_interoperates_with_ciphers_crate() {
    let proc = SecurityProcessor::new(PlatformKind::Optimized);
    let key = *b"abcdefghijklmnopqrstuvwx";
    let iv = [1u8; 8];
    let data = b"record-layer payload with padding";
    let ct = proc
        .encrypt_cbc(Algorithm::TripleDes, &key, &iv, data)
        .unwrap();
    // Decrypt with the ciphers crate directly.
    let tdes = TripleDes::from_key_bytes(&key);
    assert_eq!(tdes.block_size(), 8);
    let pt = wsp::ciphers::modes::cbc_decrypt(&tdes, &iv, &ct).unwrap();
    assert_eq!(pt, data);
}

#[test]
fn ssl_series_from_measured_components_has_paper_shape() {
    let config = CpuConfig::default();
    let tdes = measure::measure_tdes(&config, 4);
    // Measure the handshake at a test-friendly 128-bit modulus, then
    // extrapolate to the paper's RSA-1024 magnitude (schoolbook modexp
    // scales cubically in the modulus size), keeping the measured
    // base/optimized ratio.
    let (_, dec) = measure::measure_rsa(&config, 128)
        .expect("RSA co-simulation is infallible on the bundled platforms");
    let scale = (1024.0f64 / 128.0).powi(3);
    let sha_cpb = 40.0; // representative misc cost
    let base = SslCostModel {
        handshake_cycles: dec.base_cycles * scale,
        bulk_cycles_per_byte: tdes.base_cpb,
        misc_cycles_per_byte: sha_cpb,
        misc_fixed_cycles: 1.0e5,
    };
    let opt = SslCostModel {
        handshake_cycles: dec.opt_cycles * scale,
        bulk_cycles_per_byte: tdes.opt_cpb,
        misc_cycles_per_byte: sha_cpb,
        misc_fixed_cycles: 1.0e5,
    };
    let sizes: Vec<u64> = (0..=8).map(|i| 1024u64 << i).collect();
    let series = speedup_series(&base, &opt, &sizes);
    // Speedup > 1 everywhere, declining with transaction size once the
    // handshake is amortized.
    for p in &series {
        assert!(
            p.speedup() > 1.0,
            "at {} bytes: {:.2}",
            p.bytes,
            p.speedup()
        );
    }
    let first = series.first().unwrap();
    let last = series.last().unwrap();
    assert!(first.speedup() > last.speedup());
    // Breakdown shifts from public-key to symmetric+misc.
    assert!(first.base_breakdown.public_key / first.base_breakdown.total() > 0.4);
    assert!(last.base_breakdown.public_key / last.base_breakdown.total() < 0.4);
}

#[test]
fn gap_trend_uses_measured_costs() {
    let config = CpuConfig::default();
    let des = measure::measure_des(&config, 4);
    let rows = gap::trend(des.base_cpb);
    assert_eq!(rows.len(), 5);
    assert!(rows.last().unwrap().gap_factor() > rows.first().unwrap().gap_factor());
    // The optimized platform closes the gap by the measured speedup.
    let opt_rows = gap::trend(des.opt_cpb);
    for (b, o) in rows.iter().zip(&opt_rows) {
        assert!(o.required_mips < b.required_mips / 5.0);
    }
}

#[test]
fn rsa_interoperates_across_platform_kinds() {
    // A ciphertext produced with the baseline algorithms must decrypt
    // on the optimized platform (they are the same math).
    let base = SecurityProcessor::new(PlatformKind::Baseline);
    let opt = SecurityProcessor::new(PlatformKind::Optimized);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let kp = base.rsa_generate(256, &mut rng);
    let m = Natural::from_u64(0xfeed_beef);
    let ct_base = base.rsa_encrypt(&kp, &m).unwrap();
    let ct_opt = opt.rsa_encrypt(&kp, &m).unwrap();
    assert_eq!(ct_base, ct_opt, "textbook RSA is deterministic");
    assert_eq!(opt.rsa_decrypt(&kp, &ct_base).unwrap(), m);
    assert_eq!(base.rsa_decrypt(&kp, &ct_opt).unwrap(), m);
}
