//! Integration test: the full four-phase co-design methodology, end to
//! end across crates — characterize on the ISS (xr32 + secproc), fit
//! macro-models (macromodel), explore the algorithm space (pubkey),
//! formulate A-D curves and select custom instructions (tie).

use wsp::macromodel::charact::CharactOptions;
use wsp::mpint::Natural;
use wsp::pubkey::modexp::{mod_exp, ExpCache};
use wsp::pubkey::ops::NativeMpn;
use wsp::pubkey::space::{CacheMode, ModExpConfig, MulAlgo};
use wsp::secproc::flow;
use wsp::secproc::FlowBuilder;
use wsp::xr32::config::CpuConfig;

fn quick_options() -> CharactOptions {
    CharactOptions {
        train_samples: 12,
        validation_points: 5,
    }
}

#[test]
fn methodology_end_to_end() {
    let config = CpuConfig::default();

    // Phase 1: characterization.
    let ctx = FlowBuilder::new(&config).build().unwrap();
    let models = ctx.characterize(8, &quick_options());
    assert!(
        models.mean_abs_error_pct() < 20.0,
        "macro-models should be accurate: {:.1}%",
        models.mean_abs_error_pct()
    );

    // Phase 2: exploration of the full 450-candidate lattice.
    let exploration = ctx.explore(&models, 128, 4.0).expect("lattice runs");
    assert_eq!(exploration.evaluated, 450);
    let best = exploration.best().clone();
    assert_ne!(
        best.config.mul,
        MulAlgo::MulDiv,
        "exploration should discard division-based reduction"
    );
    assert_ne!(best.config.cache, CacheMode::None);

    // The explored winner must be functionally correct.
    let mut ops = NativeMpn::new();
    let mut cache = ExpCache::new();
    let m = Natural::from_hex_str("f0000000000000000000000000000461").unwrap();
    let b = Natural::from_u64(0x1234_5678);
    let e = Natural::from_u64(0xfedc_ba98);
    let got = mod_exp(&mut ops, &b, &e, &m, &best.config, &mut cache).unwrap();
    assert_eq!(got, b.pow_mod(&e, &m));

    // Phases 3 + 4: formulate curves, select under a budget.
    let selector = ctx.selector(16);
    let unconstrained = selector
        .select("decrypt", u64::MAX)
        .expect("DAG")
        .expect("nonempty curve");
    let zero_budget = selector
        .select("decrypt", 0)
        .expect("DAG")
        .expect("base point exists");
    assert!(zero_budget.cycles > unconstrained.cycles * 2.0);
    assert_eq!(zero_budget.area(), 0);
    assert!(unconstrained.area() > 0);

    // The unconstrained selection should use both instruction families.
    let families: Vec<&str> = unconstrained.insns.iter().map(|i| i.family()).collect();
    assert!(families.contains(&"add"));
    assert!(families.contains(&"mac"));
}

#[test]
fn macro_model_estimate_tracks_cosimulation() {
    // §4.3's accuracy claim, as a regression test: the native estimate
    // must stay within a loose error band of full co-simulation.
    let config = CpuConfig::default();
    let ctx = FlowBuilder::new(&config).build().unwrap();
    let models = ctx.characterize(8, &quick_options());
    for candidate in [ModExpConfig::baseline(), ModExpConfig::optimized()] {
        let est = flow::explore_single(&models, &candidate, 96, 4.0).expect("estimate runs");
        let cosim = ctx
            .cosimulate(&models, &candidate, 96, 4.0)
            .expect("cosim runs");
        let err = ((est - cosim) / cosim).abs() * 100.0;
        assert!(
            err < 35.0,
            "{candidate}: estimate {est:.0} vs cosim {cosim:.0} ({err:.1}% off)"
        );
    }
}
