//! Umbrella crate for the wireless security processing platform
//! reproduction (DAC 2002: Ravi, Raghunathan, Potlapally, Sankaradass,
//! *System Design Methodologies for a Wireless Security Processing
//! Platform*).
//!
//! This crate re-exports the workspace's subsystems so examples and
//! integration tests can use a single dependency:
//!
//! - [`xr32`]: the configurable, extensible embedded RISC processor
//!   substrate (ISA, assembler, cycle-accurate instruction-set simulator).
//! - [`mpint`]: multi-precision integer arithmetic (GMP replacement).
//! - [`ciphers`]: DES / 3DES / AES / SHA-1 and block modes.
//! - [`pubkey`]: RSA / ElGamal and the modular-exponentiation design space.
//! - [`macromodel`]: performance characterization and regression
//!   macro-modeling.
//! - [`tie`]: custom-instruction A-D curves and global selection.
//! - [`kreg`]: the typed kernel registry shared by all four
//!   methodology phases (descriptors, calling conventions, golden
//!   references, stimulus spaces, cache tags).
//! - [`secproc`]: the security processing platform itself and the
//!   four-phase co-design methodology.
//! - [`xlint`]: dataflow static analysis and the constant-time
//!   (secret-taint) checker for XR32 kernels.
//! - [`xpar`]: the deterministic scoped worker pool and kernel-cycle
//!   memo cache driving the parallel methodology engine.
//!
//! # Examples
//!
//! ```
//! use wsp::mpint::Natural;
//!
//! let n = Natural::from_u64(42);
//! assert_eq!(n.to_string(), "42");
//! ```

pub use ciphers;
pub use kreg;
pub use macromodel;
pub use mpint;
pub use pubkey;
pub use secproc;
pub use tie;
pub use xlint;
pub use xpar;
pub use xr32;
