//! Regenerates **Fig. 5**: (a) the A-D curve for `mpn_add_n`, (b) the
//! A-D curve for `mpn_addmul_1`, and (c) their propagation through an
//! example call graph with Pareto pruning. With `--json`, stdout
//! carries a single structured run report (schema 5: the
//! `generated_variants` array records, per accelerator level, the
//! `xopt` gate verdicts and generated-vs-hand-written cycles, and the
//! `spans` tree records where the ISS budget went — phase, per-point
//! measurement, variant generation — under one `flow` root).
//!
//! The ISS measurement points run on the `WSP_THREADS`-sized worker
//! pool and are served from the persistent kernel-cycle cache; the
//! curves are identical for any thread count and cache state. Both
//! kernels opt into generated variants, so each accelerated curve
//! point is driven by an `xopt`-generated kernel that passed the
//! lint + golden admission gate, with the hand-written variant
//! measured side-by-side as the baseline.

use bench::{Cli, Harness};
use tie::adcurve::AdCurve;
use tie::callgraph::CallGraph;
use tie::select::Selector;
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;

fn curve_to_json(curve: &AdCurve) -> Json {
    let mut points = Vec::with_capacity(curve.len());
    for p in curve.points() {
        points.push(
            Json::obj()
                .set("insns", p.insns.to_string())
                .set("area", p.area())
                .set("cycles", p.cycles),
        );
    }
    Json::from(points)
}

fn main() {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let harness = Harness::from_env();
    let n = cli.pos_usize(0, 32); // 1024-bit operands, as in the paper's RSA context
    if !cli.json {
        println!("Fig. 5 — A-D curves for library routines (n = {n} limbs)\n");
    }

    let ctx = harness.flow_ctx(&config);
    let flow_span = harness.spans().enter("flow");
    let (curves, variants) = ctx.curves_with_variants(n);
    flow_span.end();
    let add_n = kreg::id::ADD_N.name();
    let addmul_1 = kreg::id::ADDMUL_1.name();

    // (c) combine through a root with both children, then Pareto-prune.
    let mut g = CallGraph::new();
    g.add_node("root", 10.0);
    g.add_node(add_n, 0.0);
    g.add_node(addmul_1, 0.0);
    g.add_call("root", add_n, 2.0).expect("nodes exist");
    g.add_call("root", addmul_1, 1.0).expect("nodes exist");
    let mut sel = Selector::new(g);
    for (name, curve) in &curves {
        sel.set_leaf_curve(name.clone(), curve.clone());
    }
    let combined: AdCurve = sel.propagate().expect("DAG")["root"].clone();
    let pruned = combined.pareto();

    if cli.json {
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("fig5_adcurves")
            .with_fingerprint(config.fingerprint())
            .result("limbs", n as u64)
            .result(add_n, curve_to_json(&curves[add_n]))
            .result(addmul_1, curve_to_json(&curves[addmul_1]))
            .result("combined_points", combined.len() as u64)
            .result("pareto_points", pruned.len() as u64)
            .result("combined_pareto", curve_to_json(&pruned))
            .with_generated_variants(variants.iter().map(|v| v.to_json()))
            .with_degradations(ctx.degradations_json())
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }
    let _ = harness.kcache.save();

    println!("(a) mpn_add_n (paper: 202 cycles base, add_2..add_16 points)");
    print!("{}", curves[add_n].render());

    println!("\n(b) mpn_addmul_1 (mac_1..mac_4 points)");
    print!("{}", curves[addmul_1].render());

    println!("\n    xopt generated variants vs. hand-written (cycles, n = {n}):");
    for v in &variants {
        let gate = if v.admitted {
            "admitted".to_string()
        } else {
            format!(
                "REJECTED (lint {}, golden {}): {}",
                if v.lint_ok { "ok" } else { "fail" },
                if v.golden_ok { "ok" } else { "fail" },
                v.error.as_deref().unwrap_or("?")
            )
        };
        match (v.cycles_generated, v.cycle_ratio()) {
            (Some(g), Some(r)) => println!(
                "    {:<12} {:<9} gen {:>7.0}  hand {:>7.0}  ({:+.1}%)  {gate}",
                v.kernel.name(),
                v.tag,
                g,
                v.cycles_hand,
                (r - 1.0) * 100.0
            ),
            _ => println!(
                "    {:<12} {:<9} hand {:>7.0}  {gate}",
                v.kernel.name(),
                v.tag,
                v.cycles_hand
            ),
        }
    }

    println!("\n(c) root = 2 x mpn_add_n + 1 x mpn_addmul_1 + 10 local cycles");
    println!(
        "    combined: {} points (instruction sharing + dominance reduced)",
        combined.len()
    );
    println!(
        "    after Pareto pruning: {} points (inferior points like the paper's P1 removed)",
        pruned.len()
    );
    print!("{}", pruned.render());
}
