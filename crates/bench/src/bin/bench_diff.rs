//! `bench_diff` — compare two BENCH envelopes (the documents
//! `scripts/bench_report.sh` writes) report-by-report and
//! metric-by-metric, and gate on deterministic regressions.
//!
//! ```text
//! bench_diff <baseline.json> <new.json> [--strict] [--tol <pct>] [--wall-tol <x>]
//! ```
//!
//! Both envelopes are parsed, every run report is normalized with
//! [`xobs::report::normalize`] (host-timing fields, `xpar.*`/`kcache.*`
//! metrics, span wall stamps and per-worker spans stripped), and the
//! surviving — deterministic — scalar leaves are flattened to
//! `path → value` maps and diffed. Each changed metric is classified
//! by a direction heuristic on its key:
//!
//! - **lower is better**: cycle counts (`*cycles*`, `*_cpb`), model
//!   error (`*error*`, `*mae*`), cache misses, retry attempts;
//! - **higher is better**: speedups, hit rates, `r_squared`, Pareto
//!   survivors/points (including the cross-product
//!   `pareto_front_size`), admitted variants, instructions-per-cycle
//!   (`*ipc*`, the out-of-order cores' headline rate);
//! - everything else (configs, sizes, counts, span shapes) is
//!   **neutral**: reported but never gated.
//!
//! The exit code is non-zero when a `results.*` metric with a known
//! direction moved the wrong way by more than `--tol` percent
//! (default 0: deterministic metrics must match exactly), when a
//! `results.*` metric or a whole report present in the baseline is
//! missing from the new envelope, or (with `--strict`) when *any*
//! `results.*` leaf changed at all. A non-zero `--tol` is for diffing
//! across code generations (the committed envelopes span several
//! methodology changes); same-code runs should diff exactly.
//! Metrics, degradations and span paths are informational: they
//! describe how a run executed, not what it computed. Raw (pre-
//! normalization) `wall_ms` values are compared with a tolerance
//! factor (default 4.0×) and only ever warn — wall time is host noise.
//!
//! The report is a markdown delta summary on stdout, one section per
//! run report, so a CI log (or a PR description) can carry it as-is.

use std::collections::BTreeMap;
use std::process::ExitCode;

use xobs::Json;

/// Direction of "better" for a metric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
    Neutral,
}

/// What a single changed leaf means for the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Improved,
    Regressed,
    Changed,
}

struct Delta {
    path: String,
    old: String,
    new: String,
    pct: Option<f64>,
    verdict: Verdict,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff <baseline.json> <new.json> [--strict] [--tol <pct>] [--wall-tol <x>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut strict = false;
    let mut tol = 0.0f64;
    let mut wall_tol = 4.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--tol" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => tol = t,
                None => return usage(),
            },
            "--wall-tol" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => wall_tol = t,
                None => return usage(),
            },
            _ => paths.push(arg.clone()),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return usage();
    };

    let base = match load_envelope(base_path) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let new = match load_envelope(new_path) {
        Ok(e) => e,
        Err(code) => return code,
    };

    println!("# bench_diff: `{base_path}` → `{new_path}`\n");

    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut neutral_changes = 0usize;
    let mut warnings = 0usize;

    for (name, base_report) in &base {
        let Some(new_report) = new.get(name) else {
            println!("## {name}\n\n**REGRESSION**: report missing from new envelope\n");
            regressions += 1;
            continue;
        };
        let deltas = diff_reports(base_report, new_report, strict, tol);
        warnings += wall_warning(name, base_report, new_report, wall_tol);
        if deltas.is_empty() {
            continue;
        }
        println!("## {name}\n");
        println!("| metric | baseline | new | Δ | verdict |");
        println!("|---|---|---|---|---|");
        const MAX_ROWS: usize = 40;
        for d in deltas.iter().take(MAX_ROWS) {
            let pct = d
                .pct
                .map(|p| format!("{p:+.2}%"))
                .unwrap_or_else(|| "—".into());
            let verdict = match d.verdict {
                Verdict::Improved => "improved",
                Verdict::Regressed => "**REGRESSION**",
                Verdict::Changed => "changed",
            };
            println!(
                "| `{}` | {} | {} | {} | {} |",
                d.path, d.old, d.new, pct, verdict
            );
        }
        if deltas.len() > MAX_ROWS {
            println!("\n… and {} more changed leaves", deltas.len() - MAX_ROWS);
        }
        println!();
        for d in &deltas {
            match d.verdict {
                Verdict::Improved => improvements += 1,
                Verdict::Regressed => regressions += 1,
                Verdict::Changed => neutral_changes += 1,
            }
        }
    }
    for name in new.keys() {
        if !base.contains_key(name) {
            println!("## {name}\n\nadded (no baseline to compare)\n");
        }
    }

    println!(
        "**summary**: {regressions} regression(s), {improvements} improvement(s), \
         {neutral_changes} neutral change(s), {warnings} wall-time warning(s)"
    );
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} deterministic regression(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parse an envelope into `report name → report` (insertion-ordered by
/// name for stable output).
fn load_envelope(path: &str) -> Result<BTreeMap<String, Json>, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    let json = xobs::json::parse(&text).map_err(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        ExitCode::FAILURE
    })?;
    let reports = json.get("reports").and_then(Json::as_arr).ok_or_else(|| {
        eprintln!("bench_diff: {path} is not a BENCH envelope (no `reports` array)");
        ExitCode::FAILURE
    })?;
    let mut map = BTreeMap::new();
    for report in reports {
        let name = report
            .get("report")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        map.insert(name, report.clone());
    }
    Ok(map)
}

/// Normalize both reports, flatten, and diff every scalar leaf.
fn diff_reports(base: &Json, new: &Json, strict: bool, tol: f64) -> Vec<Delta> {
    let mut base_leaves = BTreeMap::new();
    flatten(&xobs::report::normalize(base), "", &mut base_leaves);
    let mut new_leaves = BTreeMap::new();
    flatten(&xobs::report::normalize(new), "", &mut new_leaves);

    let mut deltas = Vec::new();
    for (path, old) in &base_leaves {
        match new_leaves.get(path) {
            None => deltas.push(Delta {
                path: path.clone(),
                old: render(old),
                new: "(missing)".into(),
                pct: None,
                verdict: if gated(path) {
                    Verdict::Regressed
                } else {
                    Verdict::Changed
                },
            }),
            Some(val) if val != old => deltas.push(classify(path, old, val, strict, tol)),
            Some(_) => {}
        }
    }
    for (path, val) in &new_leaves {
        if !base_leaves.contains_key(path) {
            deltas.push(Delta {
                path: path.clone(),
                old: "(absent)".into(),
                new: render(val),
                pct: None,
                verdict: Verdict::Changed,
            });
        }
    }
    deltas
}

/// Only `results.*` leaves gate the exit code: they are the simulated
/// outputs the determinism contract covers. Metrics/spans/degradations
/// describe execution and evolve freely across schema versions.
fn gated(path: &str) -> bool {
    path.starts_with("results.")
}

fn classify(path: &str, old: &Json, new: &Json, strict: bool, tol: f64) -> Delta {
    let (pct, verdict) = match (old.as_f64(), new.as_f64()) {
        (Some(a), Some(b)) if a != 0.0 => {
            let pct = (b - a) / a.abs() * 100.0;
            let verdict = match direction(path) {
                Direction::LowerBetter if b < a => Verdict::Improved,
                Direction::LowerBetter if pct.abs() <= tol => Verdict::Changed,
                Direction::LowerBetter => Verdict::Regressed,
                Direction::HigherBetter if b > a => Verdict::Improved,
                Direction::HigherBetter if pct.abs() <= tol => Verdict::Changed,
                Direction::HigherBetter => Verdict::Regressed,
                Direction::Neutral => Verdict::Changed,
            };
            (Some(pct), verdict)
        }
        _ => (None, Verdict::Changed),
    };
    // Non-results paths never gate; strict escalates any results change.
    let verdict = if !gated(path) {
        if verdict == Verdict::Regressed {
            Verdict::Changed
        } else {
            verdict
        }
    } else if strict && verdict == Verdict::Changed {
        Verdict::Regressed
    } else {
        verdict
    };
    Delta {
        path: path.to_owned(),
        old: render(old),
        new: render(new),
        pct,
        verdict,
    }
}

/// Direction heuristic on the leaf's key (the last path segment with
/// any array index stripped).
fn direction(path: &str) -> Direction {
    let key = path.rsplit('.').next().unwrap_or(path);
    let key = key.split('[').next().unwrap_or(key).to_ascii_lowercase();
    let lower = [
        "cycles",
        "_cpb",
        "cycles_per_byte",
        "error",
        "mae",
        "misses",
        "attempts",
    ];
    let higher = [
        "speedup",
        "hit_rate",
        "r_squared",
        "pareto",
        "survivors",
        "admitted",
        "ipc",
    ];
    if higher.iter().any(|m| key.contains(m)) {
        Direction::HigherBetter
    } else if lower.iter().any(|m| key.contains(m)) {
        // "base_cycles" is the *unoptimized* reference: a change is a
        // workload change, not a perf movement either way.
        if key.starts_with("base_") {
            Direction::Neutral
        } else {
            Direction::LowerBetter
        }
    } else {
        Direction::Neutral
    }
}

/// Flatten a JSON tree to scalar leaves keyed by dotted path
/// (`results.cosim_samples[2].error_pct`).
fn flatten(json: &Json, prefix: &str, out: &mut BTreeMap<String, Json>) {
    match json {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}[{i}]"), out);
            }
        }
        leaf => {
            out.insert(prefix.to_owned(), leaf.clone());
        }
    }
}

fn render(json: &Json) -> String {
    match json {
        Json::Str(s) => format!("`{s}`"),
        other => other.to_string_compact(),
    }
}

/// Warn (never gate) when a report's raw wall time grew beyond the
/// tolerance factor.
fn wall_warning(name: &str, base: &Json, new: &Json, tol: f64) -> usize {
    let (Some(a), Some(b)) = (
        base.get("wall_ms").and_then(Json::as_f64),
        new.get("wall_ms").and_then(Json::as_f64),
    ) else {
        return 0;
    };
    if a > 0.0 && b > a * tol {
        println!("> **warning** `{name}`: wall_ms {a:.0} → {b:.0} exceeds {tol}× tolerance\n");
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classifies_core_and_cross_product_keys() {
        // Per-point cycles of the two-axis lattice gate downward…
        assert_eq!(
            direction("results.cross_product.points[3].cycles"),
            Direction::LowerBetter
        );
        // …front size and IPC gate upward…
        assert_eq!(
            direction("results.cross_product.pareto_front_size"),
            Direction::HigherBetter
        );
        assert_eq!(
            direction("results.ooo.registry_ipc"),
            Direction::HigherBetter
        );
        // …and coordinates/areas are workload facts, never gated.
        assert_eq!(
            direction("results.cross_product.points[3].core"),
            Direction::Neutral
        );
        assert_eq!(
            direction("results.cross_product.points[3].area"),
            Direction::Neutral
        );
        assert_eq!(
            direction("results.cross_product.n_limbs"),
            Direction::Neutral
        );
    }

    #[test]
    fn baseline_references_stay_neutral() {
        assert_eq!(direction("results.base_cycles"), Direction::Neutral);
        assert_eq!(direction("results.best_cycles"), Direction::LowerBetter);
    }
}
