//! Regenerates **Fig. 6**: combining the design spaces of two A-D
//! curves — the 5 × 5 Cartesian product of `mpn_add_n` and
//! `mpn_addmul_1` design points collapsing to 9 distinct reduced
//! instruction sets through sharing and dominance. With `--json`,
//! stdout carries a single structured run report instead of prose.

use bench::Cli;
use std::collections::BTreeSet;
use tie::insn::{CustomInsn, InsnSet};
use xobs::{Json, RunReport};

fn main() {
    let cli = Cli::parse();
    if !cli.json {
        println!("Fig. 6 — combining the design spaces of two A-D curves\n");
    }

    let add = |k: u32| CustomInsn::new("add", k, 400 * k as u64);
    let mul = |k: u32| CustomInsn::new("mul", k, 6000 * k as u64);

    // Rows: mpn_addmul_1 points; columns: mpn_add_n points.
    let rows: Vec<(String, InsnSet)> = std::iter::once(("{}".to_owned(), InsnSet::empty()))
        .chain([2u32, 4, 8, 16].iter().map(|&k| {
            (
                format!("add_{k} mul_1"),
                InsnSet::from_insns([add(k), mul(1)]),
            )
        }))
        .collect();
    let cols: Vec<(String, InsnSet)> = std::iter::once(("{}".to_owned(), InsnSet::empty()))
        .chain(
            [2u32, 4, 8, 16]
                .iter()
                .map(|&k| (format!("add_{k}"), InsnSet::from_insns([add(k)]))),
        )
        .collect();

    let mut distinct: BTreeSet<InsnSet> = BTreeSet::new();
    for (_, rset) in &rows {
        for (_, cset) in &cols {
            distinct.insert(rset.union(cset));
        }
    }
    assert_eq!(distinct.len(), 9, "the reduction must match the paper");

    if cli.json {
        let mut reduced = Vec::with_capacity(distinct.len());
        for s in &distinct {
            reduced.push(
                Json::obj()
                    .set("insns", s.to_string())
                    .set("area", s.area()),
            );
        }
        let report = RunReport::new("fig6_cartesian")
            .result("candidates", (rows.len() * cols.len()) as u64)
            .result("distinct", distinct.len() as u64)
            .result("reduced_set", reduced);
        bench::emit_report(&report);
        return;
    }

    // Header.
    print!("{:<16}", "");
    for (cn, _) in &cols {
        print!("| {cn:<14}");
    }
    println!();
    println!("{}", "-".repeat(16 + cols.len() * 16));

    for (rn, rset) in &rows {
        print!("{rn:<16}");
        for (_, cset) in &cols {
            print!("| {:<14}", rset.union(cset).to_string());
        }
        println!();
    }

    println!(
        "\n{} candidate entries reduce to {} distinct design points \
         (paper: 25 -> 9)",
        rows.len() * cols.len(),
        distinct.len()
    );
    println!("\nreduced set:");
    for s in &distinct {
        println!("  {s}  area={}", s.area());
    }
}
