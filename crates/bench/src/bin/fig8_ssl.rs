//! Regenerates **Fig. 8**: estimated speedups for SSL transactions of
//! 1 KB – 32 KB, with the workload breakdown between the public-key
//! algorithm, the symmetric algorithm and miscellaneous computations.
//!
//! Component costs are measured on the XR32 ISS: 3DES bulk cycles/byte
//! and SHA-1 MAC cycles/byte directly; the RSA-1024 handshake via
//! macro-model-metered execution (calibrated against co-simulation by
//! the §4.3 harness). With `--json`, stdout carries a single structured
//! run report instead of prose.

use bench::{Cli, Harness};
use kreg::KernelVariant;
use pubkey::modexp::ExpCache;
use pubkey::ops::MpnOps;
use pubkey::rsa::KeyPair;
use pubkey::space::ModExpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secproc::kcache;
use secproc::measure;
use secproc::simcipher::SimSha1;
use secproc::ssl::{self, SslCostModel};
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;

fn main() {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let rsa_bits = cli.pos_usize(0, 1024);
    let harness = Harness::from_env();
    let ctx = harness.flow_ctx(&config);

    if !cli.json {
        println!("Fig. 8 — estimated speedups for SSL transactions (RSA-{rsa_bits} handshake)\n");
    }

    // Bulk and MAC costs from the ISS, served from the kernel-cycle
    // cache on re-runs.
    let tdes = measure::measure_tdes_cached(&config, 6, harness.cache());
    let sha_cpb = harness.kcache.scalar(
        &kcache::key(config.fingerprint(), "sim", "fig8:sha1", 6, 0),
        || SimSha1::new(config.clone()).cycles_per_byte(6),
    );

    // Handshake: RSA private-key op, macro-model metered.
    let models =
        bench::default_models_on(rsa_bits.div_ceil(32).max(8), &harness.pool, harness.cache());
    let mut rng = StdRng::seed_from_u64(0x55E);
    let kp = KeyPair::generate(rsa_bits, &mut rng);
    let msg = mpint::Natural::random_below(&mut rng, &kp.public.n);
    let handshake = |cfg: &ModExpConfig| -> f64 {
        let mut ops = models.modeled_ops(4.0);
        let mut cache = ExpCache::new();
        let ct = kp
            .public
            .encrypt_raw(&mut ops, &msg, cfg, &mut cache)
            .expect("encrypt");
        MpnOps::<u32>::reset(&mut ops);
        kp.private
            .decrypt_raw(&mut ops, &ct, cfg, &mut cache)
            .expect("decrypt");
        MpnOps::<u32>::cycles(&ops)
    };
    let hs_base = handshake(&ModExpConfig::baseline());
    // Optimized handshake additionally benefits from the MAC/adder
    // datapaths; scale by the kernel-level gain measured for addmul.
    // The two measurements go through the context's resilient path: a
    // kernel/reference divergence is retried with reseeded stimuli,
    // falls back fault-free, and quarantines a repeat offender — in
    // which case the gain degrades to 1.0 (the macro-model handshake
    // estimate ships unscaled) and the event lands in the report's
    // `degradations` array. The cache is bypassed while injecting so a
    // campaign always exercises the kernels.
    let kernel_errors = std::cell::RefCell::new(Vec::<String>::new());
    let measure_addmul = |variant: KernelVariant| -> Option<f64> {
        match ctx.measure_kernel_cycles(variant, kreg::id::ADDMUL_1, 32, 3, 4) {
            Ok(cycles) => Some(cycles),
            Err(e) => {
                kernel_errors.borrow_mut().push(e.to_string());
                None
            }
        }
    };
    let accel_gain = {
        let key = kcache::key(config.fingerprint(), "iss", "fig8:addmul_gain", 32, 0x0304);
        let cached = if ctx.policy().injecting() {
            None
        } else {
            harness.kcache.get(&key).filter(|pair| pair.len() == 2)
        };
        let pair = cached.or_else(|| {
            let bc = measure_addmul(KernelVariant::Base)?;
            let fc = measure_addmul(KernelVariant::Accelerated {
                add_lanes: 16,
                mac_lanes: 4,
            })?;
            if !ctx.policy().injecting() {
                harness.kcache.insert(&key, vec![bc, fc]);
            }
            Some(vec![bc, fc])
        });
        match pair {
            Some(pair) => pair[0] / pair[1],
            None => {
                ctx.note_degradation(secproc::Degradation::harness(
                    "fig8",
                    "fig8:addmul_gain",
                    kreg::id::ADDMUL_1.name(),
                    kernel_errors.borrow().last().cloned().unwrap_or_default(),
                    "fallback-unit-gain",
                ));
                1.0
            }
        }
    };
    let hs_opt = handshake(&ModExpConfig::optimized()) / accel_gain;

    let base = SslCostModel {
        handshake_cycles: hs_base,
        bulk_cycles_per_byte: tdes.base_cpb,
        misc_cycles_per_byte: sha_cpb,
        misc_fixed_cycles: 2.0e6,
    };
    let opt = SslCostModel {
        handshake_cycles: hs_opt,
        bulk_cycles_per_byte: tdes.opt_cpb,
        misc_cycles_per_byte: sha_cpb,
        misc_fixed_cycles: 2.0e6,
    };

    let sizes: Vec<u64> = (0..=10).map(|i| 1024u64 << i).collect();
    let series = ssl::speedup_series(&base, &opt, &sizes);

    if cli.json {
        let components = Json::obj()
            .set("handshake_base_cycles", hs_base)
            .set("handshake_opt_cycles", hs_opt)
            .set("tdes_base_cpb", tdes.base_cpb)
            .set("tdes_opt_cpb", tdes.opt_cpb)
            .set("sha1_cpb", sha_cpb);
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("fig8_ssl")
            .with_fingerprint(config.fingerprint())
            .result("rsa_bits", rsa_bits as u64)
            .result("components", components)
            .result("series", ssl::series_to_json(&series))
            .with_kernel_errors(kernel_errors.into_inner())
            .with_degradations(ctx.degradations_json())
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }
    let _ = harness.kcache.save();
    for e in kernel_errors.into_inner() {
        eprintln!("fig8_ssl: kernel error: {e}");
    }
    for d in ctx.degradations() {
        eprintln!("fig8_ssl: degraded: {}", d.to_json());
    }

    println!("measured components:");
    println!(
        "  handshake (RSA): base {hs_base:.3e} -> opt {hs_opt:.3e} cycles ({:.1}X)",
        hs_base / hs_opt
    );
    println!(
        "  3DES bulk: base {:.1} -> opt {:.1} c/B ({:.1}X)",
        tdes.base_cpb,
        tdes.opt_cpb,
        tdes.speedup()
    );
    println!("  SHA-1 misc: {sha_cpb:.1} c/B (unaccelerated)\n");
    print!("{}", ssl::render_series(&series));

    println!(
        "\nPaper shape: ~21.8X for small (handshake-dominated) transactions,\n\
         declining toward ~3X for large (bulk/misc-dominated) ones. The paper\n\
         plots 1-32 KB; our handshake/bulk cycle ratio differs, so the same\n\
         crossover appears further out on the size axis."
    );
}
