//! `xooo_gate` — the out-of-order core's co-simulation and IPC gate.
//!
//! Runs the kreg golden-reference verification workload (every
//! register-convention kernel, both radices, a deterministic size ×
//! seed lattice) on three engines: the cycle-accurate in-order
//! pipeline, the cycle-accurate out-of-order pipeline, and the
//! pre-decoded in-order fast path. For every kernel sweep it compares
//! the end-of-sweep architectural state (final registers, whole-memory
//! digest, retired-instruction count) across all three — out-of-order
//! execution reorders *timing*, never *results* — then checks the
//! out-of-order core's timing claims: fewer simulated cycles than the
//! in-order baseline on the aggregate workload, and an IPC inside the
//! sanity window (above the in-order rate, at most the issue width).
//!
//! ```text
//! xooo_gate [--json] [passes]
//! ```
//!
//! `passes` (default 1) repeats the workload; the simulated counts are
//! pass-count-proportional and deterministic, so one pass is enough
//! for the gate and more only smooth nothing.
//!
//! Exits non-zero on any architectural divergence between the engines,
//! on any kernel error, or when a timing claim fails. Under `--json`
//! emits a schema-7 run report carrying the `core_configs` array (one
//! entry per swept core model) and per-core `*_cycles` / `*_ipc`
//! results.

use bench::{Cli, Harness};
use kreg::LibKind;
use secproc::issops::{ArchState, IssMpn};
use std::process::ExitCode;
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;
use xr32::{Fidelity, OooParams};

/// The verification lattice: operand sizes crossing lane boundaries
/// (1..=4), typical mpn operand lengths, and two larger points where
/// out-of-order overlap has room to show.
const SIZES: [usize; 10] = [1, 2, 3, 4, 8, 16, 64, 128, 256, 512];

/// One engine's pass over the whole workload.
struct EngineRun {
    /// The engine's *CoreConfigId* (`"io"`, `"ooo-…"`).
    core_id: String,
    /// `(kernel, arch32, arch16)` captured after each kernel's sweep.
    states: Vec<(&'static str, ArchState, ArchState)>,
    /// Kernel sweeps executed (kernel × radix × size).
    sweeps: u64,
    /// Retired instructions across both radix cores.
    insns: u64,
    /// Simulated cycles across both radix cores.
    cycles: u64,
    /// Rendered kernel errors (must be empty).
    errors: Vec<String>,
}

/// Runs the golden-verification workload `passes` times on the given
/// core configuration and fidelity. The stimulus stream is fixed, so
/// every engine sees byte-identical inputs.
fn run_workload(config: &CpuConfig, fidelity: Fidelity, passes: usize) -> EngineRun {
    let mut iss = IssMpn::base(config.clone());
    iss.set_fidelity(fidelity);
    let mut states = Vec::new();
    let mut sweeps = 0u64;
    let mut errors = Vec::new();
    for pass in 0..passes {
        let last = pass + 1 == passes;
        for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
            for (i, &n) in SIZES.iter().enumerate() {
                let seed = 0x600D_5EED ^ ((pass as u64) << 32) ^ (i as u64);
                if iss.verify32(desc.id, n, seed).is_ok() {
                    sweeps += 1;
                }
                if iss.verify16(desc.id, n, seed).is_ok() {
                    sweeps += 1;
                }
            }
            errors.extend(iss.take_kernel_errors().iter().map(|e| e.to_string()));
            if last {
                states.push((desc.id.name(), iss.arch_state32(), iss.arch_state16()));
            }
        }
    }
    let (c32, c16) = iss.core_cycles();
    EngineRun {
        core_id: iss.core_id(),
        states,
        sweeps,
        insns: iss.arch_state32().retired + iss.arch_state16().retired,
        cycles: c32 + c16,
        errors,
    }
}

impl EngineRun {
    /// Aggregate instructions per cycle (0 for the fast path, which
    /// models no cycles).
    fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insns as f64 / self.cycles as f64
        }
    }
}

/// The kernels whose final architectural state differs between the two
/// runs (register files, memory digests or retired counts).
fn divergent<'a>(a: &'a EngineRun, b: &EngineRun) -> Vec<&'a str> {
    a.states
        .iter()
        .zip(&b.states)
        .filter(|(x, y)| x != y)
        .map(|(x, _)| x.0)
        .collect()
}

fn main() -> ExitCode {
    let cli = Cli::parse();
    let harness = Harness::from_env();
    let passes = cli.pos_usize(0, 1).max(1);
    let io_config = CpuConfig::default();
    let ooo_config = CpuConfig::ooo();
    let issue_width = OooParams::default().issue_width as f64;

    let io = run_workload(&io_config, Fidelity::CycleAccurate, passes);
    let ooo = run_workload(&ooo_config, Fidelity::CycleAccurate, passes);
    let fast = run_workload(&io_config, Fidelity::Fast, passes);

    // Co-simulation: every kernel sweep's architectural state must be
    // bit-identical across all three engines.
    let mut violations = Vec::new();
    let vs_ooo = divergent(&io, &ooo);
    if !vs_ooo.is_empty() {
        violations.push(format!(
            "architectural divergence in-order vs out-of-order on: {}",
            vs_ooo.join(", ")
        ));
    }
    let vs_fast = divergent(&io, &fast);
    if !vs_fast.is_empty() {
        violations.push(format!(
            "architectural divergence in-order vs fast path on: {}",
            vs_fast.join(", ")
        ));
    }
    if io.sweeps != ooo.sweeps || io.insns != ooo.insns || io.sweeps != fast.sweeps {
        violations.push(format!(
            "work disagreement: io {}sw/{}in vs ooo {}sw/{}in vs fast {}sw/{}in",
            io.sweeps, io.insns, ooo.sweeps, ooo.insns, fast.sweeps, fast.insns
        ));
    }
    for e in io.errors.iter().chain(&ooo.errors).chain(&fast.errors) {
        violations.push(format!("kernel error: {e}"));
    }

    // Timing claims: the out-of-order core must beat the in-order
    // baseline on aggregate cycles, and its IPC must sit in the sanity
    // window (above the in-order rate, at most the issue width — an
    // IPC beyond the issue width means the scoreboard leaks cycles).
    if ooo.cycles >= io.cycles {
        violations.push(format!(
            "no out-of-order win: {} cycles vs in-order {}",
            ooo.cycles, io.cycles
        ));
    }
    if io.ipc() > 1.0 {
        violations.push(format!("in-order IPC {:.3} exceeds single issue", io.ipc()));
    }
    if ooo.ipc() <= io.ipc() || ooo.ipc() > issue_width {
        violations.push(format!(
            "out-of-order IPC {:.3} outside sanity window ({:.3}, {issue_width}]",
            ooo.ipc(),
            io.ipc()
        ));
    }

    if cli.json {
        let metrics = Registry::new();
        metrics.counter("xooo.sweeps").add(io.sweeps);
        metrics.counter("xooo.insns").add(io.insns);
        metrics.gauge("xooo.io_ipc").set(io.ipc());
        metrics.gauge("xooo.ooo_ipc").set(ooo.ipc());
        harness.record_metrics(&metrics);
        let report = RunReport::new("xooo_gate")
            .with_fingerprint(io_config.fingerprint())
            .result("passes", passes as u64)
            .result("kernels", io.states.len() as u64)
            .result("sweeps", io.sweeps)
            .result("insns", io.insns)
            .result("cosim_mismatches", (vs_ooo.len() + vs_fast.len()) as u64)
            .result("io_cycles", io.cycles)
            .result("ooo_cycles", ooo.cycles)
            .result("io_ipc", io.ipc())
            .result("ooo_ipc", ooo.ipc())
            .result("ooo_cycle_speedup", io.cycles as f64 / ooo.cycles as f64)
            .result(
                "violations",
                Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
            )
            .with_core_configs([&io_config, &ooo_config].map(|c| {
                Json::obj()
                    .set("id", c.core_id())
                    .set("core_area", c.core.area_gates())
            }))
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
    } else {
        println!(
            "xooo_gate — {} kernels x {} sizes x 2 radices x {passes} pass(es)",
            io.states.len(),
            SIZES.len()
        );
        println!(
            "  co-sim: {}/{} kernel sweeps bit-identical across three engines",
            io.states.len() - vs_ooo.len().max(vs_fast.len()),
            io.states.len()
        );
        for run in [&io, &ooo] {
            println!(
                "  {:<22} {:>12} cycles  {:>10} insns  IPC {:.3}",
                run.core_id,
                run.cycles,
                run.insns,
                run.ipc()
            );
        }
        println!(
            "  out-of-order cycle speedup {:.2}x (issue width {issue_width})",
            io.cycles as f64 / ooo.cycles as f64
        );
        for v in &violations {
            eprintln!("xooo_gate: VIOLATION: {v}");
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
