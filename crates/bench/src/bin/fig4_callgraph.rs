//! Regenerates **Fig. 4**: the annotated call graph of an optimized
//! modular exponentiation, with per-edge call counts and measured leaf
//! cycles.

use secproc::flow;
use xr32::config::CpuConfig;

fn main() {
    let config = CpuConfig::default();
    println!("Fig. 4 — call graph for an optimized modular exponentiation");
    println!("(leaf cycles measured on the XR32 ISS at 32 limbs = 1024 bits)\n");

    let graph = flow::fig4_call_graph(&config, 32);
    print!("{}", graph.render());

    let total = graph
        .total_cycles("decrypt")
        .expect("decrypt is the root of the example graph");
    println!("\ntotal cycles(decrypt) by Equation (1): {total:.0}");
    println!(
        "leaves for custom-instruction formulation: {:?}",
        graph.leaves().collect::<Vec<_>>()
    );
}
