//! Regenerates **Fig. 4**: the annotated call graph of an optimized
//! modular exponentiation, with per-edge call counts and measured leaf
//! cycles. With `--json`, stdout carries a single structured run report
//! instead of prose.

use bench::{Cli, Harness};
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;

fn main() {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let harness = Harness::from_env();
    let limbs = cli.pos_usize(0, 32);
    if !cli.json {
        println!("Fig. 4 — call graph for an optimized modular exponentiation");
        println!(
            "(leaf cycles measured on the XR32 ISS at {limbs} limbs = {} bits)\n",
            limbs * 32
        );
    }

    let ctx = harness.flow_ctx(&config);
    let graph = ctx.fig4_graph(limbs);
    let total = graph
        .total_cycles("decrypt")
        .expect("decrypt is the root of the example graph");
    let leaves: Vec<Json> = graph.leaves().map(Json::from).collect();

    if cli.json {
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("fig4_callgraph")
            .with_fingerprint(config.fingerprint())
            .result("limbs", limbs as u64)
            .result("total_cycles_decrypt", total)
            .result("leaves", leaves)
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }
    let _ = harness.kcache.save();

    print!("{}", graph.render());
    println!("\ntotal cycles(decrypt) by Equation (1): {total:.0}");
    println!(
        "leaves for custom-instruction formulation: {:?}",
        graph.leaves().collect::<Vec<_>>()
    );
}
