//! Regenerates **Fig. 1**: the security processing gap — MIPS required
//! for security processing vs. embedded-processor MIPS across wireless
//! generations and silicon nodes.
//!
//! The required-MIPS curve uses this platform's *measured* baseline
//! protocol cost: 3DES bulk encryption plus SHA-1 MACs, the dominant
//! per-byte work of an SSL-protected stream.

use secproc::gap;
use secproc::simcipher::SimSha1;
use secproc::{measure, platform::PlatformKind};
use xr32::config::CpuConfig;

fn main() {
    let config = CpuConfig::default();
    println!("Fig. 1 — the security processing gap");
    println!("(required MIPS = data rate x measured baseline security cycles/byte)\n");

    let tdes = measure::measure_tdes(&config, 4);
    let sha_cpb = SimSha1::new(config.clone()).cycles_per_byte(4);
    let cpb = tdes.base_cpb + sha_cpb;
    println!(
        "measured baseline cost: 3DES {:.1} c/B + SHA-1 {:.1} c/B = {:.1} c/B\n",
        tdes.base_cpb, sha_cpb, cpb
    );

    let rows = gap::trend(cpb);
    print!("{}", gap::render(&rows));

    println!(
        "\nPaper shape: the requirement curve crosses the processor curve between\n\
         2G and 3G and diverges afterwards — the gap motivating the platform."
    );
    let _ = PlatformKind::Baseline;
}
