//! Regenerates **Fig. 1**: the security processing gap — MIPS required
//! for security processing vs. embedded-processor MIPS across wireless
//! generations and silicon nodes.
//!
//! The required-MIPS curve uses this platform's *measured* baseline
//! protocol cost: 3DES bulk encryption plus SHA-1 MACs, the dominant
//! per-byte work of an SSL-protected stream. With `--json`, stdout
//! carries a single structured run report instead of prose.

use bench::{Cli, Harness};
use secproc::gap;
use secproc::kcache;
use secproc::simcipher::SimSha1;
use secproc::{measure, platform::PlatformKind};
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;

fn main() {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let harness = Harness::from_env();
    if !cli.json {
        println!("Fig. 1 — the security processing gap");
        println!("(required MIPS = data rate x measured baseline security cycles/byte)\n");
    }

    let tdes = measure::measure_tdes_cached(&config, 4, harness.cache());
    let sha_cpb = harness.kcache.scalar(
        &kcache::key(config.fingerprint(), "sim", "fig1:sha1", 4, 0),
        || SimSha1::new(config.clone()).cycles_per_byte(4),
    );
    let cpb = tdes.base_cpb + sha_cpb;
    let rows = gap::trend(cpb);

    if cli.json {
        let mut out = Vec::with_capacity(rows.len());
        for r in &rows {
            out.push(
                Json::obj()
                    .set("generation", r.point.generation)
                    .set("node_um", r.point.node_um)
                    .set("data_rate_kbps", r.point.data_rate_kbps)
                    .set("processor_mips", r.point.processor_mips)
                    .set("required_mips", r.required_mips)
                    .set("gap_factor", r.gap_factor()),
            );
        }
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("fig1_gap")
            .with_fingerprint(config.fingerprint())
            .result("tdes_base_cpb", tdes.base_cpb)
            .result("sha1_cpb", sha_cpb)
            .result("security_cpb", cpb)
            .result("trend", out)
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }
    let _ = harness.kcache.save();

    println!(
        "measured baseline cost: 3DES {:.1} c/B + SHA-1 {:.1} c/B = {:.1} c/B\n",
        tdes.base_cpb, sha_cpb, cpb
    );
    print!("{}", gap::render(&rows));

    println!(
        "\nPaper shape: the requirement curve crosses the processor curve between\n\
         2G and 3G and diverges afterwards — the gap motivating the platform."
    );
    let _ = PlatformKind::Baseline;
}
