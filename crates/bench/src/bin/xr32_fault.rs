//! `xr32-fault` — the deterministic fault-injection campaign driver.
//!
//! Sweeps campaign seeds x fault sites x register-convention kernels on
//! the XR32 ISS with golden-reference verification and the cycle-budget
//! watchdog armed, classifies every unit's outcome, then proves
//! recovery by re-running each non-clean unit fault-free. The campaign
//! is seed-reproducible: the per-unit fault stream is derived from the
//! unit's submission index, so the same seeds produce a byte-identical
//! report (`--json`, after `xr32-trace normalize-report`) at any
//! `WSP_THREADS` worker count — the property the CI fault-smoke gate
//! checks.
//!
//! ```text
//! xr32-fault [--json] [seeds] [rate_ppm] [limbs]
//! ```
//!
//! Exits non-zero when the campaign violates its resilience contract:
//! every unit must recover fault-free, an injecting campaign must fire
//! at least one fault, and verification must detect at least one
//! corruption.
//!
//! Outcomes per unit: `clean` (no fault fired), `benign` (fired but
//! results and timing match the fault-free run), `perturbed` (results
//! match, timing moved), `detected` (golden-reference divergence),
//! `timeout` (watchdog), `faulted` (simulated hardware fault),
//! `unsupported` (harness gap — always a contract violation).

use bench::{Cli, Harness};
use kreg::{id, KernelError, KernelId, KernelVariant};
use secproc::issops::IssMpn;
use std::process::ExitCode;
use xfault::{FaultSite, PlanSpec};
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;
use xr32::Fidelity;

/// One campaign measurement unit: a kernel measured once under an armed
/// single-site fault plan.
struct Unit {
    seed: u64,
    site: FaultSite,
    kernel: KernelId,
}

/// The classified result of one unit, plus its fault-free recovery run.
struct Outcome {
    seed: u64,
    site: FaultSite,
    kernel: KernelId,
    fired: u64,
    outcome: &'static str,
    recovered: bool,
}

/// The custom-result fault site needs datapaths that actually execute
/// custom instructions; the other sites target machinery every variant
/// has.
fn variant_for(site: FaultSite) -> KernelVariant {
    if site == FaultSite::CustomResult {
        KernelVariant::Accelerated {
            add_lanes: 16,
            mac_lanes: 4,
        }
    } else {
        KernelVariant::Base
    }
}

/// Stimulus seed for a unit: fixed relative to the campaign seed so the
/// armed and fault-free runs of a unit measure the same computation.
fn stimulus_seed(seed: u64) -> u64 {
    0xFA57_0000u64 ^ seed
}

fn run_unit(config: &CpuConfig, index: usize, unit: &Unit, rate_ppm: u32, limbs: usize) -> Outcome {
    let variant = variant_for(unit.site);
    let stim = stimulus_seed(unit.seed);

    let spec = PlanSpec::new(unit.seed, rate_ppm, &[unit.site]);
    let mut iss = IssMpn::with_variant(config.clone(), variant);
    iss.set_verify(true);
    iss.set_cycle_budget(xfault::DEFAULT_CYCLE_BUDGET);
    iss.set_fault_plan(spec, index as u64);
    let armed = iss.measure32(unit.kernel, limbs, stim);
    let fired = iss.faults_fired();

    // Recovery proof: a fault-free replay of the same stimuli with
    // golden verification on. Pure correctness, so it rides the
    // pre-decoded fast path.
    let mut clean = IssMpn::with_variant(config.clone(), variant);
    clean.set_fidelity(Fidelity::Fast);
    clean.set_cycle_budget(xfault::DEFAULT_CYCLE_BUDGET);
    let recovered = clean.verify32(unit.kernel, limbs, stim).is_ok();

    let outcome = match (&armed, fired) {
        (Ok(_), 0) => "clean",
        (Ok(cycles), _) => {
            // Separating benign from timing-perturbing injections needs a
            // fault-free cycle count, so only this branch pays for a
            // cycle-accurate reference run.
            let mut reference = IssMpn::with_variant(config.clone(), variant);
            reference.set_verify(true);
            reference.set_cycle_budget(xfault::DEFAULT_CYCLE_BUDGET);
            match reference.measure32(unit.kernel, limbs, stim) {
                Ok(r) if r == *cycles => "benign",
                _ => "perturbed",
            }
        }
        (Err(KernelError::Divergence { .. }), _) => "detected",
        (Err(KernelError::Timeout { .. }), _) => "timeout",
        (Err(KernelError::Faulted { .. }), _) => "faulted",
        (Err(_), _) => "unsupported",
    };

    Outcome {
        seed: unit.seed,
        site: unit.site,
        kernel: unit.kernel,
        fired,
        outcome,
        recovered,
    }
}

fn main() -> ExitCode {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let harness = Harness::from_env();
    let seeds = cli.pos_usize(0, 4) as u64;
    let rate_ppm = cli.pos_usize(1, 2000) as u32;
    let limbs = cli.pos_usize(2, 16);

    let mut units = Vec::new();
    for seed in 1..=seeds {
        for site in FaultSite::ALL {
            for kernel in id::MPN {
                units.push(Unit { seed, site, kernel });
            }
        }
    }

    // The worker pool merges in submission order and each unit's fault
    // stream is its submission index: the outcome vector is identical
    // for any WSP_THREADS.
    let outcomes = harness
        .pool
        .par_map(&units, |i, u| run_unit(&config, i, u, rate_ppm, limbs));

    let count = |label: &str| outcomes.iter().filter(|o| o.outcome == label).count();
    let clean = count("clean");
    let benign = count("benign");
    let perturbed = count("perturbed");
    let detected = count("detected");
    let timeout = count("timeout");
    let faulted = count("faulted");
    let unsupported = count("unsupported");
    let caught = detected + timeout + faulted;
    let fired_units = outcomes.iter().filter(|o| o.fired > 0).count();
    let recovered = outcomes.iter().filter(|o| o.recovered).count();
    let detection_rate_pct = if fired_units == 0 {
        0.0
    } else {
        100.0 * caught as f64 / fired_units as f64
    };
    let recovery_rate_pct = 100.0 * recovered as f64 / outcomes.len().max(1) as f64;

    // The campaign's resilience contract.
    let mut violations = Vec::new();
    if recovered != outcomes.len() {
        violations.push(format!(
            "recovery: {recovered}/{} units re-ran fault-free",
            outcomes.len()
        ));
    }
    if rate_ppm > 0 && fired_units == 0 {
        violations.push("no unit fired a fault despite a non-zero rate".to_owned());
    }
    if rate_ppm > 0 && detected == 0 {
        violations.push("verification detected no corruption".to_owned());
    }
    if unsupported > 0 {
        violations.push(format!("{unsupported} units hit harness gaps"));
    }

    if cli.json {
        let campaign: Vec<Json> = outcomes
            .iter()
            .map(|o| {
                Json::obj()
                    .set("seed", o.seed)
                    .set("site", o.site.name())
                    .set("kernel", o.kernel.name())
                    .set("variant", variant_for(o.site).tag())
                    .set("fired", o.fired)
                    .set("outcome", o.outcome)
                    .set("recovered", if o.recovered { 1u64 } else { 0u64 })
            })
            .collect();
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("xr32_fault")
            .with_fingerprint(config.fingerprint())
            .result("seeds", seeds)
            .result("rate_ppm", rate_ppm as u64)
            .result("limbs", limbs as u64)
            .result("units", outcomes.len() as u64)
            .result("fired_units", fired_units as u64)
            .result("clean", clean as u64)
            .result("benign", benign as u64)
            .result("perturbed", perturbed as u64)
            .result("detected", detected as u64)
            .result("timeout", timeout as u64)
            .result("faulted", faulted as u64)
            .result("detection_rate_pct", detection_rate_pct)
            .result("recovery_rate_pct", recovery_rate_pct)
            .result(
                "violations",
                Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
            )
            .with_fault_campaign(campaign)
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
    } else {
        println!(
            "xr32-fault — {seeds} seeds x 4 sites x {} kernels at {rate_ppm} ppm, {limbs} limbs",
            id::MPN.len()
        );
        println!(
            "  units {:4}   fired {:4}   clean {clean}",
            outcomes.len(),
            fired_units
        );
        println!(
            "  caught: detected {detected}  timeout {timeout}  faulted {faulted}  \
             (detection rate {detection_rate_pct:.1}% of fired units)"
        );
        println!("  survived: benign {benign}  perturbed {perturbed}");
        println!(
            "  recovery: {recovered}/{} fault-free re-runs ok ({recovery_rate_pct:.1}%)",
            outcomes.len()
        );
        for v in &violations {
            eprintln!("xr32-fault: VIOLATION: {v}");
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
