//! `fastpath_gate` — the dual-fidelity co-simulation and speedup gate.
//!
//! Runs the kreg golden-reference verification workload (every
//! register-convention kernel, both radices, a deterministic size ×
//! seed lattice) twice: once on the pre-decoded fast path and once on
//! the cycle-accurate pipeline. For every kernel sweep it compares the
//! end-of-sweep architectural state (final registers, whole-memory
//! digest, retired-instruction count) between the two engines, then
//! checks that the fast path beat the cycle-accurate engine by at
//! least the required wall-clock factor.
//!
//! ```text
//! fastpath_gate [--json] [min_speedup] [passes]
//! ```
//!
//! `min_speedup` (default 3) is the gate bound — pass `0` to skip the
//! timing check (co-simulation agreement is always enforced). `passes`
//! (default 3) repeats the workload to stabilize the timing.
//!
//! Exits non-zero on any architectural divergence between the engines,
//! on any kernel error, or when the measured speedup falls below the
//! bound. Under `--json` emits a schema-6 run report carrying the
//! `verify.fast_path.{sweeps,insns,wall_ms}` metrics and a
//! `fidelity_summary` envelope field.

use bench::{Cli, Harness};
use kreg::LibKind;
use secproc::issops::{ArchState, IssMpn};
use std::process::ExitCode;
use std::time::Instant;
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;
use xr32::Fidelity;

/// The verification lattice: operand sizes crossing lane boundaries
/// (1..=4), typical mpn operand lengths, and two larger points where
/// the interpreter overhead dominates.
const SIZES: [usize; 10] = [1, 2, 3, 4, 8, 16, 64, 128, 256, 512];

/// One engine's pass over the whole workload.
struct EngineRun {
    /// `(kernel, arch32, arch16)` captured after each kernel's sweep.
    states: Vec<(&'static str, ArchState, ArchState)>,
    /// Kernel sweeps executed (kernel × radix × size).
    sweeps: u64,
    /// Retired instructions across both cores.
    insns: u64,
    /// Rendered kernel errors (must be empty).
    errors: Vec<String>,
    wall_ms: f64,
}

/// Runs the golden-verification workload `passes` times on `fidelity`.
/// The stimulus stream is fixed, so both engines and every pass see
/// byte-identical inputs.
fn run_workload(config: &CpuConfig, fidelity: Fidelity, passes: usize) -> EngineRun {
    // One provider per engine run: library assembly and core setup are
    // paid once, so the timing compares execution engines, not setup.
    let mut iss = IssMpn::base(config.clone());
    iss.set_fidelity(fidelity);
    let mut states = Vec::new();
    let mut sweeps = 0u64;
    let mut errors = Vec::new();
    let mut sweep_once = |iss: &mut IssMpn, pass: usize, states: Option<&mut Vec<_>>| {
        let mut captured = states;
        for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
            for (i, &n) in SIZES.iter().enumerate() {
                let seed = 0x600D_5EED ^ ((pass as u64) << 32) ^ (i as u64);
                if iss.verify32(desc.id, n, seed).is_ok() {
                    sweeps += 1;
                }
                if iss.verify16(desc.id, n, seed).is_ok() {
                    sweeps += 1;
                }
            }
            errors.extend(iss.take_kernel_errors().iter().map(|e| e.to_string()));
            if let Some(states) = captured.as_deref_mut() {
                states.push((desc.id.name(), iss.arch_state32(), iss.arch_state16()));
            }
        }
    };
    // Untimed co-simulation pass: the per-kernel architectural-state
    // digests are host hashing work common to both engines, and would
    // otherwise drown the execution-engine difference being measured.
    sweep_once(&mut iss, passes, Some(&mut states));
    let t0 = Instant::now();
    for pass in 0..passes {
        sweep_once(&mut iss, pass, None);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let insns = iss.arch_state32().retired + iss.arch_state16().retired;
    EngineRun {
        states,
        sweeps,
        insns,
        errors,
        wall_ms,
    }
}

fn main() -> ExitCode {
    let cli = Cli::parse();
    let config = CpuConfig::default();
    let harness = Harness::from_env();
    let min_speedup = cli.pos_usize(0, 3);
    let passes = cli.pos_usize(1, 3).max(1);

    let fast = run_workload(&config, Fidelity::Fast, passes);
    let accurate = run_workload(&config, Fidelity::CycleAccurate, passes);

    // Co-simulation: every kernel sweep's architectural state must be
    // bit-identical between the engines.
    let mut violations = Vec::new();
    let mismatches: Vec<&str> = fast
        .states
        .iter()
        .zip(&accurate.states)
        .filter(|(f, a)| f != a)
        .map(|(f, _)| f.0)
        .collect();
    if !mismatches.is_empty() {
        violations.push(format!(
            "architectural divergence fast vs accurate on: {}",
            mismatches.join(", ")
        ));
    }
    if fast.sweeps != accurate.sweeps || fast.insns != accurate.insns {
        violations.push(format!(
            "work disagreement: fast {}sw/{}in vs accurate {}sw/{}in",
            fast.sweeps, fast.insns, accurate.sweeps, accurate.insns
        ));
    }
    for e in fast.errors.iter().chain(&accurate.errors) {
        violations.push(format!("kernel error: {e}"));
    }
    let speedup = if fast.wall_ms > 0.0 {
        accurate.wall_ms / fast.wall_ms
    } else {
        f64::INFINITY
    };
    if min_speedup > 0 && speedup < min_speedup as f64 {
        violations.push(format!(
            "fast path speedup {speedup:.2}x below required {min_speedup}x \
             (fast {:.2}ms vs accurate {:.2}ms)",
            fast.wall_ms, accurate.wall_ms
        ));
    }

    if cli.json {
        let metrics = Registry::new();
        metrics.counter("verify.fast_path.sweeps").add(fast.sweeps);
        metrics.counter("verify.fast_path.insns").add(fast.insns);
        metrics.gauge("verify.fast_path.wall_ms").set(fast.wall_ms);
        metrics
            .gauge("verify.accurate.wall_ms")
            .set(accurate.wall_ms);
        harness.record_metrics(&metrics);
        let report = RunReport::new("fastpath_gate")
            .with_fingerprint(config.fingerprint())
            .result("min_speedup", min_speedup as u64)
            .result("passes", passes as u64)
            .result("kernels", fast.states.len() as u64)
            .result("sweeps", fast.sweeps)
            .result("insns", fast.insns)
            .result("cosim_mismatches", mismatches.len() as u64)
            .result("fast_wall_ms", fast.wall_ms)
            .result("accurate_wall_ms", accurate.wall_ms)
            .result("fast_path_speedup", speedup)
            .result(
                "violations",
                Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
            )
            .with_fidelity_summary(
                Json::obj()
                    .set(
                        "fast",
                        Json::obj()
                            .set("sweeps", fast.sweeps)
                            .set("insns", fast.insns),
                    )
                    .set(
                        "accurate",
                        Json::obj()
                            .set("sweeps", accurate.sweeps)
                            .set("insns", accurate.insns),
                    ),
            )
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
    } else {
        println!(
            "fastpath_gate — {} kernels x {} sizes x 2 radices x {passes} passes",
            fast.states.len(),
            SIZES.len()
        );
        println!(
            "  co-sim: {}/{} kernel sweeps bit-identical",
            fast.states.len() - mismatches.len(),
            fast.states.len()
        );
        println!(
            "  fast     {:8.2}ms  {:>10} insns  {} sweeps",
            fast.wall_ms, fast.insns, fast.sweeps
        );
        println!(
            "  accurate {:8.2}ms  {:>10} insns  {} sweeps",
            accurate.wall_ms, accurate.insns, accurate.sweeps
        );
        println!("  speedup  {speedup:8.2}x  (required >= {min_speedup}x)");
        for v in &violations {
            eprintln!("fastpath_gate: VIOLATION: {v}");
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
