//! Regenerates **§4.3**: algorithm design space exploration — all 450
//! modular-exponentiation candidates evaluated with macro-models, a
//! sample re-evaluated by full ISS co-simulation, and the resulting
//! efficiency/accuracy numbers (paper: 1407× faster on average, 11.8 %
//! mean absolute error) — then widens the space along the second
//! hardware axis: the cross-product (core model × accelerator level)
//! lattice, sweeping every accelerator level on both the in-order
//! baseline and the out-of-order core and Pareto-filtering the union
//! over (area, cycles). With `--json`, stdout carries a single
//! structured run report — including the
//! `flow.*`/`charact.*`/`space.*` metrics of the metered methodology
//! phases, the schema-5 `spans` tree, the schema-7 `core_configs`
//! array and the schema-8 `job` stanza — instead of prose.
//!
//! Since the serving layer landed, this binary is a thin shell around
//! [`secproc::job::JobSpec::run`]: the arguments parse into the same
//! `explore` job spec the `xserve` daemon accepts over its socket, so
//! a CLI run and a daemon run of one spec produce byte-identical
//! normalized reports by construction.
//!
//! Characterization, exploration and co-simulation run on the
//! `WSP_THREADS`-sized worker pool, with ISS measurement units served
//! from the persistent kernel-cycle cache (`$WSP_KCACHE`, default
//! `target/kcache.json`). The simulated results are identical for any
//! thread count and cache state; only `wall_ms` and friends vary.

use bench::{Cli, Harness};
use secproc::job::JobSpec;
use xfault::PlanSpec;
use xobs::Json;

fn main() {
    let cli = Cli::parse();
    let bits = cli.pos_usize(0, 512);
    let cosim_samples = cli.pos_usize(1, 6);
    let mut spec = JobSpec::explore(bits, cosim_samples);
    spec.faults = match PlanSpec::from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("xfault: ignoring malformed WSP_FAULTS: {e}");
            None
        }
    };

    let harness = Harness::from_env();
    let report = match spec.run(&harness.job_env()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sec43_exploration: job failed ({}): {e}", e.code());
            std::process::exit(1);
        }
    };
    let _ = harness.kcache.save();

    if cli.json {
        bench::emit_report(&report);
        return;
    }

    // Prose mode: a condensed summary off the structured report.
    let json = report.to_json();
    let results = json.get("results").expect("report carries results");
    let f = |key: &str| results.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let s = |key: &str| {
        results
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    println!("§4.3 — algorithm design space exploration ({bits}-bit modular exponentiation)\n");
    println!(
        "explored {} candidates; best {} at {:.3e} cycles",
        f("candidates_evaluated"),
        s("best_config"),
        f("best_cycles"),
    );
    println!(
        "baseline {:.3e} cycles — best is {:.1}X faster algorithmically",
        f("baseline_cycles"),
        f("algorithmic_speedup"),
    );
    if let Some(samples) = results.get("cosim_samples").and_then(Json::as_arr) {
        println!(
            "\nISS co-simulation of {} sampled candidates:",
            samples.len()
        );
        for sample in samples {
            println!(
                "  {:<40} est {:>12.3e}  cosim {:>12.3e}  err {:>5.1}%",
                sample.get("config").and_then(Json::as_str).unwrap_or("?"),
                sample
                    .get("estimated_cycles")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                sample
                    .get("cosim_cycles")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                sample
                    .get("error_pct")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
            );
        }
    }
    println!(
        "\nmean |error| {:.1}% (paper: 11.8%); mean estimation speedup {:.0}x (paper: 1407x)",
        f("mean_abs_error_pct"),
        f("mean_estimation_speedup"),
    );
    if let Some(xp) = results.get("cross_product") {
        let n_points = xp
            .get("points")
            .and_then(Json::as_arr)
            .map_or(0, |p| p.len());
        println!(
            "cross-product (core × accelerator) at {} limbs: Pareto front holds {} of {} points",
            xp.get("n_limbs").and_then(Json::as_f64).unwrap_or(f64::NAN),
            xp.get("pareto_front_size")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            n_points,
        );
    }
    println!(
        "wall {:.0} ms on {} worker(s); memo cache {:.0}% hits ({} entries)",
        harness.wall_ms(),
        harness.pool.threads(),
        harness.kcache.hit_rate() * 100.0,
        harness.kcache.len()
    );
}
