//! Regenerates **§4.3**: algorithm design space exploration — all 450
//! modular-exponentiation candidates evaluated with macro-models, a
//! sample re-evaluated by full ISS co-simulation, and the resulting
//! efficiency/accuracy numbers (paper: 1407× faster on average, 11.8 %
//! mean absolute error) — then widens the space along the second
//! hardware axis: the cross-product (core model × accelerator level)
//! lattice, sweeping every accelerator level on both the in-order
//! baseline and the out-of-order core and Pareto-filtering the union
//! over (area, cycles). With `--json`, stdout carries a single
//! structured run report — including the
//! `flow.*`/`charact.*`/`space.*` metrics of the metered methodology
//! phases, the schema-5 `spans` tree (one `flow` root over
//! characterization, exploration, the co-simulated samples and the
//! cross-product sweep) and the schema-7 `core_configs` array —
//! instead of prose.
//!
//! Characterization, exploration and co-simulation run on the
//! `WSP_THREADS`-sized worker pool, with ISS measurement units served
//! from the persistent kernel-cycle cache (`$WSP_KCACHE`, default
//! `target/kcache.json`). The simulated results are identical for any
//! thread count and cache state; only `wall_ms` and friends vary.

use bench::{Cli, Harness};
use pubkey::space::ModExpConfig;
use secproc::flow;
use std::time::Instant;
use xobs::{Json, Registry, RunReport};
use xr32::config::CpuConfig;

fn main() {
    let cli = Cli::parse();
    let bits = cli.pos_usize(0, 512);
    let cosim_samples = cli.pos_usize(1, 6);
    let config = CpuConfig::default();
    let metrics = Registry::new();
    let harness = Harness::from_env();
    let ctx = harness.flow_ctx(&config).with_metrics(&metrics);

    if !cli.json {
        println!("§4.3 — algorithm design space exploration ({bits}-bit modular exponentiation)\n");
    }

    // Phase 1: characterization (one-time cost).
    let flow_span = harness.spans().enter("flow");
    let t0 = Instant::now();
    let models = ctx.characterize(
        (bits / 32).max(8),
        &macromodel::charact::CharactOptions {
            train_samples: 24,
            validation_points: 8,
        },
    );
    let charact_time = t0.elapsed();
    if !cli.json {
        println!(
            "characterization: {} models fitted in {:.2?} on {} worker(s); mean |err| {:.1}% \
             (paper: 11.8%)",
            models.quality.len(),
            charact_time,
            harness.pool.threads(),
            models.mean_abs_error_pct()
        );
        if let Some(q) = models.quality.get(&(kreg::id::SHA1.name(), 32)) {
            println!(
                "  incl. block kernel {}: |err| {:.1}% over 1..4-block stimuli",
                kreg::id::SHA1,
                q.mae_pct
            );
        }
    }

    // Phase 2: macro-model exploration of the full lattice.
    let result = ctx
        .explore(&models, bits, 4.0)
        .expect("all 450 configs run");
    if !cli.json {
        println!(
            "\nexplored {} candidates in {:.2?} ({:.2?} per candidate)",
            result.evaluated,
            result.elapsed,
            result.elapsed / result.evaluated as u32
        );
        println!("\ntop 5 candidates (estimated cycles):");
        for c in result.ranked.iter().take(5) {
            println!("  {:>14.3e}  {}", c.cycles, c.config);
        }
    }
    let baseline = result
        .ranked
        .iter()
        .find(|c| c.config == ModExpConfig::baseline())
        .expect("baseline is in the lattice");
    if !cli.json {
        println!(
            "\nbaseline {} at {:.3e} cycles — best is {:.1}X faster algorithmically",
            baseline.config,
            baseline.cycles,
            baseline.cycles / result.best().cycles
        );
    }

    // The slow reference: co-simulate a handful of candidates (the
    // paper could only afford six in 66 CPU-hours).
    if !cli.json {
        println!("\nISS co-simulation of {cosim_samples} sampled candidates:");
    }
    let step = result.ranked.len() / cosim_samples.max(1);
    let mut errors = Vec::new();
    let mut speedups = Vec::new();
    let mut samples = Vec::new();
    for i in 0..cosim_samples {
        let cand = &result.ranked[i * step];
        let t = Instant::now();
        let cosim = ctx
            .cosimulate(&models, &cand.config, bits, 4.0)
            .expect("candidate co-simulates");
        let cosim_time = t.elapsed();
        let t = Instant::now();
        // Re-run the macro-model estimate to time it fairly.
        let _ = flow::explore_single(&models, &cand.config, bits, 4.0);
        let est_time = t.elapsed().max(std::time::Duration::from_nanos(1));
        let err = ((cand.cycles - cosim) / cosim).abs() * 100.0;
        let speedup = cosim_time.as_secs_f64() / est_time.as_secs_f64();
        metrics.histogram("flow.model_error_pct").observe(err);
        if !cli.json {
            println!(
                "  {:<40} est {:>12.3e}  cosim {:>12.3e}  err {:>5.1}%  est {:.0}x faster",
                cand.config.to_string(),
                cand.cycles,
                cosim,
                err,
                speedup
            );
        }
        samples.push(
            Json::obj()
                .set("config", cand.config.to_string())
                .set("estimated_cycles", cand.cycles)
                .set("cosim_cycles", cosim)
                .set("error_pct", err)
                .set("estimation_speedup", speedup),
        );
        errors.push(err);
        speedups.push(speedup);
    }
    let mae = errors.iter().sum::<f64>() / errors.len() as f64;
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;

    // Phase 4: the cross-product (core model × accelerator level)
    // lattice. Each core configuration contributes one axis; the union
    // is Pareto-filtered over (area, cycles).
    let ooo_config = CpuConfig::ooo();
    let ctx_ooo = harness.flow_ctx(&ooo_config).with_metrics(&metrics);
    let xprod_n = (bits / 32).max(8);
    let mut points = ctx.cross_product_axis(xprod_n);
    points.extend(ctx_ooo.cross_product_axis(xprod_n));
    let front_size = flow::mark_pareto_front(&mut points);
    flow_span.end();
    harness.record_metrics(&metrics);
    if !cli.json {
        println!("\ncross-product (core × accelerator) design space at {xprod_n} limbs:");
        for p in &points {
            println!(
                "  {:<22} {:<12} area {:>8} GE  cycles {:>10.0}{}",
                p.core,
                p.level,
                p.area,
                p.cycles,
                if p.on_front { "  <- front" } else { "" },
            );
        }
        println!(
            "Pareto front holds {front_size} of {} points across both core models",
            points.len()
        );
    }

    if cli.json {
        let report = RunReport::new("sec43_exploration")
            .with_fingerprint(config.fingerprint())
            .result("bits", bits as u64)
            .result("candidates_evaluated", result.evaluated as u64)
            .result("best_config", result.best().config.to_string())
            .result("best_cycles", result.best().cycles)
            .result("baseline_cycles", baseline.cycles)
            .result(
                "algorithmic_speedup",
                baseline.cycles / result.best().cycles,
            )
            .result("cosim_samples", samples)
            .result("mean_abs_error_pct", mae)
            .result("mean_estimation_speedup", mean_speedup)
            .result(
                "cross_product",
                Json::obj()
                    .set("n_limbs", xprod_n as u64)
                    .set(
                        "points",
                        Json::Arr(points.iter().map(|p| p.to_json()).collect()),
                    )
                    .set("pareto_front_size", front_size as u64),
            )
            .with_core_configs([&config, &ooo_config].map(|c| {
                Json::obj()
                    .set("id", c.core_id())
                    .set("core_area", c.core.area_gates())
            }))
            .with_degradations(ctx.degradations_json())
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }

    let _ = harness.kcache.save();
    println!(
        "\nmean |error| {mae:.1}% (paper: 11.8%); mean estimation speedup {mean_speedup:.0}x \
         (paper: 1407x)"
    );
    println!(
        "wall {:.0} ms on {} worker(s); memo cache {:.0}% hits ({} entries)",
        harness.wall_ms(),
        harness.pool.threads(),
        harness.kcache.hit_rate() * 100.0,
        harness.kcache.len()
    );
}
