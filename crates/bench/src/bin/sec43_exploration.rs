//! Regenerates **§4.3**: algorithm design space exploration — all 450
//! modular-exponentiation candidates evaluated with macro-models, a
//! sample re-evaluated by full ISS co-simulation, and the resulting
//! efficiency/accuracy numbers (paper: 1407× faster on average, 11.8 %
//! mean absolute error).

use pubkey::space::ModExpConfig;
use secproc::flow;
use secproc::issops::KernelVariant;
use std::time::Instant;
use xr32::config::CpuConfig;

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let cosim_samples: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let config = CpuConfig::default();

    println!("§4.3 — algorithm design space exploration ({bits}-bit modular exponentiation)\n");

    // Phase 1: characterization (one-time cost).
    let t0 = Instant::now();
    let models = bench::default_models((bits / 32).max(8));
    let charact_time = t0.elapsed();
    println!(
        "characterization: {} models fitted in {:.2?}; mean |err| {:.1}% \
         (paper: 11.8%)",
        models.quality.len(),
        charact_time,
        models.mean_abs_error_pct()
    );

    // Phase 2: macro-model exploration of the full lattice.
    let result = flow::explore_modexp(&models, bits, 4.0).expect("all 450 configs run");
    println!(
        "\nexplored {} candidates in {:.2?} ({:.2?} per candidate)",
        result.evaluated,
        result.elapsed,
        result.elapsed / result.evaluated as u32
    );
    println!("\ntop 5 candidates (estimated cycles):");
    for c in result.ranked.iter().take(5) {
        println!("  {:>14.3e}  {}", c.cycles, c.config);
    }
    let baseline = result
        .ranked
        .iter()
        .find(|c| c.config == ModExpConfig::baseline())
        .expect("baseline is in the lattice");
    println!(
        "\nbaseline {} at {:.3e} cycles — best is {:.1}X faster algorithmically",
        baseline.config,
        baseline.cycles,
        baseline.cycles / result.best().cycles
    );

    // The slow reference: co-simulate a handful of candidates (the
    // paper could only afford six in 66 CPU-hours).
    println!("\nISS co-simulation of {cosim_samples} sampled candidates:");
    let step = result.ranked.len() / cosim_samples.max(1);
    let mut errors = Vec::new();
    let mut speedups = Vec::new();
    for i in 0..cosim_samples {
        let cand = &result.ranked[i * step];
        let t = Instant::now();
        let cosim =
            flow::cosimulate_candidate(&config, KernelVariant::Base, &cand.config, bits, 4.0)
                .expect("candidate co-simulates");
        let cosim_time = t.elapsed();
        let t = Instant::now();
        // Re-run the macro-model estimate to time it fairly.
        let _ = flow::explore_single(&models, &cand.config, bits, 4.0);
        let est_time = t.elapsed().max(std::time::Duration::from_nanos(1));
        let err = ((cand.cycles - cosim) / cosim).abs() * 100.0;
        let speedup = cosim_time.as_secs_f64() / est_time.as_secs_f64();
        println!(
            "  {:<40} est {:>12.3e}  cosim {:>12.3e}  err {:>5.1}%  est {:.0}x faster",
            cand.config.to_string(),
            cand.cycles,
            cosim,
            err,
            speedup
        );
        errors.push(err);
        speedups.push(speedup);
    }
    let mae = errors.iter().sum::<f64>() / errors.len() as f64;
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "\nmean |error| {mae:.1}% (paper: 11.8%); mean estimation speedup {mean_speedup:.0}x \
         (paper: 1407x)"
    );
}
