//! `xr32-trace` — record, replay and inspect XR32 binary traces.
//!
//! ```text
//! xr32-trace record <des|aes|aes-accel|rsa> <out.xtrace> [n]
//!     Run a workload with a streaming trace writer attached and save
//!     the compact binary trace. `n` is blocks for ciphers (default 2)
//!     or RSA modulus bits (default 128 — file traces of full-size
//!     co-simulations are huge; see `rsa-attrib`).
//! xr32-trace flame <in.xtrace>
//!     Replay the trace into folded-stack lines (flamegraph input).
//! xr32-trace summary <in.xtrace> [top_n]
//!     Replay into the top-N hot-function report plus event tallies.
//! xr32-trace cache <in.xtrace>
//!     I/D-cache hit/miss tallies reconstructed from the trace.
//! xr32-trace rsa-attrib [bits]
//!     Full RSA-CRT co-simulation (default 1024-bit) with an in-memory
//!     attribution sink — no trace file — verifying that the inclusive
//!     root of the folded profile equals total ISS cycles exactly.
//! xr32-trace check-report <file.json|->
//!     Validate a `--json` run report against the xobs schema
//!     (including the schema-5 `spans` tree: monotone sequence
//!     intervals, strict nesting, inclusive cycle rollups).
//! xr32-trace normalize-report <file.json|->
//!     Print the report with every host-timing-dependent field
//!     (`wall_ms`, `threads`, `memo_hit_rate`, estimation speedups,
//!     `xpar.*`/`kcache.*` metrics, span wall stamps and `wall_only`
//!     worker spans) stripped, so two runs of the same workload diff
//!     byte-for-byte.
//! xr32-trace spans <file.json|->
//!     Render the report's span tree as indented text (cycles, tasks,
//!     wall time, attrs, `!`-prefixed events). Non-zero exit when the
//!     report carries no spans — the CI span-smoke gate.
//! xr32-trace chrome <file.json|->
//!     Convert the report's span tree to Chrome trace-event JSON
//!     (load in Perfetto or chrome://tracing); deterministic spans on
//!     track 1, per-worker wall spans on tracks 2+.
//! ```

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Read};
use std::process::ExitCode;
use std::rc::Rc;

use mpint::Natural;
use pubkey::modexp::ExpCache;
use pubkey::rsa::KeyPair;
use pubkey::space::ModExpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secproc::issops::{IssMpn, KernelVariant};
use secproc::simcipher::{SimAes, SimDes, Variant};
use xobs::trace::Shared;
use xobs::{read_trace, Attribution, BinaryTraceWriter, EventStats, OwnedEvent};
use xr32::config::CpuConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage: xr32-trace <command>\n\
         \x20 record <des|aes|aes-accel|rsa> <out.xtrace> [n]\n\
         \x20 flame <in.xtrace>\n\
         \x20 summary <in.xtrace> [top_n]\n\
         \x20 cache <in.xtrace>\n\
         \x20 rsa-attrib [bits]\n\
         \x20 check-report <file.json|->\n\
         \x20 normalize-report <file.json|->\n\
         \x20 spans <file.json|->\n\
         \x20 chrome <file.json|->"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return usage(),
    };
    match cmd {
        "record" => match (args.get(1), args.get(2)) {
            (Some(workload), Some(path)) => {
                let n = args.get(3).and_then(|s| s.parse().ok());
                record(workload, path, n)
            }
            _ => usage(),
        },
        "flame" => match args.get(1) {
            Some(path) => {
                let events = load(path);
                let mut attr = Attribution::new();
                xobs::bintrace::replay(&events, &mut attr);
                print!("{}", attr.folded());
                ExitCode::SUCCESS
            }
            None => usage(),
        },
        "summary" => match args.get(1) {
            Some(path) => {
                let top = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
                summary(&load(path), top)
            }
            None => usage(),
        },
        "cache" => match args.get(1) {
            Some(path) => {
                let mut stats = EventStats::new();
                xobs::bintrace::replay(&load(path), &mut stats);
                for (name, t) in [("icache", &stats.icache), ("dcache", &stats.dcache)] {
                    println!(
                        "{name}: {} hits, {} misses ({:.1}% hit rate)",
                        t.hits,
                        t.misses,
                        100.0 * t.hit_rate()
                    );
                }
                ExitCode::SUCCESS
            }
            None => usage(),
        },
        "rsa-attrib" => {
            let bits = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
            rsa_attrib(bits)
        }
        "check-report" => match args.get(1) {
            Some(path) => check_report(path),
            None => usage(),
        },
        "normalize-report" => match args.get(1) {
            Some(path) => normalize_report(path),
            None => usage(),
        },
        "spans" => match args.get(1) {
            Some(path) => spans_cmd(path),
            None => usage(),
        },
        "chrome" => match args.get(1) {
            Some(path) => chrome_cmd(path),
            None => usage(),
        },
        _ => usage(),
    }
}

fn load(path: &str) -> Vec<OwnedEvent> {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("xr32-trace: cannot open {path}: {e}");
        std::process::exit(1);
    });
    read_trace(file).unwrap_or_else(|e| {
        eprintln!("xr32-trace: cannot decode {path}: {e}");
        std::process::exit(1);
    })
}

fn record(workload: &str, path: &str, n: Option<usize>) -> ExitCode {
    let config = CpuConfig::default();
    let out = BufWriter::new(File::create(path).unwrap_or_else(|e| {
        eprintln!("xr32-trace: cannot create {path}: {e}");
        std::process::exit(1);
    }));
    let mut writer = BinaryTraceWriter::new(out).expect("header writes");

    match workload {
        "des" => {
            let blocks = n.unwrap_or(2);
            let mut sim = SimDes::new(config, Variant::Base, *b"deskey!!");
            let mut x = 0x0123_4567_89ab_cdefu64;
            for _ in 0..blocks {
                let (out, _) = sim.crypt_block_traced(x, false, Some(&mut writer));
                x = out;
            }
        }
        "aes" | "aes-accel" => {
            let blocks = n.unwrap_or(2);
            let variant = if workload == "aes" {
                Variant::Base
            } else {
                Variant::Accelerated
            };
            let mut sim = SimAes::new(config, variant, b"paper-aes-key128");
            let mut block = *b"0123456789abcdef";
            for _ in 0..blocks {
                let (out, _) = sim.encrypt_block_traced(&block, Some(&mut writer));
                block = out;
            }
        }
        "rsa" => {
            let bits = n.unwrap_or(128);
            let shared = Rc::new(RefCell::new(writer));
            let mut iss = IssMpn::with_variant(
                config,
                KernelVariant::Accelerated {
                    add_lanes: 16,
                    mac_lanes: 4,
                },
            );
            iss.set_verify(false);
            iss.set_trace_sink(Some(Box::new(Shared::new(shared.clone()))));
            run_rsa_crt(&mut iss, bits);
            iss.set_trace_sink(None);
            writer = Rc::try_unwrap(shared)
                .unwrap_or_else(|_| unreachable!("provider dropped its sink handle"))
                .into_inner();
        }
        _ => return usage(),
    }

    let events = writer.events_written();
    match writer.finish() {
        Ok(_) => {
            eprintln!("wrote {events} events to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xr32-trace: write to {path} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One RSA-CRT encrypt + decrypt round on the co-simulating provider.
fn run_rsa_crt(iss: &mut IssMpn, bits: usize) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(0x45A);
    let kp = KeyPair::generate(bits, &mut rng);
    let msg = Natural::random_below(&mut rng, &kp.public.n);
    let cfg = ModExpConfig::optimized();
    let mut cache = ExpCache::new();
    let ct = kp
        .public
        .encrypt_raw(iss, &msg, &cfg, &mut cache)
        .expect("encrypt runs");
    let pt = kp
        .private
        .decrypt_raw(iss, &ct, &cfg, &mut cache)
        .expect("decrypt runs");
    assert_eq!(pt, msg, "RSA-CRT roundtrip on the simulator");
    iss.core_cycles()
}

fn summary(events: &[OwnedEvent], top: usize) -> ExitCode {
    let mut attr = Attribution::new();
    let mut stats = EventStats::new();
    xobs::bintrace::replay(events, &mut attr);
    xobs::bintrace::replay(events, &mut stats);
    println!("{}", attr.hot_report(top));
    print!("{}", stats.render());
    println!("attributed cycles    : {}", attr.total_cycles());
    ExitCode::SUCCESS
}

fn rsa_attrib(bits: usize) -> ExitCode {
    let mut iss = IssMpn::with_variant(
        CpuConfig::default(),
        KernelVariant::Accelerated {
            add_lanes: 16,
            mac_lanes: 4,
        },
    );
    iss.set_verify(false);
    let attr = Rc::new(RefCell::new(Attribution::new()));
    iss.set_trace_sink(Some(Box::new(Shared::new(attr.clone()))));
    let (c32, c16) = run_rsa_crt(&mut iss, bits);
    let total = c32 + c16;
    let attr = attr.borrow();

    println!("{}", attr.hot_report(10));
    println!("r32 core cycles      : {c32}");
    println!("r16 core cycles      : {c16}");
    println!("attributed cycles    : {}", attr.total_cycles());
    if attr.total_cycles() == total && attr.open_frames() == 0 {
        println!("attribution root == total ISS cycles: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "attribution MISMATCH: root {} vs total {total} ({} open frames)",
            attr.total_cycles(),
            attr.open_frames()
        );
        ExitCode::FAILURE
    }
}

/// Read a report from `path` (`-` for stdin) and parse it as JSON.
fn read_report(path: &str) -> Result<xobs::Json, ExitCode> {
    let mut text = String::new();
    if path == "-" {
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("xr32-trace: cannot read stdin: {e}");
            return Err(ExitCode::FAILURE);
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => text = t,
            Err(e) => {
                eprintln!("xr32-trace: cannot read {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    xobs::json::parse(&text).map_err(|e| {
        eprintln!("xr32-trace: not valid JSON: {e}");
        ExitCode::FAILURE
    })
}

fn check_report(path: &str) -> ExitCode {
    let json = match read_report(path) {
        Ok(j) => j,
        Err(code) => return code,
    };
    match xobs::report::validate(&json) {
        Ok(()) => {
            let name = json.get("report").and_then(|j| j.as_str()).unwrap_or("?");
            println!("valid run report: {name}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xr32-trace: invalid run report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn normalize_report(path: &str) -> ExitCode {
    let json = match read_report(path) {
        Ok(j) => j,
        Err(code) => return code,
    };
    if let Err(e) = xobs::report::validate(&json) {
        eprintln!("xr32-trace: invalid run report: {e}");
        return ExitCode::FAILURE;
    }
    println!("{}", xobs::report::normalize(&json).to_string_compact());
    ExitCode::SUCCESS
}

/// Read a validated report and return its `spans` array, failing when
/// the report has none (the span-smoke contract).
fn report_spans(path: &str) -> Result<Vec<xobs::Json>, ExitCode> {
    let json = read_report(path)?;
    if let Err(e) = xobs::report::validate(&json) {
        eprintln!("xr32-trace: invalid run report: {e}");
        return Err(ExitCode::FAILURE);
    }
    match json
        .get("spans")
        .and_then(|s| s.as_arr().map(<[_]>::to_vec))
    {
        Some(spans) if !spans.is_empty() => Ok(spans),
        _ => {
            let name = json.get("report").and_then(|j| j.as_str()).unwrap_or("?");
            eprintln!("xr32-trace: report {name} carries no spans (schema 5 required)");
            Err(ExitCode::FAILURE)
        }
    }
}

fn spans_cmd(path: &str) -> ExitCode {
    match report_spans(path) {
        Ok(spans) => {
            print!("{}", xobs::span::render_tree(&spans));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn chrome_cmd(path: &str) -> ExitCode {
    match report_spans(path) {
        Ok(spans) => {
            println!(
                "{}",
                xobs::span::to_chrome_trace(&spans).to_string_compact()
            );
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}
