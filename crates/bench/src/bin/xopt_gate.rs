//! CI gate for the `xopt` optimizing pipeline.
//!
//! For every kernel registered with [`kreg::VariantSource::Generated`],
//! generates one variant per accelerator level, runs the full
//! admission gate (constant-time lint differential + golden-reference
//! sweep), measures the admitted variants against their hand-written
//! counterparts on the ISS, and **fails** (exit code 1) if any level's
//! variant is rejected or measures more than 5% slower than the
//! hand-written baseline.
//!
//! Usage: `xopt_gate [n] [--json] [--dump]`
//!
//! - `n`: operand size in limbs for the cycle comparison (default 32);
//! - `--json`: emit a schema-4 run report with the
//!   `generated_variants` array instead of prose;
//! - `--dump`: print each generated variant's assembly source (with
//!   its `;!` annotations) and exit — pipe a unit into
//!   `xr32-lint --ir` to inspect its CFG/dataflow facts.

use bench::{Cli, Harness};
use xobs::{Registry, RunReport};
use xr32::config::CpuConfig;

/// Admitted variants may be at most this much slower than the
/// hand-written baseline.
const MAX_SLOWDOWN: f64 = 1.05;

fn main() {
    let cli = Cli::parse();
    let dump = std::env::args().any(|a| a == "--dump");
    let config = CpuConfig::default();
    let n = cli.pos_usize(0, 32);

    if dump {
        for desc in kreg::registry() {
            if desc.variants != kreg::VariantSource::Generated {
                continue;
            }
            for (level, outcome) in secproc::genvar::admitted_variants(desc, &config) {
                match outcome {
                    Ok(adm) => {
                        println!("; ==== {} {} ====", desc.id, adm.gen.tag);
                        println!("{}", adm.gen.source);
                    }
                    Err(e) => println!(
                        "; ==== {} {} REJECTED: {e} ====",
                        desc.id,
                        level.generated_tag()
                    ),
                }
            }
        }
        return;
    }

    let harness = Harness::from_env();
    let ctx = harness.flow_ctx(&config);
    let (_curves, records) = ctx.curves_with_variants(n);

    let mut failures = Vec::new();
    for r in &records {
        let verdict = if !r.admitted {
            failures.push(format!(
                "{} {}: rejected (lint {}, golden {}): {}",
                r.kernel,
                r.tag,
                if r.lint_ok { "ok" } else { "fail" },
                if r.golden_ok { "ok" } else { "fail" },
                r.error.as_deref().unwrap_or("?")
            ));
            "REJECTED"
        } else if r.cycle_ratio().is_none_or(|ratio| ratio > MAX_SLOWDOWN) {
            failures.push(format!(
                "{} {}: generated {:?} vs hand {} cycles exceeds the {:.0}% budget",
                r.kernel,
                r.tag,
                r.cycles_generated,
                r.cycles_hand,
                (MAX_SLOWDOWN - 1.0) * 100.0
            ));
            "TOO SLOW"
        } else {
            "ok"
        };
        if !cli.json {
            println!(
                "{:<12} {:<9} gen {:>8}  hand {:>8.0}  {verdict}",
                r.kernel.name(),
                r.tag,
                r.cycles_generated
                    .map_or_else(|| "-".into(), |c| format!("{c:.0}")),
                r.cycles_hand
            );
        }
    }
    if records.is_empty() {
        failures.push("no generated-variant kernels in the registry".into());
    }

    if cli.json {
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("xopt_gate")
            .with_fingerprint(config.fingerprint())
            .result("limbs", n as u64)
            .result("levels", records.len() as u64)
            .result("failures", failures.len() as u64)
            .with_generated_variants(records.iter().map(|r| r.to_json()))
            .with_degradations(ctx.degradations_json())
            .with_kernel_errors(failures.iter().cloned())
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
    } else {
        let _ = harness.kcache.save();
        for f in &failures {
            eprintln!("xopt_gate: {f}");
        }
        println!(
            "xopt_gate: {} levels checked, {} failures",
            records.len(),
            failures.len()
        );
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
