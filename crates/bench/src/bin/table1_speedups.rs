//! Regenerates **Table 1**: performance speedups for DES, 3DES, AES and
//! RSA on the optimized platform vs. optimized software on the base
//! processor.
//!
//! Symmetric rows are cycles/byte measured block-by-block on the
//! cycle-accurate XR32 ISS; RSA rows are full co-simulations (every limb
//! operation executes on the ISS). Pass an RSA modulus size as the first
//! argument (default 1024; co-simulation at 1024 bits takes a few
//! minutes — use 256 for a quick pass). With `--json`, stdout carries a
//! single structured run report instead of prose.

use bench::{Cli, Harness};
use secproc::measure::Table1;
use xobs::{Registry, RunReport};
use xr32::config::CpuConfig;

fn main() {
    let cli = Cli::parse();
    let rsa_bits = cli.pos_usize(0, 1024);
    let blocks = 8;
    let config = CpuConfig::default();
    let harness = Harness::from_env();

    if !cli.json {
        println!("Table 1 — performance speedups for popular security algorithms");
        println!(
            "(XR32 @ {} MHz; RSA-{rsa_bits})\n",
            config.clock_hz / 1_000_000
        );
    }

    // The four measurement units (DES, 3DES, AES, RSA) run in parallel
    // and re-runs are served whole from the kernel-cycle cache.
    let table = Table1::measure_pooled(&config, blocks, rsa_bits, &harness.pool, harness.cache());

    if cli.json {
        let metrics = Registry::new();
        harness.record_metrics(&metrics);
        let report = RunReport::new("table1_speedups")
            .with_fingerprint(config.fingerprint())
            .result("blocks", blocks as u64)
            .result("table", table.to_json())
            .with_metrics(metrics.snapshot());
        bench::emit_report(&harness.finish(report));
        return;
    }
    let _ = harness.kcache.save();

    print!("{}", table.render());

    println!("\nPaper reference (Xtensa T1040, RSA-1024):");
    println!("  DES  476.8 -> 15.4 c/B (31.0X)");
    println!("  3DES 1426.4 -> 42.1 c/B (33.9X)");
    println!("  AES  1526.2 -> 87.5 c/B (17.4X)");
    println!("  RSA enc. 34.29e6 -> 3.16e6 cycles (10.8X)");
    println!("  RSA dec. 12658e6 -> 190.78e6 cycles (66.4X)");
    println!(
        "\nExpected agreement: qualitative shape — symmetric speedups in the\n\
         tens, RSA decryption gaining far more than encryption (CRT + windows\n\
         + MAC datapaths), not absolute cycle counts (different core, compiler\n\
         and libraries)."
    );
}
