//! Regenerates **Table 1**: performance speedups for DES, 3DES, AES and
//! RSA on the optimized platform vs. optimized software on the base
//! processor.
//!
//! Symmetric rows are cycles/byte measured block-by-block on the
//! cycle-accurate XR32 ISS; RSA rows are full co-simulations (every limb
//! operation executes on the ISS). Pass an RSA modulus size as the first
//! argument (default 1024; co-simulation at 1024 bits takes a few
//! minutes — use 256 for a quick pass).

use secproc::measure::Table1;
use xr32::config::CpuConfig;

fn main() {
    let rsa_bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let config = CpuConfig::default();

    println!("Table 1 — performance speedups for popular security algorithms");
    println!(
        "(XR32 @ {} MHz; RSA-{rsa_bits})\n",
        config.clock_hz / 1_000_000
    );

    let table = Table1::measure(&config, 8, rsa_bits);
    print!("{}", table.render());

    println!("\nPaper reference (Xtensa T1040, RSA-1024):");
    println!("  DES  476.8 -> 15.4 c/B (31.0X)");
    println!("  3DES 1426.4 -> 42.1 c/B (33.9X)");
    println!("  AES  1526.2 -> 87.5 c/B (17.4X)");
    println!("  RSA enc. 34.29e6 -> 3.16e6 cycles (10.8X)");
    println!("  RSA dec. 12658e6 -> 190.78e6 cycles (66.4X)");
    println!(
        "\nExpected agreement: qualitative shape — symmetric speedups in the\n\
         tens, RSA decryption gaining far more than encryption (CRT + windows\n\
         + MAC datapaths), not absolute cycle counts (different core, compiler\n\
         and libraries)."
    );
}
