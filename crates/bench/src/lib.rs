//! Shared helpers for the benchmark harnesses that regenerate the
//! paper's tables and figures (see `src/bin/*` and `benches/*`).

use secproc::flow::{self, KernelModels};
use secproc::issops::KernelVariant;
use xobs::RunReport;
use xr32::config::CpuConfig;

/// Characterizes the base kernels with harness-default options.
pub fn default_models(max_limbs: usize) -> KernelModels {
    flow::characterize_kernels(
        &CpuConfig::default(),
        KernelVariant::Base,
        max_limbs,
        &macromodel::charact::CharactOptions {
            train_samples: 24,
            validation_points: 8,
        },
    )
}

/// Command-line options shared by every harness binary: `--json`
/// switches stdout from the human-readable report to a single
/// structured [`RunReport`] document; remaining arguments are
/// positional.
pub struct Cli {
    /// Emit a machine-readable run report instead of prose.
    pub json: bool,
    positional: Vec<String>,
}

impl Cli {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let mut json = false;
        let mut positional = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--json" {
                json = true;
            } else {
                positional.push(arg);
            }
        }
        Cli { json, positional }
    }

    /// The `i`-th positional argument parsed as `usize`, or `default`.
    pub fn pos_usize(&self, i: usize, default: usize) -> usize {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

/// Prints the finished run report as a compact single-document JSON on
/// stdout (the `--json` contract every harness binary honors).
pub fn emit_report(report: &RunReport) {
    println!("{}", report.to_json().to_string_compact());
}

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
