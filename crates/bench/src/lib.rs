//! Shared helpers for the benchmark harnesses that regenerate the
//! paper's tables and figures (see `src/bin/*` and `benches/*`).

use secproc::flow::{self, KernelModels};
use secproc::issops::KernelVariant;
use xr32::config::CpuConfig;

/// Characterizes the base kernels with harness-default options.
pub fn default_models(max_limbs: usize) -> KernelModels {
    flow::characterize_kernels(
        &CpuConfig::default(),
        KernelVariant::Base,
        max_limbs,
        &macromodel::charact::CharactOptions {
            train_samples: 24,
            validation_points: 8,
        },
    )
}

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
