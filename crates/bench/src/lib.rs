//! Shared helpers for the benchmark harnesses that regenerate the
//! paper's tables and figures (see `src/bin/*` and `benches/*`).

use secproc::flow::{FlowBuilder, FlowCtx, KernelModels};
use secproc::job::JobEnv;
use secproc::kcache::KCache;
use std::time::Instant;
use xobs::{RunReport, Spans};
use xpar::Pool;
use xr32::config::CpuConfig;

/// The per-run execution context shared by every harness binary: the
/// worker pool (sized by `WSP_THREADS`, else the host's parallelism),
/// the persistent kernel-cycle cache (`$WSP_KCACHE`, else
/// `target/kcache.json`), the run's span tree, and its wall-clock
/// start.
pub struct Harness {
    /// The worker pool every pooled flow/measure call runs on.
    pub pool: Pool,
    /// The persistent kernel-cycle memo cache.
    pub kcache: KCache,
    spans: Spans,
    start: Instant,
}

impl Harness {
    /// Opens the environment-default pool and cache and starts the
    /// wall clock.
    pub fn from_env() -> Self {
        Harness {
            pool: Pool::from_env(),
            kcache: KCache::open_default(),
            spans: Spans::new(),
            start: Instant::now(),
        }
    }

    /// The run's span tree. Harness binaries open one root span
    /// (conventionally `"flow"`) around the methodology phases; the
    /// phases themselves open their children through the
    /// [`FlowCtx`] this harness builds.
    pub fn spans(&self) -> &Spans {
        &self.spans
    }

    /// The cache as the `Option` the pooled measure helpers take.
    pub fn cache(&self) -> Option<&KCache> {
        Some(&self.kcache)
    }

    /// A pre-wired [`FlowBuilder`] on this harness's pool, cache and
    /// span tree, with the fault policy from the environment
    /// (`WSP_FAULTS` arms an injection campaign; the cache is bypassed
    /// while injecting). Binaries needing extra knobs (a metrics
    /// registry, a variant) chain them on before `build()`.
    pub fn builder<'a>(&'a self, config: &'a CpuConfig) -> FlowBuilder<'a> {
        FlowBuilder::from_env(config)
            .pool(&self.pool)
            .cache(&self.kcache)
            .spans(&self.spans)
    }

    /// A methodology context built from [`Harness::builder`] with no
    /// extra knobs.
    ///
    /// # Panics
    ///
    /// Panics if the environment-derived configuration conflicts
    /// (cannot happen for the default knobs).
    pub fn flow_ctx<'a>(&'a self, config: &'a CpuConfig) -> FlowCtx<'a> {
        self.builder(config)
            .build()
            .expect("harness flow configuration is conflict-free")
    }

    /// The job environment running [`secproc::job::JobSpec`]s on this
    /// harness's pool and cache (fresh metrics/span sinks per job, no
    /// cancellation).
    pub fn job_env(&self) -> JobEnv<'_> {
        JobEnv {
            cache: Some(&self.kcache),
            ..JobEnv::new(&self.pool)
        }
    }

    /// Milliseconds since the harness started.
    pub fn wall_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Publishes the run's parallel-execution metrics: worker count and
    /// utilization (`xpar.*`) and memo-cache traffic (`kcache.*`).
    pub fn record_metrics(&self, reg: &xobs::Registry) {
        reg.gauge("xpar.threads").set(self.pool.threads() as f64);
        reg.gauge("xpar.utilization").set(self.pool.utilization());
        reg.counter("kcache.hits").add(self.kcache.hits());
        reg.counter("kcache.misses").add(self.kcache.misses());
        reg.gauge("kcache.hit_rate").set(self.kcache.hit_rate());
        reg.gauge("kcache.entries").set(self.kcache.len() as f64);
    }

    /// Stamps the schema-2 wall-clock fields and the schema-5 span
    /// tree onto the report and persists the kernel-cycle cache
    /// (best-effort: an unwritable cache path only costs future warm
    /// starts, never the run).
    pub fn finish(&self, report: RunReport) -> RunReport {
        let _ = self.kcache.save();
        let report = if self.spans.is_empty() {
            report
        } else {
            report.with_spans(self.spans.to_json_roots())
        };
        report
            .with_wall_ms(self.wall_ms())
            .with_threads(self.pool.threads())
            .with_memo_hit_rate(self.kcache.hit_rate())
    }
}

/// The characterization options every harness binary uses.
fn harness_options() -> macromodel::charact::CharactOptions {
    macromodel::charact::CharactOptions {
        train_samples: 24,
        validation_points: 8,
    }
}

/// Characterizes the base kernels with harness-default options.
pub fn default_models(max_limbs: usize) -> KernelModels {
    let config = CpuConfig::default();
    FlowBuilder::new(&config)
        .build()
        .expect("default flow configuration is conflict-free")
        .characterize(max_limbs, &harness_options())
}

/// [`default_models`] on an explicit pool and cache (identical models).
pub fn default_models_on(max_limbs: usize, pool: &Pool, cache: Option<&KCache>) -> KernelModels {
    let config = CpuConfig::default();
    let mut b = FlowBuilder::new(&config).pool(pool);
    if let Some(kc) = cache {
        b = b.cache(kc);
    }
    b.build()
        .expect("default flow configuration is conflict-free")
        .characterize(max_limbs, &harness_options())
}

/// Command-line options shared by every harness binary: `--json`
/// switches stdout from the human-readable report to a single
/// structured [`RunReport`] document; remaining arguments are
/// positional.
pub struct Cli {
    /// Emit a machine-readable run report instead of prose.
    pub json: bool,
    positional: Vec<String>,
}

impl Cli {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let mut json = false;
        let mut positional = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--json" {
                json = true;
            } else {
                positional.push(arg);
            }
        }
        Cli { json, positional }
    }

    /// The `i`-th positional argument parsed as `usize`, or `default`.
    pub fn pos_usize(&self, i: usize, default: usize) -> usize {
        self.positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

/// Prints the finished run report as a compact single-document JSON on
/// stdout (the `--json` contract every harness binary honors).
pub fn emit_report(report: &RunReport) {
    println!("{}", report.to_json().to_string_compact());
}

/// Prints a section header in the harness output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
