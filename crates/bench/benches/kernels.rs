//! Criterion benchmarks of the substrate layers: native mpn kernels,
//! the XR32 ISS itself, and the ISS-backed kernel calls — the raw
//! machinery every experiment is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kreg::id;
use secproc::issops::IssMpn;
use std::hint::black_box;
use xr32::asm::assemble;
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;

fn bench_native_mpn(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_mpn");
    for n in [8usize, 32, 128] {
        let a: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(xpar::SEED_STEP32))
            .collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
        group.bench_with_input(BenchmarkId::new("add_n", n), &n, |bench, _| {
            let mut r = vec![0u32; n];
            bench.iter(|| mpint::mpn::add_n(black_box(&mut r), black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("addmul_1", n), &n, |bench, _| {
            let mut r = b.clone();
            bench.iter(|| mpint::mpn::addmul_1(black_box(&mut r), black_box(&a), 0xdead_beef));
        });
    }
    group.finish();
}

fn bench_iss_throughput(c: &mut Criterion) {
    // How many simulated instructions per host second the ISS delivers.
    let program = assemble(
        "main:
            movi a0, 0
            movi a1, 10000
        loop:
            addi a0, a0, 1
            xor  a2, a0, a1
            bne  a0, a1, loop
            halt",
    )
    .expect("bench program assembles");
    c.bench_function("iss/30k_insn_loop", |bench| {
        bench.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::default());
            cpu.run(black_box(&program)).expect("loop halts")
        });
    });
}

fn bench_iss_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("iss_kernel");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("addmul_1_base", n), &n, |bench, &n| {
            let mut iss = IssMpn::base(CpuConfig::default());
            iss.set_verify(false);
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                iss.measure32(id::ADDMUL_1, n, seed).expect("registered")
            });
        });
        group.bench_with_input(BenchmarkId::new("addmul_1_mac4", n), &n, |bench, &n| {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), 16, 4);
            iss.set_verify(false);
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                iss.measure32(id::ADDMUL_1, n, seed).expect("registered")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_native_mpn,
    bench_iss_throughput,
    bench_iss_kernels
);
criterion_main!(benches);
