//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! custom-instruction datapath width, exponent window width, reduction
//! strategy, limb radix, and the energy dimension the paper deferred.
//! Each group prints its measured cycle numbers once, then benchmarks a
//! representative computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kreg::id;
use secproc::issops::IssMpn;
use secproc::simcipher::{SimDes, Variant};
use std::hint::black_box;
use std::sync::Once;
use xr32::config::CpuConfig;
use xr32::energy::EnergyModel;

static PRINT_ONCE: Once = Once::new();

/// Ablation A: adder/MAC lane count vs. kernel cycles (the local A-D
/// tradeoff the selection phase consumes).
fn ablation_datapath_width(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n--- ablation: datapath lanes vs. kernel cycles (n = 32 limbs) ---");
        let mut base = IssMpn::base(CpuConfig::default());
        base.set_verify(false);
        base.measure32(id::ADD_N, 32, 1).expect("registered");
        println!(
            "add_n  base: {:>7.0} cycles",
            base.measure32(id::ADD_N, 32, 2).expect("registered")
        );
        for lanes in [2u32, 4, 8, 16] {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), lanes, 1);
            iss.set_verify(false);
            iss.measure32(id::ADD_N, 32, 1).expect("registered");
            println!(
                "add_n add{lanes:<2}: {:>7.0} cycles",
                iss.measure32(id::ADD_N, 32, 2).expect("registered")
            );
        }
        let mut base = IssMpn::base(CpuConfig::default());
        base.set_verify(false);
        base.measure32(id::ADDMUL_1, 32, 1).expect("registered");
        println!(
            "addmul base: {:>7.0} cycles",
            base.measure32(id::ADDMUL_1, 32, 2).expect("registered")
        );
        for lanes in [1u32, 2, 4] {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), 2, lanes);
            iss.set_verify(false);
            iss.measure32(id::ADDMUL_1, 32, 1).expect("registered");
            println!(
                "addmul mac{lanes}: {:>7.0} cycles",
                iss.measure32(id::ADDMUL_1, 32, 2).expect("registered")
            );
        }
    });
    let mut group = c.benchmark_group("ablation_lanes");
    for lanes in [2u32, 16] {
        group.bench_with_input(BenchmarkId::new("add_n", lanes), &lanes, |b, &lanes| {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), lanes, 1);
            iss.set_verify(false);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                iss.measure32(id::ADD_N, 32, seed).expect("registered")
            });
        });
    }
    group.finish();
}

/// Ablation B: cache geometry vs. DES cycles/byte (the configurable-
/// processor axis the paper's platform tunes before adding custom
/// instructions).
fn ablation_cache_geometry(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n--- ablation: D/I-cache size vs. DES cycles/byte (base kernels) ---");
        for kb in [1usize, 4, 16] {
            let cfg = CpuConfig {
                icache: xr32::cache::CacheConfig {
                    size_bytes: kb * 1024,
                    line_bytes: 32,
                    ways: 2,
                },
                dcache: xr32::cache::CacheConfig {
                    size_bytes: kb * 1024,
                    line_bytes: 32,
                    ways: 2,
                },
                ..CpuConfig::default()
            };
            let mut sim = SimDes::new(cfg, Variant::Base, *b"ablation");
            sim.set_verify(false);
            println!("{kb:>3} KiB caches: {:>7.1} c/B", sim.cycles_per_byte(6));
        }
    });
    c.bench_function("ablation_cache/des_16k", |b| {
        let mut sim = SimDes::new(CpuConfig::default(), Variant::Base, *b"ablation");
        sim.set_verify(false);
        let mut x = 1u64;
        b.iter(|| {
            let (out, _) = sim.crypt_block(black_box(x), false);
            x = out;
        });
    });
}

/// Ablation C: the deferred energy dimension — energy/byte of DES on
/// both platforms under the activity-based model.
fn ablation_energy(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n--- ablation: energy per DES block (0.18um activity model) ---");
        let model = EnergyModel::default();
        for (name, variant) in [("base", Variant::Base), ("accel", Variant::Accelerated)] {
            let mut sim = SimDes::new(CpuConfig::default(), variant, *b"ablation");
            sim.set_verify(false);
            sim.crypt_block(1, false); // warm
                                       // Re-run one block through the raw engine to get a summary.
            let (_, cycles) = sim.crypt_block(2, false);
            // The SimDes API reports cycles; rebuild class counts via a
            // dedicated run on the underlying harness is out of scope
            // here, so approximate with cycle-proportional activity.
            let est_pj = cycles as f64 * (model.alu_pj * 0.7 + model.mem_pj * 0.3);
            println!(
                "{name:<6}: {cycles:>6} cycles/block  ≈ {:>8.1} nJ/block",
                est_pj / 1000.0
            );
        }
        println!("(fewer issued instructions => proportional energy win)");
    });
    c.bench_function("ablation_energy/model_eval", |b| {
        let model = EnergyModel::default();
        let program = xr32::asm::assemble(
            "main:\n movi a0, 100\n movi a1, 0\nloop:\n addi a0, a0, -1\n bne a0, a1, loop\n halt",
        )
        .expect("valid");
        let mut cpu = xr32::cpu::Cpu::new(CpuConfig::default());
        let summary = cpu.run(&program).expect("halts");
        b.iter(|| model.estimate(black_box(&summary)));
    });
}

criterion_group!(
    benches,
    ablation_datapath_width,
    ablation_cache_geometry,
    ablation_energy
);
criterion_main!(benches);
