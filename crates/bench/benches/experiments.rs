//! Criterion benchmarks wrapping each paper experiment's computational
//! core, one group per table/figure. For the full printed reproductions
//! run the binaries in `src/bin/` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use pubkey::space::ModExpConfig;
use secproc::flow;
use secproc::gap;
use secproc::measure;
use secproc::simcipher::{SimAes, SimDes, Variant};
use secproc::ssl::{speedup_series, SslCostModel};
use secproc::FlowBuilder;
use std::hint::black_box;
use xr32::config::CpuConfig;

fn bench_fig1_gap(c: &mut Criterion) {
    c.bench_function("fig1/gap_trend", |b| {
        b.iter(|| gap::trend(black_box(1500.0)));
    });
}

fn bench_fig4_callgraph(c: &mut Criterion) {
    let config = CpuConfig::default();
    c.bench_function("fig4/call_graph_total_cycles", |b| {
        let graph = FlowBuilder::new(&config).build().unwrap().fig4_graph(32);
        b.iter(|| graph.total_cycles(black_box("decrypt")).expect("DAG"));
    });
}

fn bench_fig5_adcurves(c: &mut Criterion) {
    let config = CpuConfig::default();
    c.bench_function("fig5/formulate_mpn_curves_n8", |b| {
        b.iter(|| {
            FlowBuilder::new(black_box(&config))
                .build()
                .unwrap()
                .curves(8)
        });
    });
}

fn bench_fig6_cartesian(c: &mut Criterion) {
    use tie::insn::{CustomInsn, InsnSet};
    let add = |k: u32| CustomInsn::new("add", k, 400 * k as u64);
    let mul = |k: u32| CustomInsn::new("mul", k, 6000 * k as u64);
    let rows: Vec<InsnSet> = std::iter::once(InsnSet::empty())
        .chain(
            [2u32, 4, 8, 16]
                .iter()
                .map(|&k| InsnSet::from_insns([add(k), mul(1)])),
        )
        .collect();
    let cols: Vec<InsnSet> = std::iter::once(InsnSet::empty())
        .chain(
            [2u32, 4, 8, 16]
                .iter()
                .map(|&k| InsnSet::from_insns([add(k)])),
        )
        .collect();
    c.bench_function("fig6/cartesian_reduce_25_to_9", |b| {
        b.iter(|| {
            let mut distinct = std::collections::BTreeSet::new();
            for x in &rows {
                for y in &cols {
                    distinct.insert(x.union(y));
                }
            }
            assert_eq!(distinct.len(), 9);
            distinct
        });
    });
}

fn bench_table1_symmetric(c: &mut Criterion) {
    let config = CpuConfig::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("des_block_base_iss", |b| {
        let mut sim = SimDes::new(config.clone(), Variant::Base, *b"benchkey");
        sim.set_verify(false);
        let mut x = 1u64;
        b.iter(|| {
            let (out, cycles) = sim.crypt_block(x, false);
            x = out;
            cycles
        });
    });
    group.bench_function("des_block_accel_iss", |b| {
        let mut sim = SimDes::new(config.clone(), Variant::Accelerated, *b"benchkey");
        sim.set_verify(false);
        let mut x = 1u64;
        b.iter(|| {
            let (out, cycles) = sim.crypt_block(x, false);
            x = out;
            cycles
        });
    });
    group.bench_function("aes_block_base_iss", |b| {
        let mut sim = SimAes::new(config.clone(), Variant::Base, b"bench-aes-key-01");
        sim.set_verify(false);
        let block = [7u8; 16];
        b.iter(|| sim.encrypt_block(black_box(&block)));
    });
    group.finish();
}

fn bench_fig8_ssl(c: &mut Criterion) {
    let config = CpuConfig::default();
    let tdes = measure::measure_tdes(&config, 4);
    let base = SslCostModel {
        handshake_cycles: 1.0e9,
        bulk_cycles_per_byte: tdes.base_cpb,
        misc_cycles_per_byte: 40.0,
        misc_fixed_cycles: 1.0e6,
    };
    let opt = SslCostModel {
        handshake_cycles: 1.0e9 / 60.0,
        bulk_cycles_per_byte: tdes.opt_cpb,
        misc_cycles_per_byte: 40.0,
        misc_fixed_cycles: 1.0e6,
    };
    let sizes: Vec<u64> = (0..=5).map(|i| 1024u64 << i).collect();
    c.bench_function("fig8/ssl_speedup_series", |b| {
        b.iter(|| speedup_series(black_box(&base), black_box(&opt), &sizes));
    });
}

fn bench_sec43_exploration(c: &mut Criterion) {
    let config = CpuConfig::default();
    let ctx = FlowBuilder::new(&config).build().unwrap();
    let models = ctx.characterize(
        8,
        &macromodel::charact::CharactOptions {
            train_samples: 12,
            validation_points: 4,
        },
    );
    let mut group = c.benchmark_group("sec43");
    group.sample_size(10);
    group.bench_function("macro_model_candidate_128b", |b| {
        b.iter(|| {
            flow::explore_single(black_box(&models), &ModExpConfig::optimized(), 128, 4.0)
                .expect("candidate runs")
        });
    });
    group.bench_function("cosim_candidate_128b", |b| {
        b.iter(|| {
            ctx.cosimulate(&models, &ModExpConfig::optimized(), 128, 4.0)
                .expect("candidate co-simulates")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_gap,
    bench_fig4_callgraph,
    bench_fig5_adcurves,
    bench_fig6_cartesian,
    bench_table1_symmetric,
    bench_fig8_ssl,
    bench_sec43_exploration
);
criterion_main!(benches);
