//! Content-addressed memoization of deterministic numeric computations.
//!
//! A [`Memo`] maps a *content key* — a string the caller derives from
//! every input that determines the result, e.g.
//! `"{config_fp:016x}/{variant}/{op}/n{n}/s{seed}"` — to the computed
//! `Vec<f64>`. Because the key embeds the configuration fingerprint, a
//! changed configuration simply misses (stale entries are never served);
//! and because the cached computations are deterministic, a racing
//! double-compute of the same key is harmless (both threads produce the
//! same value).
//!
//! [`checksum`] provides the integrity fingerprint used by persistent
//! cache files: an entry whose stored checksum does not match
//! `checksum(key, values)` has been corrupted (poisoned) and must be
//! dropped, not served.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Integrity fingerprint of one memo entry: FNV-1a over the key bytes
/// followed by every value's IEEE-754 bit pattern (little-endian).
pub fn checksum(key: &str, values: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A thread-safe content-addressed cache of `Vec<f64>` results with
/// hit/miss accounting.
#[derive(Debug, Default)]
pub struct Memo {
    entries: Mutex<HashMap<String, Vec<f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Memo {
    /// An empty cache.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memo poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Inserts an entry without touching the hit/miss counters (used
    /// when loading a persisted cache).
    pub fn insert(&self, key: &str, values: Vec<f64>) {
        self.entries
            .lock()
            .expect("memo poisoned")
            .insert(key.to_owned(), values);
    }

    /// The cached value for `key`, if any, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Vec<f64>> {
        let found = self
            .entries
            .lock()
            .expect("memo poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Returns the cached value for `key`, computing and caching it on
    /// a miss. Entries whose arity differs from `expected_len` (a
    /// truncated or foreign persisted entry) are treated as misses and
    /// recomputed; pass 0 to accept any arity.
    ///
    /// The computation must be deterministic in `key`: concurrent
    /// misses on the same key may compute twice, and either (equal)
    /// result is kept.
    pub fn get_or_compute(
        &self,
        key: &str,
        expected_len: usize,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Vec<f64> {
        {
            let entries = self.entries.lock().expect("memo poisoned");
            if let Some(v) = entries.get(key) {
                if expected_len == 0 || v.len() == expected_len {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return v.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.entries
            .lock()
            .expect("memo poisoned")
            .insert(key.to_owned(), v.clone());
        v
    }

    /// Every `(key, values)` pair, sorted by key (for stable
    /// persistence).
    pub fn entries(&self) -> Vec<(String, Vec<f64>)> {
        let map = self.entries.lock().expect("memo poisoned");
        let mut out: Vec<(String, Vec<f64>)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_warm_hit() {
        let memo = Memo::new();
        let mut computed = 0;
        let a = memo.get_or_compute("k", 2, || {
            computed += 1;
            vec![1.0, 2.0]
        });
        let b = memo.get_or_compute("k", 2, || {
            computed += 1;
            vec![9.0, 9.0]
        });
        assert_eq!(a, vec![1.0, 2.0]);
        assert_eq!(b, vec![1.0, 2.0], "warm hit serves the cached value");
        assert_eq!(computed, 1);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        assert_eq!(memo.hit_rate(), 0.5);
    }

    #[test]
    fn arity_mismatch_is_a_miss() {
        let memo = Memo::new();
        memo.insert("k", vec![1.0]);
        let v = memo.get_or_compute("k", 3, || vec![4.0, 5.0, 6.0]);
        assert_eq!(v, vec![4.0, 5.0, 6.0]);
        assert_eq!(memo.hits(), 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let memo = Memo::new();
        memo.insert("a", vec![1.0]);
        assert_eq!(memo.get("b"), None);
        assert_eq!(memo.get("a"), Some(vec![1.0]));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn checksum_detects_value_and_key_tampering() {
        let c = checksum("cfg/op/n8/s1", &[100.0, 200.0]);
        assert_ne!(c, checksum("cfg/op/n8/s1", &[100.0, 200.5]));
        assert_ne!(c, checksum("cfg/op/n8/s2", &[100.0, 200.0]));
        assert_eq!(c, checksum("cfg/op/n8/s1", &[100.0, 200.0]));
    }

    #[test]
    fn entries_are_sorted_by_key() {
        let memo = Memo::new();
        memo.insert("z", vec![1.0]);
        memo.insert("a", vec![2.0]);
        let keys: Vec<String> = memo.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn hit_rate_zero_before_first_lookup() {
        assert_eq!(Memo::new().hit_rate(), 0.0);
    }
}
