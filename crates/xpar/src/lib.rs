//! Deterministic scoped worker pool and memoization for the
//! methodology engine.
//!
//! The paper's exploration loop is embarrassingly parallel: 450
//! modular-exponentiation candidates, 16 kernel characterizations, nine
//! A-D curve points — all independent. [`Pool`] runs such loops across
//! OS threads with a **determinism contract**: the output of
//! [`Pool::par_map`] is bit-identical to the serial run regardless of
//! thread count, because
//!
//! - items are split into *fixed contiguous chunks by index* (never
//!   work-stealing), and
//! - results are merged back *in submission order*.
//!
//! A task therefore must not share mutable state with its siblings;
//! anything order-dependent (metric observation order, Pareto-front
//! offers) belongs in the serial merge that consumes the returned
//! `Vec`.
//!
//! The worker count comes from the `WSP_THREADS` environment variable
//! when set (clamped to ≥ 1), else from
//! [`std::thread::available_parallelism`]. With one thread every
//! combinator degenerates to the plain serial loop — no threads are
//! spawned at all.
//!
//! [`memo::Memo`] is the companion content-addressed cache: repeated
//! deterministic computations (ISS kernel-cycle measurements, keyed by
//! configuration fingerprint × op × size × seed × variant) are computed
//! once and shared across workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memo;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cloneable cooperative-cancellation flag.
///
/// The service layer hands one token per job to the workers executing
/// it; [`Pool::par_map_cancellable`] polls the token between items, and
/// flow phases poll it at phase boundaries. Cancellation is therefore
/// *cooperative and lossy* — an in-flight item completes — but never
/// corrupts results: a cancelled map returns `None` rather than a
/// partial vector, so the determinism contract ("the output equals the
/// serial run") holds unconditionally for every map that completes.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The golden-ratio seed increment (⌊2⁶⁴/φ⌋, the Weyl constant of
/// splitmix64) used wherever the workspace steps a deterministic seed
/// between kernel measurements. One shared definition keeps every
/// stimulus stream — and therefore every kernel-cycle cache key —
/// consistent across the RNG shim, the methodology driver and the
/// benches.
pub const SEED_STEP: u64 = 0x9e37_79b9_7f4a_7c15;

/// The 32-bit golden-ratio constant (the high word of [`SEED_STEP`]),
/// used by test-pattern generators that mix indices into words.
pub const SEED_STEP32: u32 = (SEED_STEP >> 32) as u32;

/// Cumulative utilization accounting across every parallel job a
/// [`Pool`] has run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel `par_map` executions (inline runs are not counted).
    pub jobs: u64,
    /// Items processed across all jobs (inline runs included).
    pub items: u64,
    /// Summed per-worker busy time, in nanoseconds.
    pub busy_nanos: u128,
    /// Summed `wall × workers` capacity, in nanoseconds.
    pub capacity_nanos: u128,
}

impl PoolStats {
    /// Fraction of worker capacity spent busy (0 when nothing parallel
    /// ran yet).
    pub fn utilization(&self) -> f64 {
        if self.capacity_nanos == 0 {
            return 0.0;
        }
        self.busy_nanos as f64 / self.capacity_nanos as f64
    }
}

/// Host-execution record of one worker's share of a [`Pool::par_map`]
/// job: its contiguous chunk, when it actually started relative to job
/// submission (queue wait), and how long it stayed busy. Wall-clock
/// facts only — observability input, never workload input.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker index within the job (0-based, chunk order).
    pub worker: usize,
    /// First item index of the worker's chunk.
    pub lo: usize,
    /// One past the last item index of the worker's chunk.
    pub hi: usize,
    /// Delay between job submission and the worker's first item.
    pub queue_wait_nanos: u128,
    /// Time the worker spent processing its chunk.
    pub busy_nanos: u128,
}

/// Host-execution record of one [`Pool::par_map`] call, drained by the
/// observability layer via [`Pool::take_job_traces`] when tracing is
/// enabled ([`Pool::set_tracing`]).
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Items the job processed.
    pub items: usize,
    /// Total job wall time (submission to last merge).
    pub wall_nanos: u128,
    /// One record per spawned worker (a single record for inline runs).
    pub workers: Vec<WorkerTrace>,
}

impl JobTrace {
    /// Fraction of `workers × wall` capacity spent busy.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self.wall_nanos.saturating_mul(self.workers.len() as u128);
        if capacity == 0 {
            return 0.0;
        }
        let busy: u128 = self.workers.iter().map(|w| w.busy_nanos).sum();
        busy as f64 / capacity as f64
    }
}

/// Traces retained before the oldest are dropped — a backstop so a
/// long-lived pool whose owner never drains (tracing enabled but no
/// observer attached) cannot grow without bound.
const MAX_JOB_TRACES: usize = 1024;

/// A fixed-width scoped worker pool (see the crate docs for the
/// determinism contract).
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    stats: Mutex<PoolStats>,
    tracing: AtomicBool,
    traces: Mutex<Vec<JobTrace>>,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
            stats: Mutex::new(PoolStats::default()),
            tracing: AtomicBool::new(false),
            traces: Mutex::new(Vec::new()),
        }
    }

    /// A single-threaded pool: every combinator runs inline.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized from the environment: `WSP_THREADS` when set to a
    /// positive integer, else the host's available parallelism.
    pub fn from_env() -> Self {
        Pool::new(threads_from_env())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the cumulative utilization accounting.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock().expect("pool stats poisoned")
    }

    /// Cumulative worker utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.stats().utilization()
    }

    /// Enables or disables per-job execution tracing. Off by default:
    /// tracing allocates one [`JobTrace`] per `par_map` call, which
    /// only pays off when an observer drains them.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
        if !on {
            self.traces.lock().expect("pool traces poisoned").clear();
        }
    }

    /// Drains the job traces recorded since the previous drain (empty
    /// when tracing is off). Traces never influence results — they are
    /// wall-clock observability only.
    pub fn take_job_traces(&self) -> Vec<JobTrace> {
        std::mem::take(&mut *self.traces.lock().expect("pool traces poisoned"))
    }

    fn record_trace(&self, trace: JobTrace) {
        let mut traces = self.traces.lock().expect("pool traces poisoned");
        if traces.len() >= MAX_JOB_TRACES {
            traces.remove(0);
        }
        traces.push(trace);
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// `f` receives `(index, &item)`. Items are split into contiguous
    /// chunks of `ceil(n / workers)`; each worker owns one chunk, and
    /// chunk results are concatenated in submission order, so the
    /// output is identical to `items.iter().enumerate().map(f)` for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic (by chunk order).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let tracing = self.tracing.load(Ordering::Relaxed);
        if self.threads == 1 || n <= 1 {
            let t0 = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            if tracing {
                let busy = t0.elapsed().as_nanos();
                self.record_trace(JobTrace {
                    items: n,
                    wall_nanos: busy,
                    workers: vec![WorkerTrace {
                        worker: 0,
                        lo: 0,
                        hi: n,
                        queue_wait_nanos: 0,
                        busy_nanos: busy,
                    }],
                });
            }
            let mut stats = self.stats.lock().expect("pool stats poisoned");
            stats.items += n as u64;
            return out;
        }
        let chunk = n.div_ceil(self.threads.min(n));
        // With chunk = ceil(n / threads), fewer than `threads` workers
        // may suffice (n = 9, threads = 8 → chunk = 2 → 5 workers);
        // spawning exactly ceil(n / chunk) keeps every slice in range.
        let workers = n.div_ceil(chunk);
        let job_start = Instant::now();
        let mut busy_nanos = 0u128;
        let mut worker_traces: Vec<WorkerTrace> = Vec::new();
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let slice = &items[lo..hi];
                    let handle = scope.spawn(move || {
                        let queue_wait = job_start.elapsed().as_nanos();
                        let t0 = Instant::now();
                        let res: Vec<R> = slice
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(lo + j, t))
                            .collect();
                        (res, queue_wait, t0.elapsed())
                    });
                    (lo, hi, handle)
                })
                .collect();
            for (w, (lo, hi, h)) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((res, queue_wait, busy)) => {
                        busy_nanos += busy.as_nanos();
                        if tracing {
                            worker_traces.push(WorkerTrace {
                                worker: w,
                                lo,
                                hi,
                                queue_wait_nanos: queue_wait,
                                busy_nanos: busy.as_nanos(),
                            });
                        }
                        out.extend(res);
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        let wall = job_start.elapsed().as_nanos();
        if tracing {
            self.record_trace(JobTrace {
                items: n,
                wall_nanos: wall,
                workers: worker_traces,
            });
        }
        let mut stats = self.stats.lock().expect("pool stats poisoned");
        stats.jobs += 1;
        stats.items += n as u64;
        stats.busy_nanos += busy_nanos;
        stats.capacity_nanos += wall * workers as u128;
        out
    }

    /// [`Pool::par_map`] with cooperative cancellation: polls `token`
    /// before each item and returns `None` as soon as cancellation is
    /// observed (in-flight items finish; their results are discarded).
    ///
    /// When the token is never cancelled the result is `Some` of
    /// exactly what [`Pool::par_map`] returns — same chunking, same
    /// submission-order merge — so cancellable callers keep the
    /// determinism contract for free.
    pub fn par_map_cancellable<T, R, F>(
        &self,
        items: &[T],
        token: &CancelToken,
        f: F,
    ) -> Option<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if token.is_cancelled() {
            return None;
        }
        let cancelled = AtomicBool::new(false);
        let out = self.par_map(items, |i, t| {
            if token.is_cancelled() {
                cancelled.store(true, Ordering::Relaxed);
                return None;
            }
            Some(f(i, t))
        });
        if cancelled.load(Ordering::Relaxed) || token.is_cancelled() {
            return None;
        }
        // No item observed cancellation: every slot is Some.
        Some(
            out.into_iter()
                .map(|r| r.expect("uncancelled item"))
                .collect(),
        )
    }

    /// Maps every item through `f` in parallel, then folds the results
    /// **in submission order** on the calling thread — the parallel
    /// drop-in for `items.iter().map(f).fold(init, reduce)`.
    pub fn par_map_reduce<T, R, A, F>(
        &self,
        items: &[T],
        f: F,
        init: A,
        reduce: impl FnMut(A, R) -> A,
    ) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map(items, f).into_iter().fold(init, reduce)
    }

    /// Returns whether `pred` holds for every item, evaluating one
    /// *wave* of `threads` items at a time with early exit between
    /// waves (the parallel shape of Miller–Rabin witness rounds: a
    /// composite is usually exposed by the first wave).
    ///
    /// The result is deterministic — `false` iff any item fails — even
    /// though the number of predicate evaluations may vary with the
    /// thread count.
    pub fn par_all<T: Sync>(&self, items: &[T], pred: impl Fn(usize, &T) -> bool + Sync) -> bool {
        let wave = self.threads;
        let mut lo = 0;
        while lo < items.len() {
            let hi = (lo + wave).min(items.len());
            let ok = self.par_map(&items[lo..hi], |j, t| pred(lo + j, t));
            if ok.iter().any(|pass| !pass) {
                return false;
            }
            lo = hi;
        }
        true
    }
}

/// The worker count [`Pool::from_env`] resolves: `WSP_THREADS` when set
/// to a positive integer, else the host's available parallelism (1 if
/// unknown).
pub fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("WSP_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 128] {
            let pool = Pool::new(threads);
            let got = pool.par_map(&items, |i, v| v * 3 + i as u64);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_survives_items_barely_exceeding_threads() {
        // n = 9, threads = 8 → chunk = 2, only 5 workers needed; a
        // naive `threads.min(n)` worker count slices out of range.
        for (n, threads) in [(9usize, 8usize), (11, 10), (13, 12), (5, 4)] {
            let items: Vec<usize> = (0..n).collect();
            let got = Pool::new(threads).par_map(&items, |i, v| i + *v);
            let expect: Vec<usize> = (0..n).map(|i| 2 * i).collect();
            assert_eq!(got, expect, "n = {n}, threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(&[] as &[u32], |_, v| *v), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |i, v| *v + i as u32), vec![7]);
    }

    #[test]
    fn par_map_reduce_folds_in_submission_order() {
        let items: Vec<usize> = (0..40).collect();
        let pool = Pool::new(7);
        let serial = items
            .iter()
            .fold(String::new(), |acc, v| acc + &v.to_string());
        let par = pool.par_map_reduce(
            &items,
            |_, v| v.to_string(),
            String::new(),
            |acc, s| acc + &s,
        );
        assert_eq!(par, serial, "merge order must be submission order");
    }

    #[test]
    fn par_all_result_is_deterministic() {
        let items: Vec<u64> = (0..30).collect();
        for threads in [1, 4, 16] {
            let pool = Pool::new(threads);
            assert!(pool.par_all(&items, |_, v| *v < 30));
            assert!(!pool.par_all(&items, |_, v| *v != 17));
        }
    }

    #[test]
    fn par_all_early_exits_between_waves() {
        // Item 0 fails, so a serial pool must evaluate exactly one item.
        let evaluated = AtomicUsize::new(0);
        let items: Vec<u64> = (0..100).collect();
        let pool = Pool::new(1);
        let ok = pool.par_all(&items, |_, v| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            *v > 0
        });
        assert!(!ok);
        assert_eq!(evaluated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn utilization_accumulates_for_parallel_jobs() {
        let pool = Pool::new(2);
        let _ = pool.par_map(&(0..64).collect::<Vec<u32>>(), |_, v| {
            (0..1000u64).fold(*v as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.items, 64);
        let u = stats.utilization();
        assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
    }

    #[test]
    fn job_traces_record_chunks_and_never_results() {
        let items: Vec<u32> = (0..20).collect();
        let pool = Pool::new(4);
        // Off by default: nothing recorded.
        let _ = pool.par_map(&items, |i, v| i as u32 + v);
        assert!(pool.take_job_traces().is_empty());

        pool.set_tracing(true);
        let expect = pool.par_map(&items, |i, v| i as u32 + v);
        let traces = pool.take_job_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.items, 20);
        assert_eq!(t.workers.len(), 4);
        // Chunks tile [0, n) contiguously in worker order.
        let mut lo = 0;
        for (w, wt) in t.workers.iter().enumerate() {
            assert_eq!(wt.worker, w);
            assert_eq!(wt.lo, lo);
            lo = wt.hi;
        }
        assert_eq!(lo, 20);
        let bf = t.busy_fraction();
        assert!((0.0..=1.0 + 1e-9).contains(&bf), "busy fraction {bf}");
        // Drained means drained.
        assert!(pool.take_job_traces().is_empty());
        // Inline path records a single-worker trace.
        let serial = Pool::new(1);
        serial.set_tracing(true);
        let expect_serial = serial.par_map(&items, |i, v| i as u32 + v);
        assert_eq!(expect, expect_serial);
        let st = serial.take_job_traces();
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].workers.len(), 1);
        assert_eq!((st[0].workers[0].lo, st[0].workers[0].hi), (0, 20));
    }

    #[test]
    fn cancellable_map_matches_par_map_when_uncancelled() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 3, 8] {
            let pool = Pool::new(threads);
            let token = CancelToken::new();
            let got = pool
                .par_map_cancellable(&items, &token, |i, v| v * 3 + i as u64)
                .expect("uncancelled map completes");
            let expect = pool.par_map(&items, |i, v| v * 3 + i as u64);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn pre_cancelled_map_runs_nothing() {
        let evaluated = AtomicUsize::new(0);
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u32> = (0..50).collect();
        let out = Pool::new(4).par_map_cancellable(&items, &token, |_, v| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            *v
        });
        assert!(out.is_none());
        assert_eq!(evaluated.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mid_map_cancellation_returns_none() {
        let items: Vec<u32> = (0..200).collect();
        let pool = Pool::new(1);
        let token = CancelToken::new();
        let out = pool.par_map_cancellable(&items, &token, |i, v| {
            if i == 10 {
                token.cancel();
            }
            *v
        });
        assert!(out.is_none(), "cancellation mid-map discards the partial");
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    #[should_panic(expected = "task 13")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..20).collect();
        Pool::new(4).par_map(&items, |i, _| {
            assert!(i != 13, "task 13");
            i
        });
    }
}
