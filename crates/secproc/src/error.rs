//! The platform's unified error vocabulary.
//!
//! Every failure the methodology layers can surface — typed kernel
//! failures from the registry ([`kreg::KernelError`]), arithmetic
//! failures from the public-key layer ([`pubkey::rsa::RsaError`]),
//! report-validation failures, wire-protocol failures from the serving
//! layer, and flow/builder configuration conflicts — folds into one
//! [`enum@Error`] with a **stable numeric code** per failure class.
//!
//! The codes are a public contract shared by two consumers:
//!
//! - `degradations` entries in structured run reports carry the code
//!   of the error they degraded on, so report consumers can classify
//!   failures without parsing prose;
//! - the `xserve` line-delimited JSON protocol returns the same codes
//!   in its `error` responses, so a service client and a report reader
//!   speak one vocabulary.
//!
//! Code ranges (never renumber, only append):
//!
//! | range | class                                   |
//! |-------|-----------------------------------------|
//! | 1000s | kernel layer ([`kreg::KernelError`])    |
//! | 2000s | public-key layer ([`RsaError`])         |
//! | 3000s | report validation                       |
//! | 4000s | wire protocol (`xserve`)                |
//! | 5000s | flow configuration / job specs          |

use std::fmt;

use kreg::KernelError;
use pubkey::modexp::ModExpError;
use pubkey::rsa::RsaError;

/// Stable numeric error codes, one per failure class. These are wire
/// and report contract: a code, once shipped, is never renumbered.
pub mod codes {
    /// Kernel name not in the registry.
    pub const KERNEL_UNKNOWN: u32 = 1001;
    /// ISS result disagreed with the host golden reference.
    pub const KERNEL_DIVERGENCE: u32 = 1002;
    /// Kernel registered but the request does not apply to it.
    pub const KERNEL_UNSUPPORTED: u32 = 1003;
    /// Cycle-budget watchdog stopped a runaway kernel.
    pub const KERNEL_TIMEOUT: u32 = 1004;
    /// An injected fault corrupted the run.
    pub const KERNEL_FAULTED: u32 = 1005;
    /// Kernel quarantined after repeated failures.
    pub const KERNEL_QUARANTINED: u32 = 1006;

    /// RSA message does not fit the modulus.
    pub const RSA_MESSAGE_TOO_LARGE: u32 = 2001;
    /// Modular-exponentiation precondition failed.
    pub const RSA_MODEXP: u32 = 2002;
    /// Payload too long for the padding scheme.
    pub const RSA_DATA_TOO_LONG: u32 = 2003;
    /// Padding check failed on decrypt.
    pub const RSA_BAD_PADDING: u32 = 2004;

    /// A structured run report failed schema validation.
    pub const REPORT_INVALID: u32 = 3001;

    /// Malformed protocol request (unparseable line / missing field).
    pub const PROTO_BAD_REQUEST: u32 = 4001;
    /// Request named an unknown operation or job id.
    pub const PROTO_UNKNOWN: u32 = 4002;
    /// Job was cancelled before completion.
    pub const PROTO_CANCELLED: u32 = 4004;
    /// Daemon is shutting down; job not accepted.
    pub const PROTO_SHUTDOWN: u32 = 4005;

    /// Generic flow-level failure (the catch-all for string-typed
    /// degradations predating the unified vocabulary).
    pub const FLOW: u32 = 5000;
    /// `FlowBuilder::build` rejected a conflicting configuration.
    pub const FLOW_CONFLICT: u32 = 5001;
    /// A `JobSpec` failed to parse or referenced unknown ids.
    pub const JOB_SPEC: u32 = 5002;
}

/// A failure anywhere in the platform, tagged with a stable numeric
/// code (see [`codes`]) shared by run-report `degradations` entries and
/// the `xserve` wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A typed kernel-layer failure.
    Kernel(KernelError),
    /// A public-key-layer failure.
    Rsa(RsaError),
    /// A structured run report failed validation.
    Report {
        /// What the validator rejected.
        detail: String,
    },
    /// A wire-protocol failure, pre-coded by the serving layer.
    Protocol {
        /// One of the 4000-range [`codes`].
        code: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// A flow-level failure that has no more specific class.
    Flow {
        /// Human-readable detail.
        detail: String,
    },
    /// `FlowBuilder::build` found a conflicting configuration.
    Conflict {
        /// Which knobs conflict and why.
        detail: String,
    },
    /// A job spec failed to parse or referenced unknown ids.
    JobSpec {
        /// What was malformed.
        detail: String,
    },
}

impl Error {
    /// A generic flow-level error from prose.
    pub fn flow(detail: impl Into<String>) -> Self {
        Error::Flow {
            detail: detail.into(),
        }
    }

    /// The stable numeric code of this error's class (see [`codes`]).
    pub fn code(&self) -> u32 {
        match self {
            Error::Kernel(k) => match k {
                KernelError::Unknown(_) => codes::KERNEL_UNKNOWN,
                KernelError::Divergence { .. } => codes::KERNEL_DIVERGENCE,
                KernelError::Unsupported { .. } => codes::KERNEL_UNSUPPORTED,
                KernelError::Timeout { .. } => codes::KERNEL_TIMEOUT,
                KernelError::Faulted { .. } => codes::KERNEL_FAULTED,
                KernelError::Quarantined { .. } => codes::KERNEL_QUARANTINED,
            },
            Error::Rsa(r) => match r {
                RsaError::MessageTooLarge => codes::RSA_MESSAGE_TOO_LARGE,
                RsaError::ModExp(_) => codes::RSA_MODEXP,
                RsaError::DataTooLong { .. } => codes::RSA_DATA_TOO_LONG,
                RsaError::BadPadding => codes::RSA_BAD_PADDING,
            },
            Error::Report { .. } => codes::REPORT_INVALID,
            Error::Protocol { code, .. } => *code,
            Error::Flow { .. } => codes::FLOW,
            Error::Conflict { .. } => codes::FLOW_CONFLICT,
            Error::JobSpec { .. } => codes::JOB_SPEC,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Kernel(k) => write!(f, "{k}"),
            Error::Rsa(r) => write!(f, "{r}"),
            Error::Report { detail } => write!(f, "invalid report: {detail}"),
            Error::Protocol { detail, .. } => write!(f, "{detail}"),
            Error::Flow { detail } => write!(f, "{detail}"),
            Error::Conflict { detail } => write!(f, "conflicting flow configuration: {detail}"),
            Error::JobSpec { detail } => write!(f, "bad job spec: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<KernelError> for Error {
    fn from(e: KernelError) -> Self {
        Error::Kernel(e)
    }
}

impl From<RsaError> for Error {
    fn from(e: RsaError) -> Self {
        Error::Rsa(e)
    }
}

impl From<ModExpError> for Error {
    fn from(e: ModExpError) -> Self {
        Error::Rsa(RsaError::ModExp(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::id;

    #[test]
    fn codes_are_stable_and_class_banded() {
        assert_eq!(
            Error::from(KernelError::Unknown("nope".into())).code(),
            1001
        );
        assert_eq!(Error::from(RsaError::BadPadding).code(), 2004);
        assert_eq!(Error::flow("anything").code(), 5000);
        assert_eq!(
            Error::Conflict {
                detail: String::new()
            }
            .code(),
            5001
        );
        assert_eq!(
            Error::JobSpec {
                detail: String::new()
            }
            .code(),
            5002
        );
        assert_eq!(
            Error::Report {
                detail: String::new()
            }
            .code(),
            3001
        );
    }

    #[test]
    fn kernel_variants_map_to_distinct_codes() {
        let errs = [
            KernelError::Unknown("x".into()),
            KernelError::Divergence {
                kernel: id::ADD_N,
                detail: "d".into(),
            },
            KernelError::Unsupported {
                kernel: id::ADD_N,
                detail: "d".into(),
            },
        ];
        let codes: Vec<u32> = errs.iter().map(|e| Error::from(e.clone()).code()).collect();
        assert_eq!(codes, vec![1001, 1002, 1003]);
    }

    #[test]
    fn modexp_folds_into_the_rsa_band() {
        let e = Error::from(ModExpError::ZeroModulus);
        assert_eq!(e.code(), codes::RSA_MODEXP);
        assert!(e.to_string().contains("modulus"));
    }

    #[test]
    fn display_carries_the_underlying_detail() {
        let e = Error::from(KernelError::Unknown("mystery".into()));
        assert!(e.to_string().contains("mystery"));
        let p = Error::Protocol {
            code: codes::PROTO_CANCELLED,
            detail: "job 7 cancelled".into(),
        };
        assert_eq!(p.code(), 4004);
        assert_eq!(p.to_string(), "job 7 cancelled");
    }
}
