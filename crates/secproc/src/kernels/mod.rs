//! XR32 assembly kernels for the platform's basic operations.
//!
//! Each submodule provides assembly source text plus (in tests and the
//! ISS-backed ops provider) the host-side calling conventions. The
//! kernels are the "lower software layers (standard libraries, basic
//! operations)" the paper characterizes and accelerates.

pub mod aes;
pub mod des;
pub mod mpn;
pub mod sha;
