//! XR32 assembly kernels for the platform's basic operations.
//!
//! Each submodule provides assembly source text plus (in tests and the
//! ISS-backed ops provider) the host-side calling conventions. The
//! kernels are the "lower software layers (standard libraries, basic
//! operations)" the paper characterizes and accelerates.
//!
//! The multi-precision and SHA-1 libraries live in the kernel registry
//! crate ([`kreg::kernels`]) so every methodology phase shares one
//! source of truth; they are re-exported here for compatibility.

pub mod aes;
pub mod des;
pub use kreg::kernels::{mpn, sha};
