//! XR32 assembly kernels for AES-128 block encryption.
//!
//! - [`base_source`]: byte-oriented software AES (S-box and xtime
//!   tables in memory, SubBytes+ShiftRows fused through a source-index
//!   table, MixColumns via the xtime identity).
//! - [`accel_source`]: `aesround`/`xorur` custom instructions — one
//!   instruction per round.
//!
//! `aes_block` takes no register arguments: the state, key and tables
//! live at the fixed addresses of [`MemoryMap`]. The state is
//! transformed in place (encrypt direction).

use ciphers::aes;
use xr32::cpu::Cpu;

/// Memory layout used by the AES kernels.
#[derive(Debug, Clone, Copy)]
pub struct MemoryMap {
    /// 256-byte S-box.
    pub sbox: u32,
    /// 256-byte xtime table (`xtime[b] = gmul(b, 2)`).
    pub xtime: u32,
    /// 16 words: ShiftRows source index per output byte.
    pub sridx: u32,
    /// Round-key bytes: 11 rounds × 16 bytes, state-packed.
    pub key_bytes: u32,
    /// Round-key words: 11 rounds × 4 words (for the accelerated
    /// kernel's `aesround`).
    pub key_words: u32,
    /// Round-0 key words byte-swapped to match the state's in-memory
    /// byte order (for the accelerated kernel's `xorur`).
    pub key0_words: u32,
    /// 16-byte state buffer.
    pub state: u32,
    /// 16-byte scratch buffer.
    pub scratch: u32,
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            sbox: 0x0002_0000,
            xtime: 0x0002_0100,
            sridx: 0x0002_0200,
            key_bytes: 0x0002_0300,
            key_words: 0x0002_0400,
            key0_words: 0x0002_04c0,
            state: 0x0002_0500,
            scratch: 0x0002_0540,
        }
    }
}

/// Installs tables and the expanded key into simulator memory.
///
/// # Panics
///
/// Panics if the key schedule is not AES-128 (11 round keys) or the
/// memory regions are out of range.
pub fn install(cpu: &mut Cpu, map: &MemoryMap, key: &aes::Aes) {
    assert_eq!(key.round_keys().len(), 11, "aes kernel is AES-128");
    let sbox: Vec<u8> = (0..=255u8).map(aes::sbox).collect();
    let xtime: Vec<u8> = (0..=255u8).map(|b| aes::gmul(b, 2)).collect();
    cpu.mem_mut().write_bytes(map.sbox, &sbox).expect("sbox");
    cpu.mem_mut().write_bytes(map.xtime, &xtime).expect("xtime");
    // ShiftRows: out[r + 4c] = in[r + 4((c + r) % 4)].
    let mut sridx = [0u32; 16];
    for r in 0..4usize {
        for c in 0..4usize {
            sridx[r + 4 * c] = (r + 4 * ((c + r) % 4)) as u32;
        }
    }
    cpu.mem_mut().write_words(map.sridx, &sridx).expect("sridx");
    let mut key_bytes = Vec::with_capacity(176);
    let mut key_words = Vec::with_capacity(44);
    for rk in key.round_keys() {
        // state-packed bytes: kb[r + 4c] = rk[c].to_be_bytes()[r]
        for w in rk {
            key_bytes.extend_from_slice(&w.to_be_bytes());
        }
        key_words.extend_from_slice(rk);
    }
    cpu.mem_mut()
        .write_bytes(map.key_bytes, &key_bytes)
        .expect("key bytes");
    cpu.mem_mut()
        .write_words(map.key_words, &key_words)
        .expect("key words");
    // Round-0 key with bytes in state order, for the word-wise
    // AddRoundKey(0) XOR of the accelerated kernel.
    let key0: Vec<u32> = key.round_keys()[0].iter().map(|w| w.swap_bytes()).collect();
    cpu.mem_mut()
        .write_words(map.key0_words, &key0)
        .expect("key0 words");
}

/// Writes a 16-byte block into the state buffer.
pub fn write_state(cpu: &mut Cpu, map: &MemoryMap, block: &[u8; 16]) {
    cpu.mem_mut()
        .write_bytes(map.state, block)
        .expect("state buffer");
}

/// Reads the state buffer back.
pub fn read_state(cpu: &Cpu, map: &MemoryMap) -> [u8; 16] {
    cpu.mem()
        .read_bytes(map.state, 16)
        .expect("state buffer")
        .try_into()
        .expect("16 bytes")
}

/// Base (software) AES-128 encryption kernel.
pub fn base_source(map: &MemoryMap) -> String {
    format!(
        "
;! entry aes_block inputs=none
;! secret-mem {keyb} 176
;! secret-mem {state} 16
;! secret-mem {scratch} 16

; --- subshift: SubBytes + ShiftRows from state into scratch.
;     Clobbers a4-a9.
;     The S-box lookup is secret-indexed by construction: the software
;     variant accepts this classic table-lookup leak (allow-listed,
;     like the xtime lookups in mixcols); the accelerated variant
;     removes it.
subshift:
    movi a4, 0             ; i
    movi a9, 16
.ss_loop:
    slli a5, a4, 2
    movi a6, {sridx}
    add  a5, a5, a6
    lw   a5, a5, 0         ; src index
    movi a6, {state}
    add  a5, a5, a6
    lbu  a5, a5, 0         ; state[src]
    movi a6, {sbox}
    add  a5, a5, a6
    lbu  a5, a5, 0         ; sbox[...] ;! allow(secret-load)
    movi a6, {scratch}
    add  a6, a6, a4
    sb   a5, a6, 0
    addi a4, a4, 1
    bne  a4, a9, .ss_loop
    ret

; --- mixcols: MixColumns from scratch into state. Clobbers a2-a13.
mixcols:
    movi a2, 0             ; column
    movi a13, 4
.mc_loop:
    slli a3, a2, 2
    movi a4, {scratch}
    add  a3, a3, a4        ; column base
    lbu  a4, a3, 0         ; b0
    lbu  a5, a3, 1         ; b1
    lbu  a6, a3, 2         ; b2
    lbu  a7, a3, 3         ; b3
    xor  a8, a4, a5
    xor  a9, a6, a7
    xor  a8, a8, a9        ; u = b0^b1^b2^b3
    ; out0 = b0 ^ u ^ xtime[b0^b1]
    xor  a9, a4, a5
    movi a10, {xtime}
    add  a9, a9, a10
    lbu  a9, a9, 0         ;! allow(secret-load)
    xor  a9, a9, a8
    xor  a9, a9, a4
    slli a11, a2, 2
    movi a12, {state}
    add  a11, a11, a12
    sb   a9, a11, 0
    ; out1 = b1 ^ u ^ xtime[b1^b2]
    xor  a9, a5, a6
    add  a9, a9, a10
    lbu  a9, a9, 0         ;! allow(secret-load)
    xor  a9, a9, a8
    xor  a9, a9, a5
    sb   a9, a11, 1
    ; out2 = b2 ^ u ^ xtime[b2^b3]
    xor  a9, a6, a7
    add  a9, a9, a10
    lbu  a9, a9, 0         ;! allow(secret-load)
    xor  a9, a9, a8
    xor  a9, a9, a6
    sb   a9, a11, 2
    ; out3 = b3 ^ u ^ xtime[b3^b0]
    xor  a9, a7, a4
    add  a9, a9, a10
    lbu  a9, a9, 0         ;! allow(secret-load)
    xor  a9, a9, a8
    xor  a9, a9, a7
    sb   a9, a11, 3
    addi a2, a2, 1
    bne  a2, a13, .mc_loop
    ret

; --- addkey: state ^= key_bytes[a0 = round * 16] (word-wise).
;     Clobbers a4-a8.
addkey:
    movi a4, {keyb}
    add  a4, a4, a0
    movi a5, {state}
    movi a6, 0
    movi a8, 4
.ak_loop:
    lw   a7, a4, 0
    lw   a9, a5, 0
    xor  a7, a7, a9
    sw   a7, a5, 0
    addi a4, a4, 4
    addi a5, a5, 4
    addi a6, a6, 1
    bne  a6, a8, .ak_loop
    ret

; --- aes_block: AES-128 encrypt the state buffer in place.
aes_block:
    addi sp, sp, -8
    sw   ra, sp, 0
    ; AddRoundKey(0)
    movi a0, 0
    call addkey
    movi a3, 1             ; round
    sw   a3, sp, 4
.rounds:
    call subshift
    call mixcols
    lw   a3, sp, 4
    slli a0, a3, 4
    call addkey
    lw   a3, sp, 4
    addi a3, a3, 1
    sw   a3, sp, 4
    movi a4, 10
    bne  a3, a4, .rounds
    ; final round: SubBytes + ShiftRows, copy scratch to state, AddKey(10)
    call subshift
    movi a4, {scratch}
    movi a5, {state}
    movi a6, 0
    movi a8, 4
.fin_copy:
    lw   a7, a4, 0
    sw   a7, a5, 0
    addi a4, a4, 4
    addi a5, a5, 4
    addi a6, a6, 1
    bne  a6, a8, .fin_copy
    movi a0, 160
    call addkey
    lw   ra, sp, 0
    addi sp, sp, 8
    ret
",
        sridx = map.sridx,
        state = map.state,
        sbox = map.sbox,
        scratch = map.scratch,
        xtime = map.xtime,
        keyb = map.key_bytes,
    )
}

/// Accelerated AES-128 kernel using `aesround` + `xorur`.
pub fn accel_source(map: &MemoryMap) -> String {
    format!(
        "
;! cust ldur regs=1 uregs=1 kind=load
;! cust stur regs=1 uregs=1 kind=store
;! cust xorur regs=0 uregs=2 kind=compute
;! cust aesround regs=0 uregs=2 kind=compute
;! entry aes_block inputs=none
;! secret-mem {keyw} 176
;! secret-mem {key0w} 16
;! secret-mem {state} 16
aes_block:
    movi a0, {state}
    movi a1, {keyw}
    movi a2, {key0w}
    cust ldur ur0, a0, 4
    cust ldur ur1, a2, 4
    cust xorur ur0, ur1    ; AddRoundKey(0), state byte order
    movi a2, 1
    movi a4, 10
.rounds:
    slli a3, a2, 4
    add  a3, a3, a1
    cust ldur ur1, a3, 4
    cust aesround ur0, ur1, 0
    addi a2, a2, 1
    bne  a2, a4, .rounds
    movi a3, 160
    add  a3, a3, a1
    cust ldur ur1, a3, 4
    cust aesround ur0, ur1, 1
    cust stur ur0, a0, 4
    ret
",
        state = map.state,
        keyw = map.key_words,
        key0w = map.key0_words,
    )
}
