//! XR32 assembly kernels for DES block encryption.
//!
//! Two variants share the entry label `des_block`:
//!
//! - [`base_source`]: optimized software. IP/FP are table-driven bit
//!   loops; the sixteen rounds use the classic SP-box formulation
//!   (S-box and P fused into eight 64-entry `u32` tables) with E
//!   computed by shifts/masks. The host lays out the tables and the key
//!   schedule in memory (see [`MemoryMap`]).
//! - [`accel_source`]: the `desperm` and `desround` custom
//!   instructions do the permutations and a full Feistel round in
//!   hardware.
//!
//! Calling convention for `des_block`:
//! `a0` = block address (two words: `[low32, high32]`), `a1` = key
//! schedule address, `a2` = direction (0 = encrypt, 1 = decrypt).
//! The block is transformed in place.

use ciphers::des;
use xr32::cpu::Cpu;

/// Memory layout used by the DES kernels.
#[derive(Debug, Clone, Copy)]
pub struct MemoryMap {
    /// Eight SP tables, 64 `u32` entries each (2 KiB total).
    pub sp_tables: u32,
    /// IP source-bit table: 64 words, each the 1-based source bit.
    pub ip_table: u32,
    /// FP source-bit table: 64 words.
    pub fp_table: u32,
    /// Key schedule: 16 rounds × 2 words (`[hi16, lo32]` of the 48-bit
    /// round key... stored as `[bits 47..32, bits 31..0]`).
    pub key_schedule: u32,
    /// Block buffer (2 words).
    pub block: u32,
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            sp_tables: 0x0001_0000,
            ip_table: 0x0001_1000,
            fp_table: 0x0001_1200,
            key_schedule: 0x0001_1400,
            block: 0x0001_1600,
        }
    }
}

/// The fused S-box + P tables (`SP[i][six]` = `P(sbox_i(six) << (28 - 4i))`).
pub fn sp_tables() -> [[u32; 64]; 8] {
    let mut out = [[0u32; 64]; 8];
    for (i, sbox) in des::SBOXES.iter().enumerate() {
        for six in 0..64 {
            let row = ((six >> 4) & 2) | (six & 1);
            let col = (six >> 1) & 0xf;
            let s = sbox[(row * 16 + col) as usize] as u32;
            let positioned = s << (28 - 4 * i);
            out[i][six as usize] = des::permute_p(positioned);
        }
    }
    out
}

/// Writes tables and key schedule into simulator memory.
///
/// # Panics
///
/// Panics if the memory regions are out of range for the core.
pub fn install(cpu: &mut Cpu, map: &MemoryMap, round_keys: &[u64; 16]) {
    let sp = sp_tables();
    for (i, table) in sp.iter().enumerate() {
        cpu.mem_mut()
            .write_words(map.sp_tables + (i as u32) * 256, table)
            .expect("sp tables in range");
    }
    let ip: Vec<u32> = des::IP.iter().map(|&b| b as u32).collect();
    let fp: Vec<u32> = des::FP.iter().map(|&b| b as u32).collect();
    cpu.mem_mut()
        .write_words(map.ip_table, &ip)
        .expect("ip table in range");
    cpu.mem_mut()
        .write_words(map.fp_table, &fp)
        .expect("fp table in range");
    let ks: Vec<u32> = round_keys
        .iter()
        .flat_map(|&k| [(k >> 32) as u32, k as u32])
        .collect();
    cpu.mem_mut()
        .write_words(map.key_schedule, &ks)
        .expect("key schedule in range");
}

/// Writes a 64-bit block to the block buffer.
pub fn write_block(cpu: &mut Cpu, map: &MemoryMap, block: u64) {
    cpu.mem_mut()
        .write_words(map.block, &[block as u32, (block >> 32) as u32])
        .expect("block buffer in range");
}

/// Reads the 64-bit block back.
pub fn read_block(cpu: &Cpu, map: &MemoryMap) -> u64 {
    let w = cpu
        .mem()
        .read_words(map.block, 2)
        .expect("block buffer in range");
    ((w[1] as u64) << 32) | w[0] as u64
}

/// Base (software) DES kernel.
pub fn base_source(map: &MemoryMap) -> String {
    let sp = map.sp_tables;
    let ip = map.ip_table;
    let fp = map.fp_table;
    format!(
        "
; --- permute64: a3 = table address; block in (a4=hi, a5=lo);
;     result in (a6=hi, a7=lo). Clobbers a8-a11. Bit 1 = MSB of hi.
permute64:
    movi a6, 0
    movi a7, 0
    movi a8, 64            ; counter
.p64_loop:
    lw   a9, a3, 0         ; src bit (1-based)
    addi a3, a3, 4
    ; fetch bit (src <= 32 ? hi : lo)
    movi a10, 32
    bltu a10, a9, .p64_lo
    ; bit in hi word: value = (hi >> (32 - src)) & 1
    sub  a10, a10, a9
    ; shift right by (32 - src): for src = 32 the shift is 0
    srl  a11, a4, a10
    j .p64_got
.p64_lo:
    addi a9, a9, -32
    movi a10, 32
    sub  a10, a10, a9
    srl  a11, a5, a10
.p64_got:
    andi a11, a11, 1
    ; out = (out << 1) | bit, across the (a6,a7) pair
    srli a10, a7, 31
    slli a7, a7, 1
    or   a7, a7, a11
    slli a6, a6, 1
    or   a6, a6, a10
    addi a8, a8, -1
    movi a10, 0
    bne  a8, a10, .p64_loop
    ret

; --- feistel: a0 = R, a1 = key schedule entry address;
;     returns f(R, K) in a0. Clobbers a2, a8-a13.
;     The eight SP-table lookups are secret-indexed by construction:
;     the software variant accepts this classic table-lookup leak
;     (allow-listed below); the accelerated variant removes it.
feistel:
    lw   a12, a1, 0        ; key hi (bits 47..32)
    lw   a13, a1, 4        ; key lo (bits 31..0)
    movi a2, 0             ; output accumulator
    ; chunk 0 (row 1): ((R & 1) << 5) | (R >> 27) & 0x1f, key bits 47..42
    andi a8, a0, 1
    slli a8, a8, 5
    srli a9, a0, 27
    andi a9, a9, 31
    or   a8, a8, a9
    srli a10, a12, 10      ; key chunk 0 = bits 47..42 of K = khi >> 10
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; chunks 1..6 (rows 2..7): ((R >> (31 - 4i)) & 0x3f) ^ keychunk_i
    ;   unrolled with key chunk extraction from the 48-bit pair.
    ; i = 1: R >> 23, key bits 41..36 -> khi >> 4
    srli a8, a0, 23
    andi a8, a8, 63
    srli a10, a12, 4
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp1}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; i = 2: R >> 19, key bits 35..30 -> (khi << 2 | klo >> 30) & 63
    srli a8, a0, 19
    andi a8, a8, 63
    slli a10, a12, 2
    srli a11, a13, 30
    or   a10, a10, a11
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp2}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; i = 3: R >> 15, key bits 29..24 -> klo >> 24
    srli a8, a0, 15
    andi a8, a8, 63
    srli a10, a13, 24
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp3}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; i = 4: R >> 11, key bits 23..18 -> klo >> 18
    srli a8, a0, 11
    andi a8, a8, 63
    srli a10, a13, 18
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp4}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; i = 5: R >> 7, key bits 17..12 -> klo >> 12
    srli a8, a0, 7
    andi a8, a8, 63
    srli a10, a13, 12
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp5}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; i = 6: R >> 3, key bits 11..6 -> klo >> 6
    srli a8, a0, 3
    andi a8, a8, 63
    srli a10, a13, 6
    andi a10, a10, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp6}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    ; chunk 7 (row 8): ((R & 0x1f) << 1) | (R >> 31), key bits 5..0
    andi a8, a0, 31
    slli a8, a8, 1
    srli a9, a0, 31
    or   a8, a8, a9
    andi a10, a13, 63
    xor  a8, a8, a10
    slli a8, a8, 2
    movi a9, {sp7}
    add  a9, a9, a8
    lw   a10, a9, 0        ;! allow(secret-load)
    xor  a2, a2, a10
    mov  a0, a2
    ret

; --- des_block: a0 = block addr, a1 = key schedule addr, a2 = direction
;! entry des_block inputs=a0-a2 secret-ptr=a0,a1
des_block:
    addi sp, sp, -28
    sw   ra, sp, 0
    sw   a0, sp, 4         ; block address
    sw   a1, sp, 8         ; key schedule base
    sw   a2, sp, 12        ; direction
    lw   a5, a0, 0         ; lo
    lw   a4, a0, 4         ; hi
    movi a3, {ip}
    call permute64
    sw   a6, sp, 16        ; L
    sw   a7, sp, 20        ; R
    movi a4, 0
    sw   a4, sp, 24        ; round
.db_round:
    lw   a2, sp, 12
    lw   a4, sp, 24
    movi a6, 0
    beq  a2, a6, .db_fwd
    movi a5, 15
    sub  a5, a5, a4
    j .db_key
.db_fwd:
    mov  a5, a4
.db_key:
    slli a5, a5, 3         ; 8 bytes per key entry
    lw   a1, sp, 8
    add  a1, a1, a5
    lw   a0, sp, 20        ; R
    call feistel
    lw   a2, sp, 16        ; L
    xor  a0, a0, a2        ; new R = L ^ f(R, K)
    lw   a3, sp, 20
    sw   a3, sp, 16        ; L = old R
    sw   a0, sp, 20        ; R = new R
    lw   a4, sp, 24
    addi a4, a4, 1
    sw   a4, sp, 24
    movi a5, 16
    bne  a4, a5, .db_round
    ; preoutput: hi = R16, lo = L16
    lw   a4, sp, 20
    lw   a5, sp, 16
    movi a3, {fp}
    call permute64
    lw   a0, sp, 4
    sw   a7, a0, 0
    sw   a6, a0, 4
    lw   ra, sp, 0
    addi sp, sp, 28
    ret
",
        sp = sp,
        sp1 = sp + 256,
        sp2 = sp + 512,
        sp3 = sp + 768,
        sp4 = sp + 1024,
        sp5 = sp + 1280,
        sp6 = sp + 1536,
        sp7 = sp + 1792,
        ip = ip,
        fp = fp,
    )
}

/// Accelerated DES kernel using `desperm` + `desround`.
pub fn accel_source(_map: &MemoryMap) -> String {
    "
;! cust ldur regs=1 uregs=1 kind=load
;! cust stur regs=1 uregs=1 kind=store
;! cust desperm regs=0 uregs=1 kind=compute
;! cust desround regs=2 uregs=1 kind=compute
; --- des_block: a0 = block addr, a1 = key schedule addr, a2 = direction
;! entry des_block inputs=a0-a2 secret-ptr=a0,a1
des_block:
    cust ldur ur0, a0, 2   ; [lo, hi]
    cust desperm ur0, 0    ; IP
    movi a4, 0
    movi a6, 0
.db_round:
    beq  a2, a6, .db_fwd
    movi a5, 15
    sub  a5, a5, a4
    j .db_key
.db_fwd:
    mov  a5, a4
.db_key:
    slli a5, a5, 3
    add  a5, a5, a1
    lw   a7, a5, 0         ; key hi
    lw   a8, a5, 4         ; key lo
    cust desround ur0, a7, a8
    addi a4, a4, 1
    movi a5, 16
    bne  a4, a5, .db_round
    ; swap halves (the final round must not swap; desround always
    ; swaps, so undo once): ur0 = [R, L] words -> FP expects [lo, hi]
    ; with preoutput (R16, L16). desround leaves [new_r, old_r]...
    ; handled by the host-validated layout below: after 16 rounds the
    ; register holds [R16, L16] as [word0, word1]; preoutput hi = R16,
    ; lo = L16 means words = [L16, R16] -> swap needed.
    cust stur ur0, a0, 2
    lw   a7, a0, 0
    lw   a8, a0, 4
    sw   a8, a0, 0
    sw   a7, a0, 4
    cust ldur ur0, a0, 2
    cust desperm ur0, 1    ; FP
    cust stur ur0, a0, 2
    ret
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_tables_compose_to_feistel() {
        // f(R, K) computed via SP tables + E windows must equal the
        // reference feistel function, for a sample of inputs.
        let sp = sp_tables();
        let f_via_sp = |r: u32, k: u64| -> u32 {
            let mut out = 0u32;
            for i in 0..8 {
                let chunk = match i {
                    0 => ((r & 1) << 5) | ((r >> 27) & 0x1f),
                    7 => ((r & 0x1f) << 1) | (r >> 31),
                    _ => (r >> (27 - 4 * i)) & 0x3f,
                };
                let kchunk = ((k >> (42 - 6 * i)) & 0x3f) as u32;
                out ^= sp[i as usize][(chunk ^ kchunk) as usize];
            }
            out
        };
        for (r, k) in [
            (0u32, 0u64),
            (0xffff_ffff, 0xffff_ffff_ffff),
            (0x0123_4567, 0x1B02_EFFC_7072),
            (0x89ab_cdef, 0x79AE_D9DB_C9E5),
        ] {
            assert_eq!(f_via_sp(r, k), des::feistel_f(r, k), "r={r:#x} k={k:#x}");
        }
    }
}
