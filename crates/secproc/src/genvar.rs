//! Generated kernel variants: production, admission and reporting.
//!
//! This module is the platform-side face of the `xopt` pipeline. For a
//! kernel whose [`kreg::KernelDescriptor`] opts in with
//! [`kreg::VariantSource::Generated`], it generates one variant per
//! family resource level, runs both halves of the admission gate (the
//! constant-time lint differential inside `xopt::generate`, the
//! golden-reference sweep here, under this platform's actual custom
//! instruction semantics from [`crate::insns`]), and packages the
//! outcome — including the hand-written baseline cycles measured
//! side-by-side by the flow — as [`GeneratedVariantRecord`]s for run
//! reports (schema 4's `generated_variants` array).

use kreg::{AccelLevel, KernelDescriptor, KernelId};
use xobs::json::Json;
use xopt::{GeneratedVariant, OptError};
use xr32::config::CpuConfig;
use xr32::ext::ExtensionSet;

use crate::insns;

/// A generated variant that passed both gate halves, with the
/// extension set it must run under.
pub struct AdmittedVariant {
    /// The gated variant (source, tag, pass statistics).
    pub gen: GeneratedVariant,
    /// The custom instructions the variant's blocked loop issues.
    pub ext: ExtensionSet,
}

/// Generates and gates every family level of `desc`, in registry
/// order (cheapest first). Each level is independent: one level's
/// rejection does not stop the others — the flow falls back to the
/// hand-written variant for that level alone.
pub fn admitted_variants(
    desc: &KernelDescriptor,
    config: &CpuConfig,
) -> Vec<(AccelLevel, Result<AdmittedVariant, OptError>)> {
    let Some(fam) = desc.family else {
        return Vec::new();
    };
    fam.levels
        .iter()
        .map(|level| {
            let outcome = xopt::generate(desc, level, config).and_then(|gen| {
                let ext = insns::mpn_extension_set(level.add_lanes, level.mac_lanes);
                gen.verify_golden(&desc.conv, config, &ext)?;
                Ok(AdmittedVariant { gen, ext })
            });
            (*level, outcome)
        })
        .collect()
}

/// One level's generated-vs-hand-written outcome, as recorded in run
/// reports.
#[derive(Debug, Clone)]
pub struct GeneratedVariantRecord {
    /// The kernel.
    pub kernel: KernelId,
    /// Family mnemonic root (`add`, `mac`).
    pub family: &'static str,
    /// The level's datapath lanes (the A-D curve point).
    pub lanes: u32,
    /// Generated-variant tag (`gen-a{a}m{m}`).
    pub tag: String,
    /// Whether the variant passed the constant-time lint differential.
    pub lint_ok: bool,
    /// Whether the variant passed golden-reference verification.
    pub golden_ok: bool,
    /// Whether the variant drives the curve point (both gates passed).
    pub admitted: bool,
    /// The gate/pipeline error, when not admitted.
    pub error: Option<String>,
    /// ISS cycles of the generated variant (admitted variants only).
    pub cycles_generated: Option<f64>,
    /// ISS cycles of the hand-written variant at the same level.
    pub cycles_hand: f64,
}

impl GeneratedVariantRecord {
    /// The record's run-report row (stable key order).
    pub fn to_json(&self) -> Json {
        let mut row = Json::obj()
            .set("kernel", self.kernel.name())
            .set("family", self.family)
            .set("lanes", u64::from(self.lanes))
            .set("tag", self.tag.as_str())
            .set("lint_ok", self.lint_ok)
            .set("golden_ok", self.golden_ok)
            .set("admitted", self.admitted)
            .set("cycles_hand", self.cycles_hand);
        if let Some(c) = self.cycles_generated {
            row = row.set("cycles_generated", c);
        }
        if let Some(e) = &self.error {
            row = row.set("error", e.as_str());
        }
        row
    }

    /// Generated-over-hand-written cycle ratio, when both were
    /// measured (`< 1.0` means the generated variant is faster).
    pub fn cycle_ratio(&self) -> Option<f64> {
        match (self.cycles_generated, self.cycles_hand) {
            (Some(g), h) if h > 0.0 => Some(g / h),
            _ => None,
        }
    }
}

/// Classifies an [`OptError`] into the two gate verdicts: which halves
/// are known to have passed when the pipeline stopped at `err`.
pub fn gate_verdicts(err: &OptError) -> (bool, bool) {
    match err {
        // Lint gate runs first inside generate(): reaching the golden
        // gate implies lint passed.
        OptError::GoldenRejected { .. } | OptError::Sim(_) => (true, false),
        OptError::LintRejected { .. } => (false, false),
        _ => (false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::id;

    fn desc(kid: KernelId) -> &'static KernelDescriptor {
        kreg::registry().iter().find(|d| d.id == kid).unwrap()
    }

    #[test]
    fn both_generated_kernels_admit_every_level() {
        let config = CpuConfig::default();
        for kid in [id::ADD_N, id::ADDMUL_1] {
            let outcomes = admitted_variants(desc(kid), &config);
            assert!(!outcomes.is_empty());
            for (level, outcome) in outcomes {
                let adm = outcome.unwrap_or_else(|e| {
                    panic!(
                        "{kid} level a{}m{} rejected: {e}",
                        level.add_lanes, level.mac_lanes
                    )
                });
                assert_eq!(adm.gen.tag, level.generated_tag());
            }
        }
    }

    #[test]
    fn record_json_carries_the_gate_verdicts() {
        let rec = GeneratedVariantRecord {
            kernel: id::ADD_N,
            family: "add",
            lanes: 4,
            tag: "gen-a4m1".into(),
            lint_ok: true,
            golden_ok: true,
            admitted: true,
            error: None,
            cycles_generated: Some(90.0),
            cycles_hand: 100.0,
        };
        let j = rec.to_json();
        assert_eq!(j.get("kernel").and_then(Json::as_str), Some("mpn_add_n"));
        assert_eq!(j.get("admitted"), Some(&Json::Bool(true)));
        assert_eq!(rec.cycle_ratio(), Some(0.9));
        assert_eq!(j.get("cycles_generated").and_then(Json::as_f64), Some(90.0));
    }
}
