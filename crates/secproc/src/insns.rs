//! The platform's custom-instruction catalog (TIE candidates).
//!
//! Each entry gives the designer-specified semantics (executed by the
//! XR32 simulator), a latency, and a structural area from
//! [`xr32::area`]. Instructions come in resource-parameterized families,
//! mirroring the paper's A-D-curve points:
//!
//! - `ldur`/`stur`: wide user-register load/store (shared plumbing for
//!   all multi-precision acceleration; the paper's `load_UR`/`store_UR`);
//! - `add{2,4,8,16}`: k-lane multi-precision add with carry (the
//!   `mpn_add_n` family of Fig. 5(a)), and `sub{2,4,8,16}`;
//! - `mac{1,2,4}`: k-lane multiply-accumulate (the `mpn_addmul_1`
//!   family), and `msub{1,2,4}` for division's submul;
//! - `desperm`/`desround`: DES initial/final permutation and a full
//!   Feistel round (S-boxes + P in hardware);
//! - `aesround`: a full AES round (S-boxes + MixColumns).

use ciphers::{aes, des};
use xr32::area::AreaModel;
use xr32::ext::{CustomInsnDef, CustomInsnError, ExecCtx, ExtensionSet};
use xr32::isa::CustomOp;

fn fail(name: &str, msg: impl Into<String>) -> CustomInsnError {
    CustomInsnError {
        name: name.to_owned(),
        message: msg.into(),
    }
}

/// Builds the `ldur` wide load: `cust ldur ur<d>, a<base>, k` loads `k`
/// words from the address in the base register into the user register.
/// Latency models a 128-bit memory port.
pub fn ldur() -> CustomInsnDef {
    CustomInsnDef::new(
        "ldur",
        2,
        AreaModel::new().register_bits(64).fixed(300).gates(),
        |ctx: &mut ExecCtx<'_>, op: &CustomOp| {
            let k = op.imm as usize;
            let ur = *op
                .uregs
                .first()
                .ok_or_else(|| fail("ldur", "needs a user register"))?;
            let base = ctx.regs[op
                .regs
                .first()
                .ok_or_else(|| fail("ldur", "needs a base register"))?
                .index()];
            if k == 0 || k > ctx.uregs.words() {
                return Err(fail("ldur", format!("bad word count {k}")));
            }
            for i in 0..k {
                let v = ctx
                    .mem
                    .load_u32(base + 4 * i as u32)
                    .map_err(|e| fail("ldur", e.to_string()))?;
                ctx.uregs.get_mut(ur)[i] = v;
            }
            Ok(())
        },
    )
}

/// Builds the `stur` wide store (inverse of [`ldur`]).
pub fn stur() -> CustomInsnDef {
    CustomInsnDef::new(
        "stur",
        2,
        AreaModel::new().fixed(300).gates(),
        |ctx: &mut ExecCtx<'_>, op: &CustomOp| {
            let k = op.imm as usize;
            let ur = *op
                .uregs
                .first()
                .ok_or_else(|| fail("stur", "needs a user register"))?;
            let base = ctx.regs[op
                .regs
                .first()
                .ok_or_else(|| fail("stur", "needs a base register"))?
                .index()];
            if k == 0 || k > ctx.uregs.words() {
                return Err(fail("stur", format!("bad word count {k}")));
            }
            for i in 0..k {
                let v = ctx.uregs.get(ur)[i];
                ctx.mem
                    .store_u32(base + 4 * i as u32, v)
                    .map_err(|e| fail("stur", e.to_string()))?;
            }
            Ok(())
        },
    )
}

/// Latency of a k-lane carry-chained adder.
fn add_latency(k: u32) -> u32 {
    match k {
        0..=4 => 1,
        5..=8 => 2,
        _ => 3,
    }
}

/// Builds the `add<k>` family member: `cust add<k> ur_d, ur_a, ur_b`
/// computes `ur_d = ur_a + ur_b + carry` over `k` 32-bit lanes, updating
/// the carry flag.
pub fn add_k(k: u32) -> CustomInsnDef {
    let name = format!("add{k}");
    let area = AreaModel::new()
        .adders32(k as u64)
        .mux_bits(32 * k as u64)
        .gates();
    CustomInsnDef::new(name.clone(), add_latency(k), area, move |ctx, op| {
        let [d, a, b] = op.uregs[..] else {
            return Err(fail(&format!("add{k}"), "needs ur_d, ur_a, ur_b"));
        };
        let mut carry = *ctx.carry;
        for i in 0..k as usize {
            let t = ctx.uregs.get(a)[i] as u64 + ctx.uregs.get(b)[i] as u64 + carry as u64;
            ctx.uregs.get_mut(d)[i] = t as u32;
            carry = t >> 32 != 0;
        }
        *ctx.carry = carry;
        Ok(())
    })
}

/// Builds the `sub<k>` family member (borrow-chained k-lane subtract).
pub fn sub_k(k: u32) -> CustomInsnDef {
    let name = format!("sub{k}");
    let area = AreaModel::new()
        .adders32(k as u64)
        .mux_bits(32 * k as u64)
        .gates();
    CustomInsnDef::new(name.clone(), add_latency(k), area, move |ctx, op| {
        let [d, a, b] = op.uregs[..] else {
            return Err(fail(&format!("sub{k}"), "needs ur_d, ur_a, ur_b"));
        };
        let mut borrow = *ctx.carry;
        for i in 0..k as usize {
            let t = (ctx.uregs.get(a)[i] as u64)
                .wrapping_sub(ctx.uregs.get(b)[i] as u64)
                .wrapping_sub(borrow as u64);
            ctx.uregs.get_mut(d)[i] = t as u32;
            borrow = t >> 32 != 0;
        }
        *ctx.carry = borrow;
        Ok(())
    })
}

/// Builds the `mac<k>` family member: `cust mac<k> ur_r, ur_a, a_b,
/// a_c` computes `ur_r += ur_a * a_b + a_c` over `k` lanes with an
/// internal carry chain; the outgoing carry limb is written back to
/// `a_c`. `k` parallel 32×32 multipliers give latency 2 regardless of
/// `k` (at quadratic area cost).
pub fn mac_k(k: u32) -> CustomInsnDef {
    let name = format!("mac{k}");
    let area = AreaModel::new()
        .muls32(k as u64)
        .adders32(2 * k as u64)
        .gates();
    CustomInsnDef::new(name.clone(), 2, area, move |ctx, op| {
        let [r, a] = op.uregs[..] else {
            return Err(fail(&format!("mac{k}"), "needs ur_r, ur_a"));
        };
        let [b_reg, c_reg] = op.regs[..] else {
            return Err(fail(
                &format!("mac{k}"),
                "needs multiplier and carry registers",
            ));
        };
        let b = ctx.regs[b_reg.index()] as u64;
        let mut carry = ctx.regs[c_reg.index()] as u64;
        for i in 0..k as usize {
            let t = ctx.uregs.get(a)[i] as u64 * b + ctx.uregs.get(r)[i] as u64 + carry;
            ctx.uregs.get_mut(r)[i] = t as u32;
            carry = t >> 32;
        }
        ctx.regs[c_reg.index()] = carry as u32;
        Ok(())
    })
}

/// Builds the `msub<k>` family member: `ur_r -= ur_a * a_b + borrow`,
/// borrow limb in/out through a GPR (the division inner loop).
pub fn msub_k(k: u32) -> CustomInsnDef {
    let name = format!("msub{k}");
    let area = AreaModel::new()
        .muls32(k as u64)
        .adders32(2 * k as u64)
        .gates();
    CustomInsnDef::new(name.clone(), 2, area, move |ctx, op| {
        let [r, a] = op.uregs[..] else {
            return Err(fail(&format!("msub{k}"), "needs ur_r, ur_a"));
        };
        let [b_reg, c_reg] = op.regs[..] else {
            return Err(fail(
                &format!("msub{k}"),
                "needs multiplier and borrow registers",
            ));
        };
        let b = ctx.regs[b_reg.index()] as u64;
        let mut carry = ctx.regs[c_reg.index()] as u64;
        for i in 0..k as usize {
            let prod = ctx.uregs.get(a)[i] as u64 * b + carry;
            let lo = prod as u32;
            carry = prod >> 32;
            let (d, borrow) = ctx.uregs.get(r)[i].overflowing_sub(lo);
            ctx.uregs.get_mut(r)[i] = d;
            carry += borrow as u64;
        }
        ctx.regs[c_reg.index()] = carry as u32;
        Ok(())
    })
}

/// Builds `desperm`: applies DES IP (imm = 0) or FP (imm = 1) to the
/// 64-bit block held in a user register as `[low, high]` words.
/// Permutations are pure wiring in hardware: latency 1, small area.
pub fn desperm() -> CustomInsnDef {
    CustomInsnDef::new(
        "desperm",
        1,
        AreaModel::new().mux_bits(64).fixed(400).gates(),
        |ctx, op| {
            let ur = *op
                .uregs
                .first()
                .ok_or_else(|| fail("desperm", "needs a user register"))?;
            let words = ctx.uregs.get(ur);
            let block = ((words[1] as u64) << 32) | words[0] as u64;
            let out = match op.imm {
                0 => des::initial_permutation(block),
                1 => des::final_permutation(block),
                other => return Err(fail("desperm", format!("bad selector {other}"))),
            };
            let w = ctx.uregs.get_mut(ur);
            w[0] = out as u32;
            w[1] = (out >> 32) as u32;
            Ok(())
        },
    )
}

/// Builds `desround`: one full DES Feistel round on the `[R, L]` words
/// of a user register with the 48-bit round key supplied as two GPRs
/// (`regs[0]` = bits 47..32, `regs[1]` = bits 31..0). All eight S-boxes
/// plus E and P in hardware.
pub fn desround() -> CustomInsnDef {
    // 8 S-boxes of 64×4 bits plus XOR trees.
    let area = AreaModel::new()
        .lut_bits(8 * 64 * 4)
        .xor_bits(48 + 32)
        .fixed(600)
        .gates();
    CustomInsnDef::new("desround", 2, area, |ctx, op| {
        let ur = *op
            .uregs
            .first()
            .ok_or_else(|| fail("desround", "needs a user register"))?;
        let [k_hi, k_lo] = op.regs[..] else {
            return Err(fail("desround", "needs two key registers"));
        };
        let key = ((ctx.regs[k_hi.index()] as u64) << 32) | ctx.regs[k_lo.index()] as u64;
        if key >> 48 != 0 {
            return Err(fail("desround", "round key exceeds 48 bits"));
        }
        let words = ctx.uregs.get(ur);
        let (l, r) = (words[1], words[0]);
        let new_r = l ^ des::feistel_f(r, key);
        let w = ctx.uregs.get_mut(ur);
        w[1] = r; // new L = old R
        w[0] = new_r;
        Ok(())
    })
}

/// Builds `aesround`: one full AES round on the 16-byte state in
/// `ur_state` (4 column words, little-endian bytes = state columns) with
/// the round key in `ur_key`. `imm = 1` selects the final round (no
/// MixColumns); `imm = 2` an inverse round; `imm = 3` the inverse final
/// round.
pub fn aesround() -> CustomInsnDef {
    // 16 logic-minimized S-boxes + MixColumns XOR network.
    let area = AreaModel::new()
        .fixed(16 * 550)
        .xor_bits(128 * 3)
        .fixed(1200)
        .gates();
    CustomInsnDef::new("aesround", 2, area, |ctx, op| {
        let [st_ur, key_ur] = op.uregs[..] else {
            return Err(fail("aesround", "needs state and key user registers"));
        };
        let mut state = [0u8; 16];
        for (i, w) in ctx.uregs.get(st_ur)[..4].iter().enumerate() {
            state[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        let kw = ctx.uregs.get(key_ur);
        let round_key = [kw[0], kw[1], kw[2], kw[3]];
        match op.imm {
            0 => {
                aes::sub_bytes(&mut state);
                aes::shift_rows(&mut state);
                aes::mix_columns(&mut state);
                aes::add_round_key(&mut state, &round_key);
            }
            1 => {
                aes::sub_bytes(&mut state);
                aes::shift_rows(&mut state);
                aes::add_round_key(&mut state, &round_key);
            }
            2 => {
                aes::inv_shift_rows(&mut state);
                aes::inv_sub_bytes(&mut state);
                aes::add_round_key(&mut state, &round_key);
                aes::inv_mix_columns(&mut state);
            }
            3 => {
                aes::inv_shift_rows(&mut state);
                aes::inv_sub_bytes(&mut state);
                aes::add_round_key(&mut state, &round_key);
            }
            other => return Err(fail("aesround", format!("bad round selector {other}"))),
        }
        let w = ctx.uregs.get_mut(st_ur);
        for i in 0..4 {
            w[i] = u32::from_le_bytes(state[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        Ok(())
    })
}

/// Builds `xorur`: 128-bit XOR of two user registers
/// (`ur_d ^= ur_s`) — the AddRoundKey datapath.
pub fn xorur() -> CustomInsnDef {
    CustomInsnDef::new(
        "xorur",
        1,
        AreaModel::new().xor_bits(128).gates(),
        |ctx, op| {
            let [d, s] = op.uregs[..] else {
                return Err(fail("xorur", "needs ur_d, ur_s"));
            };
            for i in 0..4 {
                let v = ctx.uregs.get(s)[i];
                ctx.uregs.get_mut(d)[i] ^= v;
            }
            Ok(())
        },
    )
}

/// The full multi-precision extension set at given resource levels
/// (`add_lanes` ∈ {2,4,8,16}, `mac_lanes` ∈ {1,2,4}), including the
/// shared `ldur`/`stur` plumbing.
pub fn mpn_extension_set(add_lanes: u32, mac_lanes: u32) -> ExtensionSet {
    let mut ext = ExtensionSet::new();
    ext.register(ldur());
    ext.register(stur());
    ext.register(add_k(add_lanes));
    ext.register(sub_k(add_lanes));
    ext.register(mac_k(mac_lanes));
    ext.register(msub_k(mac_lanes));
    ext
}

/// The symmetric-cipher extension set (DES + AES instructions).
pub fn cipher_extension_set() -> ExtensionSet {
    let mut ext = ExtensionSet::new();
    ext.register(ldur());
    ext.register(stur());
    ext.register(desperm());
    ext.register(desround());
    ext.register(aesround());
    ext.register(xorur());
    ext
}

/// The fully optimized platform extension set used for Table 1: widest
/// explored datapaths for public-key work plus the cipher instructions.
pub fn full_extension_set() -> ExtensionSet {
    let mut ext = mpn_extension_set(16, 4);
    ext.register(desperm());
    ext.register(desround());
    ext.register(aesround());
    ext.register(xorur());
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::asm::assemble;
    use xr32::config::CpuConfig;
    use xr32::cpu::Cpu;

    fn cpu_with(ext: ExtensionSet) -> Cpu {
        Cpu::with_extensions(CpuConfig::default(), ext)
    }

    #[test]
    fn ldur_stur_roundtrip_memory() {
        let p = assemble(
            "main:
                movi a0, 0x100
                movi a1, 0x200
                cust ldur ur0, a0, 4
                cust stur ur0, a1, 4
                halt",
        )
        .unwrap();
        let mut c = cpu_with(mpn_extension_set(4, 1));
        c.mem_mut().write_words(0x100, &[1, 2, 3, 4]).unwrap();
        c.run(&p).unwrap();
        assert_eq!(c.mem().read_words(0x200, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn add4_carries_across_lanes_and_flag() {
        let p = assemble(
            "main:
                movi a0, 0x100
                movi a1, 0x110
                movi a2, 0x120
                clc
                cust ldur ur0, a0, 4
                cust ldur ur1, a1, 4
                cust add4 ur2, ur0, ur1
                cust stur ur2, a2, 4
                halt",
        )
        .unwrap();
        let mut c = cpu_with(mpn_extension_set(4, 1));
        c.mem_mut()
            .write_words(0x100, &[u32::MAX, u32::MAX, u32::MAX, 1])
            .unwrap();
        c.mem_mut().write_words(0x110, &[1, 0, 0, 0]).unwrap();
        c.run(&p).unwrap();
        assert_eq!(c.mem().read_words(0x120, 4).unwrap(), vec![0, 0, 0, 2]);
    }

    #[test]
    fn mac2_matches_native_addmul() {
        let p = assemble(
            "main:
                movi a0, 0x100   ; r
                movi a1, 0x110   ; a
                movi a3, 0xdeadbeef
                movi a4, 7       ; carry in
                cust ldur ur0, a0, 2
                cust ldur ur1, a1, 2
                cust mac2 ur0, ur1, a3, a4
                cust stur ur0, a0, 2
                halt",
        )
        .unwrap();
        let mut c = cpu_with(mpn_extension_set(4, 2));
        c.mem_mut().write_words(0x100, &[5, 6]).unwrap();
        c.mem_mut()
            .write_words(0x110, &[0x12345678, 0x9abcdef0])
            .unwrap();
        c.run(&p).unwrap();
        // Native reference.
        let mut r = [5u32, 6];
        let carry_in = 7u64;
        let b = 0xdeadbeefu64;
        let mut carry = carry_in;
        for i in 0..2 {
            let t = [0x12345678u64, 0x9abcdef0][i] * b + r[i] as u64 + carry;
            r[i] = t as u32;
            carry = t >> 32;
        }
        assert_eq!(c.mem().read_words(0x100, 2).unwrap(), r.to_vec());
        assert_eq!(c.reg(4), carry as u32);
    }

    #[test]
    fn desround_matches_cipher_crate() {
        let des = ciphers::Des::new(0x1334_5779_9BBC_DFF1u64.to_be_bytes());
        let key = des.round_keys()[0];
        let block_after_ip = des::initial_permutation(0x0123_4567_89AB_CDEF);
        let (l, r) = ((block_after_ip >> 32) as u32, block_after_ip as u32);
        let p = assemble(
            "main:
                movi a0, 0x100
                cust ldur ur0, a0, 2
                cust desround ur0, a2, a3
                cust stur ur0, a0, 2
                halt",
        )
        .unwrap();
        let mut c = cpu_with(cipher_extension_set());
        c.mem_mut().write_words(0x100, &[r, l]).unwrap();
        c.set_reg(2, (key >> 32) as u32);
        c.set_reg(3, key as u32);
        c.run(&p).unwrap();
        let out = c.mem().read_words(0x100, 2).unwrap();
        let expect_r = l ^ des::feistel_f(r, key);
        assert_eq!(out[1], r, "new L = old R");
        assert_eq!(out[0], expect_r);
    }

    #[test]
    fn desperm_applies_ip_and_fp() {
        let p = assemble(
            "main:
                movi a0, 0x100
                cust ldur ur0, a0, 2
                cust desperm ur0, 0
                cust desperm ur0, 1
                cust stur ur0, a0, 2
                halt",
        )
        .unwrap();
        let mut c = cpu_with(cipher_extension_set());
        c.mem_mut()
            .write_words(0x100, &[0x89ABCDEF, 0x01234567])
            .unwrap();
        c.run(&p).unwrap();
        // FP(IP(x)) = x.
        assert_eq!(
            c.mem().read_words(0x100, 2).unwrap(),
            vec![0x89ABCDEF, 0x01234567]
        );
    }

    #[test]
    fn aesround_sequence_encrypts_like_reference() {
        // Run all ten AES-128 rounds via the custom instruction and
        // compare with the software implementation.
        let key: Vec<u8> = (0..16).collect();
        let aes_sw = ciphers::Aes::new(&key);
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u8) * 0x11;
        }
        let mut expect = block;
        aes_sw.encrypt_block16(&mut expect);

        // Build asm: initial AddRoundKey via xor in software-side setup;
        // simpler: do AddRoundKey(0) on the host, then rounds 1..=10 on
        // the CPU.
        let mut state = block;
        ciphers::aes::add_round_key(&mut state, &aes_sw.round_keys()[0]);
        let mut c = cpu_with(cipher_extension_set());
        for i in 0..4 {
            let w = u32::from_le_bytes(state[4 * i..4 * i + 4].try_into().unwrap());
            c.mem_mut().store_u32(0x100 + 4 * i as u32, w).unwrap();
        }
        for (r, rk) in aes_sw.round_keys().iter().enumerate().skip(1) {
            c.mem_mut().write_words(0x200, rk).unwrap();
            let sel = if r == 10 { 1 } else { 0 };
            let src = format!(
                "main:
                    movi a0, 0x100
                    movi a1, 0x200
                    cust ldur ur0, a0, 4
                    cust ldur ur1, a1, 4
                    cust aesround ur0, ur1, {sel}
                    cust stur ur0, a0, 4
                    halt"
            );
            let p = assemble(&src).unwrap();
            c.run(&p).unwrap();
        }
        let mut got = [0u8; 16];
        for i in 0..4 {
            let w = c.mem().load_u32(0x100 + 4 * i as u32).unwrap();
            got[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn area_grows_with_resources() {
        assert!(add_k(16).area > add_k(2).area);
        assert!(mac_k(4).area > mac_k(1).area);
        assert!(mac_k(1).area > add_k(16).area, "multipliers dominate");
    }

    #[test]
    fn extension_sets_compose() {
        let full = full_extension_set();
        for name in ["ldur", "stur", "add16", "mac4", "desround", "aesround"] {
            assert!(full.get(name).is_some(), "{name} missing");
        }
        assert!(full.total_area() > 0);
    }
}
