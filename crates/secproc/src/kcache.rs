//! The persistent kernel-cycle memo cache.
//!
//! ISS measurements are deterministic in `(configuration fingerprint,
//! kernel variant, op, operand size, stimulus seed)`, and the bench
//! binaries re-measure the same points both within a run (Table 1 rows
//! reuse Fig. 8's 3DES sweep) and across runs. A [`KCache`] memoizes
//! each such *measurement unit* as a `Vec<f64>` of cycle counts under a
//! content-addressed key (see [`key`]) and persists the entries to
//! `target/kcache.json` (override with the `WSP_KCACHE` environment
//! variable) through `xobs::json`.
//!
//! Concurrency: the store is split into [`SHARDS`] independent
//! `RwLock`-guarded maps routed by an FNV-1a hash of the key, so the
//! cache is read-mostly-friendly under service traffic — concurrent
//! readers of one shard never block each other, a writer blocks only
//! its own shard, and persistence ([`KCache::to_json`]) snapshots one
//! shard at a time under a *read* lock instead of freezing the whole
//! cache for the duration of the serialization. The on-disk format is
//! unchanged (entries globally key-sorted), so files round-trip across
//! the sharded and pre-sharded implementations.
//!
//! Integrity: every persisted entry stores
//! [`xpar::memo::checksum`]`(key, values)`. An entry whose checksum does
//! not match on load — a poisoned cache — is dropped and recomputed,
//! never served. A changed core configuration changes the fingerprint
//! inside the key, so stale entries simply miss.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use xobs::Json;
use xpar::memo::checksum;

/// Version of the on-disk cache file format.
pub const KCACHE_SCHEMA_VERSION: u64 = 1;

/// Number of independent lock shards. A power of two so the router is
/// a mask; 16 comfortably exceeds the worker counts the xpar pool
/// spawns on this class of machine.
pub const SHARDS: usize = 16;

/// FNV-1a offset basis (shard router hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Builds the content key for one measurement unit: the core
/// configuration fingerprint, the kernel-library variant tag (see
/// [`crate::issops::KernelVariant::tag`]), the measured op (or a
/// composite unit name such as `"table1:rsa"`), the operand size in
/// limbs, and the stimulus seed (or a digest of the stimulus plan).
pub fn key(config_fp: u64, variant: &str, op: &str, n: u64, seed: u64) -> String {
    format!("{config_fp:016x}/{variant}/{op}/n{n}/s{seed:016x}")
}

/// The shard index `key` routes to.
pub fn shard_of(key: &str) -> usize {
    let mut h = FNV_OFFSET;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    (h as usize) & (SHARDS - 1)
}

/// A thread-safe kernel-cycle cache with optional file persistence,
/// shard-locked for read-mostly service traffic.
#[derive(Debug)]
pub struct KCache {
    shards: [RwLock<HashMap<String, Vec<f64>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    path: Option<PathBuf>,
    poisoned_dropped: AtomicU64,
}

impl Default for KCache {
    fn default() -> Self {
        KCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            path: None,
            poisoned_dropped: AtomicU64::new(0),
        }
    }
}

impl KCache {
    /// An empty in-memory cache (no persistence).
    pub fn new() -> Self {
        KCache::default()
    }

    /// The default cache location: `$WSP_KCACHE` when set, else
    /// `target/kcache.json`.
    pub fn default_path() -> PathBuf {
        match std::env::var_os("WSP_KCACHE") {
            Some(p) => PathBuf::from(p),
            None => PathBuf::from("target/kcache.json"),
        }
    }

    /// Opens the default cache file (missing or unreadable files start
    /// an empty cache at that path).
    pub fn open_default() -> Self {
        Self::open(Self::default_path())
    }

    /// Opens a cache bound to `path`, loading any valid persisted
    /// entries. Malformed files, malformed entries, and entries whose
    /// integrity checksum does not match are dropped (counted in
    /// [`KCache::poisoned_dropped`] when the checksum is the reason).
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut cache = KCache {
            path: Some(path.clone()),
            ..KCache::default()
        };
        if let Ok(text) = std::fs::read_to_string(&path) {
            cache.load_entries(&text);
        }
        cache
    }

    fn load_entries(&mut self, text: &str) {
        let Ok(json) = xobs::json::parse(text) else {
            return;
        };
        let Some(entries) = json.get("entries").and_then(Json::as_arr) else {
            return;
        };
        for entry in entries {
            let (Some(key), Some(values), Some(check)) = (
                entry.get("key").and_then(Json::as_str),
                entry.get("values").and_then(Json::as_arr),
                entry.get("check").and_then(Json::as_str),
            ) else {
                continue;
            };
            let values: Vec<f64> = values.iter().filter_map(Json::as_f64).collect();
            let Ok(stored_check) = u64::from_str_radix(check, 16) else {
                continue;
            };
            if checksum(key, &values) != stored_check {
                // Poisoned: the stored cycles do not match the entry's
                // integrity fingerprint. Drop it so it is recomputed.
                self.poisoned_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.insert(key, values);
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Vec<f64>>> {
        &self.shards[shard_of(key)]
    }

    /// Number of lock shards the store is split into.
    pub fn shard_count(&self) -> usize {
        SHARDS
    }

    /// Entries dropped at load time because their integrity checksum
    /// did not match (a poisoned cache file).
    pub fn poisoned_dropped(&self) -> u64 {
        self.poisoned_dropped.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("kcache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to measure.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The cached cycle vector for `key`, if any, counting a hit or
    /// miss. Use with [`KCache::insert`] when the computation is
    /// fallible and only successes should be cached. Takes only the
    /// owning shard's read lock, so concurrent lookups on other shards
    /// (and on the same shard) proceed unblocked.
    pub fn get(&self, key: &str) -> Option<Vec<f64>> {
        let found = self
            .shard(key)
            .read()
            .expect("kcache shard poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts an entry without touching the hit/miss counters. Takes
    /// only the owning shard's write lock.
    pub fn insert(&self, key: &str, values: Vec<f64>) {
        self.shard(key)
            .write()
            .expect("kcache shard poisoned")
            .insert(key.to_owned(), values);
    }

    /// Returns the cached cycle vector for `key`, measuring via
    /// `compute` on a miss. Entries of the wrong arity are recomputed;
    /// pass `expected_len == 0` to accept any arity.
    ///
    /// The computation must be deterministic in `key`: concurrent
    /// misses on the same key may compute twice, and either (equal)
    /// result is kept. No lock is held while `compute` runs.
    pub fn get_or_compute(
        &self,
        key: &str,
        expected_len: usize,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Vec<f64> {
        {
            let shard = self.shard(key).read().expect("kcache shard poisoned");
            if let Some(v) = shard.get(key) {
                if expected_len == 0 || v.len() == expected_len {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return v.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Scalar convenience over [`KCache::get_or_compute`].
    pub fn scalar(&self, key: &str, compute: impl FnOnce() -> f64) -> f64 {
        self.get_or_compute(key, 1, || vec![compute()])[0]
    }

    /// Every `(key, values)` pair, globally sorted by key. Snapshots
    /// one shard at a time under read locks.
    pub fn entries(&self) -> Vec<(String, Vec<f64>)> {
        let mut out: Vec<(String, Vec<f64>)> = Vec::new();
        for shard in &self.shards {
            let map = shard.read().expect("kcache shard poisoned");
            out.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Serializes every entry (with integrity checksums) as the cache
    /// file document. Shard-aware: each shard is snapshotted under its
    /// own read lock in turn, so a persist in progress never blocks
    /// readers (and blocks writers only of the shard currently being
    /// copied, for the duration of a clone — not the serialization).
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries()
            .into_iter()
            .map(|(key, values)| {
                let check = format!("{:016x}", checksum(&key, &values));
                let values: Vec<Json> = values.into_iter().map(Json::from).collect();
                Json::obj()
                    .set("key", key.as_str())
                    .set("values", values)
                    .set("check", check)
            })
            .collect();
        Json::obj()
            .set("schema_version", KCACHE_SCHEMA_VERSION)
            .set("entries", entries)
    }

    /// Writes the cache to `path`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from the write.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_string_compact() + "\n")
    }

    /// Writes the cache back to the path it was opened from, if any.
    /// In-memory caches ([`KCache::new`]) are a no-op.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from the write.
    pub fn save(&self) -> io::Result<()> {
        match &self.path {
            Some(path) => self.save_to(path),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kcache_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn key_embeds_every_determinant() {
        let base = key(0xA, "base", kreg::opname::ADD_N, 8, 1);
        assert_ne!(
            base,
            key(0xB, "base", kreg::opname::ADD_N, 8, 1),
            "config fp"
        );
        assert_ne!(
            base,
            key(0xA, "accel-a16m4", kreg::opname::ADD_N, 8, 1),
            "variant"
        );
        assert_ne!(base, key(0xA, "base", kreg::opname::SUB_N, 8, 1), "op");
        assert_ne!(base, key(0xA, "base", kreg::opname::ADD_N, 9, 1), "size");
        assert_ne!(base, key(0xA, "base", kreg::opname::ADD_N, 8, 2), "seed");
    }

    #[test]
    fn cold_start_warm_hit_round_trip() {
        let path = tmpfile("roundtrip");
        let _ = std::fs::remove_file(&path);

        // Cold: miss, compute, persist.
        let cache = KCache::open(&path);
        let k = key(0x1234, "base", kreg::opname::ADD_N, 8, 42);
        let mut computed = 0;
        let v = cache.get_or_compute(&k, 2, || {
            computed += 1;
            vec![202.0, 205.5]
        });
        assert_eq!(v, vec![202.0, 205.5]);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.save().unwrap();

        // Warm: a fresh open serves the persisted entry.
        let warm = KCache::open(&path);
        assert_eq!(warm.len(), 1);
        let v2 = warm.get_or_compute(&k, 2, || panic!("must not recompute"));
        assert_eq!(v2, v);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(warm.hit_rate(), 1.0);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_fingerprint_misses() {
        let cache = KCache::new();
        let old = key(0xAAAA, "base", kreg::opname::ADD_N, 8, 42);
        cache.get_or_compute(&old, 1, || vec![100.0]);
        // Same measurement on a reconfigured core: different key, so the
        // stale entry cannot be served.
        let new = key(0xBBBB, "base", kreg::opname::ADD_N, 8, 42);
        let v = cache.get_or_compute(&new, 1, || vec![140.0]);
        assert_eq!(v, vec![140.0]);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn core_model_is_part_of_the_key_identity() {
        // Regression for the KCache identity hole: two configurations
        // identical in every respect except the pipeline model must
        // produce different keys for the same measurement, because the
        // full CpuConfig (core kind + widths included) is hashed into
        // the fingerprint the key embeds.
        use xr32::config::CpuConfig;
        let io = CpuConfig::default();
        let ooo = CpuConfig::ooo();
        let k_io = key(io.fingerprint(), "base", kreg::opname::ADD_N, 8, 42);
        let k_ooo = key(ooo.fingerprint(), "base", kreg::opname::ADD_N, 8, 42);
        assert_ne!(k_io, k_ooo, "core models must never collide on a key");

        // And a slow in-order measurement cached under its key is never
        // served to the out-of-order core's lookup.
        let cache = KCache::new();
        cache.get_or_compute(&k_io, 1, || vec![900.0]);
        let v = cache.get_or_compute(&k_ooo, 1, || vec![450.0]);
        assert_eq!(v, vec![450.0], "ooo lookup must measure, not reuse io");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cross_core_poisoned_collision_is_dropped() {
        // Belt-and-braces for the identity fix: even if a cache file
        // was written by a pre-fix build where an in-order entry sat
        // under a key now owned by an out-of-order measurement, its
        // values-vs-checksum integrity still gates the load, so a
        // tampered/colliding entry is dropped and recomputed rather
        // than served across core models.
        use xr32::config::CpuConfig;
        let path = tmpfile("core_collision");
        let k_ooo = key(
            CpuConfig::ooo().fingerprint(),
            "base",
            kreg::opname::ADD_N,
            8,
            42,
        );
        // The stored cycles are the in-order core's (900.0) but the
        // checksum describes the value an honest writer recorded
        // (450.0): exactly what a collision overwrite looks like.
        let stale_check = format!("{:016x}", checksum(&k_ooo, &[450.0]));
        let doc = format!(
            r#"{{"schema_version":1,"entries":[{{"key":"{k_ooo}","values":[900.0],"check":"{stale_check}"}}]}}"#
        );
        std::fs::write(&path, doc).unwrap();

        let cache = KCache::open(&path);
        assert_eq!(cache.poisoned_dropped(), 1);
        let v = cache.get_or_compute(&k_ooo, 1, || vec![450.0]);
        assert_eq!(v, vec![450.0], "recomputed under the ooo key");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_entry_is_dropped_and_recomputed() {
        let path = tmpfile("poison");
        let k = key(0x1234, "base", kreg::opname::ADD_N, 8, 42);
        // A file whose stored cycles were tampered with: the checksum
        // still describes the original [202.0] value.
        let good_check = format!("{:016x}", checksum(&k, &[202.0]));
        let doc = format!(
            r#"{{"schema_version":1,"entries":[{{"key":"{k}","values":[666.0],"check":"{good_check}"}}]}}"#
        );
        std::fs::write(&path, doc).unwrap();

        let cache = KCache::open(&path);
        assert_eq!(cache.poisoned_dropped(), 1, "tampered entry dropped");
        assert_eq!(cache.len(), 0);
        let v = cache.get_or_compute(&k, 1, || vec![202.0]);
        assert_eq!(v, vec![202.0], "recomputed, not served poisoned");
        assert_eq!(cache.misses(), 1);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_shard_does_not_take_down_its_neighbours() {
        // Shard-aware regression: a file holding valid entries spread
        // across many shards plus one tampered entry must drop exactly
        // the tampered entry — the poisoning is confined to that entry
        // and the healthy entries in every shard (including the
        // poisoned entry's own) still load and serve.
        let path = tmpfile("poisoned_shard");
        let mut entries = Vec::new();
        let mut keys = Vec::new();
        for seed in 0..64u64 {
            let k = key(0x5EED, "base", kreg::opname::ADD_N, 8, seed);
            let v = vec![100.0 + seed as f64];
            let check = format!("{:016x}", checksum(&k, &v));
            entries.push(format!(
                r#"{{"key":"{k}","values":[{}],"check":"{check}"}}"#,
                v[0]
            ));
            keys.push((k, v));
        }
        // Tamper with one entry's values, keeping its original check.
        let bad = key(0x5EED, "base", kreg::opname::ADD_N, 8, 7);
        let bad_check = format!("{:016x}", checksum(&bad, &[107.0]));
        let bad_idx = 7;
        entries[bad_idx] = format!(r#"{{"key":"{bad}","values":[666.0],"check":"{bad_check}"}}"#);
        let doc = format!(
            r#"{{"schema_version":1,"entries":[{}]}}"#,
            entries.join(",")
        );
        std::fs::write(&path, doc).unwrap();

        let cache = KCache::open(&path);
        assert_eq!(cache.poisoned_dropped(), 1);
        assert_eq!(cache.len(), 63, "only the tampered entry is dropped");
        // The 64 sequential seeds exercise multiple shards; every
        // healthy entry — shard-mates of the poisoned one included —
        // must still be served.
        let occupied: std::collections::BTreeSet<usize> =
            keys.iter().map(|(k, _)| shard_of(k)).collect();
        assert!(occupied.len() > 1, "test must span multiple shards");
        for (i, (k, v)) in keys.iter().enumerate() {
            if i == bad_idx {
                assert_eq!(cache.get(k), None, "poisoned entry must miss");
            } else {
                assert_eq!(cache.get(k).as_ref(), Some(v));
            }
        }

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_does_not_block_concurrent_readers() {
        // The shard-aware persist guarantee: while one thread
        // repeatedly serializes the cache, reader threads on all shards
        // keep being served. With a whole-cache mutex this test would
        // still pass functionally but the shard assertion below pins
        // the structural property: to_json holds at most one shard's
        // read lock at a time, so a reader's own read lock can always
        // be acquired concurrently.
        use std::sync::atomic::{AtomicBool, Ordering as AO};
        let cache = KCache::new();
        let keys: Vec<String> = (0..256u64)
            .map(|s| key(0xC0FFEE, "base", kreg::opname::MUL_1, 16, s))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            cache.insert(k, vec![i as f64]);
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let persister = scope.spawn(|| {
                let mut docs = 0u32;
                while !stop.load(AO::Relaxed) {
                    let json = cache.to_json();
                    assert!(json.get("entries").and_then(Json::as_arr).is_some());
                    docs += 1;
                }
                docs
            });
            let mut reader_hits = 0u64;
            for round in 0..50 {
                for (i, k) in keys.iter().enumerate() {
                    let got = cache.get(k).expect("entry present");
                    assert_eq!(got[0], i as f64);
                    reader_hits += 1;
                }
                if round == 25 {
                    // Writers interleave with the persister too.
                    cache.insert(
                        &key(0xC0FFEE, "base", kreg::opname::MUL_1, 16, 999),
                        vec![1.0],
                    );
                }
            }
            stop.store(true, AO::Relaxed);
            let docs = persister.join().unwrap();
            assert!(docs >= 1, "persister made progress");
            assert_eq!(reader_hits, 50 * 256);
        });
    }

    #[test]
    fn valid_persisted_entry_survives_checksum() {
        let path = tmpfile("valid");
        let cache = KCache::open(&path);
        let k = key(0x77, "accel-a16m4", kreg::opname::ADDMUL_1, 32, 8);
        cache.get_or_compute(&k, 0, || vec![100.25, 7.0, -1.5]);
        cache.save().unwrap();
        let warm = KCache::open(&path);
        assert_eq!(warm.poisoned_dropped(), 0);
        assert_eq!(
            warm.get_or_compute(&k, 0, || panic!("persisted entry must round-trip")),
            vec![100.25, 7.0, -1.5]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_entries_stay_globally_sorted() {
        let cache = KCache::new();
        for seed in [9u64, 3, 7, 1, 5] {
            cache.insert(&key(0x1, "base", kreg::opname::ADD_N, 8, seed), vec![1.0]);
        }
        let keys: Vec<String> = cache.entries().into_iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "persisted order is key-sorted across shards");
    }

    #[test]
    fn garbage_file_starts_empty() {
        let path = tmpfile("garbage");
        std::fs::write(&path, "not json at all{{{").unwrap();
        let cache = KCache::open(&path);
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
