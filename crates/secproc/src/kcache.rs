//! The persistent kernel-cycle memo cache.
//!
//! ISS measurements are deterministic in `(configuration fingerprint,
//! kernel variant, op, operand size, stimulus seed)`, and the bench
//! binaries re-measure the same points both within a run (Table 1 rows
//! reuse Fig. 8's 3DES sweep) and across runs. A [`KCache`] memoizes
//! each such *measurement unit* as a `Vec<f64>` of cycle counts under a
//! content-addressed key (see [`key`]) and persists the entries to
//! `target/kcache.json` (override with the `WSP_KCACHE` environment
//! variable) through `xobs::json`.
//!
//! Integrity: every persisted entry stores
//! [`xpar::memo::checksum`]`(key, values)`. An entry whose checksum does
//! not match on load — a poisoned cache — is dropped and recomputed,
//! never served. A changed core configuration changes the fingerprint
//! inside the key, so stale entries simply miss.

use std::io;
use std::path::{Path, PathBuf};

use xobs::Json;
use xpar::memo::{checksum, Memo};

/// Version of the on-disk cache file format.
pub const KCACHE_SCHEMA_VERSION: u64 = 1;

/// Builds the content key for one measurement unit: the core
/// configuration fingerprint, the kernel-library variant tag (see
/// [`crate::issops::KernelVariant::tag`]), the measured op (or a
/// composite unit name such as `"table1:rsa"`), the operand size in
/// limbs, and the stimulus seed (or a digest of the stimulus plan).
pub fn key(config_fp: u64, variant: &str, op: &str, n: u64, seed: u64) -> String {
    format!("{config_fp:016x}/{variant}/{op}/n{n}/s{seed:016x}")
}

/// A thread-safe kernel-cycle cache with optional file persistence.
#[derive(Debug, Default)]
pub struct KCache {
    memo: Memo,
    path: Option<PathBuf>,
    poisoned_dropped: u64,
}

impl KCache {
    /// An empty in-memory cache (no persistence).
    pub fn new() -> Self {
        KCache::default()
    }

    /// The default cache location: `$WSP_KCACHE` when set, else
    /// `target/kcache.json`.
    pub fn default_path() -> PathBuf {
        match std::env::var_os("WSP_KCACHE") {
            Some(p) => PathBuf::from(p),
            None => PathBuf::from("target/kcache.json"),
        }
    }

    /// Opens the default cache file (missing or unreadable files start
    /// an empty cache at that path).
    pub fn open_default() -> Self {
        Self::open(Self::default_path())
    }

    /// Opens a cache bound to `path`, loading any valid persisted
    /// entries. Malformed files, malformed entries, and entries whose
    /// integrity checksum does not match are dropped (counted in
    /// [`KCache::poisoned_dropped`] when the checksum is the reason).
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut cache = KCache {
            memo: Memo::new(),
            path: Some(path.clone()),
            poisoned_dropped: 0,
        };
        if let Ok(text) = std::fs::read_to_string(&path) {
            cache.load_entries(&text);
        }
        cache
    }

    fn load_entries(&mut self, text: &str) {
        let Ok(json) = xobs::json::parse(text) else {
            return;
        };
        let Some(entries) = json.get("entries").and_then(Json::as_arr) else {
            return;
        };
        for entry in entries {
            let (Some(key), Some(values), Some(check)) = (
                entry.get("key").and_then(Json::as_str),
                entry.get("values").and_then(Json::as_arr),
                entry.get("check").and_then(Json::as_str),
            ) else {
                continue;
            };
            let values: Vec<f64> = values.iter().filter_map(Json::as_f64).collect();
            let Ok(stored_check) = u64::from_str_radix(check, 16) else {
                continue;
            };
            if checksum(key, &values) != stored_check {
                // Poisoned: the stored cycles do not match the entry's
                // integrity fingerprint. Drop it so it is recomputed.
                self.poisoned_dropped += 1;
                continue;
            }
            self.memo.insert(key, values);
        }
    }

    /// Entries dropped at load time because their integrity checksum
    /// did not match (a poisoned cache file).
    pub fn poisoned_dropped(&self) -> u64 {
        self.poisoned_dropped
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Lookups that had to measure.
    pub fn misses(&self) -> u64 {
        self.memo.misses()
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        self.memo.hit_rate()
    }

    /// The cached cycle vector for `key`, if any, counting a hit or
    /// miss. Use with [`KCache::insert`] when the computation is
    /// fallible and only successes should be cached.
    pub fn get(&self, key: &str) -> Option<Vec<f64>> {
        self.memo.get(key)
    }

    /// Inserts an entry without touching the hit/miss counters.
    pub fn insert(&self, key: &str, values: Vec<f64>) {
        self.memo.insert(key, values);
    }

    /// Returns the cached cycle vector for `key`, measuring via
    /// `compute` on a miss. Entries of the wrong arity are recomputed;
    /// pass `expected_len == 0` to accept any arity.
    pub fn get_or_compute(
        &self,
        key: &str,
        expected_len: usize,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Vec<f64> {
        self.memo.get_or_compute(key, expected_len, compute)
    }

    /// Scalar convenience over [`KCache::get_or_compute`].
    pub fn scalar(&self, key: &str, compute: impl FnOnce() -> f64) -> f64 {
        self.get_or_compute(key, 1, || vec![compute()])[0]
    }

    /// Serializes every entry (with integrity checksums) as the cache
    /// file document.
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .memo
            .entries()
            .into_iter()
            .map(|(key, values)| {
                let check = format!("{:016x}", checksum(&key, &values));
                let values: Vec<Json> = values.into_iter().map(Json::from).collect();
                Json::obj()
                    .set("key", key.as_str())
                    .set("values", values)
                    .set("check", check)
            })
            .collect();
        Json::obj()
            .set("schema_version", KCACHE_SCHEMA_VERSION)
            .set("entries", entries)
    }

    /// Writes the cache to `path`.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from the write.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_string_compact() + "\n")
    }

    /// Writes the cache back to the path it was opened from, if any.
    /// In-memory caches ([`KCache::new`]) are a no-op.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from the write.
    pub fn save(&self) -> io::Result<()> {
        match &self.path {
            Some(path) => self.save_to(path),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kcache_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn key_embeds_every_determinant() {
        let base = key(0xA, "base", kreg::opname::ADD_N, 8, 1);
        assert_ne!(
            base,
            key(0xB, "base", kreg::opname::ADD_N, 8, 1),
            "config fp"
        );
        assert_ne!(
            base,
            key(0xA, "accel-a16m4", kreg::opname::ADD_N, 8, 1),
            "variant"
        );
        assert_ne!(base, key(0xA, "base", kreg::opname::SUB_N, 8, 1), "op");
        assert_ne!(base, key(0xA, "base", kreg::opname::ADD_N, 9, 1), "size");
        assert_ne!(base, key(0xA, "base", kreg::opname::ADD_N, 8, 2), "seed");
    }

    #[test]
    fn cold_start_warm_hit_round_trip() {
        let path = tmpfile("roundtrip");
        let _ = std::fs::remove_file(&path);

        // Cold: miss, compute, persist.
        let cache = KCache::open(&path);
        let k = key(0x1234, "base", kreg::opname::ADD_N, 8, 42);
        let mut computed = 0;
        let v = cache.get_or_compute(&k, 2, || {
            computed += 1;
            vec![202.0, 205.5]
        });
        assert_eq!(v, vec![202.0, 205.5]);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.save().unwrap();

        // Warm: a fresh open serves the persisted entry.
        let warm = KCache::open(&path);
        assert_eq!(warm.len(), 1);
        let v2 = warm.get_or_compute(&k, 2, || panic!("must not recompute"));
        assert_eq!(v2, v);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(warm.hit_rate(), 1.0);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_fingerprint_misses() {
        let cache = KCache::new();
        let old = key(0xAAAA, "base", kreg::opname::ADD_N, 8, 42);
        cache.get_or_compute(&old, 1, || vec![100.0]);
        // Same measurement on a reconfigured core: different key, so the
        // stale entry cannot be served.
        let new = key(0xBBBB, "base", kreg::opname::ADD_N, 8, 42);
        let v = cache.get_or_compute(&new, 1, || vec![140.0]);
        assert_eq!(v, vec![140.0]);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn core_model_is_part_of_the_key_identity() {
        // Regression for the KCache identity hole: two configurations
        // identical in every respect except the pipeline model must
        // produce different keys for the same measurement, because the
        // full CpuConfig (core kind + widths included) is hashed into
        // the fingerprint the key embeds.
        use xr32::config::CpuConfig;
        let io = CpuConfig::default();
        let ooo = CpuConfig::ooo();
        let k_io = key(io.fingerprint(), "base", kreg::opname::ADD_N, 8, 42);
        let k_ooo = key(ooo.fingerprint(), "base", kreg::opname::ADD_N, 8, 42);
        assert_ne!(k_io, k_ooo, "core models must never collide on a key");

        // And a slow in-order measurement cached under its key is never
        // served to the out-of-order core's lookup.
        let cache = KCache::new();
        cache.get_or_compute(&k_io, 1, || vec![900.0]);
        let v = cache.get_or_compute(&k_ooo, 1, || vec![450.0]);
        assert_eq!(v, vec![450.0], "ooo lookup must measure, not reuse io");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cross_core_poisoned_collision_is_dropped() {
        // Belt-and-braces for the identity fix: even if a cache file
        // was written by a pre-fix build where an in-order entry sat
        // under a key now owned by an out-of-order measurement, its
        // values-vs-checksum integrity still gates the load, so a
        // tampered/colliding entry is dropped and recomputed rather
        // than served across core models.
        use xr32::config::CpuConfig;
        let path = tmpfile("core_collision");
        let k_ooo = key(
            CpuConfig::ooo().fingerprint(),
            "base",
            kreg::opname::ADD_N,
            8,
            42,
        );
        // The stored cycles are the in-order core's (900.0) but the
        // checksum describes the value an honest writer recorded
        // (450.0): exactly what a collision overwrite looks like.
        let stale_check = format!("{:016x}", checksum(&k_ooo, &[450.0]));
        let doc = format!(
            r#"{{"schema_version":1,"entries":[{{"key":"{k_ooo}","values":[900.0],"check":"{stale_check}"}}]}}"#
        );
        std::fs::write(&path, doc).unwrap();

        let cache = KCache::open(&path);
        assert_eq!(cache.poisoned_dropped(), 1);
        let v = cache.get_or_compute(&k_ooo, 1, || vec![450.0]);
        assert_eq!(v, vec![450.0], "recomputed under the ooo key");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_entry_is_dropped_and_recomputed() {
        let path = tmpfile("poison");
        let k = key(0x1234, "base", kreg::opname::ADD_N, 8, 42);
        // A file whose stored cycles were tampered with: the checksum
        // still describes the original [202.0] value.
        let good_check = format!("{:016x}", checksum(&k, &[202.0]));
        let doc = format!(
            r#"{{"schema_version":1,"entries":[{{"key":"{k}","values":[666.0],"check":"{good_check}"}}]}}"#
        );
        std::fs::write(&path, doc).unwrap();

        let cache = KCache::open(&path);
        assert_eq!(cache.poisoned_dropped(), 1, "tampered entry dropped");
        assert_eq!(cache.len(), 0);
        let v = cache.get_or_compute(&k, 1, || vec![202.0]);
        assert_eq!(v, vec![202.0], "recomputed, not served poisoned");
        assert_eq!(cache.misses(), 1);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn valid_persisted_entry_survives_checksum() {
        let path = tmpfile("valid");
        let cache = KCache::open(&path);
        let k = key(0x77, "accel-a16m4", kreg::opname::ADDMUL_1, 32, 8);
        cache.get_or_compute(&k, 0, || vec![100.25, 7.0, -1.5]);
        cache.save().unwrap();
        let warm = KCache::open(&path);
        assert_eq!(warm.poisoned_dropped(), 0);
        assert_eq!(
            warm.get_or_compute(&k, 0, || panic!("persisted entry must round-trip")),
            vec![100.25, 7.0, -1.5]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_file_starts_empty() {
        let path = tmpfile("garbage");
        std::fs::write(&path, "not json at all{{{").unwrap();
        let cache = KCache::open(&path);
        assert!(cache.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
