//! The ISS-backed basic-operations provider.
//!
//! [`IssMpn`] implements [`pubkey::ops::MpnOps`] by running the XR32
//! assembly kernels on the cycle-accurate simulator for **every** basic
//! operation — the paper's slow-but-accurate reference evaluation
//! method ("several hours to few days per candidate algorithm" on real
//! hardware models; our XR32 is faster but still orders of magnitude
//! slower than macro-model estimation).
//!
//! The kernels, their entry labels, calling conventions and host golden
//! references all come from the kernel registry ([`kreg`]): dispatch is
//! by [`KernelId`], not by string matching. Every call optionally
//! verifies the kernel's result against the registered golden
//! reference; a mismatch is *recorded* as a typed
//! [`KernelError::Divergence`] (retrievable via
//! [`IssMpn::kernel_errors`] and surfaced through run reports) instead
//! of aborting the measurement.

use crate::insns;
use kreg::kernels::mpn as kmpn;
use kreg::{id, CallConv, KernelError, KernelId};
use mpint::limb::Limb;
use pubkey::ops::{opname, MpnOps};
use std::collections::BTreeMap;
use xfault::{FaultPlan, PlanSpec};
use xobs::trace::TraceSink;
use xr32::asm::{assemble, Program};
use xr32::config::CpuConfig;
use xr32::cpu::{Cpu, SimError};
use xr32::ext::ExtensionSet;
use xr32::Fidelity;

pub use kreg::KernelVariant;

/// Snapshot of one radix core's architectural state: the exact fields
/// the dual-fidelity co-simulation spot checks compare between the fast
/// and cycle-accurate engines (timing state is deliberately excluded —
/// the fast path models none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// General registers `a0`–`a15`.
    pub regs: [u32; 16],
    /// FNV-1a digest of the whole data memory.
    pub mem_digest: u64,
    /// Cumulative retired-instruction count of the core.
    pub retired: u64,
}

impl ArchState {
    fn of(cpu: &Cpu) -> Self {
        let mut regs = [0u32; 16];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = cpu.reg(i);
        }
        ArchState {
            regs,
            mem_digest: cpu.mem().digest(),
            retired: cpu.retired(),
        }
    }
}

/// Base addresses of the kernel operand regions in simulator memory.
const RP_ADDR: u32 = 0x1000;
const AP_ADDR: u32 = 0x40000;
const BP_ADDR: u32 = 0x80000;

/// ISS-backed [`MpnOps`] provider (32-bit and 16-bit radix sides).
pub struct IssMpn {
    cpu32: Cpu,
    prog32: Program,
    cpu16: Cpu,
    prog16: Program,
    cycles: f64,
    counts: BTreeMap<&'static str, u64>,
    glue_cost: f64,
    verify: bool,
    errors: Vec<KernelError>,
    sink: Option<Box<dyn TraceSink>>,
    fidelity: Fidelity,
}

impl IssMpn {
    /// Builds a provider running the base kernels on the given core
    /// configuration.
    pub fn base(config: CpuConfig) -> Self {
        Self::with_variant(config, KernelVariant::Base)
    }

    /// Builds a provider running the accelerated kernels (the matching
    /// extension set is configured automatically).
    pub fn accelerated(config: CpuConfig, add_lanes: u32, mac_lanes: u32) -> Self {
        Self::with_variant(
            config,
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            },
        )
    }

    /// Builds a provider for an explicit kernel variant.
    ///
    /// # Panics
    ///
    /// Panics if the bundled kernel sources fail to assemble (a build
    /// defect, not a runtime condition).
    pub fn with_variant(config: CpuConfig, variant: KernelVariant) -> Self {
        let (src32, ext): (String, ExtensionSet) = match variant {
            KernelVariant::Base => (kmpn::base32_source(), ExtensionSet::new()),
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            } => (
                kmpn::accel32_source(add_lanes, mac_lanes),
                insns::mpn_extension_set(add_lanes, mac_lanes),
            ),
        };
        Self::with_library(config, &src32, ext)
    }

    /// Builds a provider running an arbitrary 32-bit kernel library —
    /// e.g. an `xopt`-generated variant unit — under `ext`. The 16-bit
    /// radix side always runs the bundled base library. Kernels absent
    /// from `src32` simply fail at call time with an undefined-label
    /// error, so a single-kernel library is fine for single-kernel
    /// measurements.
    ///
    /// # Panics
    ///
    /// Panics if `src32` (or the bundled 16-bit library) fails to
    /// assemble — callers are expected to hand over already-gated
    /// sources.
    pub fn with_library(config: CpuConfig, src32: &str, ext: ExtensionSet) -> Self {
        let prog32 = assemble(src32).expect("32-bit kernel library must assemble");
        let prog16 =
            assemble(&kmpn::base16_source()).expect("bundled 16-bit kernels must assemble");
        let mut cpu32 = Cpu::with_extensions(config.clone(), ext);
        cpu32.set_fuel(u64::MAX);
        let mut cpu16 = Cpu::new(config);
        cpu16.set_fuel(u64::MAX);
        IssMpn {
            cpu32,
            prog32,
            cpu16,
            prog16,
            cycles: 0.0,
            counts: BTreeMap::new(),
            glue_cost: 4.0,
            verify: true,
            errors: Vec::new(),
            sink: None,
            fidelity: Fidelity::CycleAccurate,
        }
    }

    /// Selects the execution engine for both radix cores. The default
    /// is [`Fidelity::CycleAccurate`]. With [`Fidelity::Fast`]
    /// selected, kernel invocations run on the pre-decoded functional
    /// engine: golden verification ([`IssMpn::verify32`] /
    /// [`IssMpn::verify16`]) is bit-identical but cycle measurement is
    /// structurally refused — [`IssMpn::measure32`] /
    /// [`IssMpn::measure16`] return a typed
    /// [`KernelError::Unsupported`].
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        self.fidelity = fidelity;
        self.cpu32.set_fidelity(fidelity);
        self.cpu16.set_fidelity(fidelity);
    }

    /// The execution engine both radix cores currently use.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Architectural state of the 32-bit radix core (for dual-fidelity
    /// co-simulation spot checks).
    pub fn arch_state32(&self) -> ArchState {
        ArchState::of(&self.cpu32)
    }

    /// Architectural state of the 16-bit radix core.
    pub fn arch_state16(&self) -> ArchState {
        ArchState::of(&self.cpu16)
    }

    /// Attaches (or detaches, with `None`) a trace sink observing every
    /// kernel invocation on both radix cores. Each `cpu.call` is
    /// bracketed by synthetic entry Call/Ret events, so cycle
    /// attribution over a whole co-simulation covers every simulated
    /// cycle. Use [`xobs::trace::Shared`] to keep access to the sink's
    /// accumulated state while the provider owns it.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Detaches and returns the current trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Raw cycle counters of the two radix cores, `(cpu32, cpu16)`.
    /// Their sum is the total simulated cycles an attached
    /// [`xobs::Attribution`] sink must account for exactly.
    pub fn core_cycles(&self) -> (u64, u64) {
        (self.cpu32.cycles(), self.cpu16.cycles())
    }

    /// The *CoreConfigId* of the pipeline model both radix cores run
    /// (`"io"`, `"ooo-…"`). `measure32`/`measure16` cycle counts are
    /// only comparable between ISS instances that report the same id;
    /// the flow layers stamp it into measurement units, span attributes
    /// and report points.
    pub fn core_id(&self) -> String {
        self.cpu32.config().core_id()
    }

    /// Enables/disables per-call verification against the registered
    /// golden reference (on by default).
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Arms a deterministic fault-injection campaign on both radix
    /// cores. `stream` distinguishes measurement units so concurrent
    /// units draw independent decision sequences from the same campaign
    /// seed (the 16-bit core gets a sibling stream).
    pub fn set_fault_plan(&mut self, spec: PlanSpec, stream: u64) {
        self.cpu32.set_fault_plan(spec.plan(stream.wrapping_mul(2)));
        self.cpu16
            .set_fault_plan(spec.plan(stream.wrapping_mul(2).wrapping_add(1)));
    }

    /// Disarms fault injection and returns the plans of the two radix
    /// cores `(cpu32, cpu16)` with their fired-injection counters.
    pub fn take_fault_plans(&mut self) -> (Option<FaultPlan>, Option<FaultPlan>) {
        (self.cpu32.take_fault_plan(), self.cpu16.take_fault_plan())
    }

    /// Total faults injected so far across both cores' armed plans.
    pub fn faults_fired(&self) -> u64 {
        self.cpu32
            .fault_plan()
            .map_or(0, FaultPlan::total_fired)
            .saturating_add(self.cpu16.fault_plan().map_or(0, FaultPlan::total_fired))
    }

    /// Bounds every kernel call to `budget` instructions: a corrupted
    /// kernel that loops forever is stopped and recorded as a typed
    /// [`KernelError::Timeout`] instead of hanging the measurement
    /// pool. `u64::MAX` (the construction default) disarms the
    /// watchdog.
    pub fn set_cycle_budget(&mut self, budget: u64) {
        self.cpu32.set_fuel(budget);
        self.cpu16.set_fuel(budget);
    }

    /// Sets the cycle cost charged per glue unit (algorithm-layer
    /// control overhead).
    pub fn set_glue_cost(&mut self, cost: f64) {
        self.glue_cost = cost;
    }

    /// Kernel divergences recorded so far (verification mode). Empty
    /// means every verified call matched its golden reference.
    pub fn kernel_errors(&self) -> &[KernelError] {
        &self.errors
    }

    /// Drains and returns the recorded kernel divergences.
    pub fn take_kernel_errors(&mut self) -> Vec<KernelError> {
        std::mem::take(&mut self.errors)
    }

    fn diverge(&mut self, kernel: KernelId, detail: String) {
        self.errors.push(KernelError::Divergence { kernel, detail });
    }

    /// Measures one kernel invocation: runs `kernel` on freshly written
    /// operands of `n` limbs (32-bit side) and returns the cycle count.
    /// Used by the characterization phase. Block-memory kernels (no
    /// register arguments) are measured by their own harnesses and
    /// yield [`KernelError::Unsupported`] here. Errors recorded
    /// *during* the measured invocation (divergence in verify mode,
    /// watchdog timeout, simulator fault) surface as `Err` so the flow
    /// layer can retry or quarantine.
    ///
    /// Cycle measurement is only meaningful on the cycle-accurate
    /// engine; with [`Fidelity::Fast`] selected this returns a typed
    /// [`KernelError::Unsupported`] so a mis-routed measurement can
    /// never silently report zero cycles.
    pub fn measure32(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<f64, KernelError> {
        if self.fidelity == Fidelity::Fast {
            return Err(KernelError::Unsupported {
                kernel,
                detail: "cycle measurement requires the cycle-accurate engine \
                         (Fidelity::CycleAccurate)"
                    .to_owned(),
            });
        }
        let before = self.cycles;
        self.drive32(kernel, n, seed)?;
        Ok(self.cycles - before)
    }

    /// Verifies one kernel invocation against its registered golden
    /// reference on the same deterministic stimulus stream
    /// [`IssMpn::measure32`] uses, without reading cycles — the
    /// correctness half of a measurement, valid on either engine.
    /// Verification is forced on for the call regardless of
    /// [`IssMpn::set_verify`].
    pub fn verify32(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<(), KernelError> {
        let was = self.verify;
        self.verify = true;
        let out = self.drive32(kernel, n, seed);
        self.verify = was;
        out
    }

    /// Drives one 32-bit kernel invocation on deterministic stimuli
    /// derived from `seed` (the stream both [`IssMpn::measure32`] and
    /// [`IssMpn::verify32`] consume, byte-identical between them).
    fn drive32(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<(), KernelError> {
        let errors_before = self.errors.len();
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 32) as u32
        };
        match kernel {
            id::ADD_N | id::SUB_N => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let b: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u32; n];
                if kernel == id::ADD_N {
                    MpnOps::<u32>::add_n(self, &mut r, &a, &b);
                } else {
                    MpnOps::<u32>::sub_n(self, &mut r, &a, &b);
                }
            }
            id::MUL_1 | id::ADDMUL_1 | id::SUBMUL_1 => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r: Vec<u32> = (0..n).map(|_| next()).collect();
                let b = next();
                match kernel {
                    id::MUL_1 => {
                        MpnOps::<u32>::mul_1(self, &mut r, &a, b);
                    }
                    id::ADDMUL_1 => {
                        MpnOps::<u32>::addmul_1(self, &mut r, &a, b);
                    }
                    _ => {
                        MpnOps::<u32>::submul_1(self, &mut r, &a, b);
                    }
                }
            }
            id::LSHIFT | id::RSHIFT => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u32; n];
                let cnt = (next() % 31) + 1;
                if kernel == id::LSHIFT {
                    MpnOps::<u32>::lshift(self, &mut r, &a, cnt);
                } else {
                    MpnOps::<u32>::rshift(self, &mut r, &a, cnt);
                }
            }
            id::DIV_QHAT => {
                let d1 = next() | 0x8000_0000;
                let d0 = next();
                let n2 = next() % d1;
                MpnOps::<u32>::div_qhat(self, n2, next(), next(), d1, d0);
            }
            other => {
                return Err(KernelError::Unsupported {
                    kernel: other,
                    detail: "no register-level 32-bit measurement harness".to_owned(),
                })
            }
        }
        if let Some(e) = self.errors.get(errors_before) {
            return Err(e.clone());
        }
        Ok(())
    }

    /// 16-bit-radix counterpart of [`IssMpn::measure32`].
    pub fn measure16(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<f64, KernelError> {
        if self.fidelity == Fidelity::Fast {
            return Err(KernelError::Unsupported {
                kernel,
                detail: "cycle measurement requires the cycle-accurate engine \
                         (Fidelity::CycleAccurate)"
                    .to_owned(),
            });
        }
        let before = self.cycles;
        self.drive16(kernel, n, seed)?;
        Ok(self.cycles - before)
    }

    /// 16-bit-radix counterpart of [`IssMpn::verify32`].
    pub fn verify16(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<(), KernelError> {
        let was = self.verify;
        self.verify = true;
        let out = self.drive16(kernel, n, seed);
        self.verify = was;
        out
    }

    /// 16-bit-radix counterpart of [`IssMpn::drive32`].
    fn drive16(&mut self, kernel: KernelId, n: usize, seed: u64) -> Result<(), KernelError> {
        let errors_before = self.errors.len();
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 48) as u16
        };
        match kernel {
            id::ADD_N | id::SUB_N => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let b: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u16; n];
                if kernel == id::ADD_N {
                    MpnOps::<u16>::add_n(self, &mut r, &a, &b);
                } else {
                    MpnOps::<u16>::sub_n(self, &mut r, &a, &b);
                }
            }
            id::MUL_1 | id::ADDMUL_1 | id::SUBMUL_1 => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r: Vec<u16> = (0..n).map(|_| next()).collect();
                let b = next();
                match kernel {
                    id::MUL_1 => {
                        MpnOps::<u16>::mul_1(self, &mut r, &a, b);
                    }
                    id::ADDMUL_1 => {
                        MpnOps::<u16>::addmul_1(self, &mut r, &a, b);
                    }
                    _ => {
                        MpnOps::<u16>::submul_1(self, &mut r, &a, b);
                    }
                }
            }
            id::LSHIFT | id::RSHIFT => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u16; n];
                let cnt = ((next() % 15) + 1) as u32;
                if kernel == id::LSHIFT {
                    MpnOps::<u16>::lshift(self, &mut r, &a, cnt);
                } else {
                    MpnOps::<u16>::rshift(self, &mut r, &a, cnt);
                }
            }
            id::DIV_QHAT => {
                let d1 = next() | 0x8000;
                let d0 = next();
                let n2 = next() % d1;
                MpnOps::<u16>::div_qhat(self, n2, next(), next(), d1, d0);
            }
            other => {
                return Err(KernelError::Unsupported {
                    kernel: other,
                    detail: "no register-level 16-bit measurement harness".to_owned(),
                })
            }
        }
        if let Some(e) = self.errors.get(errors_before) {
            return Err(e.clone());
        }
        Ok(())
    }

    fn bump(&mut self, name: &'static str) {
        *self.counts.entry(name).or_insert(0) += 1;
    }

    /// Records a simulator error as the matching typed kernel error.
    /// The degraded in-band result is 0 — callers on the measurement
    /// path must check [`IssMpn::kernel_errors`] (or use
    /// [`IssMpn::measure32`]/[`IssMpn::measure16`], which surface newly
    /// recorded errors as `Err`).
    fn record_sim_error(&mut self, kernel: KernelId, e: SimError) {
        self.errors.push(match e {
            SimError::OutOfFuel { executed } => KernelError::Timeout { kernel, executed },
            other => KernelError::Faulted {
                kernel,
                detail: other.to_string(),
            },
        });
    }

    /// Runs a register-convention kernel on the 32-bit core and returns
    /// `a0`. The entry label is the kernel's registered name. A
    /// simulator fault or watchdog timeout is recorded as a typed error
    /// and yields a degraded 0 result.
    fn call32(&mut self, kernel: KernelId, args: &[u32]) -> u32 {
        match self
            .cpu32
            .call_traced(&self.prog32, kernel.name(), args, self.sink.as_deref_mut())
        {
            Ok(summary) => {
                self.cycles += summary.cycles as f64;
                self.cpu32.reg(0)
            }
            Err(e) => {
                self.record_sim_error(kernel, e);
                0
            }
        }
    }

    fn call16(&mut self, kernel: KernelId, args: &[u32]) -> u32 {
        match self
            .cpu16
            .call_traced(&self.prog16, kernel.name(), args, self.sink.as_deref_mut())
        {
            Ok(summary) => {
                self.cycles += summary.cycles as f64;
                self.cpu16.reg(0)
            }
            Err(e) => {
                self.record_sim_error(kernel, e);
                0
            }
        }
    }
}

/// Writes limbs into simulator memory (width-dispatched).
fn write_limbs<L: Limb>(cpu: &mut Cpu, addr: u32, data: &[L]) {
    match L::BITS {
        32 => {
            for (i, &v) in data.iter().enumerate() {
                cpu.mem_mut()
                    .store_u32(addr + 4 * i as u32, v.to_u64() as u32)
                    .expect("kernel operand region in range");
            }
        }
        16 => {
            for (i, &v) in data.iter().enumerate() {
                cpu.mem_mut()
                    .store_u16(addr + 2 * i as u32, v.to_u64() as u16)
                    .expect("kernel operand region in range");
            }
        }
        other => panic!("unsupported limb width {other}"),
    }
}

fn read_limbs<L: Limb>(cpu: &Cpu, addr: u32, n: usize) -> Vec<L> {
    match L::BITS {
        32 => (0..n)
            .map(|i| L::from_u64(cpu.mem().load_u32(addr + 4 * i as u32).expect("in range") as u64))
            .collect(),
        16 => (0..n)
            .map(|i| L::from_u64(cpu.mem().load_u16(addr + 2 * i as u32).expect("in range") as u64))
            .collect(),
        other => panic!("unsupported limb width {other}"),
    }
}

/// Fetches the registered golden reference of one kernel at the macro's
/// limb width: `$golden` is the `CallConv` field name (`golden32` or
/// `golden16`) and `$shape` the convention the kernel must have.
macro_rules! golden {
    ($kernel:expr, $shape:ident, $golden:ident) => {{
        let desc = kreg::get($kernel).expect("kernel registered");
        match desc.conv {
            CallConv::$shape { $golden: g, .. } => g,
            _ => unreachable!("registry pins {} as {}", $kernel, stringify!($shape)),
        }
    }};
}

macro_rules! impl_iss_mpnops {
    ($limb:ty, $call:ident, $golden:ident) => {
        impl MpnOps<$limb> for IssMpn {
            fn add_n(&mut self, r: &mut [$limb], a: &[$limb], b: &[$limb]) -> bool {
                self.bump(opname::ADD_N);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, BP_ADDR, b);
                let carry = self.$call(id::ADD_N, &[RP_ADDR, AP_ADDR, BP_ADDR, a.len() as u32]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let g = golden!(id::ADD_N, VecVec, $golden);
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let ec = g(&mut expect, a, b);
                    if out != expect || (carry != 0) != ec {
                        self.diverge(id::ADD_N, format!("n={}", a.len()));
                    }
                }
                carry != 0
            }

            fn sub_n(&mut self, r: &mut [$limb], a: &[$limb], b: &[$limb]) -> bool {
                self.bump(opname::SUB_N);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, BP_ADDR, b);
                let borrow = self.$call(id::SUB_N, &[RP_ADDR, AP_ADDR, BP_ADDR, a.len() as u32]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let g = golden!(id::SUB_N, VecVec, $golden);
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eb = g(&mut expect, a, b);
                    if out != expect || (borrow != 0) != eb {
                        self.diverge(id::SUB_N, format!("n={}", a.len()));
                    }
                }
                borrow != 0
            }

            fn mul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::MUL_1);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let carry = self.$call(
                    id::MUL_1,
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let g = golden!(id::MUL_1, VecScalar, $golden);
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let ec = g(&mut expect, a, b);
                    if out != expect || <$limb as Limb>::from_u64(carry as u64) != ec {
                        self.diverge(id::MUL_1, format!("n={}", a.len()));
                    }
                }
                <$limb as Limb>::from_u64(carry as u64)
            }

            fn addmul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::ADDMUL_1);
                let expect_pair = if self.verify {
                    let g = golden!(id::ADDMUL_1, VecScalar, $golden);
                    let mut expect = r[..a.len()].to_vec();
                    let ec = g(&mut expect, a, b);
                    Some((expect, ec))
                } else {
                    None
                };
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, RP_ADDR, &r[..a.len()]);
                let carry = self.$call(
                    id::ADDMUL_1,
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r[..a.len()].copy_from_slice(&out);
                if let Some((expect, ec)) = expect_pair {
                    if out != expect || <$limb as Limb>::from_u64(carry as u64) != ec {
                        self.diverge(id::ADDMUL_1, format!("n={}", a.len()));
                    }
                }
                <$limb as Limb>::from_u64(carry as u64)
            }

            fn submul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::SUBMUL_1);
                let expect_pair = if self.verify {
                    let g = golden!(id::SUBMUL_1, VecScalar, $golden);
                    let mut expect = r[..a.len()].to_vec();
                    let ec = g(&mut expect, a, b);
                    Some((expect, ec))
                } else {
                    None
                };
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, RP_ADDR, &r[..a.len()]);
                let borrow = self.$call(
                    id::SUBMUL_1,
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r[..a.len()].copy_from_slice(&out);
                if let Some((expect, ec)) = expect_pair {
                    if out != expect || <$limb as Limb>::from_u64(borrow as u64) != ec {
                        self.diverge(id::SUBMUL_1, format!("n={}", a.len()));
                    }
                }
                <$limb as Limb>::from_u64(borrow as u64)
            }

            fn lshift(&mut self, r: &mut [$limb], a: &[$limb], cnt: u32) -> $limb {
                self.bump(opname::LSHIFT);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let out_bits = self.$call(id::LSHIFT, &[RP_ADDR, AP_ADDR, a.len() as u32, cnt]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let g = golden!(id::LSHIFT, VecShift, $golden);
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eo = g(&mut expect, a, cnt);
                    if out != expect || <$limb as Limb>::from_u64(out_bits as u64) != eo {
                        self.diverge(id::LSHIFT, format!("n={} cnt={cnt}", a.len()));
                    }
                }
                <$limb as Limb>::from_u64(out_bits as u64)
            }

            fn rshift(&mut self, r: &mut [$limb], a: &[$limb], cnt: u32) -> $limb {
                self.bump(opname::RSHIFT);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let out_bits = self.$call(id::RSHIFT, &[RP_ADDR, AP_ADDR, a.len() as u32, cnt]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let g = golden!(id::RSHIFT, VecShift, $golden);
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eo = g(&mut expect, a, cnt);
                    if out != expect || <$limb as Limb>::from_u64(out_bits as u64) != eo {
                        self.diverge(id::RSHIFT, format!("n={} cnt={cnt}", a.len()));
                    }
                }
                <$limb as Limb>::from_u64(out_bits as u64)
            }

            fn div_qhat(&mut self, n2: $limb, n1: $limb, n0: $limb, d1: $limb, d0: $limb) -> $limb {
                self.bump(opname::DIV_QHAT);
                let q = self.$call(
                    id::DIV_QHAT,
                    &[
                        n2.to_u64() as u32,
                        n1.to_u64() as u32,
                        n0.to_u64() as u32,
                        d1.to_u64() as u32,
                        d0.to_u64() as u32,
                    ],
                );
                let q = <$limb as Limb>::from_u64(q as u64);
                if self.verify {
                    let g = golden!(id::DIV_QHAT, Div3by2, $golden);
                    let expect = g(n2, n1, n0, d1, d0);
                    if q != expect {
                        self.diverge(
                            id::DIV_QHAT,
                            format!("got {} expected {}", q.to_u64(), expect.to_u64()),
                        );
                    }
                }
                q
            }

            fn glue(&mut self, units: u64) {
                self.cycles += self.glue_cost * units as f64;
            }

            fn cycles(&self) -> f64 {
                self.cycles
            }

            fn reset(&mut self) {
                self.cycles = 0.0;
                self.counts.clear();
            }

            fn call_counts(&self) -> &BTreeMap<&'static str, u64> {
                &self.counts
            }
        }
    };
}

impl_iss_mpnops!(u32, call32, golden32);
impl_iss_mpnops!(u16, call16, golden16);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x155)
    }

    #[test]
    fn base_kernels_match_native_u32() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for n in [1usize, 2, 3, 7, 8, 31, 32] {
            let a: Vec<u32> = (0..n).map(|_| r.random()).collect();
            let b: Vec<u32> = (0..n).map(|_| r.random()).collect();
            let mut out = vec![0u32; n];
            // Verification mode records divergences; none must occur.
            MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u32>::mul_1(&mut iss, &mut out, &a, 0xdead_beef);
            let mut acc = b.clone();
            MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, xpar::SEED_STEP32);
            MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, 0x0bad_f00d);
            MpnOps::<u32>::lshift(&mut iss, &mut out, &a, 13);
            MpnOps::<u32>::rshift(&mut iss, &mut out, &a, 5);
        }
        assert!(MpnOps::<u32>::cycles(&iss) > 0.0);
        assert!(iss.kernel_errors().is_empty(), "{:?}", iss.kernel_errors());
    }

    #[test]
    fn base_kernels_match_native_u16() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for n in [1usize, 5, 16, 33] {
            let a: Vec<u16> = (0..n).map(|_| r.random()).collect();
            let b: Vec<u16> = (0..n).map(|_| r.random()).collect();
            let mut out = vec![0u16; n];
            MpnOps::<u16>::add_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u16>::sub_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u16>::mul_1(&mut iss, &mut out, &a, 0xbeef);
            let mut acc = b.clone();
            MpnOps::<u16>::addmul_1(&mut iss, &mut acc, &a, 0x79b9);
            MpnOps::<u16>::submul_1(&mut iss, &mut acc, &a, 0xf00d);
            MpnOps::<u16>::lshift(&mut iss, &mut out, &a, 7);
            MpnOps::<u16>::rshift(&mut iss, &mut out, &a, 3);
        }
        assert!(iss.kernel_errors().is_empty(), "{:?}", iss.kernel_errors());
    }

    #[test]
    fn accelerated_kernels_match_native() {
        for (al, ml) in [(2u32, 1u32), (4, 2), (8, 4), (16, 4)] {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), al, ml);
            let mut r = rng();
            for n in [1usize, 3, 4, 17, 32] {
                let a: Vec<u32> = (0..n).map(|_| r.random()).collect();
                let b: Vec<u32> = (0..n).map(|_| r.random()).collect();
                let mut out = vec![0u32; n];
                MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
                MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
                let mut acc = b.clone();
                MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, 0x1234_5677);
                MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, 0x7654_3211);
            }
            assert!(iss.kernel_errors().is_empty(), "a{al}m{ml}");
        }
    }

    #[test]
    fn div_qhat_kernel_matches_reference_u32_and_u16() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for _ in 0..40 {
            let d1: u32 = r.random::<u32>() | 0x8000_0000;
            let d0: u32 = r.random();
            let n2: u32 = r.random::<u32>() % d1;
            let n1: u32 = r.random();
            let n0: u32 = r.random();
            // verify-mode records any mismatch with the reference.
            MpnOps::<u32>::div_qhat(&mut iss, n2, n1, n0, d1, d0);

            let d1: u16 = r.random::<u16>() | 0x8000;
            let d0: u16 = r.random();
            let n2: u16 = r.random::<u16>() % d1;
            MpnOps::<u16>::div_qhat(&mut iss, n2, r.random(), r.random(), d1, d0);
        }
        assert!(iss.kernel_errors().is_empty(), "{:?}", iss.kernel_errors());
    }

    #[test]
    fn div_qhat_kernel_edge_case_top_limb_equals_divisor() {
        let mut iss = IssMpn::base(CpuConfig::default());
        // n2 == d1: the Knuth clamp path.
        MpnOps::<u32>::div_qhat(&mut iss, 0x8000_0000, 5, 7, 0x8000_0000, 0x1234);
        MpnOps::<u32>::div_qhat(
            &mut iss,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
        );
        MpnOps::<u16>::div_qhat(&mut iss, 0x8000, 5, 7, 0x8000, 0x34);
        assert!(iss.kernel_errors().is_empty(), "{:?}", iss.kernel_errors());
    }

    #[test]
    fn acceleration_reduces_cycles() {
        let n = 32;
        let a: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(xpar::SEED_STEP32))
            .collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();

        let mut base = IssMpn::base(CpuConfig::default());
        let mut out = vec![0u32; n];
        // Warm the caches, then measure.
        MpnOps::<u32>::add_n(&mut base, &mut out, &a, &b);
        MpnOps::<u32>::reset(&mut base);
        MpnOps::<u32>::add_n(&mut base, &mut out, &a, &b);
        let base_cycles = MpnOps::<u32>::cycles(&base);

        let mut fast = IssMpn::accelerated(CpuConfig::default(), 8, 4);
        MpnOps::<u32>::add_n(&mut fast, &mut out, &a, &b);
        MpnOps::<u32>::reset(&mut fast);
        MpnOps::<u32>::add_n(&mut fast, &mut out, &a, &b);
        let fast_cycles = MpnOps::<u32>::cycles(&fast);

        assert!(
            fast_cycles * 1.5 < base_cycles,
            "accelerated add_n {fast_cycles} vs base {base_cycles}"
        );
    }

    #[test]
    fn measure32_is_monotone_in_n() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let c8 = iss.measure32(id::ADDMUL_1, 8, 1).unwrap();
        let c32 = iss.measure32(id::ADDMUL_1, 32, 2).unwrap();
        assert!(c32 > c8, "32-limb ({c32}) vs 8-limb ({c8})");
    }

    #[test]
    fn block_kernels_are_unsupported_by_register_harness() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let err = iss.measure32(id::SHA1, 1, 1).unwrap_err();
        assert!(matches!(err, KernelError::Unsupported { kernel, .. } if kernel == id::SHA1));
        let err = iss.measure16(id::SHA1, 1, 1).unwrap_err();
        assert!(matches!(err, KernelError::Unsupported { .. }));
    }

    #[test]
    fn glue_is_charged() {
        let mut iss = IssMpn::base(CpuConfig::default());
        iss.set_glue_cost(3.0);
        MpnOps::<u32>::glue(&mut iss, 5);
        assert_eq!(MpnOps::<u32>::cycles(&iss), 15.0);
    }

    #[test]
    fn injected_data_faults_surface_as_typed_divergences() {
        // A certain-fire data-fault campaign corrupts every load, so a
        // verified measurement must report a divergence instead of
        // silently returning corrupted cycles.
        let mut iss = IssMpn::base(CpuConfig::default());
        iss.set_fault_plan(
            PlanSpec::new(7, 1_000_000, &[xfault::FaultSite::DataMem]),
            0,
        );
        let err = iss.measure32(id::ADD_N, 8, 1).unwrap_err();
        assert!(
            matches!(err, KernelError::Divergence { kernel, .. } if kernel == id::ADD_N),
            "got {err}"
        );
        assert!(!iss.kernel_errors().is_empty());
        let (p32, _) = iss.take_fault_plans();
        assert!(p32.unwrap().total_fired() > 0);
    }

    #[test]
    fn cycle_budget_turns_runaway_kernels_into_timeouts() {
        let mut iss = IssMpn::base(CpuConfig::default());
        // A budget far below any real kernel invocation: the watchdog
        // must fire and the measurement must report a typed timeout.
        iss.set_cycle_budget(4);
        let err = iss.measure32(id::ADDMUL_1, 32, 1).unwrap_err();
        assert!(
            matches!(err, KernelError::Timeout { kernel, .. } if kernel == id::ADDMUL_1),
            "got {err}"
        );
        // Disarming the watchdog restores normal measurement.
        iss.take_kernel_errors();
        iss.set_cycle_budget(u64::MAX);
        assert!(iss.measure32(id::ADDMUL_1, 32, 1).is_ok());
    }

    #[test]
    fn fast_fidelity_verifies_but_refuses_measurement() {
        let mut iss = IssMpn::base(CpuConfig::default());
        iss.set_fidelity(Fidelity::Fast);
        iss.verify32(id::ADD_N, 8, 1).unwrap();
        assert!(iss.kernel_errors().is_empty());
        let err = iss.measure32(id::ADD_N, 8, 1).unwrap_err();
        assert!(
            matches!(err, KernelError::Unsupported { kernel, .. } if kernel == id::ADD_N),
            "got {err}"
        );
        let err = iss.measure16(id::ADD_N, 8, 1).unwrap_err();
        assert!(matches!(err, KernelError::Unsupported { .. }), "got {err}");
    }

    #[test]
    fn fast_and_accurate_agree_on_architectural_state() {
        let drive = |fidelity: Fidelity| {
            let mut iss = IssMpn::base(CpuConfig::default());
            iss.set_fidelity(fidelity);
            for kernel in [
                id::ADD_N,
                id::SUB_N,
                id::MUL_1,
                id::ADDMUL_1,
                id::SUBMUL_1,
                id::LSHIFT,
                id::RSHIFT,
                id::DIV_QHAT,
            ] {
                for n in [1usize, 3, 8, 33] {
                    iss.verify32(kernel, n, 0xC0FFEE ^ n as u64).unwrap();
                    iss.verify16(kernel, n, 0xC0FFEE ^ n as u64).unwrap();
                }
            }
            (iss.arch_state32(), iss.arch_state16())
        };
        let accurate = drive(Fidelity::CycleAccurate);
        let fast = drive(Fidelity::Fast);
        assert_eq!(accurate, fast, "engines must agree bit-for-bit");
        assert!(fast.0.retired > 0);
    }

    #[test]
    fn same_campaign_seed_and_stream_reproduce_identical_errors() {
        let run = || {
            let mut iss = IssMpn::base(CpuConfig::default());
            iss.set_fault_plan(PlanSpec::all_sites(0xFEED, 200_000), 3);
            let r = iss.measure32(id::MUL_1, 8, 5);
            let errs: Vec<String> = iss
                .take_kernel_errors()
                .into_iter()
                .map(|e| e.to_string())
                .collect();
            (r.map_err(|e| e.to_string()), errs)
        };
        assert_eq!(run(), run());
    }
}
