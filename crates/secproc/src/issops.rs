//! The ISS-backed basic-operations provider.
//!
//! [`IssMpn`] implements [`pubkey::ops::MpnOps`] by running the XR32
//! assembly kernels on the cycle-accurate simulator for **every** basic
//! operation — the paper's slow-but-accurate reference evaluation
//! method ("several hours to few days per candidate algorithm" on real
//! hardware models; our XR32 is faster but still orders of magnitude
//! slower than macro-model estimation).
//!
//! Every call optionally verifies the kernel's result against the
//! native Rust implementation, so any divergence between the assembly
//! and the reference is caught at the first occurrence.

use crate::insns;
use crate::kernels::mpn as kmpn;
use mpint::limb::Limb;
use mpint::mpn;
use pubkey::ops::{div_qhat_reference, opname, MpnOps};
use std::collections::BTreeMap;
use xobs::trace::TraceSink;
use xr32::asm::{assemble, Program};
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;
use xr32::ext::ExtensionSet;

/// Base addresses of the kernel operand regions in simulator memory.
const RP_ADDR: u32 = 0x1000;
const AP_ADDR: u32 = 0x40000;
const BP_ADDR: u32 = 0x80000;

/// Which kernel library the 32-bit side runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Plain RISC kernels (the optimized-software baseline).
    Base,
    /// Custom-instruction kernels with the given adder/MAC lane counts.
    Accelerated {
        /// `add<k>`/`sub<k>` datapath lanes (2, 4, 8 or 16).
        add_lanes: u32,
        /// `mac<k>`/`msub<k>` datapath lanes (1, 2 or 4).
        mac_lanes: u32,
    },
}

impl KernelVariant {
    /// A short stable tag naming this variant, used in kernel-cycle
    /// cache keys ([`crate::kcache::key`]).
    pub fn tag(&self) -> String {
        match self {
            KernelVariant::Base => "base".to_owned(),
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            } => format!("accel-a{add_lanes}m{mac_lanes}"),
        }
    }
}

/// ISS-backed [`MpnOps`] provider (32-bit and 16-bit radix sides).
pub struct IssMpn {
    cpu32: Cpu,
    prog32: Program,
    cpu16: Cpu,
    prog16: Program,
    cycles: f64,
    counts: BTreeMap<&'static str, u64>,
    glue_cost: f64,
    verify: bool,
    sink: Option<Box<dyn TraceSink>>,
}

impl IssMpn {
    /// Builds a provider running the base kernels on the given core
    /// configuration.
    pub fn base(config: CpuConfig) -> Self {
        Self::with_variant(config, KernelVariant::Base)
    }

    /// Builds a provider running the accelerated kernels (the matching
    /// extension set is configured automatically).
    pub fn accelerated(config: CpuConfig, add_lanes: u32, mac_lanes: u32) -> Self {
        Self::with_variant(
            config,
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            },
        )
    }

    /// Builds a provider for an explicit kernel variant.
    ///
    /// # Panics
    ///
    /// Panics if the bundled kernel sources fail to assemble (a build
    /// defect, not a runtime condition).
    pub fn with_variant(config: CpuConfig, variant: KernelVariant) -> Self {
        let (src32, ext): (String, ExtensionSet) = match variant {
            KernelVariant::Base => (kmpn::base32_source(), ExtensionSet::new()),
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            } => (
                kmpn::accel32_source(add_lanes, mac_lanes),
                insns::mpn_extension_set(add_lanes, mac_lanes),
            ),
        };
        let prog32 = assemble(&src32).expect("bundled 32-bit kernels must assemble");
        let prog16 =
            assemble(&kmpn::base16_source()).expect("bundled 16-bit kernels must assemble");
        let mut cpu32 = Cpu::with_extensions(config.clone(), ext);
        cpu32.set_fuel(u64::MAX);
        let mut cpu16 = Cpu::new(config);
        cpu16.set_fuel(u64::MAX);
        IssMpn {
            cpu32,
            prog32,
            cpu16,
            prog16,
            cycles: 0.0,
            counts: BTreeMap::new(),
            glue_cost: 4.0,
            verify: true,
            sink: None,
        }
    }

    /// Attaches (or detaches, with `None`) a trace sink observing every
    /// kernel invocation on both radix cores. Each `cpu.call` is
    /// bracketed by synthetic entry Call/Ret events, so cycle
    /// attribution over a whole co-simulation covers every simulated
    /// cycle. Use [`xobs::trace::Shared`] to keep access to the sink's
    /// accumulated state while the provider owns it.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Detaches and returns the current trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Raw cycle counters of the two radix cores, `(cpu32, cpu16)`.
    /// Their sum is the total simulated cycles an attached
    /// [`xobs::Attribution`] sink must account for exactly.
    pub fn core_cycles(&self) -> (u64, u64) {
        (self.cpu32.cycles(), self.cpu16.cycles())
    }

    /// Enables/disables per-call verification against the native
    /// implementation (on by default).
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Sets the cycle cost charged per glue unit (algorithm-layer
    /// control overhead).
    pub fn set_glue_cost(&mut self, cost: f64) {
        self.glue_cost = cost;
    }

    /// Measures one kernel invocation: runs `op` on freshly written
    /// operands of `n` limbs (32-bit side) and returns the cycle count.
    /// Used by the characterization phase.
    pub fn measure32(&mut self, op: &'static str, n: usize, seed: u64) -> f64 {
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 32) as u32
        };
        let before = self.cycles;
        match op {
            opname::ADD_N | opname::SUB_N => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let b: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u32; n];
                if op == opname::ADD_N {
                    MpnOps::<u32>::add_n(self, &mut r, &a, &b);
                } else {
                    MpnOps::<u32>::sub_n(self, &mut r, &a, &b);
                }
            }
            opname::MUL_1 | opname::ADDMUL_1 | opname::SUBMUL_1 => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r: Vec<u32> = (0..n).map(|_| next()).collect();
                let b = next();
                match op {
                    opname::MUL_1 => {
                        MpnOps::<u32>::mul_1(self, &mut r, &a, b);
                    }
                    opname::ADDMUL_1 => {
                        MpnOps::<u32>::addmul_1(self, &mut r, &a, b);
                    }
                    _ => {
                        MpnOps::<u32>::submul_1(self, &mut r, &a, b);
                    }
                }
            }
            opname::LSHIFT | opname::RSHIFT => {
                let a: Vec<u32> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u32; n];
                let cnt = (next() % 31) + 1;
                if op == opname::LSHIFT {
                    MpnOps::<u32>::lshift(self, &mut r, &a, cnt);
                } else {
                    MpnOps::<u32>::rshift(self, &mut r, &a, cnt);
                }
            }
            opname::DIV_QHAT => {
                let d1 = next() | 0x8000_0000;
                let d0 = next();
                let n2 = next() % d1;
                MpnOps::<u32>::div_qhat(self, n2, next(), next(), d1, d0);
            }
            other => panic!("unknown op {other}"),
        }
        self.cycles - before
    }

    /// 16-bit-radix counterpart of [`IssMpn::measure32`].
    pub fn measure16(&mut self, op: &'static str, n: usize, seed: u64) -> f64 {
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 48) as u16
        };
        let before = self.cycles;
        match op {
            opname::ADD_N | opname::SUB_N => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let b: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u16; n];
                if op == opname::ADD_N {
                    MpnOps::<u16>::add_n(self, &mut r, &a, &b);
                } else {
                    MpnOps::<u16>::sub_n(self, &mut r, &a, &b);
                }
            }
            opname::MUL_1 | opname::ADDMUL_1 | opname::SUBMUL_1 => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r: Vec<u16> = (0..n).map(|_| next()).collect();
                let b = next();
                match op {
                    opname::MUL_1 => {
                        MpnOps::<u16>::mul_1(self, &mut r, &a, b);
                    }
                    opname::ADDMUL_1 => {
                        MpnOps::<u16>::addmul_1(self, &mut r, &a, b);
                    }
                    _ => {
                        MpnOps::<u16>::submul_1(self, &mut r, &a, b);
                    }
                }
            }
            opname::LSHIFT | opname::RSHIFT => {
                let a: Vec<u16> = (0..n).map(|_| next()).collect();
                let mut r = vec![0u16; n];
                let cnt = ((next() % 15) + 1) as u32;
                if op == opname::LSHIFT {
                    MpnOps::<u16>::lshift(self, &mut r, &a, cnt);
                } else {
                    MpnOps::<u16>::rshift(self, &mut r, &a, cnt);
                }
            }
            opname::DIV_QHAT => {
                let d1 = next() | 0x8000;
                let d0 = next();
                let n2 = next() % d1;
                MpnOps::<u16>::div_qhat(self, n2, next(), next(), d1, d0);
            }
            other => panic!("unknown op {other}"),
        }
        self.cycles - before
    }

    fn bump(&mut self, name: &'static str) {
        *self.counts.entry(name).or_insert(0) += 1;
    }

    /// Runs a three-pointer kernel (`rp`, `ap`, `bp`-or-scalar, `n`) on
    /// the 32-bit core and returns `a0`.
    fn call32(&mut self, label: &str, args: &[u32]) -> u32 {
        let summary = self
            .cpu32
            .call_traced(&self.prog32, label, args, self.sink.as_deref_mut())
            .unwrap_or_else(|e| panic!("kernel {label} faulted: {e}"));
        self.cycles += summary.cycles as f64;
        self.cpu32.reg(0)
    }

    fn call16(&mut self, label: &str, args: &[u32]) -> u32 {
        let summary = self
            .cpu16
            .call_traced(&self.prog16, label, args, self.sink.as_deref_mut())
            .unwrap_or_else(|e| panic!("kernel {label} faulted: {e}"));
        self.cycles += summary.cycles as f64;
        self.cpu16.reg(0)
    }
}

/// Writes limbs into simulator memory (width-dispatched).
fn write_limbs<L: Limb>(cpu: &mut Cpu, addr: u32, data: &[L]) {
    match L::BITS {
        32 => {
            for (i, &v) in data.iter().enumerate() {
                cpu.mem_mut()
                    .store_u32(addr + 4 * i as u32, v.to_u64() as u32)
                    .expect("kernel operand region in range");
            }
        }
        16 => {
            for (i, &v) in data.iter().enumerate() {
                cpu.mem_mut()
                    .store_u16(addr + 2 * i as u32, v.to_u64() as u16)
                    .expect("kernel operand region in range");
            }
        }
        other => panic!("unsupported limb width {other}"),
    }
}

fn read_limbs<L: Limb>(cpu: &Cpu, addr: u32, n: usize) -> Vec<L> {
    match L::BITS {
        32 => (0..n)
            .map(|i| L::from_u64(cpu.mem().load_u32(addr + 4 * i as u32).expect("in range") as u64))
            .collect(),
        16 => (0..n)
            .map(|i| L::from_u64(cpu.mem().load_u16(addr + 2 * i as u32).expect("in range") as u64))
            .collect(),
        other => panic!("unsupported limb width {other}"),
    }
}

macro_rules! impl_iss_mpnops {
    ($limb:ty, $call:ident) => {
        impl MpnOps<$limb> for IssMpn {
            fn add_n(&mut self, r: &mut [$limb], a: &[$limb], b: &[$limb]) -> bool {
                self.bump(opname::ADD_N);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, BP_ADDR, b);
                let carry = self.$call("mpn_add_n", &[RP_ADDR, AP_ADDR, BP_ADDR, a.len() as u32]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let ec = mpn::add_n(&mut expect, a, b);
                    assert_eq!(out, expect, "mpn_add_n kernel diverged");
                    assert_eq!(carry != 0, ec, "mpn_add_n carry diverged");
                }
                carry != 0
            }

            fn sub_n(&mut self, r: &mut [$limb], a: &[$limb], b: &[$limb]) -> bool {
                self.bump(opname::SUB_N);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, BP_ADDR, b);
                let borrow = self.$call("mpn_sub_n", &[RP_ADDR, AP_ADDR, BP_ADDR, a.len() as u32]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eb = mpn::sub_n(&mut expect, a, b);
                    assert_eq!(out, expect, "mpn_sub_n kernel diverged");
                    assert_eq!(borrow != 0, eb, "mpn_sub_n borrow diverged");
                }
                borrow != 0
            }

            fn mul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::MUL_1);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let carry = self.$call(
                    "mpn_mul_1",
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let ec = mpn::mul_1(&mut expect, a, b);
                    assert_eq!(out, expect, "mpn_mul_1 kernel diverged");
                    assert_eq!(<$limb as Limb>::from_u64(carry as u64), ec);
                }
                <$limb as Limb>::from_u64(carry as u64)
            }

            fn addmul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::ADDMUL_1);
                let expect_pair = if self.verify {
                    let mut expect = r[..a.len()].to_vec();
                    let ec = mpn::addmul_1(&mut expect, a, b);
                    Some((expect, ec))
                } else {
                    None
                };
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, RP_ADDR, &r[..a.len()]);
                let carry = self.$call(
                    "mpn_addmul_1",
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r[..a.len()].copy_from_slice(&out);
                if let Some((expect, ec)) = expect_pair {
                    assert_eq!(out, expect, "mpn_addmul_1 kernel diverged");
                    assert_eq!(<$limb as Limb>::from_u64(carry as u64), ec);
                }
                <$limb as Limb>::from_u64(carry as u64)
            }

            fn submul_1(&mut self, r: &mut [$limb], a: &[$limb], b: $limb) -> $limb {
                self.bump(opname::SUBMUL_1);
                let expect_pair = if self.verify {
                    let mut expect = r[..a.len()].to_vec();
                    let ec = mpn::submul_1(&mut expect, a, b);
                    Some((expect, ec))
                } else {
                    None
                };
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                write_limbs(cpu, RP_ADDR, &r[..a.len()]);
                let borrow = self.$call(
                    "mpn_submul_1",
                    &[RP_ADDR, AP_ADDR, a.len() as u32, b.to_u64() as u32],
                );
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r[..a.len()].copy_from_slice(&out);
                if let Some((expect, ec)) = expect_pair {
                    assert_eq!(out, expect, "mpn_submul_1 kernel diverged");
                    assert_eq!(<$limb as Limb>::from_u64(borrow as u64), ec);
                }
                <$limb as Limb>::from_u64(borrow as u64)
            }

            fn lshift(&mut self, r: &mut [$limb], a: &[$limb], cnt: u32) -> $limb {
                self.bump(opname::LSHIFT);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let out_bits = self.$call("mpn_lshift", &[RP_ADDR, AP_ADDR, a.len() as u32, cnt]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eo = mpn::lshift(&mut expect, a, cnt);
                    assert_eq!(out, expect, "mpn_lshift kernel diverged");
                    assert_eq!(<$limb as Limb>::from_u64(out_bits as u64), eo);
                }
                <$limb as Limb>::from_u64(out_bits as u64)
            }

            fn rshift(&mut self, r: &mut [$limb], a: &[$limb], cnt: u32) -> $limb {
                self.bump(opname::RSHIFT);
                let cpu = if <$limb>::BITS == 32 {
                    &mut self.cpu32
                } else {
                    &mut self.cpu16
                };
                write_limbs(cpu, AP_ADDR, a);
                let out_bits = self.$call("mpn_rshift", &[RP_ADDR, AP_ADDR, a.len() as u32, cnt]);
                let cpu = if <$limb>::BITS == 32 {
                    &self.cpu32
                } else {
                    &self.cpu16
                };
                let out: Vec<$limb> = read_limbs(cpu, RP_ADDR, a.len());
                r.copy_from_slice(&out);
                if self.verify {
                    let mut expect = vec![<$limb as Limb>::ZERO; a.len()];
                    let eo = mpn::rshift(&mut expect, a, cnt);
                    assert_eq!(out, expect, "mpn_rshift kernel diverged");
                    assert_eq!(<$limb as Limb>::from_u64(out_bits as u64), eo);
                }
                <$limb as Limb>::from_u64(out_bits as u64)
            }

            fn div_qhat(&mut self, n2: $limb, n1: $limb, n0: $limb, d1: $limb, d0: $limb) -> $limb {
                self.bump(opname::DIV_QHAT);
                let q = self.$call(
                    "div_qhat",
                    &[
                        n2.to_u64() as u32,
                        n1.to_u64() as u32,
                        n0.to_u64() as u32,
                        d1.to_u64() as u32,
                        d0.to_u64() as u32,
                    ],
                );
                let q = <$limb as Limb>::from_u64(q as u64);
                if self.verify {
                    let expect = div_qhat_reference(n2, n1, n0, d1, d0);
                    assert_eq!(q, expect, "div_qhat kernel diverged");
                }
                q
            }

            fn glue(&mut self, units: u64) {
                self.cycles += self.glue_cost * units as f64;
            }

            fn cycles(&self) -> f64 {
                self.cycles
            }

            fn reset(&mut self) {
                self.cycles = 0.0;
                self.counts.clear();
            }

            fn call_counts(&self) -> &BTreeMap<&'static str, u64> {
                &self.counts
            }
        }
    };
}

impl_iss_mpnops!(u32, call32);
impl_iss_mpnops!(u16, call16);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x155)
    }

    #[test]
    fn base_kernels_match_native_u32() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for n in [1usize, 2, 3, 7, 8, 31, 32] {
            let a: Vec<u32> = (0..n).map(|_| r.random()).collect();
            let b: Vec<u32> = (0..n).map(|_| r.random()).collect();
            let mut out = vec![0u32; n];
            // Verification mode asserts equality internally.
            MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u32>::mul_1(&mut iss, &mut out, &a, 0xdead_beef);
            let mut acc = b.clone();
            MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, 0x9e37_79b9);
            MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, 0x0bad_f00d);
            MpnOps::<u32>::lshift(&mut iss, &mut out, &a, 13);
            MpnOps::<u32>::rshift(&mut iss, &mut out, &a, 5);
        }
        assert!(MpnOps::<u32>::cycles(&iss) > 0.0);
    }

    #[test]
    fn base_kernels_match_native_u16() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for n in [1usize, 5, 16, 33] {
            let a: Vec<u16> = (0..n).map(|_| r.random()).collect();
            let b: Vec<u16> = (0..n).map(|_| r.random()).collect();
            let mut out = vec![0u16; n];
            MpnOps::<u16>::add_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u16>::sub_n(&mut iss, &mut out, &a, &b);
            MpnOps::<u16>::mul_1(&mut iss, &mut out, &a, 0xbeef);
            let mut acc = b.clone();
            MpnOps::<u16>::addmul_1(&mut iss, &mut acc, &a, 0x79b9);
            MpnOps::<u16>::submul_1(&mut iss, &mut acc, &a, 0xf00d);
            MpnOps::<u16>::lshift(&mut iss, &mut out, &a, 7);
            MpnOps::<u16>::rshift(&mut iss, &mut out, &a, 3);
        }
    }

    #[test]
    fn accelerated_kernels_match_native() {
        for (al, ml) in [(2u32, 1u32), (4, 2), (8, 4), (16, 4)] {
            let mut iss = IssMpn::accelerated(CpuConfig::default(), al, ml);
            let mut r = rng();
            for n in [1usize, 3, 4, 17, 32] {
                let a: Vec<u32> = (0..n).map(|_| r.random()).collect();
                let b: Vec<u32> = (0..n).map(|_| r.random()).collect();
                let mut out = vec![0u32; n];
                MpnOps::<u32>::add_n(&mut iss, &mut out, &a, &b);
                MpnOps::<u32>::sub_n(&mut iss, &mut out, &a, &b);
                let mut acc = b.clone();
                MpnOps::<u32>::addmul_1(&mut iss, &mut acc, &a, 0x1234_5677);
                MpnOps::<u32>::submul_1(&mut iss, &mut acc, &a, 0x7654_3211);
            }
        }
    }

    #[test]
    fn div_qhat_kernel_matches_reference_u32_and_u16() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let mut r = rng();
        for _ in 0..40 {
            let d1: u32 = r.random::<u32>() | 0x8000_0000;
            let d0: u32 = r.random();
            let n2: u32 = r.random::<u32>() % d1;
            let n1: u32 = r.random();
            let n0: u32 = r.random();
            // verify-mode asserts equality with the reference.
            MpnOps::<u32>::div_qhat(&mut iss, n2, n1, n0, d1, d0);

            let d1: u16 = r.random::<u16>() | 0x8000;
            let d0: u16 = r.random();
            let n2: u16 = r.random::<u16>() % d1;
            MpnOps::<u16>::div_qhat(&mut iss, n2, r.random(), r.random(), d1, d0);
        }
    }

    #[test]
    fn div_qhat_kernel_edge_case_top_limb_equals_divisor() {
        let mut iss = IssMpn::base(CpuConfig::default());
        // n2 == d1: the Knuth clamp path.
        MpnOps::<u32>::div_qhat(&mut iss, 0x8000_0000, 5, 7, 0x8000_0000, 0x1234);
        MpnOps::<u32>::div_qhat(
            &mut iss,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
            0xffff_ffff,
        );
        MpnOps::<u16>::div_qhat(&mut iss, 0x8000, 5, 7, 0x8000, 0x34);
    }

    #[test]
    fn acceleration_reduces_cycles() {
        let n = 32;
        let a: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();

        let mut base = IssMpn::base(CpuConfig::default());
        let mut out = vec![0u32; n];
        // Warm the caches, then measure.
        MpnOps::<u32>::add_n(&mut base, &mut out, &a, &b);
        MpnOps::<u32>::reset(&mut base);
        MpnOps::<u32>::add_n(&mut base, &mut out, &a, &b);
        let base_cycles = MpnOps::<u32>::cycles(&base);

        let mut fast = IssMpn::accelerated(CpuConfig::default(), 8, 4);
        MpnOps::<u32>::add_n(&mut fast, &mut out, &a, &b);
        MpnOps::<u32>::reset(&mut fast);
        MpnOps::<u32>::add_n(&mut fast, &mut out, &a, &b);
        let fast_cycles = MpnOps::<u32>::cycles(&fast);

        assert!(
            fast_cycles * 1.5 < base_cycles,
            "accelerated add_n {fast_cycles} vs base {base_cycles}"
        );
    }

    #[test]
    fn measure32_is_monotone_in_n() {
        let mut iss = IssMpn::base(CpuConfig::default());
        let c8 = iss.measure32(opname::ADDMUL_1, 8, 1);
        let c32 = iss.measure32(opname::ADDMUL_1, 32, 2);
        assert!(c32 > c8, "32-limb ({c32}) vs 8-limb ({c8})");
    }

    #[test]
    fn glue_is_charged() {
        let mut iss = IssMpn::base(CpuConfig::default());
        iss.set_glue_cost(3.0);
        MpnOps::<u32>::glue(&mut iss, 5);
        assert_eq!(MpnOps::<u32>::cycles(&iss), 15.0);
    }
}
