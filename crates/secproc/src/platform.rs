//! The layered security-primitive API of the platform.
//!
//! [`SecurityProcessor`] is the top of the paper's layered software
//! architecture: "a generic interface (API) using which security
//! protocols and applications can be ported to our platform …
//! security primitives such as key generation, encryption, or
//! decryption of a block of data using a specific public- or
//! private-key cryptographic algorithm". Two platform kinds exist:
//!
//! - [`PlatformKind::Baseline`]: the configurable core without custom
//!   instructions, running the optimized-software kernels;
//! - [`PlatformKind::Optimized`]: the custom-instruction extension set
//!   and the design-space-explored algorithms.
//!
//! Bulk data operations are *functionally* computed by the host crypto
//! (`ciphers`) while cycle accounting uses the per-block simulator
//! measurements, so multi-megabyte workloads remain practical.

use crate::measure;
use crate::simcipher::{SimAes, SimDes, SimSha1, Variant};
use ciphers::modes::{self, CipherError};
use ciphers::{Aes, Sha1, TripleDes};
use mpint::Natural;
use pubkey::modexp::ExpCache;
use pubkey::ops::NativeMpn;
use pubkey::rsa::{KeyPair, RsaError};
use pubkey::space::ModExpConfig;
use rand::Rng;
use std::collections::BTreeMap;
use xr32::config::CpuConfig;

/// Symmetric algorithms exposed by the platform API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algorithm {
    /// Single DES.
    Des,
    /// Triple DES (EDE3).
    TripleDes,
    /// AES-128.
    Aes128,
    /// SHA-1 (hashing; the unaccelerated misc workload).
    Sha1,
}

/// Which platform configuration the processor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Base core, optimized software only.
    Baseline,
    /// Custom instructions + explored algorithms.
    Optimized,
}

/// The security processing platform facade.
pub struct SecurityProcessor {
    kind: PlatformKind,
    config: CpuConfig,
    cpb_cache: BTreeMap<Algorithm, f64>,
}

impl SecurityProcessor {
    /// Creates a platform of the given kind with the default core
    /// configuration.
    pub fn new(kind: PlatformKind) -> Self {
        Self::with_config(kind, CpuConfig::default())
    }

    /// Creates a platform with an explicit core configuration.
    pub fn with_config(kind: PlatformKind, config: CpuConfig) -> Self {
        SecurityProcessor {
            kind,
            config,
            cpb_cache: BTreeMap::new(),
        }
    }

    /// The platform kind.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// The core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    fn variant(&self) -> Variant {
        match self.kind {
            PlatformKind::Baseline => Variant::Base,
            PlatformKind::Optimized => Variant::Accelerated,
        }
    }

    /// The modular-exponentiation configuration this platform's software
    /// library uses.
    pub fn modexp_config(&self) -> ModExpConfig {
        match self.kind {
            PlatformKind::Baseline => ModExpConfig::baseline(),
            PlatformKind::Optimized => ModExpConfig::optimized(),
        }
    }

    /// Measured cycles/byte of a symmetric algorithm on this platform
    /// (simulator-backed; cached after the first call).
    pub fn symmetric_cycles_per_byte(&mut self, algorithm: Algorithm) -> f64 {
        if let Some(&c) = self.cpb_cache.get(&algorithm) {
            return c;
        }
        let blocks = 6;
        let cpb = match algorithm {
            Algorithm::Des => SimDes::new(self.config.clone(), self.variant(), *b"platform")
                .cycles_per_byte(blocks),
            Algorithm::TripleDes => measure::measure_tdes(&self.config, blocks).pick(self.kind),
            Algorithm::Aes128 => {
                SimAes::new(self.config.clone(), self.variant(), b"platform-aes-key")
                    .cycles_per_byte(blocks)
            }
            Algorithm::Sha1 => SimSha1::new(self.config.clone()).cycles_per_byte(blocks),
        };
        self.cpb_cache.insert(algorithm, cpb);
        cpb
    }

    /// Estimated sustained throughput in Mbit/s for a symmetric
    /// algorithm, from the measured cycles/byte and the core clock.
    pub fn throughput_mbps(&mut self, algorithm: Algorithm) -> f64 {
        let cpb = self.symmetric_cycles_per_byte(algorithm);
        self.config.clock_hz as f64 / cpb * 8.0 / 1.0e6
    }

    /// Estimated cycles to process `bytes` with `algorithm`.
    pub fn symmetric_cycles(&mut self, algorithm: Algorithm, bytes: u64) -> f64 {
        self.symmetric_cycles_per_byte(algorithm) * bytes as f64
    }

    /// Encrypts bulk data in CBC mode (functional host computation; use
    /// [`SecurityProcessor::symmetric_cycles`] for the platform cost).
    ///
    /// # Errors
    ///
    /// Returns [`CipherError`] for bad IV lengths.
    ///
    /// # Panics
    ///
    /// Panics if the key length does not match the algorithm (8 bytes
    /// for DES, 24 for 3DES, 16 for AES-128), or for
    /// [`Algorithm::Sha1`], which is not a cipher.
    pub fn encrypt_cbc(
        &self,
        algorithm: Algorithm,
        key: &[u8],
        iv: &[u8],
        data: &[u8],
    ) -> Result<Vec<u8>, CipherError> {
        match algorithm {
            Algorithm::Des => {
                let des = ciphers::Des::new(key.try_into().expect("DES keys are 8 bytes"));
                modes::cbc_encrypt(&des, iv, data)
            }
            Algorithm::TripleDes => {
                let tdes =
                    TripleDes::from_key_bytes(key.try_into().expect("3DES keys are 24 bytes"));
                modes::cbc_encrypt(&tdes, iv, data)
            }
            Algorithm::Aes128 => {
                let aes = Aes::new_128(key.try_into().expect("AES-128 keys are 16 bytes"));
                modes::cbc_encrypt(&aes, iv, data)
            }
            Algorithm::Sha1 => panic!("SHA-1 is a hash, not a cipher"),
        }
    }

    /// Decrypts bulk data in CBC mode.
    ///
    /// # Errors
    ///
    /// Returns [`CipherError`] on bad IV/length/padding.
    ///
    /// # Panics
    ///
    /// Panics on key-length mismatch or [`Algorithm::Sha1`].
    pub fn decrypt_cbc(
        &self,
        algorithm: Algorithm,
        key: &[u8],
        iv: &[u8],
        data: &[u8],
    ) -> Result<Vec<u8>, CipherError> {
        match algorithm {
            Algorithm::Des => {
                let des = ciphers::Des::new(key.try_into().expect("DES keys are 8 bytes"));
                modes::cbc_decrypt(&des, iv, data)
            }
            Algorithm::TripleDes => {
                let tdes =
                    TripleDes::from_key_bytes(key.try_into().expect("3DES keys are 24 bytes"));
                modes::cbc_decrypt(&tdes, iv, data)
            }
            Algorithm::Aes128 => {
                let aes = Aes::new_128(key.try_into().expect("AES-128 keys are 16 bytes"));
                modes::cbc_decrypt(&aes, iv, data)
            }
            Algorithm::Sha1 => panic!("SHA-1 is a hash, not a cipher"),
        }
    }

    /// Hashes data with SHA-1.
    pub fn sha1(&self, data: &[u8]) -> [u8; 20] {
        Sha1::digest(data)
    }

    /// Generates an RSA key pair.
    pub fn rsa_generate<R: Rng + ?Sized>(&self, bits: usize, rng: &mut R) -> KeyPair {
        KeyPair::generate(bits, rng)
    }

    /// RSA public-key encryption with this platform's explored
    /// configuration (functional host computation).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError`] from the underlying operation.
    pub fn rsa_encrypt(&self, key: &KeyPair, m: &Natural) -> Result<Natural, RsaError> {
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        key.public
            .encrypt_raw(&mut ops, m, &self.modexp_config(), &mut cache)
    }

    /// RSA private-key decryption with this platform's explored
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError`] from the underlying operation.
    pub fn rsa_decrypt(&self, key: &KeyPair, c: &Natural) -> Result<Natural, RsaError> {
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        key.private
            .decrypt_raw(&mut ops, c, &self.modexp_config(), &mut cache)
    }
}

impl measure::SymmetricRow {
    /// Picks the cycles/byte matching a platform kind.
    pub fn pick(&self, kind: PlatformKind) -> f64 {
        match kind {
            PlatformKind::Baseline => self.base_cpb,
            PlatformKind::Optimized => self.opt_cpb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimized_platform_beats_baseline_on_des() {
        let mut base = SecurityProcessor::new(PlatformKind::Baseline);
        let mut opt = SecurityProcessor::new(PlatformKind::Optimized);
        let b = base.symmetric_cycles_per_byte(Algorithm::Des);
        let o = opt.symmetric_cycles_per_byte(Algorithm::Des);
        assert!(b / o > 5.0, "speedup {:.1}", b / o);
        // Cached on second call.
        assert_eq!(base.symmetric_cycles_per_byte(Algorithm::Des), b);
    }

    #[test]
    fn throughput_follows_cpb() {
        let mut opt = SecurityProcessor::new(PlatformKind::Optimized);
        let cpb = opt.symmetric_cycles_per_byte(Algorithm::Des);
        let mbps = opt.throughput_mbps(Algorithm::Des);
        let expect = 188.0e6 / cpb * 8.0 / 1.0e6;
        assert!((mbps - expect).abs() < 1e-6);
        // The paper's goal: secure 3G data rates (up to 2 Mbps).
        assert!(mbps > 2.0, "optimized DES throughput {mbps:.1} Mbps");
    }

    #[test]
    fn cbc_roundtrip_via_api() {
        let proc = SecurityProcessor::new(PlatformKind::Optimized);
        let key = [7u8; 16];
        let iv = [9u8; 16];
        let msg = b"the platform API moves bulk data";
        let ct = proc.encrypt_cbc(Algorithm::Aes128, &key, &iv, msg).unwrap();
        let pt = proc.decrypt_cbc(Algorithm::Aes128, &key, &iv, &ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn rsa_via_api_roundtrips() {
        let proc = SecurityProcessor::new(PlatformKind::Optimized);
        let mut rng = StdRng::seed_from_u64(77);
        let kp = proc.rsa_generate(256, &mut rng);
        let m = Natural::from_u64(123_456_789);
        let c = proc.rsa_encrypt(&kp, &m).unwrap();
        assert_eq!(proc.rsa_decrypt(&kp, &c).unwrap(), m);
    }

    #[test]
    fn sha1_via_api() {
        let proc = SecurityProcessor::new(PlatformKind::Baseline);
        assert_eq!(proc.sha1(b"abc")[..4], [0xa9, 0x99, 0x3e, 0x36],);
    }
}
