//! Host-side runners for the symmetric-cipher kernels.
//!
//! Each runner owns an XR32 core with tables installed and exposes
//! block-level operations that execute on the simulator, verify against
//! the `ciphers` crate, and report cycle counts — the measurement
//! machinery behind Table 1's DES/3DES/AES rows.

use crate::insns;
use crate::kernels::{aes as kaes, des as kdes, sha as ksha};
use ciphers::{aes::Aes, des::Des, sha1};
use xobs::trace::TraceSink;
use xr32::asm::{assemble, Program};
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;
use xr32::ext::ExtensionSet;

/// Kernel flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain software kernels on the base core.
    Base,
    /// Custom-instruction kernels.
    Accelerated,
}

/// A DES engine running on the simulator.
pub struct SimDes {
    cpu: Cpu,
    program: Program,
    map: kdes::MemoryMap,
    reference: Des,
    verify: bool,
}

impl SimDes {
    /// Builds the engine, installing tables and the key schedule.
    pub fn new(config: CpuConfig, variant: Variant, key: [u8; 8]) -> Self {
        let map = kdes::MemoryMap::default();
        let reference = Des::new(key);
        let (src, ext) = match variant {
            Variant::Base => (kdes::base_source(&map), ExtensionSet::new()),
            Variant::Accelerated => (kdes::accel_source(&map), insns::cipher_extension_set()),
        };
        let program = assemble(&src).expect("bundled DES kernel must assemble");
        let mut cpu = Cpu::with_extensions(config, ext);
        cpu.set_fuel(u64::MAX);
        kdes::install(&mut cpu, &map, reference.round_keys());
        SimDes {
            cpu,
            program,
            map,
            reference,
            verify: true,
        }
    }

    /// Disables per-block verification against the software DES.
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Encrypts (`decrypt = false`) or decrypts one 64-bit block on the
    /// simulator, returning `(output, cycles)`.
    pub fn crypt_block(&mut self, block: u64, decrypt: bool) -> (u64, u64) {
        self.crypt_block_traced(block, decrypt, None)
    }

    /// As [`Self::crypt_block`], streaming trace events into `sink` when
    /// one is attached (timing is identical either way).
    pub fn crypt_block_traced(
        &mut self,
        block: u64,
        decrypt: bool,
        sink: Option<&mut dyn TraceSink>,
    ) -> (u64, u64) {
        kdes::write_block(&mut self.cpu, &self.map, block);
        let summary = self
            .cpu
            .call_traced(
                &self.program,
                "des_block",
                &[self.map.block, self.map.key_schedule, decrypt as u32],
                sink,
            )
            .expect("des kernel runs");
        let out = kdes::read_block(&self.cpu, &self.map);
        if self.verify {
            let expect = if decrypt {
                self.reference.decrypt_u64(block)
            } else {
                self.reference.encrypt_u64(block)
            };
            assert_eq!(out, expect, "DES kernel diverged from software reference");
        }
        (out, summary.cycles)
    }

    /// Average cycles per byte over `blocks` encryptions (cache-warm
    /// steady state: the first block is excluded).
    pub fn cycles_per_byte(&mut self, blocks: usize) -> f64 {
        assert!(blocks >= 2);
        let mut x = 0x0123_4567_89ab_cdefu64;
        self.crypt_block(x, false); // warm caches
        let mut total = 0u64;
        for _ in 0..blocks - 1 {
            let (out, cycles) = self.crypt_block(x, false);
            x = out;
            total += cycles;
        }
        total as f64 / ((blocks - 1) as f64 * 8.0)
    }
}

/// An AES-128 engine running on the simulator.
pub struct SimAes {
    cpu: Cpu,
    program: Program,
    map: kaes::MemoryMap,
    reference: Aes,
    verify: bool,
}

impl SimAes {
    /// Builds the engine with an AES-128 key.
    pub fn new(config: CpuConfig, variant: Variant, key: &[u8; 16]) -> Self {
        let map = kaes::MemoryMap::default();
        let reference = Aes::new_128(key);
        let (src, ext) = match variant {
            Variant::Base => (kaes::base_source(&map), ExtensionSet::new()),
            Variant::Accelerated => (kaes::accel_source(&map), insns::cipher_extension_set()),
        };
        let program = assemble(&src).expect("bundled AES kernel must assemble");
        let mut cpu = Cpu::with_extensions(config, ext);
        cpu.set_fuel(u64::MAX);
        kaes::install(&mut cpu, &map, &reference);
        SimAes {
            cpu,
            program,
            map,
            reference,
            verify: true,
        }
    }

    /// Disables per-block verification.
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Encrypts one block on the simulator, returning
    /// `(ciphertext, cycles)`.
    pub fn encrypt_block(&mut self, block: &[u8; 16]) -> ([u8; 16], u64) {
        self.encrypt_block_traced(block, None)
    }

    /// As [`Self::encrypt_block`], streaming trace events into `sink`
    /// when one is attached (timing is identical either way).
    pub fn encrypt_block_traced(
        &mut self,
        block: &[u8; 16],
        sink: Option<&mut dyn TraceSink>,
    ) -> ([u8; 16], u64) {
        kaes::write_state(&mut self.cpu, &self.map, block);
        let summary = self
            .cpu
            .call_traced(&self.program, "aes_block", &[], sink)
            .expect("aes kernel runs");
        let out = kaes::read_state(&self.cpu, &self.map);
        if self.verify {
            let mut expect = *block;
            self.reference.encrypt_block16(&mut expect);
            assert_eq!(out, expect, "AES kernel diverged from software reference");
        }
        (out, summary.cycles)
    }

    /// Average cycles per byte over `blocks` encryptions (steady
    /// state).
    pub fn cycles_per_byte(&mut self, blocks: usize) -> f64 {
        assert!(blocks >= 2);
        let mut block = *b"0123456789abcdef";
        self.encrypt_block(&block); // warm caches
        let mut total = 0u64;
        for _ in 0..blocks - 1 {
            let (out, cycles) = self.encrypt_block(&block);
            block = out;
            total += cycles;
        }
        total as f64 / ((blocks - 1) as f64 * 16.0)
    }
}

/// A SHA-1 compression engine running on the simulator (base kernel
/// only — hashing is the platform's unaccelerated "misc" work).
pub struct SimSha1 {
    cpu: Cpu,
    program: Program,
    map: ksha::MemoryMap,
    verify: bool,
}

impl SimSha1 {
    /// Builds the engine.
    pub fn new(config: CpuConfig) -> Self {
        let map = ksha::MemoryMap::default();
        let program = assemble(&ksha::source(&map)).expect("bundled SHA-1 kernel must assemble");
        let mut cpu = Cpu::new(config);
        cpu.set_fuel(u64::MAX);
        SimSha1 {
            cpu,
            program,
            map,
            verify: true,
        }
    }

    /// Disables verification against the software compression function.
    pub fn set_verify(&mut self, verify: bool) {
        self.verify = verify;
    }

    /// Runs one compression on the simulator, returning
    /// `(new_state, cycles)`.
    pub fn compress(&mut self, state: [u32; 5], block: &[u8; 64]) -> ([u32; 5], u64) {
        self.compress_traced(state, block, None)
    }

    /// As [`Self::compress`], streaming trace events into `sink` when
    /// one is attached.
    pub fn compress_traced(
        &mut self,
        state: [u32; 5],
        block: &[u8; 64],
        sink: Option<&mut dyn TraceSink>,
    ) -> ([u32; 5], u64) {
        ksha::write_state(&mut self.cpu, &self.map, &state);
        ksha::write_block(&mut self.cpu, &self.map, block);
        let summary = self
            .cpu
            .call_traced(&self.program, kreg::id::SHA1.name(), &[], sink)
            .expect("sha1 kernel runs");
        let out = ksha::read_state(&self.cpu, &self.map);
        if self.verify {
            let mut expect = state;
            sha1::compress(&mut expect, block);
            assert_eq!(out, expect, "SHA-1 kernel diverged from software reference");
        }
        (out, summary.cycles)
    }

    /// Measures one characterization stimulus: chains `blocks`
    /// compressions over splitmix-generated state and message blocks
    /// and returns the total cycle count. This is the phase-1
    /// measurement harness for the registered SHA-1 kernel (the
    /// block-memory counterpart of `IssMpn::measure32`).
    pub fn measure_blocks(&mut self, blocks: usize, seed: u64) -> f64 {
        let mut x = seed;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 32) as u32
        };
        let mut state = [next(), next(), next(), next(), next()];
        let mut total = 0u64;
        for _ in 0..blocks {
            let mut block = [0u8; 64];
            for chunk in block.chunks_exact_mut(4) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            let (s, cycles) = self.compress(state, &block);
            state = s;
            total += cycles;
        }
        total as f64
    }

    /// Average cycles per byte over `count` compressions.
    pub fn cycles_per_byte(&mut self, count: usize) -> f64 {
        assert!(count >= 2);
        let mut state = [
            0x6745_2301,
            0xefcd_ab89,
            0x98ba_dcfe,
            0x1032_5476,
            0xc3d2_e1f0,
        ];
        let block = [0x61u8; 64];
        self.compress(state, &block); // warm
        let mut total = 0u64;
        for _ in 0..count - 1 {
            let (s, cycles) = self.compress(state, &block);
            state = s;
            total += cycles;
        }
        total as f64 / ((count - 1) as f64 * 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_base_kernel_encrypts_correctly() {
        let mut sim = SimDes::new(
            CpuConfig::default(),
            Variant::Base,
            0x1334_5779_9BBC_DFF1u64.to_be_bytes(),
        );
        // verify-mode asserts equality internally; also pin the classic
        // vector explicitly.
        let (ct, cycles) = sim.crypt_block(0x0123_4567_89AB_CDEF, false);
        assert_eq!(ct, 0x85E8_1354_0F0A_B405);
        assert!(cycles > 500, "DES block should take real work: {cycles}");
        let (pt, _) = sim.crypt_block(ct, true);
        assert_eq!(pt, 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn des_accel_kernel_encrypts_correctly() {
        let mut sim = SimDes::new(
            CpuConfig::default(),
            Variant::Accelerated,
            0x1334_5779_9BBC_DFF1u64.to_be_bytes(),
        );
        let (ct, _) = sim.crypt_block(0x0123_4567_89AB_CDEF, false); // cold caches
        assert_eq!(ct, 0x85E8_1354_0F0A_B405);
        let (_, cycles) = sim.crypt_block(0x0123_4567_89AB_CDEF, false); // warm
        assert!(
            cycles < 400,
            "accelerated DES should be fast when warm: {cycles}"
        );
        let (pt, _) = sim.crypt_block(ct, true);
        assert_eq!(pt, 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn des_speedup_is_large() {
        let key = *b"deskey!!";
        let mut base = SimDes::new(CpuConfig::default(), Variant::Base, key);
        let mut fast = SimDes::new(CpuConfig::default(), Variant::Accelerated, key);
        let b = base.cycles_per_byte(6);
        let f = fast.cycles_per_byte(6);
        let speedup = b / f;
        assert!(
            speedup > 5.0,
            "expected a large DES speedup, got {speedup:.1} ({b:.1} vs {f:.1} c/B)"
        );
    }

    #[test]
    fn aes_base_kernel_matches_fips() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let mut sim = SimAes::new(CpuConfig::default(), Variant::Base, &key);
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u8) * 0x11;
        }
        let (ct, cycles) = sim.encrypt_block(&block);
        assert_eq!(ct[0], 0x69);
        assert_eq!(ct[15], 0x5a);
        assert!(cycles > 1000, "AES base should take real work: {cycles}");
    }

    #[test]
    fn aes_accel_kernel_matches_fips() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let mut sim = SimAes::new(CpuConfig::default(), Variant::Accelerated, &key);
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u8) * 0x11;
        }
        let (ct, _) = sim.encrypt_block(&block); // cold caches
        assert_eq!(ct[0], 0x69);
        let (_, cycles) = sim.encrypt_block(&block); // warm
        assert!(
            cycles < 300,
            "accelerated AES should be fast when warm: {cycles}"
        );
    }

    #[test]
    fn sha1_kernel_compresses_correctly() {
        let mut sim = SimSha1::new(CpuConfig::default());
        // One "abc"-style padded block.
        let mut block = [0u8; 64];
        block[0] = b'a';
        block[1] = b'b';
        block[2] = b'c';
        block[3] = 0x80;
        block[63] = 24; // bit length
        let init = [
            0x6745_2301,
            0xefcd_ab89,
            0x98ba_dcfe,
            0x1032_5476,
            0xc3d2_e1f0,
        ];
        let (state, cycles) = sim.compress(init, &block);
        assert_eq!(state[0], 0xa999_3e36, "SHA-1(abc) first word");
        assert!(cycles > 800);
    }
}
