//! The programmable wireless security processing platform.
//!
//! This crate is the paper's primary contribution assembled from the
//! workspace's substrates: the layered cryptographic software stack
//! running on the XR32 extensible processor, the custom-instruction
//! catalog, and the four-phase co-design methodology
//! (characterize → explore → formulate → select).
//!
//! - [`insns`]: the TIE-style custom-instruction catalog (`add<k>`,
//!   `mac<k>`, `desround`, `aesround`, …) with semantics, latency and
//!   structural area;
//! - [`kernels`]: the XR32 assembly implementations of the basic
//!   operations (`mpn_*`, DES/AES blocks, SHA-1 compression);
//! - [`issops`]: the ISS-backed [`pubkey::ops::MpnOps`] provider
//!   (co-simulation: every basic op runs cycle-accurately);
//! - [`simcipher`]: simulator-backed DES/AES/SHA-1 block engines;
//! - [`flow`]: the methodology driver — kernel characterization into
//!   macro-models, design-space exploration, A-D-curve formulation and
//!   global custom-instruction selection;
//! - [`error`]: the unified error vocabulary with stable numeric codes
//!   shared by run-report `degradations` and the serving layer's wire
//!   protocol;
//! - [`job`]: the serializable [`job::JobSpec`] — the single public
//!   entry point the bench binaries and the `xserve` daemon both run
//!   methodology jobs through;
//! - [`kcache`]: the shard-locked persistent kernel-cycle memo cache
//!   shared by the bench harnesses and the serving layer (keyed by
//!   configuration fingerprint × variant × op × size × seed);
//! - [`platform`]: the user-facing [`platform::SecurityProcessor`] API
//!   (baseline vs. optimized platforms);
//! - [`measure`]: Table 1 cycles/byte measurements;
//! - [`ssl`]: the SSL transaction model behind Fig. 8;
//! - [`gap`]: the security-processing-gap trend model behind Fig. 1.
//!
//! # Examples
//!
//! ```no_run
//! use secproc::platform::{Algorithm, PlatformKind, SecurityProcessor};
//!
//! let mut baseline = SecurityProcessor::new(PlatformKind::Baseline);
//! let mut optimized = SecurityProcessor::new(PlatformKind::Optimized);
//! let b = baseline.symmetric_cycles_per_byte(Algorithm::Des);
//! let o = optimized.symmetric_cycles_per_byte(Algorithm::Des);
//! assert!(b / o > 5.0, "custom instructions pay off");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod flow;
pub mod gap;
pub mod genvar;
pub mod insns;
pub mod issops;
pub mod job;
pub mod kcache;
pub mod kernels;
pub mod measure;
pub mod platform;
pub mod simcipher;
pub mod ssl;

pub use error::Error;
pub use flow::{Degradation, FlowBuilder, FlowCtx};
pub use issops::IssMpn;
pub use job::{JobEnv, JobKind, JobSpec};
pub use platform::{Algorithm, PlatformKind, SecurityProcessor};
