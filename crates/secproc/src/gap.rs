//! The security processing gap (the paper's Fig. 1).
//!
//! Fig. 1 contrasts two trends across wireless generations and silicon
//! nodes: the MIPS required to run security protocols at the
//! generation's data rate, and the MIPS an embedded processor delivers.
//! The required side grows with the data rate (and with stronger
//! algorithms); the delivered side grows far more slowly — the *security
//! processing gap*.

/// One generation/node point of the trend.
#[derive(Debug, Clone, Copy)]
pub struct GapPoint {
    /// Wireless generation label.
    pub generation: &'static str,
    /// Silicon node in microns.
    pub node_um: f64,
    /// Peak downlink data rate in kbit/s.
    pub data_rate_kbps: f64,
    /// Embedded processor performance at that node, MIPS.
    pub processor_mips: f64,
}

/// The five generation/node pairs of Fig. 1 (2G through 3G/WLAN over
/// 0.35 µm to 0.10 µm). Processor MIPS follow the roughly 1.6×-per-node
/// improvement of late-1990s embedded cores (the paper's 0.18 µm
/// reference point is the 188 MHz Xtensa).
pub fn generations() -> Vec<GapPoint> {
    vec![
        GapPoint {
            generation: "2G",
            node_um: 0.35,
            data_rate_kbps: 14.4,
            processor_mips: 75.0,
        },
        GapPoint {
            generation: "2.5G",
            node_um: 0.25,
            data_rate_kbps: 384.0,
            processor_mips: 120.0,
        },
        GapPoint {
            generation: "3G (low)",
            node_um: 0.18,
            data_rate_kbps: 2_000.0,
            processor_mips: 188.0,
        },
        GapPoint {
            generation: "3G (high)",
            node_um: 0.13,
            data_rate_kbps: 10_000.0,
            processor_mips: 300.0,
        },
        GapPoint {
            generation: "WLAN",
            node_um: 0.10,
            data_rate_kbps: 55_000.0,
            processor_mips: 480.0,
        },
    ]
}

/// Computes the MIPS required to sustain security processing at a data
/// rate, given the measured protocol cost in cycles/byte.
///
/// `cycles_per_byte` is the end-to-end SSL-style cost (bulk cipher +
/// MAC + amortized handshake) — use the platform measurements to supply
/// it.
pub fn required_mips(data_rate_kbps: f64, cycles_per_byte: f64) -> f64 {
    // bytes/s = rate * 1000 / 8; MIPS ≈ cycles/s / 1e6 (1 cycle ≈ 1
    // issued instruction on the single-issue baseline).
    data_rate_kbps * 1000.0 / 8.0 * cycles_per_byte / 1.0e6
}

/// One rendered row of the Fig. 1 data.
#[derive(Debug, Clone, Copy)]
pub struct GapRow {
    /// The generation/node point.
    pub point: GapPoint,
    /// MIPS required for security processing at this generation.
    pub required_mips: f64,
}

impl GapRow {
    /// Ratio of required to available MIPS (> 1 means the processor
    /// cannot keep up).
    pub fn gap_factor(&self) -> f64 {
        self.required_mips / self.point.processor_mips
    }
}

/// Builds the trend with the supplied security cost (cycles/byte).
pub fn trend(cycles_per_byte: f64) -> Vec<GapRow> {
    generations()
        .into_iter()
        .map(|point| GapRow {
            required_mips: required_mips(point.data_rate_kbps, cycles_per_byte),
            point,
        })
        .collect()
}

/// Renders the Fig. 1 table.
pub fn render(rows: &[GapRow]) -> String {
    let mut out = String::from(
        "generation | node (um) | rate (kbps) | required MIPS | processor MIPS | gap\n-----------+-----------+-------------+---------------+----------------+-----\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} | {:>9.2} | {:>11.1} | {:>13.1} | {:>14.0} | {:>4.1}x\n",
            r.point.generation,
            r.point.node_um,
            r.point.data_rate_kbps,
            r.required_mips,
            r.point.processor_mips,
            r.gap_factor()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_outgrow_processors() {
        // With a fixed protocol cost, the required-MIPS curve must cross
        // the processor curve between 2G and 3G — the paper's gap.
        let rows = trend(1500.0); // SSL-ish cycles/byte on the baseline
        assert!(
            rows.first().unwrap().gap_factor() < 1.0,
            "2G was sustainable"
        );
        assert!(
            rows.last().unwrap().gap_factor() > 10.0,
            "WLAN rates are far beyond the embedded core"
        );
        // Monotone growth of the gap.
        for w in rows.windows(2) {
            assert!(w[1].gap_factor() > w[0].gap_factor());
        }
    }

    #[test]
    fn required_mips_scales_linearly() {
        assert!((required_mips(8.0, 1000.0) - 1.0).abs() < 1e-9);
        assert!((required_mips(16.0, 1000.0) - 2.0).abs() < 1e-9);
        assert!((required_mips(8.0, 2000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn five_generations_rendered() {
        let rows = trend(500.0);
        assert_eq!(rows.len(), 5);
        let text = render(&rows);
        assert!(text.contains("2G"));
        assert!(text.contains("WLAN"));
        assert_eq!(text.lines().count(), 7);
    }
}
