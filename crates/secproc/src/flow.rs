//! The four-phase system design methodology (the paper's Fig. 3).
//!
//! 1. **Performance characterization** ([`characterize_kernels`]): run
//!    each library kernel on the cycle-accurate ISS with pseudo-random
//!    stimuli and fit macro-models by regression.
//! 2. **Algorithm exploration** ([`explore_modexp`]): evaluate every
//!    candidate of the 450-point modular-exponentiation design space
//!    natively with macro-model cycle accrual, replacing ISS runs.
//! 3. **Custom-instruction formulation** ([`formulate_mpn_curves`]):
//!    measure each routine under every resource level of its custom
//!    instruction family, producing local A-D curves.
//! 4. **Global selection** ([`build_selector`], and
//!    [`tie::Selector::select`]): propagate A-D curves through the
//!    algorithm's call graph and pick the best point under an area
//!    budget.

use crate::issops::{IssMpn, KernelVariant};
use macromodel::charact::{characterize_metered, with_name, CharactOptions, Characterization};
use macromodel::model::{MacroModel, ModelQuality, Monomial};
use macromodel::stimulus::ParamSpace;
use mpint::Natural;
use pubkey::modexp::{mod_exp, ExpCache, ModExpError};
use pubkey::ops::{opname, ModeledMpn, MpnOps};
use pubkey::space::{ModExpConfig, ParetoFront};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use tie::adcurve::{AdCurve, AdPoint};
use tie::callgraph::CallGraph;
use tie::insn::CustomInsn;
use tie::select::Selector;
use xr32::config::CpuConfig;

/// Fitted macro-models for every basic operation, with accuracy
/// metadata.
#[derive(Debug, Clone)]
pub struct KernelModels {
    /// Per-op models for 32-bit limbs.
    pub models32: BTreeMap<&'static str, MacroModel>,
    /// Per-op models for 16-bit limbs.
    pub models16: BTreeMap<&'static str, MacroModel>,
    /// Fit quality per (op, radix-tag) pair, e.g. `("mpn_add_n", 32)`.
    pub quality: BTreeMap<(&'static str, u32), ModelQuality>,
}

impl KernelModels {
    /// Builds the macro-model-metered ops provider from these models.
    pub fn modeled_ops(&self, glue_cost: f64) -> ModeledMpn {
        ModeledMpn::with_radix_models(self.models32.clone(), self.models16.clone(), glue_cost)
    }

    /// Mean absolute percentage error across all fitted models (the
    /// paper reports 11.8 % overall).
    pub fn mean_abs_error_pct(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.quality.values().map(|q| q.mae_pct).sum::<f64>() / self.quality.len() as f64
    }
}

/// Phase 1: characterizes every basic-operation kernel of the given
/// variant on the ISS, fitting linear macro-models in the operand
/// length over `1..=max_limbs`.
///
/// # Panics
///
/// Panics if a regression fit is degenerate (cannot happen for the
/// bundled kernels, whose profiles are near-affine).
pub fn characterize_kernels(
    config: &CpuConfig,
    variant: KernelVariant,
    max_limbs: usize,
    options: &CharactOptions,
) -> KernelModels {
    characterize_kernels_metered(config, variant, max_limbs, options, None)
}

/// As [`characterize_kernels`], additionally publishing phase-1
/// progress into a metrics registry when one is supplied:
/// `flow.phase1.iss_cycles` (simulated cycles consumed by stimuli),
/// `flow.phase1.ops_characterized`, `flow.phase1.mean_abs_error_pct`,
/// plus the `charact.*` metrics of every fit.
///
/// # Panics
///
/// Panics under the same conditions as [`characterize_kernels`].
pub fn characterize_kernels_metered(
    config: &CpuConfig,
    variant: KernelVariant,
    max_limbs: usize,
    options: &CharactOptions,
    metrics: Option<&xobs::Registry>,
) -> KernelModels {
    let mut models32 = BTreeMap::new();
    let mut models16 = BTreeMap::new();
    let mut quality = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0xC0DE_2002);
    let scratch;
    let reg = match metrics {
        Some(reg) => reg,
        None => {
            scratch = xobs::Registry::new();
            &scratch
        }
    };
    let iss_cycles = reg.counter("flow.phase1.iss_cycles");
    let ops_done = reg.counter("flow.phase1.ops_characterized");

    for width in [32u32, 16] {
        let mut iss = IssMpn::with_variant(config.clone(), variant);
        iss.set_verify(false); // characterization measures timing only
        for op in opname::ALL {
            let space = if op == opname::DIV_QHAT {
                ParamSpace::new(vec![(1, 1)])
            } else {
                ParamSpace::new(vec![(1, max_limbs as u64)])
            };
            let basis = if op == opname::DIV_QHAT {
                vec![Monomial::constant(1)]
            } else {
                vec![Monomial::constant(1), Monomial::linear(1, 0)]
            };
            let mut seed = 1u64;
            let ch: Characterization = characterize_metered(
                &space,
                &basis,
                options,
                &mut rng,
                |params: &[u64]| {
                    seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let n = params[0] as usize;
                    let cycles = if width == 32 {
                        iss.measure32(op, n, seed)
                    } else {
                        iss.measure16(op, n, seed)
                    };
                    iss_cycles.add(cycles as u64);
                    cycles
                },
                metrics,
            )
            .unwrap_or_else(|e| panic!("characterization of {op} (r{width}) failed: {e}"));
            ops_done.inc();
            let ch = with_name(ch, op);
            quality.insert((op, width), ch.quality);
            if width == 32 {
                models32.insert(op, ch.model);
            } else {
                models16.insert(op, ch.model);
            }
        }
    }
    let models = KernelModels {
        models32,
        models16,
        quality,
    };
    reg.gauge("flow.phase1.mean_abs_error_pct")
        .set(models.mean_abs_error_pct());
    models
}

/// One evaluated design-space candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration.
    pub config: ModExpConfig,
    /// Estimated cycles for the workload.
    pub cycles: f64,
}

/// Phase 2 result: the ranked design space plus timing bookkeeping.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// All candidates, sorted fastest-first.
    pub ranked: Vec<Candidate>,
    /// Wall-clock time of the whole exploration.
    pub elapsed: Duration,
    /// Candidates evaluated.
    pub evaluated: usize,
}

impl ExplorationResult {
    /// The winning configuration.
    pub fn best(&self) -> &Candidate {
        &self.ranked[0]
    }
}

/// Phase 2: evaluates every candidate of the design space with
/// macro-model metering on a fixed RSA-decrypt-like workload
/// (`base^exp mod m` with `bits`-bit operands).
///
/// # Errors
///
/// Returns [`ModExpError`] if a configuration fails (which would be a
/// defect — all 450 are executable).
pub fn explore_modexp(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
) -> Result<ExplorationResult, ModExpError> {
    explore_modexp_metered(models, bits, glue_cost, None)
}

/// As [`explore_modexp`], additionally publishing phase-2 progress into
/// a metrics registry when one is supplied:
/// `flow.phase2.candidates_evaluated`, a `flow.phase2.candidate_cycles`
/// histogram over the whole space, `flow.phase2.best_cycles`, and the
/// `space.*` gauges of the speed/space [`ParetoFront`] (memory axis =
/// [`ModExpConfig::table_bytes`]).
///
/// # Errors
///
/// Returns [`ModExpError`] under the same conditions as
/// [`explore_modexp`].
pub fn explore_modexp_metered(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
) -> Result<ExplorationResult, ModExpError> {
    let scratch;
    let reg = match metrics {
        Some(reg) => reg,
        None => {
            scratch = xobs::Registry::new();
            &scratch
        }
    };
    let evaluated = reg.counter("flow.phase2.candidates_evaluated");
    let cycles_hist = reg.histogram("flow.phase2.candidate_cycles");
    let mut front = ParetoFront::new();
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let m = {
        // An odd modulus with the top bit set.
        let mut m = Natural::random_bits(&mut rng, bits);
        if m.is_even() {
            m = &m + &Natural::one();
        }
        m
    };
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let expect = base.pow_mod(&exp, &m);

    let start = Instant::now();
    let mut ranked = Vec::with_capacity(450);
    for config in ModExpConfig::enumerate() {
        let mut ops = models.modeled_ops(glue_cost);
        let mut cache = ExpCache::new();
        // Caching benefits repeat calls: run twice, cost the second.
        let r1 = mod_exp(&mut ops, &base, &exp, &m, &config, &mut cache)?;
        debug_assert_eq!(r1, expect);
        MpnOps::<u32>::reset(&mut ops);
        let r2 = mod_exp(&mut ops, &base, &exp, &m, &config, &mut cache)?;
        assert_eq!(r2, expect, "config {config} computed a wrong result");
        let cycles = MpnOps::<u32>::cycles(&ops);
        evaluated.inc();
        cycles_hist.observe(cycles);
        front.offer(config, cycles, config.table_bytes(bits));
        ranked.push(Candidate { config, cycles });
    }
    ranked.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
    reg.gauge("flow.phase2.best_cycles").set(ranked[0].cycles);
    front.record_metrics(reg);
    Ok(ExplorationResult {
        evaluated: ranked.len(),
        elapsed: start.elapsed(),
        ranked,
    })
}

/// Validates the macro-models against full ISS co-simulation on a
/// handful of candidates (the paper could afford six), returning the
/// absolute percentage error per candidate and — when a registry is
/// supplied — observing each into the `flow.model_error_pct` histogram.
///
/// # Errors
///
/// Returns [`ModExpError`] if a candidate fails to execute.
pub fn validate_models_metered(
    models: &KernelModels,
    config: &CpuConfig,
    variant: KernelVariant,
    candidates: &[ModExpConfig],
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
) -> Result<Vec<f64>, ModExpError> {
    let mut errors = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let modeled = explore_single(models, candidate, bits, glue_cost)?;
        let cosim = cosimulate_candidate(config, variant, candidate, bits, glue_cost)?;
        let err_pct = ((modeled - cosim) / cosim).abs() * 100.0;
        if let Some(reg) = metrics {
            reg.histogram("flow.model_error_pct").observe(err_pct);
        }
        errors.push(err_pct);
    }
    Ok(errors)
}

/// Evaluates a single candidate with macro-model metering on the same
/// fixed workload as [`explore_modexp`], returning estimated cycles.
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure.
pub fn explore_single(
    models: &KernelModels,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
) -> Result<f64, ModExpError> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let mut ops = models.modeled_ops(glue_cost);
    let mut cache = ExpCache::new();
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    MpnOps::<u32>::reset(&mut ops);
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    Ok(MpnOps::<u32>::cycles(&ops))
}

/// Evaluates a single candidate by full ISS co-simulation (the slow
/// reference the paper could only afford for six candidates).
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure.
pub fn cosimulate_candidate(
    config: &CpuConfig,
    variant: KernelVariant,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
) -> Result<f64, ModExpError> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);

    let mut iss = IssMpn::with_variant(config.clone(), variant);
    iss.set_verify(false);
    iss.set_glue_cost(glue_cost);
    let mut cache = ExpCache::new();
    mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
    MpnOps::<u32>::reset(&mut iss);
    mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
    Ok(MpnOps::<u32>::cycles(&iss))
}

/// The shared user-register load/store plumbing as a selection-level
/// instruction (counted once however many datapaths share it).
fn ur_ls_insn() -> CustomInsn {
    let area = crate::insns::ldur().area + crate::insns::stur().area;
    CustomInsn::new("ur_ls", 1, area)
}

/// Phase 3: formulates the A-D curves for `mpn_add_n` and
/// `mpn_addmul_1` by measuring the base kernel and every accelerated
/// resource level on the ISS at `n` limbs (the paper's Fig. 5(a)/(b)).
pub fn formulate_mpn_curves(config: &CpuConfig, n: usize) -> BTreeMap<String, AdCurve> {
    let mut curves = BTreeMap::new();

    // mpn_add_n family: base point plus add2/4/8/16.
    let mut points = Vec::new();
    let mut base = IssMpn::base(config.clone());
    base.set_verify(false);
    base.measure32(opname::ADD_N, n, 7); // warm
    points.push(AdPoint::base(base.measure32(opname::ADD_N, n, 8)));
    for lanes in [2u32, 4, 8, 16] {
        let mut iss = IssMpn::accelerated(config.clone(), lanes, 1);
        iss.set_verify(false);
        iss.measure32(opname::ADD_N, n, 7);
        let cycles = iss.measure32(opname::ADD_N, n, 8);
        points.push(AdPoint::new(
            [
                ur_ls_insn(),
                CustomInsn::new("add", lanes, crate::insns::add_k(lanes).area),
            ],
            cycles,
        ));
    }
    curves.insert("mpn_add_n".to_owned(), AdCurve::from_points(points));

    // mpn_addmul_1 family: base point plus mac1/2/4.
    let mut points = Vec::new();
    let mut base = IssMpn::base(config.clone());
    base.set_verify(false);
    base.measure32(opname::ADDMUL_1, n, 7);
    points.push(AdPoint::base(base.measure32(opname::ADDMUL_1, n, 8)));
    for lanes in [1u32, 2, 4] {
        let mut iss = IssMpn::accelerated(config.clone(), 2, lanes);
        iss.set_verify(false);
        iss.measure32(opname::ADDMUL_1, n, 7);
        let cycles = iss.measure32(opname::ADDMUL_1, n, 8);
        points.push(AdPoint::new(
            [
                ur_ls_insn(),
                CustomInsn::new("mac", lanes, crate::insns::mac_k(lanes).area),
            ],
            cycles,
        ));
    }
    curves.insert("mpn_addmul_1".to_owned(), AdCurve::from_points(points));

    curves
}

/// Builds the paper's Fig. 4 call graph — the optimized modular
/// exponentiation example — annotated with this platform's measured
/// leaf cycles. `k` is the operand size in limbs.
pub fn fig4_call_graph(config: &CpuConfig, k: usize) -> CallGraph {
    let mut iss = IssMpn::base(config.clone());
    iss.set_verify(false);
    iss.measure32(opname::ADD_N, k, 3);
    let addn = iss.measure32(opname::ADD_N, k, 4);
    iss.measure32(opname::ADDMUL_1, k, 3);
    let addmul = iss.measure32(opname::ADDMUL_1, k, 4);

    let mut g = CallGraph::new();
    g.add_node("decrypt", 120.0);
    g.add_node("mpz_mul", 40.0);
    g.add_node("mod_hw", 30.0);
    g.add_node("mpz_mod", 60.0);
    g.add_node("mpz_add", 10.0);
    g.add_node("mpz_sub", 10.0);
    g.add_node("mpz_gcdext", 200.0);
    g.add_node("mpn_add_n", addn);
    g.add_node("mpn_addmul_1", addmul);
    for (caller, callee, count) in [
        ("decrypt", "mpz_mul", 4.0),
        ("decrypt", "mod_hw", 4.0),
        ("decrypt", "mpz_mod", 2.0),
        ("decrypt", "mpz_add", 2.0),
        ("decrypt", "mpz_sub", 2.0),
        ("mpz_mul", "mpn_addmul_1", k as f64),
        ("mod_hw", "mpn_addmul_1", k as f64),
        ("mod_hw", "mpn_add_n", 2.0),
        ("mpz_mod", "mpn_add_n", 1.0),
        ("mpz_add", "mpn_add_n", 1.0),
        ("mpz_sub", "mpn_add_n", 1.0),
        ("mpz_gcdext", "mpn_add_n", 3.0),
    ] {
        g.add_call(caller, callee, count)
            .expect("nodes declared above");
    }
    g
}

/// Phase 4: assembles the global selector from the Fig. 4 call graph
/// and the formulated curves.
pub fn build_selector(config: &CpuConfig, k: usize) -> Selector {
    let graph = fig4_call_graph(config, k);
    let curves = formulate_mpn_curves(config, k);
    let mut sel = Selector::new(graph);
    for (name, curve) in curves {
        sel.set_leaf_curve(name, curve);
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> CharactOptions {
        CharactOptions {
            train_samples: 12,
            validation_points: 5,
        }
    }

    #[test]
    fn characterization_fits_linear_kernels_well() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            16,
            &quick_options(),
        );
        for op in opname::ALL {
            assert!(models.models32.contains_key(op), "{op} missing (r32)");
            assert!(models.models16.contains_key(op), "{op} missing (r16)");
        }
        let q = models.quality[&(opname::ADDMUL_1, 32)];
        assert!(q.mae_pct < 15.0, "addmul_1 fit error {}%", q.mae_pct);
        assert!(models.mean_abs_error_pct() < 20.0);
        // Per-limb cost: addmul > add (multiplies dominate).
        let am = models.models32[opname::ADDMUL_1].predict(&[16]);
        let an = models.models32[opname::ADD_N].predict(&[16]);
        assert!(am > an, "addmul {am} vs add {an}");
    }

    #[test]
    fn exploration_ranks_the_space_and_best_beats_baseline() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            8,
            &quick_options(),
        );
        let result = explore_modexp(&models, 128, 4.0).unwrap();
        assert_eq!(result.evaluated, 450);
        let best = result.best();
        let baseline = result
            .ranked
            .iter()
            .find(|c| c.config == ModExpConfig::baseline())
            .expect("baseline in the space");
        assert!(
            best.cycles < baseline.cycles / 2.0,
            "exploration should find large algorithmic wins: best {} vs baseline {}",
            best.cycles,
            baseline.cycles
        );
        // The winner should use a modern reduction, CRT and caching.
        assert_ne!(best.config.mul, pubkey::MulAlgo::MulDiv);
    }

    #[test]
    fn ad_curves_are_monotone_in_resources() {
        let curves = formulate_mpn_curves(&CpuConfig::default(), 32);
        let addn = &curves["mpn_add_n"];
        assert_eq!(addn.len(), 5);
        let pts = addn.points();
        assert_eq!(pts[0].area(), 0);
        for w in pts.windows(2) {
            assert!(w[0].cycles > w[1].cycles, "more lanes, fewer cycles");
        }
        let addmul = &curves["mpn_addmul_1"];
        assert_eq!(addmul.len(), 4);
    }

    #[test]
    fn selector_improves_with_budget() {
        let sel = build_selector(&CpuConfig::default(), 32);
        let root = sel.root_curve("decrypt").unwrap();
        assert!(root.len() >= 3);
        let no_hw = sel.select("decrypt", 0).unwrap().unwrap();
        let big = sel.select("decrypt", 1_000_000).unwrap().unwrap();
        assert!(no_hw.cycles > big.cycles);
        assert_eq!(no_hw.area(), 0);
    }

    #[test]
    fn cosimulation_agrees_with_models_roughly() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            8,
            &quick_options(),
        );
        let cfg = ModExpConfig::optimized();
        let modeled = {
            let mut ops = models.modeled_ops(4.0);
            let mut cache = ExpCache::new();
            let mut rng = StdRng::seed_from_u64(0xE4B0);
            let mut m = Natural::random_bits(&mut rng, 128);
            if m.is_even() {
                m = &m + &Natural::one();
            }
            let base = Natural::random_below(&mut rng, &m);
            let exp = Natural::random_bits(&mut rng, 128);
            mod_exp(&mut ops, &base, &exp, &m, &cfg, &mut cache).unwrap();
            MpnOps::<u32>::reset(&mut ops);
            mod_exp(&mut ops, &base, &exp, &m, &cfg, &mut cache).unwrap();
            MpnOps::<u32>::cycles(&ops)
        };
        let cosim =
            cosimulate_candidate(&CpuConfig::default(), KernelVariant::Base, &cfg, 128, 4.0)
                .unwrap();
        let err = ((modeled - cosim) / cosim).abs() * 100.0;
        assert!(
            err < 30.0,
            "macro-model estimate {modeled:.0} vs co-sim {cosim:.0} ({err:.1}% off)"
        );
    }
}
