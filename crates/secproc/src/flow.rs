//! The four-phase system design methodology (the paper's Fig. 3).
//!
//! 1. **Performance characterization** ([`characterize_kernels`]): run
//!    each library kernel on the cycle-accurate ISS with pseudo-random
//!    stimuli and fit macro-models by regression.
//! 2. **Algorithm exploration** ([`explore_modexp`]): evaluate every
//!    candidate of the 450-point modular-exponentiation design space
//!    natively with macro-model cycle accrual, replacing ISS runs.
//! 3. **Custom-instruction formulation** ([`formulate_mpn_curves`]):
//!    measure each routine under every resource level of its custom
//!    instruction family, producing local A-D curves.
//! 4. **Global selection** ([`build_selector`], and
//!    [`tie::Selector::select`]): propagate A-D curves through the
//!    algorithm's call graph and pick the best point under an area
//!    budget.

use crate::issops::{IssMpn, KernelVariant};
use crate::kcache::{self, KCache};
use crate::simcipher::SimSha1;
use kreg::{CallConv, KernelDescriptor, KernelId, LibKind};
use macromodel::charact::{fit_planned, plan_stimuli, with_name, CharactOptions, StimulusPlan};
use macromodel::model::{MacroModel, ModelQuality, Monomial};
use mpint::Natural;
use pubkey::modexp::{mod_exp, ExpCache, ModExpError};
use pubkey::ops::{ModeledMpn, MpnOps};
use pubkey::space::{ModExpConfig, ParetoFront};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use tie::adcurve::{AdCurve, AdPoint};
use tie::callgraph::CallGraph;
use tie::insn::CustomInsn;
use tie::select::Selector;
use xpar::{Pool, SEED_STEP};
use xr32::config::CpuConfig;

/// Fitted macro-models for every basic operation, with accuracy
/// metadata.
#[derive(Debug, Clone)]
pub struct KernelModels {
    /// Per-op models for 32-bit limbs.
    pub models32: BTreeMap<&'static str, MacroModel>,
    /// Per-op models for 16-bit limbs.
    pub models16: BTreeMap<&'static str, MacroModel>,
    /// Fit quality per (op, radix-tag) pair, e.g. `("mpn_add_n", 32)`.
    pub quality: BTreeMap<(&'static str, u32), ModelQuality>,
}

impl KernelModels {
    /// Builds the macro-model-metered ops provider from these models.
    pub fn modeled_ops(&self, glue_cost: f64) -> ModeledMpn {
        ModeledMpn::with_radix_models(self.models32.clone(), self.models16.clone(), glue_cost)
    }

    /// Mean absolute percentage error across all fitted models (the
    /// paper reports 11.8 % overall).
    pub fn mean_abs_error_pct(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.quality.values().map(|q| q.mae_pct).sum::<f64>() / self.quality.len() as f64
    }
}

/// Phase 1: characterizes every basic-operation kernel of the given
/// variant on the ISS, fitting linear macro-models in the operand
/// length over `1..=max_limbs`.
///
/// # Panics
///
/// Panics if a regression fit is degenerate (cannot happen for the
/// bundled kernels, whose profiles are near-affine).
pub fn characterize_kernels(
    config: &CpuConfig,
    variant: KernelVariant,
    max_limbs: usize,
    options: &CharactOptions,
) -> KernelModels {
    characterize_kernels_metered(config, variant, max_limbs, options, None)
}

/// As [`characterize_kernels`], additionally publishing phase-1
/// progress into a metrics registry when one is supplied:
/// `flow.phase1.iss_cycles` (simulated cycles consumed by stimuli),
/// `flow.phase1.ops_characterized`, `flow.phase1.mean_abs_error_pct`,
/// `flow.phase1.wall_ms`, plus the `charact.*` metrics of every fit.
/// Runs on an environment-sized [`Pool`] without a kernel-cycle cache;
/// see [`characterize_kernels_pooled`].
///
/// # Panics
///
/// Panics under the same conditions as [`characterize_kernels`].
pub fn characterize_kernels_metered(
    config: &CpuConfig,
    variant: KernelVariant,
    max_limbs: usize,
    options: &CharactOptions,
    metrics: Option<&xobs::Registry>,
) -> KernelModels {
    characterize_kernels_pooled(
        config,
        variant,
        max_limbs,
        options,
        metrics,
        &Pool::from_env(),
        None,
    )
}

/// One phase-1 measurement unit: a registered kernel characterized at
/// one radix width against a pre-drawn stimulus plan. The stimulus
/// space, monomial basis and cache-key unit all come from the kernel's
/// registry descriptor.
struct CharactTask {
    width: u32,
    desc: &'static KernelDescriptor,
    basis: Vec<Monomial>,
    plan: StimulusPlan,
}

impl CharactTask {
    fn name(&self) -> &'static str {
        self.desc.id.name()
    }
}

/// Content digest of a stimulus plan (folded into the kernel-cycle
/// cache key so changed characterization options cannot be served stale
/// measurements).
fn plan_digest(plan: &StimulusPlan) -> u64 {
    let flat: Vec<f64> = plan
        .points()
        .flat_map(|p| p.iter().map(|&v| v as f64))
        .collect();
    xpar::memo::checksum(
        &format!("plan:t{}v{}", plan.train.len(), plan.validation.len()),
        &flat,
    )
}

/// Runs one characterization task on a fresh simulation harness (each
/// worker owns its `Cpu`), returning the cycle count of every planned
/// stimulus in plan order. The harness is chosen by the kernel's
/// registered calling convention: register-convention kernels run
/// through the ISS ops provider, block-memory kernels through their
/// dedicated engine.
fn measure_charact_task(config: &CpuConfig, variant: KernelVariant, t: &CharactTask) -> Vec<f64> {
    // Characterization measures timing only, and one warm-up stimulus
    // is discarded so every task starts from the same (warm) cache
    // state regardless of which worker runs it.
    if matches!(t.desc.conv, CallConv::BlockMem { .. }) {
        let mut sim = SimSha1::new(config.clone());
        sim.set_verify(false);
        sim.measure_blocks(1, 0x5EED);
        let mut seed = 1u64;
        t.plan
            .points()
            .map(|params| {
                seed = seed.wrapping_add(SEED_STEP);
                sim.measure_blocks(params[0] as usize, seed)
            })
            .collect()
    } else {
        let kernel = t.desc.id;
        let mut iss = IssMpn::with_variant(config.clone(), variant);
        iss.set_verify(false);
        let warm = if t.width == 32 {
            iss.measure32(kernel, 1, 0x5EED)
        } else {
            iss.measure16(kernel, 1, 0x5EED)
        };
        warm.expect("register-convention kernel is ISS-measurable");
        let mut seed = 1u64;
        t.plan
            .points()
            .map(|params| {
                seed = seed.wrapping_add(SEED_STEP);
                let n = params[0] as usize;
                let cycles = if t.width == 32 {
                    iss.measure32(kernel, n, seed)
                } else {
                    iss.measure16(kernel, n, seed)
                };
                cycles.expect("register-convention kernel is ISS-measurable")
            })
            .collect()
    }
}

/// Phase 1 on a worker pool: stimulus plans are drawn serially from the
/// shared RNG (so the stimulus stream is identical for any thread
/// count), the `(width, kernel)` measurement units — every registered
/// kernel at every radix width it supports — run in parallel with one
/// fresh simulation harness each, and fits are merged in submission
/// order. When a
/// [`KCache`] is supplied, each unit's cycle vector is served from the
/// cache under `fingerprint × variant × op × max_limbs × plan-digest`.
///
/// The result — models, quality, and every published metric except
/// `*wall_ms` — is bit-identical for any thread count and any cache
/// state.
///
/// # Panics
///
/// Panics under the same conditions as [`characterize_kernels`].
#[allow(clippy::too_many_arguments)]
pub fn characterize_kernels_pooled(
    config: &CpuConfig,
    variant: KernelVariant,
    max_limbs: usize,
    options: &CharactOptions,
    metrics: Option<&xobs::Registry>,
    pool: &Pool,
    cache: Option<&KCache>,
) -> KernelModels {
    let scratch;
    let reg = match metrics {
        Some(reg) => reg,
        None => {
            scratch = xobs::Registry::new();
            &scratch
        }
    };
    let iss_cycles = reg.counter("flow.phase1.iss_cycles");
    let ops_done = reg.counter("flow.phase1.ops_characterized");
    let t0 = Instant::now();

    // Serial planning: the shared RNG is consumed in a fixed order.
    // The multi-precision kernels keep their historical plan order
    // (width-major over the registry) and block kernels are appended
    // afterwards, so their registration does not perturb the existing
    // stimulus streams (which are part of the cache identity).
    let mut rng = StdRng::seed_from_u64(0xC0DE_2002);
    let mut tasks = Vec::with_capacity(2 * kreg::registry().len());
    let plan_for = |desc: &'static KernelDescriptor, width: u32, rng: &mut StdRng| {
        let spec = desc
            .stimulus
            .unwrap_or_else(|| panic!("kernel {} has no stimulus space", desc.id));
        CharactTask {
            width,
            desc,
            basis: spec.basis(),
            plan: plan_stimuli(&spec.space(max_limbs), options, rng),
        }
    };
    for width in [32u32, 16] {
        for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
            tasks.push(plan_for(desc, width, &mut rng));
        }
    }
    for desc in kreg::registry().iter().filter(|d| d.lib != LibKind::Mpn) {
        for &width in desc.widths() {
            tasks.push(plan_for(desc, width, &mut rng));
        }
    }

    // Parallel measurement + fit; results return in submission order.
    let fp = config.fingerprint();
    let vtag = variant.tag();
    let fitted = pool.par_map(&tasks, |_, t| {
        let cycles = match cache {
            Some(kc) => kc.get_or_compute(
                &kcache::key(
                    fp,
                    &vtag,
                    &t.desc.charact_unit(t.width),
                    max_limbs as u64,
                    plan_digest(&t.plan),
                ),
                t.plan.len(),
                || measure_charact_task(config, variant, t),
            ),
            None => measure_charact_task(config, variant, t),
        };
        let ch = fit_planned(&t.basis, &t.plan, &cycles).unwrap_or_else(|e| {
            panic!(
                "characterization of {} (r{}) failed: {e}",
                t.name(),
                t.width
            )
        });
        let sim_cycles: u64 = cycles.iter().map(|&c| c as u64).sum();
        (with_name(ch, t.name()), sim_cycles)
    });

    // Serial merge in submission order: metric streams stay
    // deterministic, and memo hits count like fresh measurements so
    // warm and cold runs report identical flow/charact metrics.
    let mut models32 = BTreeMap::new();
    let mut models16 = BTreeMap::new();
    let mut quality = BTreeMap::new();
    for (t, (ch, sim_cycles)) in tasks.iter().zip(fitted) {
        iss_cycles.add(sim_cycles);
        ops_done.inc();
        if metrics.is_some() {
            reg.counter("charact.stimuli_run").add(t.plan.len() as u64);
            reg.gauge("charact.last_r_squared")
                .set(ch.quality.r_squared);
            reg.gauge("charact.last_mae_pct").set(ch.quality.mae_pct);
            reg.histogram("charact.mae_pct").observe(ch.quality.mae_pct);
        }
        quality.insert((t.name(), t.width), ch.quality);
        if t.width == 32 {
            models32.insert(t.name(), ch.model);
        } else {
            models16.insert(t.name(), ch.model);
        }
    }
    let models = KernelModels {
        models32,
        models16,
        quality,
    };
    reg.gauge("flow.phase1.mean_abs_error_pct")
        .set(models.mean_abs_error_pct());
    reg.gauge("flow.phase1.wall_ms")
        .set(t0.elapsed().as_secs_f64() * 1e3);
    models
}

/// One evaluated design-space candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration.
    pub config: ModExpConfig,
    /// Estimated cycles for the workload.
    pub cycles: f64,
}

/// Phase 2 result: the ranked design space plus timing bookkeeping.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// All candidates, sorted fastest-first.
    pub ranked: Vec<Candidate>,
    /// Wall-clock time of the whole exploration.
    pub elapsed: Duration,
    /// Candidates evaluated.
    pub evaluated: usize,
}

impl ExplorationResult {
    /// The winning configuration.
    pub fn best(&self) -> &Candidate {
        &self.ranked[0]
    }
}

/// Phase 2: evaluates every candidate of the design space with
/// macro-model metering on a fixed RSA-decrypt-like workload
/// (`base^exp mod m` with `bits`-bit operands).
///
/// # Errors
///
/// Returns [`ModExpError`] if a configuration fails (which would be a
/// defect — all 450 are executable).
pub fn explore_modexp(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
) -> Result<ExplorationResult, ModExpError> {
    explore_modexp_metered(models, bits, glue_cost, None)
}

/// As [`explore_modexp`], additionally publishing phase-2 progress into
/// a metrics registry when one is supplied:
/// `flow.phase2.candidates_evaluated`, a `flow.phase2.candidate_cycles`
/// histogram over the whole space, `flow.phase2.best_cycles`, and the
/// `space.*` gauges of the speed/space [`ParetoFront`] (memory axis =
/// [`ModExpConfig::table_bytes`]).
///
/// # Errors
///
/// Returns [`ModExpError`] under the same conditions as
/// [`explore_modexp`].
pub fn explore_modexp_metered(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
) -> Result<ExplorationResult, ModExpError> {
    explore_modexp_pooled(models, bits, glue_cost, metrics, &Pool::from_env())
}

/// Phase 2 on a worker pool: the 450-candidate lattice is evaluated in
/// parallel (each candidate owns its modeled-ops provider and cache),
/// then ranked and offered to the Pareto front in enumeration order, so
/// the result is bit-identical to the serial run for any thread count.
///
/// # Errors
///
/// Returns [`ModExpError`] under the same conditions as
/// [`explore_modexp`].
pub fn explore_modexp_pooled(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
    pool: &Pool,
) -> Result<ExplorationResult, ModExpError> {
    let scratch;
    let reg = match metrics {
        Some(reg) => reg,
        None => {
            scratch = xobs::Registry::new();
            &scratch
        }
    };
    let evaluated = reg.counter("flow.phase2.candidates_evaluated");
    let cycles_hist = reg.histogram("flow.phase2.candidate_cycles");
    let mut front = ParetoFront::new();
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let m = {
        // An odd modulus with the top bit set.
        let mut m = Natural::random_bits(&mut rng, bits);
        if m.is_even() {
            m = &m + &Natural::one();
        }
        m
    };
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let expect = base.pow_mod(&exp, &m);

    let start = Instant::now();
    let configs = ModExpConfig::enumerate();
    let estimates = pool.par_map(&configs, |_, config| {
        let mut ops = models.modeled_ops(glue_cost);
        let mut cache = ExpCache::new();
        // Caching benefits repeat calls: run twice, cost the second.
        let r1 = mod_exp(&mut ops, &base, &exp, &m, config, &mut cache)?;
        debug_assert_eq!(r1, expect);
        MpnOps::<u32>::reset(&mut ops);
        let r2 = mod_exp(&mut ops, &base, &exp, &m, config, &mut cache)?;
        assert_eq!(r2, expect, "config {config} computed a wrong result");
        Ok(MpnOps::<u32>::cycles(&ops))
    });

    // Serial merge in enumeration order: metric observation order and
    // Pareto tie-breaking match the serial loop exactly.
    let mut ranked = Vec::with_capacity(configs.len());
    for (config, estimate) in configs.into_iter().zip(estimates) {
        let cycles = estimate?;
        evaluated.inc();
        cycles_hist.observe(cycles);
        front.offer(config, cycles, config.table_bytes(bits));
        ranked.push(Candidate { config, cycles });
    }
    ranked.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
    reg.gauge("flow.phase2.best_cycles").set(ranked[0].cycles);
    reg.gauge("flow.phase2.wall_ms")
        .set(start.elapsed().as_secs_f64() * 1e3);
    front.record_metrics(reg);
    Ok(ExplorationResult {
        evaluated: ranked.len(),
        elapsed: start.elapsed(),
        ranked,
    })
}

/// Validates the macro-models against full ISS co-simulation on a
/// handful of candidates (the paper could afford six), returning the
/// absolute percentage error per candidate and — when a registry is
/// supplied — observing each into the `flow.model_error_pct` histogram.
///
/// # Errors
///
/// Returns [`ModExpError`] if a candidate fails to execute.
pub fn validate_models_metered(
    models: &KernelModels,
    config: &CpuConfig,
    variant: KernelVariant,
    candidates: &[ModExpConfig],
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
) -> Result<Vec<f64>, ModExpError> {
    let mut errors = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let modeled = explore_single(models, candidate, bits, glue_cost)?;
        let cosim = cosimulate_candidate(config, variant, candidate, bits, glue_cost)?;
        let err_pct = ((modeled - cosim) / cosim).abs() * 100.0;
        if let Some(reg) = metrics {
            reg.histogram("flow.model_error_pct").observe(err_pct);
        }
        errors.push(err_pct);
    }
    Ok(errors)
}

/// Evaluates a single candidate with macro-model metering on the same
/// fixed workload as [`explore_modexp`], returning estimated cycles.
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure.
pub fn explore_single(
    models: &KernelModels,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
) -> Result<f64, ModExpError> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let mut ops = models.modeled_ops(glue_cost);
    let mut cache = ExpCache::new();
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    MpnOps::<u32>::reset(&mut ops);
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    Ok(MpnOps::<u32>::cycles(&ops))
}

/// Evaluates a single candidate by full ISS co-simulation (the slow
/// reference the paper could only afford for six candidates).
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure.
pub fn cosimulate_candidate(
    config: &CpuConfig,
    variant: KernelVariant,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
) -> Result<f64, ModExpError> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);

    let mut iss = IssMpn::with_variant(config.clone(), variant);
    iss.set_verify(false);
    iss.set_glue_cost(glue_cost);
    let mut cache = ExpCache::new();
    mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
    MpnOps::<u32>::reset(&mut iss);
    mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
    Ok(MpnOps::<u32>::cycles(&iss))
}

/// As [`cosimulate_candidate`], serving the co-simulated cycle count
/// from a kernel-cycle cache when possible. The memo key embeds the
/// core fingerprint, the kernel variant, the candidate's display form,
/// the operand size and the glue cost, so any changed determinant
/// recomputes.
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure (never on a cache
/// hit — only successfully co-simulated candidates are cached).
pub fn cosimulate_candidate_cached(
    config: &CpuConfig,
    variant: KernelVariant,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
    cache: Option<&KCache>,
) -> Result<f64, ModExpError> {
    let Some(kc) = cache else {
        return cosimulate_candidate(config, variant, candidate, bits, glue_cost);
    };
    let key = kcache::key(
        config.fingerprint(),
        &variant.tag(),
        &format!("cosim:{candidate}"),
        bits as u64,
        glue_cost.to_bits(),
    );
    if let Some(v) = kc.get(&key) {
        if let [cycles] = v[..] {
            return Ok(cycles);
        }
    }
    let cycles = cosimulate_candidate(config, variant, candidate, bits, glue_cost)?;
    kc.insert(&key, vec![cycles]);
    Ok(cycles)
}

/// The shared user-register load/store plumbing as a selection-level
/// instruction (counted once however many datapaths share it).
fn ur_ls_insn() -> CustomInsn {
    let area = crate::insns::ldur().area + crate::insns::stur().area;
    CustomInsn::new("ur_ls", 1, area)
}

/// Phase 3: formulates the A-D curves for `mpn_add_n` and
/// `mpn_addmul_1` by measuring the base kernel and every accelerated
/// resource level on the ISS at `n` limbs (the paper's Fig. 5(a)/(b)).
pub fn formulate_mpn_curves(config: &CpuConfig, n: usize) -> BTreeMap<String, AdCurve> {
    formulate_mpn_curves_pooled(config, n, &Pool::from_env(), None)
}

/// One phase-3 measurement unit: one kernel under one kernel variant
/// (its resource level), warmed with seed 7 and measured with seed 8 on
/// a private ISS — exactly the serial per-point procedure, so the
/// curves are identical for any thread count.
struct CurveTask {
    kernel: KernelId,
    variant: KernelVariant,
    /// `Some((family, lanes))` for accelerated points; `None` = base.
    insn: Option<(&'static str, u32)>,
}

/// Phase 3 on a worker pool: the nine `(op, resource level)` points are
/// measured in parallel (one fresh ISS each) and assembled into curves
/// in the fixed serial order. When a [`KCache`] is supplied, each
/// point's cycle count is served from it under
/// `fingerprint × variant × "curve:op" × n × seed`.
pub fn formulate_mpn_curves_pooled(
    config: &CpuConfig,
    n: usize,
    pool: &Pool,
    cache: Option<&KCache>,
) -> BTreeMap<String, AdCurve> {
    // Every kernel with a registered custom-instruction family gets a
    // curve: its base point plus one point per resource level
    // (`mpn_add_n`: add2/4/8/16; `mpn_addmul_1`: mac1/2/4).
    let mut tasks = Vec::new();
    for desc in kreg::registry() {
        let Some(fam) = desc.family else { continue };
        tasks.push(CurveTask {
            kernel: desc.id,
            variant: KernelVariant::Base,
            insn: None,
        });
        for level in fam.levels {
            tasks.push(CurveTask {
                kernel: desc.id,
                variant: level.variant(),
                insn: Some((fam.family, level.lanes)),
            });
        }
    }

    let fp = config.fingerprint();
    let measured = pool.par_map(&tasks, |_, t| {
        let unit = kreg::get(t.kernel).expect("curve kernel registered");
        let measure = || {
            let mut iss = IssMpn::with_variant(config.clone(), t.variant);
            iss.set_verify(false);
            let _ = iss.measure32(t.kernel, n, 7); // warm
            iss.measure32(t.kernel, n, 8)
                .expect("curve kernels use register conventions")
        };
        match cache {
            Some(kc) => kc.scalar(
                &kcache::key(fp, &t.variant.tag(), &unit.curve_unit(), n as u64, 0x0708),
                measure,
            ),
            None => measure(),
        }
    });

    let mut curves = BTreeMap::new();
    let mut points_by_op: BTreeMap<&str, Vec<AdPoint>> = BTreeMap::new();
    for (t, cycles) in tasks.iter().zip(measured) {
        let point = match t.insn {
            None => AdPoint::base(cycles),
            Some((family, lanes)) => {
                let area = match family {
                    "add" => crate::insns::add_k(lanes).area,
                    _ => crate::insns::mac_k(lanes).area,
                };
                AdPoint::new([ur_ls_insn(), CustomInsn::new(family, lanes, area)], cycles)
            }
        };
        points_by_op.entry(t.kernel.name()).or_default().push(point);
    }
    for (op, points) in points_by_op {
        curves.insert(op.to_owned(), AdCurve::from_points(points));
    }
    curves
}

/// Builds the paper's Fig. 4 call graph — the optimized modular
/// exponentiation example — annotated with this platform's measured
/// leaf cycles. `k` is the operand size in limbs.
pub fn fig4_call_graph(config: &CpuConfig, k: usize) -> CallGraph {
    fig4_call_graph_cached(config, k, None)
}

/// As [`fig4_call_graph`], optionally serving the two measured leaf
/// cycle counts from a kernel-cycle cache. The two leaves are one
/// measurement unit (they share one ISS sequentially, preserving the
/// serial cache-warmth coupling), keyed
/// `fingerprint × base × "fig4:leaves" × k`.
pub fn fig4_call_graph_cached(config: &CpuConfig, k: usize, cache: Option<&KCache>) -> CallGraph {
    let measure = || {
        let mut iss = IssMpn::base(config.clone());
        iss.set_verify(false);
        let _ = iss.measure32(kreg::id::ADD_N, k, 3);
        let addn = iss.measure32(kreg::id::ADD_N, k, 4).expect("registered");
        let _ = iss.measure32(kreg::id::ADDMUL_1, k, 3);
        let addmul = iss.measure32(kreg::id::ADDMUL_1, k, 4).expect("registered");
        vec![addn, addmul]
    };
    let leaves = match cache {
        Some(kc) => kc.get_or_compute(
            &kcache::key(
                config.fingerprint(),
                &KernelVariant::Base.tag(),
                "fig4:leaves",
                k as u64,
                0x0304,
            ),
            2,
            measure,
        ),
        None => measure(),
    };
    let (addn, addmul) = (leaves[0], leaves[1]);

    let add_n = kreg::id::ADD_N.name();
    let addmul_1 = kreg::id::ADDMUL_1.name();
    let mut g = CallGraph::new();
    g.add_node("decrypt", 120.0);
    g.add_node("mpz_mul", 40.0);
    g.add_node("mod_hw", 30.0);
    g.add_node("mpz_mod", 60.0);
    g.add_node("mpz_add", 10.0);
    g.add_node("mpz_sub", 10.0);
    g.add_node("mpz_gcdext", 200.0);
    g.add_node(add_n, addn);
    g.add_node(addmul_1, addmul);
    for (caller, callee, count) in [
        ("decrypt", "mpz_mul", 4.0),
        ("decrypt", "mod_hw", 4.0),
        ("decrypt", "mpz_mod", 2.0),
        ("decrypt", "mpz_add", 2.0),
        ("decrypt", "mpz_sub", 2.0),
        ("mpz_mul", addmul_1, k as f64),
        ("mod_hw", addmul_1, k as f64),
        ("mod_hw", add_n, 2.0),
        ("mpz_mod", add_n, 1.0),
        ("mpz_add", add_n, 1.0),
        ("mpz_sub", add_n, 1.0),
        ("mpz_gcdext", add_n, 3.0),
    ] {
        g.add_call(caller, callee, count)
            .expect("nodes declared above");
    }
    g
}

/// Phase 4: assembles the global selector from the Fig. 4 call graph
/// and the formulated curves.
pub fn build_selector(config: &CpuConfig, k: usize) -> Selector {
    build_selector_pooled(config, k, &Pool::from_env(), None)
}

/// Phase 4 on a worker pool with an optional kernel-cycle cache; see
/// [`fig4_call_graph_cached`] and [`formulate_mpn_curves_pooled`].
pub fn build_selector_pooled(
    config: &CpuConfig,
    k: usize,
    pool: &Pool,
    cache: Option<&KCache>,
) -> Selector {
    let graph = fig4_call_graph_cached(config, k, cache);
    let curves = formulate_mpn_curves_pooled(config, k, pool, cache);
    let mut sel = Selector::new(graph);
    for (name, curve) in curves {
        sel.set_leaf_curve(name, curve);
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubkey::ops::opname;

    fn quick_options() -> CharactOptions {
        CharactOptions {
            train_samples: 12,
            validation_points: 5,
        }
    }

    #[test]
    fn characterization_fits_linear_kernels_well() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            16,
            &quick_options(),
        );
        for op in opname::ALL {
            assert!(models.models32.contains_key(op), "{op} missing (r32)");
            assert!(models.models16.contains_key(op), "{op} missing (r16)");
        }
        let q = models.quality[&(opname::ADDMUL_1, 32)];
        assert!(q.mae_pct < 15.0, "addmul_1 fit error {}%", q.mae_pct);
        assert!(models.mean_abs_error_pct() < 20.0);
        // The registered SHA-1 block kernel is characterized too (the
        // registry's extensibility proof): linear in the block count.
        assert!(models.models32.contains_key(opname::SHA1), "sha1 missing");
        let qs = models.quality[&(opname::SHA1, 32)];
        assert!(qs.mae_pct < 15.0, "sha1 fit error {}%", qs.mae_pct);
        let one = models.models32[opname::SHA1].predict(&[1]);
        let four = models.models32[opname::SHA1].predict(&[4]);
        assert!(four > 3.0 * one, "sha1 cycles scale with blocks");
        // Per-limb cost: addmul > add (multiplies dominate).
        let am = models.models32[opname::ADDMUL_1].predict(&[16]);
        let an = models.models32[opname::ADD_N].predict(&[16]);
        assert!(am > an, "addmul {am} vs add {an}");
    }

    #[test]
    fn exploration_ranks_the_space_and_best_beats_baseline() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            8,
            &quick_options(),
        );
        let result = explore_modexp(&models, 128, 4.0).unwrap();
        assert_eq!(result.evaluated, 450);
        let best = result.best();
        let baseline = result
            .ranked
            .iter()
            .find(|c| c.config == ModExpConfig::baseline())
            .expect("baseline in the space");
        assert!(
            best.cycles < baseline.cycles / 2.0,
            "exploration should find large algorithmic wins: best {} vs baseline {}",
            best.cycles,
            baseline.cycles
        );
        // The winner should use a modern reduction, CRT and caching.
        assert_ne!(best.config.mul, pubkey::MulAlgo::MulDiv);
    }

    #[test]
    fn ad_curves_are_monotone_in_resources() {
        let curves = formulate_mpn_curves(&CpuConfig::default(), 32);
        let addn = &curves[opname::ADD_N];
        assert_eq!(addn.len(), 5);
        let pts = addn.points();
        assert_eq!(pts[0].area(), 0);
        for w in pts.windows(2) {
            assert!(w[0].cycles > w[1].cycles, "more lanes, fewer cycles");
        }
        let addmul = &curves[opname::ADDMUL_1];
        assert_eq!(addmul.len(), 4);
    }

    #[test]
    fn selector_improves_with_budget() {
        let sel = build_selector(&CpuConfig::default(), 32);
        let root = sel.root_curve("decrypt").unwrap();
        assert!(root.len() >= 3);
        let no_hw = sel.select("decrypt", 0).unwrap().unwrap();
        let big = sel.select("decrypt", 1_000_000).unwrap().unwrap();
        assert!(no_hw.cycles > big.cycles);
        assert_eq!(no_hw.area(), 0);
    }

    #[test]
    fn pooled_flow_is_thread_count_and_cache_invariant() {
        let cfg = CpuConfig::default();
        let opts = quick_options();
        let kc = KCache::new();
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);

        // Phase 1: serial/uncached vs pooled/cold-cache vs pooled/warm.
        let a = characterize_kernels_pooled(&cfg, KernelVariant::Base, 8, &opts, None, &p1, None);
        let b =
            characterize_kernels_pooled(&cfg, KernelVariant::Base, 8, &opts, None, &p4, Some(&kc));
        let c =
            characterize_kernels_pooled(&cfg, KernelVariant::Base, 8, &opts, None, &p4, Some(&kc));
        assert!(kc.hits() > 0, "second run must hit the memo cache");
        for op in opname::ALL {
            for n in [1u64, 4, 8] {
                let pa = a.models32[op].predict(&[n]);
                assert_eq!(pa, b.models32[op].predict(&[n]), "{op} n={n} threads");
                assert_eq!(pa, c.models32[op].predict(&[n]), "{op} n={n} warm cache");
                assert_eq!(
                    a.models16[op].predict(&[n]),
                    c.models16[op].predict(&[n]),
                    "{op} n={n} r16"
                );
            }
            let (qa, qc) = (a.quality[&(op, 32)], c.quality[&(op, 32)]);
            assert_eq!(qa.mae_pct, qc.mae_pct, "{op} fit quality");
        }

        // Phase 2: identical ranking for any thread count.
        let ea = explore_modexp_pooled(&a, 128, 4.0, None, &p1).unwrap();
        let eb = explore_modexp_pooled(&b, 128, 4.0, None, &p4).unwrap();
        assert_eq!(ea.ranked.len(), eb.ranked.len());
        for (x, y) in ea.ranked.iter().zip(&eb.ranked) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.cycles, y.cycles);
        }

        // Phase 3: identical curves, and the warm pass hits the cache.
        let ca = formulate_mpn_curves_pooled(&cfg, 16, &p1, None);
        let misses_before = kc.misses();
        let cb = formulate_mpn_curves_pooled(&cfg, 16, &p4, Some(&kc));
        let cc = formulate_mpn_curves_pooled(&cfg, 16, &p4, Some(&kc));
        assert_eq!(kc.misses(), misses_before + 9, "nine cold curve points");
        for (name, curve) in &ca {
            for (i, p) in curve.points().iter().enumerate() {
                assert_eq!(p.cycles, cb[name].points()[i].cycles, "{name}[{i}]");
                assert_eq!(p.cycles, cc[name].points()[i].cycles, "{name}[{i}] warm");
            }
        }
    }

    #[test]
    fn cosimulation_agrees_with_models_roughly() {
        let models = characterize_kernels(
            &CpuConfig::default(),
            KernelVariant::Base,
            8,
            &quick_options(),
        );
        let cfg = ModExpConfig::optimized();
        let modeled = {
            let mut ops = models.modeled_ops(4.0);
            let mut cache = ExpCache::new();
            let mut rng = StdRng::seed_from_u64(0xE4B0);
            let mut m = Natural::random_bits(&mut rng, 128);
            if m.is_even() {
                m = &m + &Natural::one();
            }
            let base = Natural::random_below(&mut rng, &m);
            let exp = Natural::random_bits(&mut rng, 128);
            mod_exp(&mut ops, &base, &exp, &m, &cfg, &mut cache).unwrap();
            MpnOps::<u32>::reset(&mut ops);
            mod_exp(&mut ops, &base, &exp, &m, &cfg, &mut cache).unwrap();
            MpnOps::<u32>::cycles(&ops)
        };
        let cosim =
            cosimulate_candidate(&CpuConfig::default(), KernelVariant::Base, &cfg, 128, 4.0)
                .unwrap();
        let err = ((modeled - cosim) / cosim).abs() * 100.0;
        assert!(
            err < 30.0,
            "macro-model estimate {modeled:.0} vs co-sim {cosim:.0} ({err:.1}% off)"
        );
    }
}
