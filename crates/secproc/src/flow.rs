//! The four-phase system design methodology (the paper's Fig. 3).
//!
//! All four phases hang off one context object, [`FlowCtx`], which owns
//! the execution resources every phase shares — the worker pool, the
//! kernel-cycle memo cache, the metrics registry, and the fault policy:
//!
//! 1. **Performance characterization** ([`FlowCtx::characterize`]): run
//!    each library kernel on the cycle-accurate ISS with pseudo-random
//!    stimuli and fit macro-models by regression.
//! 2. **Algorithm exploration** ([`FlowCtx::explore`]): evaluate every
//!    candidate of the 450-point modular-exponentiation design space
//!    natively with macro-model cycle accrual, replacing ISS runs.
//! 3. **Custom-instruction formulation** ([`FlowCtx::curves`]): measure
//!    each routine under every resource level of its custom instruction
//!    family, producing local A-D curves.
//! 4. **Global selection** ([`FlowCtx::selector`], and
//!    [`tie::Selector::select`]): propagate A-D curves through the
//!    algorithm's call graph and pick the best point under an area
//!    budget.
//!
//! # Resilience
//!
//! A [`FaultPolicy`] on the context arms the ISS fault-injection hooks
//! (see the `xfault` crate) and makes every ISS-backed measurement
//! *resilient*: a unit whose measurement diverges or times out is
//! retried with deterministically reseeded stimuli (bounded attempts,
//! seeds recorded), falls back to a fault-free re-measurement when the
//! retries are exhausted, and quarantines the kernel after repeated
//! failures. Later phases degrade gracefully around quarantined
//! kernels — co-simulation falls back to the macro-model estimate —
//! so the figure pipelines always complete. Every such event is
//! recorded as a [`Degradation`] and exposed via
//! [`FlowCtx::degradations`] for run reports.
//!
//! All resilience decisions happen inside a unit's own worker task and
//! are folded into shared state serially in submission order, so the
//! whole flow — results *and* degradation log — stays bit-identical
//! for any thread count.
//!

use crate::error::{codes, Error};
use crate::genvar::{self, AdmittedVariant, GeneratedVariantRecord};
use crate::issops::{IssMpn, KernelVariant};
use crate::kcache::{self, KCache};
use crate::simcipher::SimSha1;
use kreg::{CallConv, KernelDescriptor, KernelError, KernelId, LibKind};
use macromodel::charact::{fit_planned, plan_stimuli, with_name, CharactOptions, StimulusPlan};
use macromodel::model::{MacroModel, ModelQuality, Monomial};
use mpint::Natural;
use pubkey::modexp::{mod_exp, ExpCache, ModExpError};
use pubkey::ops::{ModeledMpn, MpnOps};
use pubkey::space::{ModExpConfig, ParetoFront};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tie::adcurve::{AdCurve, AdPoint};
use tie::callgraph::CallGraph;
use tie::insn::CustomInsn;
use tie::select::Selector;
use xfault::{FaultPolicy, PlanSpec};
use xobs::json::Json;
use xobs::span::{SpanGuard, Spans};
use xpar::{Pool, SEED_STEP};
use xr32::config::CpuConfig;
use xr32::Fidelity;

/// Fitted macro-models for every basic operation, with accuracy
/// metadata.
#[derive(Debug, Clone)]
pub struct KernelModels {
    /// Per-op models for 32-bit limbs.
    pub models32: BTreeMap<&'static str, MacroModel>,
    /// Per-op models for 16-bit limbs.
    pub models16: BTreeMap<&'static str, MacroModel>,
    /// Fit quality per (op, radix-tag) pair, e.g. `("mpn_add_n", 32)`.
    pub quality: BTreeMap<(&'static str, u32), ModelQuality>,
}

impl KernelModels {
    /// Builds the macro-model-metered ops provider from these models.
    pub fn modeled_ops(&self, glue_cost: f64) -> ModeledMpn {
        ModeledMpn::with_radix_models(self.models32.clone(), self.models16.clone(), glue_cost)
    }

    /// Mean absolute percentage error across all fitted models (the
    /// paper reports 11.8 % overall).
    pub fn mean_abs_error_pct(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.quality.values().map(|q| q.mae_pct).sum::<f64>() / self.quality.len() as f64
    }
}

/// One recorded resilience event: a measurement unit that could not be
/// taken at face value and what the flow did about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The flow phase ("characterize", "cosim", "curves", "fig4",
    /// "measure").
    pub phase: &'static str,
    /// The measurement unit, e.g. `mpn_addmul_1.r32` or a candidate's
    /// display form.
    pub unit: String,
    /// The kernel charged with the failure (the quarantine key).
    pub kernel: String,
    /// The last error observed before the recovery action.
    pub error: String,
    /// Measurement attempts consumed (0 = the unit was skipped without
    /// measuring, e.g. a quarantine fallback).
    pub attempts: u32,
    /// The reseeded stimulus seeds tried after the original (recorded
    /// so a campaign can be replayed exactly).
    pub retry_seeds: Vec<u64>,
    /// What the flow did: `retried-ok`, `fallback-fault-free`,
    /// `fallback-macro-model`, `quarantined`, `quarantined-fallback`.
    pub action: &'static str,
    /// Stable numeric code of the error's class (see
    /// [`crate::error::codes`]) — the same vocabulary the serving
    /// layer's wire protocol uses, so report consumers can classify
    /// degradations without parsing prose.
    pub code: u32,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Degradation {
    /// An externally observed event (a bench harness degrading on its
    /// own authority, outside the flow's retry machinery): no attempts
    /// were consumed and no stimuli were reseeded.
    pub fn harness(
        phase: &'static str,
        unit: impl Into<String>,
        kernel: impl Into<String>,
        error: impl Into<String>,
        action: &'static str,
    ) -> Self {
        Degradation {
            phase,
            unit: unit.into(),
            kernel: kernel.into(),
            error: error.into(),
            attempts: 0,
            retry_seeds: Vec::new(),
            action,
            code: codes::FLOW,
        }
    }

    /// Replaces the generic flow code with a specific error class.
    pub fn with_code(mut self, code: u32) -> Self {
        self.code = code;
        self
    }

    /// Renders the event as a JSON object (one element of a run
    /// report's `degradations` array).
    pub fn to_json(&self) -> String {
        let seeds = self
            .retry_seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"phase\":\"{}\",\"unit\":\"{}\",\"kernel\":\"{}\",\"action\":\"{}\",\
             \"code\":{},\"attempts\":{},\"retry_seeds\":[{}],\"error\":\"{}\"}}",
            self.phase,
            json_escape(&self.unit),
            json_escape(&self.kernel),
            self.action,
            self.code,
            self.attempts,
            seeds,
            json_escape(&self.error)
        )
    }
}

/// Mutable flow state shared across phases (behind a mutex; only ever
/// touched serially, either before a fan-out or during the
/// submission-order merge).
#[derive(Debug, Default)]
struct FlowState {
    /// Failed units per kernel (a retry-exhausted unit counts one).
    failures: BTreeMap<String, u32>,
    /// Kernels past the quarantine threshold.
    quarantined: BTreeSet<String>,
    /// Every recorded resilience event, in flow order.
    degradations: Vec<Degradation>,
}

/// The pool a context runs on: its own environment-sized pool, or one
/// borrowed from a harness.
#[derive(Debug)]
enum PoolHandle<'a> {
    Owned(Pool),
    Borrowed(&'a Pool),
}

/// Shared context for the four methodology phases: core configuration,
/// kernel variant, worker pool, optional kernel-cycle cache, optional
/// metrics registry, and the fault/resilience policy.
///
/// Construct through [`FlowBuilder`], which validates conflicting
/// knobs once at [`FlowBuilder::build`]:
///
/// ```no_run
/// use secproc::flow::FlowBuilder;
/// use macromodel::charact::CharactOptions;
/// use xr32::config::CpuConfig;
///
/// let cfg = CpuConfig::default();
/// let ctx = FlowBuilder::new(&cfg).build().unwrap();
/// let models = ctx.characterize(16, &CharactOptions::default());
/// let ranked = ctx.explore(&models, 512, 4.0).unwrap();
/// let selector = ctx.selector(32);
/// # let _ = (ranked, selector);
/// ```
pub struct FlowCtx<'a> {
    config: &'a CpuConfig,
    variant: KernelVariant,
    pool: PoolHandle<'a>,
    cache: Option<&'a KCache>,
    metrics: Option<&'a xobs::Registry>,
    spans: Option<&'a Spans>,
    policy: FaultPolicy,
    fidelity: Fidelity,
    state: Mutex<FlowState>,
}

/// Builder for [`FlowCtx`]: collects the same knobs the old chained
/// `FlowCtx::with_*` setters offered, then validates them *once* in
/// [`FlowBuilder::build`] so conflicting configurations are rejected
/// up front instead of surfacing as mid-flow surprises.
///
/// This is the single construction path for flow contexts: the bench
/// harnesses and [`crate::job::JobSpec::into_ctx`] both build through
/// it.
#[derive(Clone, Copy)]
pub struct FlowBuilder<'a> {
    config: &'a CpuConfig,
    variant: KernelVariant,
    pool: Option<&'a Pool>,
    cache: Option<&'a KCache>,
    metrics: Option<&'a xobs::Registry>,
    spans: Option<&'a Spans>,
    policy: FaultPolicy,
    fidelity: Fidelity,
}

impl<'a> FlowBuilder<'a> {
    /// A builder over `config` with the defaults: base kernels, an
    /// environment-sized pool, no cache, no metrics, no injection,
    /// cycle-accurate fidelity.
    pub fn new(config: &'a CpuConfig) -> Self {
        FlowBuilder {
            config,
            variant: KernelVariant::Base,
            pool: None,
            cache: None,
            metrics: None,
            spans: None,
            policy: FaultPolicy::default(),
            fidelity: Fidelity::default(),
        }
    }

    /// As [`FlowBuilder::new`], additionally arming the fault campaign
    /// from the `WSP_FAULTS` environment spec when one is set (see
    /// [`xfault::PlanSpec::parse`]).
    pub fn from_env(config: &'a CpuConfig) -> Self {
        FlowBuilder::new(config).fault_policy(FaultPolicy::from_env())
    }

    /// Selects the kernel variant measured by the ISS-backed phases.
    pub fn variant(mut self, variant: KernelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Runs the phases on a borrowed pool (e.g. a bench harness's).
    pub fn pool(mut self, pool: &'a Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Serves ISS measurements from a kernel-cycle memo cache. The
    /// cache is bypassed whenever fault injection is active, so
    /// corrupted timings are never persisted.
    pub fn cache(mut self, cache: &'a KCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Publishes per-phase progress metrics into a registry.
    pub fn metrics(mut self, metrics: &'a xobs::Registry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Records the phases into a hierarchical span tree (see
    /// [`FlowCtx`] docs for the determinism contract).
    pub fn spans(mut self, spans: &'a Spans) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Sets the fault-injection and resilience policy.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the simulation fidelity consumers of this context should
    /// run golden checks and triage sweeps at. Cycle *measurements*
    /// always use the cycle-accurate engine; [`Fidelity::Fast`] is
    /// rejected at [`FlowBuilder::build`] when a fault plan is armed
    /// (fault sites live in the pipeline model).
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Validates the collected knobs and constructs the context.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Conflict`] (code
    /// [`codes::FLOW_CONFLICT`]) when:
    ///
    /// - `Fast` fidelity is combined with an armed fault plan — the
    ///   fast path has no fault ports, so the combination would
    ///   silently measure something other than what was asked;
    /// - a resilience policy quarantines (`quarantine_after > 0`) but
    ///   allows zero measurement attempts (`max_retries` underflowed to
    ///   `u32::MAX`), which can never converge.
    pub fn build(self) -> Result<FlowCtx<'a>, Error> {
        if self.fidelity == Fidelity::Fast && self.policy.injecting() {
            return Err(Error::Conflict {
                detail: "Fast fidelity cannot host a fault campaign: fault sites live in the \
                         cycle-accurate pipeline model"
                    .to_owned(),
            });
        }
        if self.policy.quarantine_after > 0 && self.policy.max_retries == u32::MAX {
            return Err(Error::Conflict {
                detail: "unbounded max_retries with a quarantine threshold never converges"
                    .to_owned(),
            });
        }
        Ok(FlowCtx {
            config: self.config,
            variant: self.variant,
            pool: match self.pool {
                Some(p) => PoolHandle::Borrowed(p),
                None => PoolHandle::Owned(Pool::from_env()),
            },
            cache: self.cache,
            metrics: self.metrics,
            spans: self.spans,
            policy: self.policy,
            fidelity: self.fidelity,
            state: Mutex::new(FlowState::default()),
        })
    }
}

/// Per-phase bases for fault-plan stream numbers; each measurement unit
/// gets its own `STREAM_STRIDE`-wide window so retries never reuse a
/// stream.
const STREAM_STRIDE: u64 = 1 << 10;
const CHARACT_STREAMS: u64 = 0x0100_0000;
const COSIM_STREAMS: u64 = 0x0200_0000;
const CURVE_STREAMS: u64 = 0x0300_0000;
const FIG4_STREAMS: u64 = 0x0400_0000;
const ADHOC_STREAMS: u64 = 0x0500_0000;

impl<'a> FlowCtx<'a> {
    /// A context over `config` with the defaults: base kernels, an
    /// environment-sized pool, no cache, no metrics, no injection.
    #[deprecated(
        since = "0.1.0",
        note = "construct through `FlowBuilder::new(..).build()`"
    )]
    pub fn new(config: &'a CpuConfig) -> Self {
        FlowBuilder::new(config)
            .build()
            .expect("default flow configuration has no conflicts")
    }

    /// As `FlowCtx::new`, additionally arming the fault campaign from
    /// the `WSP_FAULTS` environment spec when one is set (see
    /// [`xfault::PlanSpec::parse`]).
    #[deprecated(
        since = "0.1.0",
        note = "construct through `FlowBuilder::from_env(..).build()`"
    )]
    pub fn from_env(config: &'a CpuConfig) -> Self {
        FlowBuilder::from_env(config)
            .build()
            .expect("environment flow configuration has no conflicts")
    }

    /// Selects the kernel variant measured by the ISS-backed phases.
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::variant`")]
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Runs the phases on a borrowed pool (e.g. a bench harness's).
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::pool`")]
    pub fn with_pool(mut self, pool: &'a Pool) -> Self {
        self.pool = PoolHandle::Borrowed(pool);
        self
    }

    /// Serves ISS measurements from a kernel-cycle memo cache.
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::cache`")]
    pub fn with_cache(mut self, cache: &'a KCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Publishes per-phase progress metrics into a registry.
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::metrics`")]
    pub fn with_metrics(mut self, metrics: &'a xobs::Registry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Records the phases into a hierarchical span tree: one span per
    /// phase, one closed leaf per measurement unit (published in
    /// submission order, so the tree's deterministic fields are
    /// identical for any thread count), degradations as span events,
    /// and — since the pool's job tracing is enabled alongside —
    /// `wall_only` per-worker execution spans.
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::spans`")]
    pub fn with_spans(mut self, spans: &'a Spans) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Sets the fault-injection and resilience policy.
    #[deprecated(since = "0.1.0", note = "use `FlowBuilder::fault_policy`")]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The core configuration the phases simulate.
    pub fn config(&self) -> &CpuConfig {
        self.config
    }

    /// The kernel variant the ISS-backed phases measure.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The worker pool the phases fan out on.
    pub fn pool(&self) -> &Pool {
        match &self.pool {
            PoolHandle::Owned(p) => p,
            PoolHandle::Borrowed(p) => p,
        }
    }

    /// The kernel-cycle cache, if one is attached.
    pub fn cache(&self) -> Option<&KCache> {
        self.cache
    }

    /// The metrics registry, if one is attached.
    pub fn metrics(&self) -> Option<&xobs::Registry> {
        self.metrics
    }

    /// The span tree, if one is attached.
    pub fn spans(&self) -> Option<&Spans> {
        self.spans
    }

    /// The active fault/resilience policy.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// The simulation fidelity consumers should run golden checks and
    /// triage sweeps at (cycle measurements are always cycle-accurate).
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Every resilience event recorded so far, in flow order.
    pub fn degradations(&self) -> Vec<Degradation> {
        self.state().degradations.clone()
    }

    /// The recorded resilience events rendered as JSON objects (the
    /// run-report `degradations` array).
    pub fn degradations_json(&self) -> Vec<String> {
        self.state()
            .degradations
            .iter()
            .map(Degradation::to_json)
            .collect()
    }

    /// Kernels currently quarantined (sorted).
    pub fn quarantined(&self) -> Vec<String> {
        self.state().quarantined.iter().cloned().collect()
    }

    /// Whether `kernel` is quarantined.
    pub fn is_quarantined(&self, kernel: &str) -> bool {
        self.state().quarantined.contains(kernel)
    }

    /// Quarantines `kernel` directly (campaign drivers and tests; the
    /// flow itself quarantines after repeated unit failures).
    pub fn quarantine(&self, kernel: &str) {
        self.state().quarantined.insert(kernel.to_owned());
    }

    /// Appends an externally observed resilience event (e.g. a bench
    /// harness falling back to a model estimate).
    pub fn note_degradation(&self, event: Degradation) {
        self.span_degradation(&event);
        self.state().degradations.push(event);
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FlowState> {
        self.state.lock().expect("flow state poisoned")
    }

    /// Mirrors a degradation onto the innermost open span as an event
    /// (always called serially, so the event stream is deterministic).
    fn span_degradation(&self, d: &Degradation) {
        if let Some(sp) = self.spans {
            sp.event(
                "degradation",
                Json::obj()
                    .set("phase", d.phase)
                    .set("unit", d.unit.as_str())
                    .set("kernel", d.kernel.as_str())
                    .set("action", d.action)
                    .set("attempts", u64::from(d.attempts)),
            );
        }
    }

    /// Opens a phase span (when a tree is attached) and enables the
    /// pool's job tracing so the phase can attach per-worker spans.
    fn phase_span(&self, name: &str) -> Option<SpanGuard<'a>> {
        self.spans.map(|sp| {
            self.pool().set_tracing(true);
            sp.enter(name)
        })
    }

    /// Drains the pool's job traces into `wall_only` per-worker spans
    /// under the innermost open span (dropped wholesale by report
    /// normalization: worker count and timing are host facts).
    fn drain_worker_spans(&self) {
        drain_worker_spans(self.spans, self.pool(), self.metrics);
    }

    /// Effective cache for an ISS measurement phase: the attached cache
    /// unless injection is active.
    fn measurement_cache(&self) -> Option<&KCache> {
        if self.policy.injecting() {
            None
        } else {
            self.cache
        }
    }

    /// Folds one unit's resilience outcome into the shared state
    /// (called serially, in submission order) and returns its value.
    fn absorb<T>(&self, report: UnitReport<T>) -> T {
        if report.failed || report.degradation.is_some() {
            if let Some(mut d) = report.degradation {
                {
                    let mut st = self.state();
                    if report.failed && self.policy.quarantine_after > 0 {
                        let count = st.failures.entry(d.kernel.clone()).or_insert(0);
                        *count += 1;
                        if *count >= self.policy.quarantine_after
                            && st.quarantined.insert(d.kernel.clone())
                        {
                            d.action = "quarantined-fallback";
                        }
                    }
                    st.degradations.push(d.clone());
                }
                self.span_degradation(&d);
            }
        }
        report.value
    }

    /// Phase 1: characterizes every registered kernel of the context's
    /// variant on the ISS, fitting linear macro-models in the operand
    /// length over `1..=max_limbs`.
    ///
    /// Stimulus plans are drawn serially from the shared RNG (so the
    /// stimulus stream is identical for any thread count), the
    /// `(width, kernel)` measurement units run in parallel with one
    /// fresh simulation harness each, and fits are merged in submission
    /// order. With a cache attached (and injection off), each unit's
    /// cycle vector is served under
    /// `fingerprint × variant × op × max_limbs × plan-digest`.
    ///
    /// When a metrics registry is attached, publishes
    /// `flow.phase1.iss_cycles`, `flow.phase1.ops_characterized`,
    /// `flow.phase1.mean_abs_error_pct`, `flow.phase1.wall_ms`,
    /// `flow.phase1.iss_wall_ms` (host time inside ISS measurement
    /// units), plus the `charact.*` metrics of every fit.
    ///
    /// The result — models, quality, degradation log, and every
    /// published metric except `*wall_ms` — is bit-identical for any
    /// thread count and any cache state.
    ///
    /// # Panics
    ///
    /// Panics if a kernel fails *without* injected faults (a genuine
    /// defect), or if a regression fit is degenerate (cannot happen for
    /// the bundled kernels, whose profiles are near-affine).
    pub fn characterize(&self, max_limbs: usize, options: &CharactOptions) -> KernelModels {
        let scratch;
        let reg = match self.metrics {
            Some(reg) => reg,
            None => {
                scratch = xobs::Registry::new();
                &scratch
            }
        };
        let iss_cycles = reg.counter("flow.phase1.iss_cycles");
        let ops_done = reg.counter("flow.phase1.ops_characterized");
        let _phase = self.phase_span("phase1.characterize");
        let t0 = Instant::now();
        let config = self.config;
        let variant = self.variant;

        // Serial planning: the shared RNG is consumed in a fixed order.
        // The multi-precision kernels keep their historical plan order
        // (width-major over the registry) and block kernels are
        // appended afterwards, so their registration does not perturb
        // the existing stimulus streams (which are part of the cache
        // identity).
        let mut rng = StdRng::seed_from_u64(0xC0DE_2002);
        let mut tasks = Vec::with_capacity(2 * kreg::registry().len());
        let plan_for = |desc: &'static KernelDescriptor, width: u32, rng: &mut StdRng| {
            let spec = desc
                .stimulus
                .unwrap_or_else(|| panic!("kernel {} has no stimulus space", desc.id));
            CharactTask {
                width,
                desc,
                basis: spec.basis(),
                plan: plan_stimuli(&spec.space(max_limbs), options, rng),
            }
        };
        for width in [32u32, 16] {
            for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
                tasks.push(plan_for(desc, width, &mut rng));
            }
        }
        for desc in kreg::registry().iter().filter(|d| d.lib != LibKind::Mpn) {
            for &width in desc.widths() {
                tasks.push(plan_for(desc, width, &mut rng));
            }
        }

        // Parallel measurement + fit; results return in submission
        // order. Retries and fallbacks are decided inside the unit's
        // own task, keyed by its submission index, so the outcome is
        // identical for any thread count.
        if let Some(sp) = self.spans {
            sp.set_attr("max_limbs", max_limbs as u64);
            sp.set_attr("units", tasks.len() as u64);
            sp.set_attr("core", config.core_id());
        }
        let fp = config.fingerprint();
        let vtag = variant.tag();
        let core_id = config.core_id();
        let cache = self.measurement_cache();
        let policy = self.policy;
        let budget = policy.cycle_budget;
        let fitted = self.pool().par_map(&tasks, |i, t| {
            let unit_start = Instant::now();
            let report = match cache {
                Some(kc) => {
                    let cycles = kc.get_or_compute(
                        &kcache::key(
                            fp,
                            &vtag,
                            &t.desc.charact_unit_on(t.width, &core_id),
                            max_limbs as u64,
                            plan_digest(&t.plan),
                        ),
                        t.plan.len(),
                        || {
                            measure_charact_task(config, variant, t, 1, None, budget)
                                .unwrap_or_else(|e| {
                                    panic!(
                                        "characterization of {} (r{}) failed: {e}",
                                        t.name(),
                                        t.width
                                    )
                                })
                        },
                    );
                    UnitReport::clean(cycles)
                }
                None => run_resilient(
                    &policy,
                    "characterize",
                    format!("{}.r{}", t.name(), t.width),
                    t.name(),
                    CHARACT_STREAMS + (i as u64) * STREAM_STRIDE,
                    1,
                    |seed, arm| {
                        measure_charact_task(config, variant, t, seed, arm, budget)
                            .map_err(Error::from)
                    },
                ),
            };
            let ch = fit_planned(&t.basis, &t.plan, &report.value).unwrap_or_else(|e| {
                panic!(
                    "characterization of {} (r{}) failed: {e}",
                    t.name(),
                    t.width
                )
            });
            let sim_cycles: u64 = report.value.iter().map(|&c| c as u64).sum();
            let unit_wall_ms = unit_start.elapsed().as_secs_f64() * 1e3;
            (
                with_name(ch, t.name()),
                sim_cycles,
                report.map(|_| ()),
                unit_wall_ms,
            )
        });

        // Serial merge in submission order: metric and degradation
        // streams stay deterministic, and memo hits count like fresh
        // measurements so warm and cold runs report identical
        // flow/charact metrics.
        let mut models32 = BTreeMap::new();
        let mut models16 = BTreeMap::new();
        let mut quality = BTreeMap::new();
        let mut iss_wall_ms = 0.0;
        for (t, (ch, sim_cycles, outcome, unit_wall_ms)) in tasks.iter().zip(fitted) {
            self.absorb(outcome);
            iss_cycles.add(sim_cycles);
            iss_wall_ms += unit_wall_ms;
            ops_done.inc();
            if self.metrics.is_some() {
                reg.counter("charact.stimuli_run").add(t.plan.len() as u64);
                reg.gauge("charact.last_r_squared")
                    .set(ch.quality.r_squared);
                reg.gauge("charact.last_mae_pct").set(ch.quality.mae_pct);
                reg.histogram("charact.mae_pct").observe(ch.quality.mae_pct);
            }
            if let Some(sp) = self.spans {
                sp.leaf(
                    format!("{}.r{}", t.name(), t.width),
                    sim_cycles as f64,
                    t.plan.len() as u64,
                    Some(unit_wall_ms),
                );
            }
            // A negative r² means the regression explains the cycle
            // profile worse than its mean — a first-class signal, not
            // something to bury in a gauge.
            if ch.quality.r_squared < 0.0 {
                self.note_degradation(Degradation {
                    phase: "characterize",
                    unit: format!("{}.r{}", t.name(), t.width),
                    kernel: t.name().to_owned(),
                    error: format!(
                        "poor macro-model fit: r_squared={:.3}, mae={:.2}%",
                        ch.quality.r_squared, ch.quality.mae_pct
                    ),
                    attempts: 0,
                    retry_seeds: Vec::new(),
                    action: "bad-fit",
                    code: codes::FLOW,
                });
            }
            quality.insert((t.name(), t.width), ch.quality);
            if t.width == 32 {
                models32.insert(t.name(), ch.model);
            } else {
                models16.insert(t.name(), ch.model);
            }
        }
        self.drain_worker_spans();
        let models = KernelModels {
            models32,
            models16,
            quality,
        };
        reg.gauge("flow.phase1.mean_abs_error_pct")
            .set(models.mean_abs_error_pct());
        reg.gauge("flow.phase1.wall_ms")
            .set(t0.elapsed().as_secs_f64() * 1e3);
        // Host time spent inside ISS measurement units (the part a
        // fidelity change moves), as distinct from whole-phase wall.
        reg.gauge("flow.phase1.iss_wall_ms").set(iss_wall_ms);
        models
    }

    /// Phase 2: evaluates every candidate of the design space with
    /// macro-model metering on a fixed RSA-decrypt-like workload
    /// (`base^exp mod m` with `bits`-bit operands). Purely native —
    /// no ISS runs, so the fault policy does not apply.
    ///
    /// When a metrics registry is attached, publishes
    /// `flow.phase2.candidates_evaluated`, a
    /// `flow.phase2.candidate_cycles` histogram over the whole space,
    /// `flow.phase2.best_cycles`, and the `space.*` gauges of the
    /// speed/space [`ParetoFront`] (memory axis =
    /// [`ModExpConfig::table_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModExpError`] if a configuration fails (which would be
    /// a defect — all 450 are executable).
    pub fn explore(
        &self,
        models: &KernelModels,
        bits: usize,
        glue_cost: f64,
    ) -> Result<ExplorationResult, ModExpError> {
        explore_impl(
            models,
            bits,
            glue_cost,
            self.metrics,
            self.spans,
            self.pool(),
            &self.config.core_id(),
        )
    }

    /// Evaluates a single candidate by full ISS co-simulation (the slow
    /// reference the paper could only afford for six candidates),
    /// serving the result from the cache when one is attached (and
    /// injection is off).
    ///
    /// Under an active fault campaign the co-simulation is resilient:
    /// an attempt whose kernel stream diverges or times out is retried
    /// on a fresh fault stream, then falls back to a fault-free run.
    /// When any kernel is quarantined the ISS is not trusted at all and
    /// the candidate degrades to its macro-model estimate from
    /// `models` (action `fallback-macro-model`), so validation always
    /// completes.
    ///
    /// # Errors
    ///
    /// Returns [`ModExpError`] on genuine (fault-free) configuration
    /// failure.
    pub fn cosimulate(
        &self,
        models: &KernelModels,
        candidate: &ModExpConfig,
        bits: usize,
        glue_cost: f64,
    ) -> Result<f64, ModExpError> {
        let t0 = Instant::now();
        let result = self.cosimulate_inner(models, candidate, bits, glue_cost);
        if let (Some(sp), Ok(cycles)) = (self.spans, &result) {
            sp.leaf(
                format!("cosim.{candidate}"),
                *cycles,
                1,
                Some(t0.elapsed().as_secs_f64() * 1e3),
            );
        }
        result
    }

    fn cosimulate_inner(
        &self,
        models: &KernelModels,
        candidate: &ModExpConfig,
        bits: usize,
        glue_cost: f64,
    ) -> Result<f64, ModExpError> {
        let quarantined = self.quarantined();
        if !quarantined.is_empty() {
            let est = explore_single(models, candidate, bits, glue_cost)?;
            self.note_degradation(Degradation {
                phase: "cosim",
                unit: candidate.to_string(),
                kernel: quarantined.join("+"),
                error: format!("quarantined kernels: {}", quarantined.join(", ")),
                attempts: 0,
                retry_seeds: Vec::new(),
                action: "fallback-macro-model",
                code: codes::KERNEL_QUARANTINED,
            });
            return Ok(est);
        }
        if !self.policy.injecting() {
            return cosim_cached_impl(
                self.config,
                self.variant,
                candidate,
                bits,
                glue_cost,
                self.cache,
            );
        }
        let config = self.config;
        let variant = self.variant;
        let policy = self.policy;
        let stream_base = COSIM_STREAMS
            + xpar::memo::checksum(&format!("cosim:{candidate}"), &[bits as f64]) % (1 << 20)
                * STREAM_STRIDE;
        // The workload is part of the measured quantity (the estimate
        // it is compared against uses the same fixed seed), so retries
        // vary the fault stream, not the stimuli.
        let report = run_resilient(
            &policy,
            "cosim",
            candidate.to_string(),
            "modexp",
            stream_base,
            0xE4B0,
            |_seed, arm| cosim_once(config, variant, candidate, bits, glue_cost, arm, policy),
        );
        self.absorb(report)
    }

    /// Validates the macro-models against ISS co-simulation on a
    /// handful of candidates (the paper could afford six), returning
    /// the absolute percentage error per candidate and — when a
    /// metrics registry is attached — observing each into the
    /// `flow.model_error_pct` histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ModExpError`] if a candidate fails to execute.
    pub fn validate_models(
        &self,
        models: &KernelModels,
        candidates: &[ModExpConfig],
        bits: usize,
        glue_cost: f64,
    ) -> Result<Vec<f64>, ModExpError> {
        let mut errors = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let modeled = explore_single(models, candidate, bits, glue_cost)?;
            let cosim = self.cosimulate(models, candidate, bits, glue_cost)?;
            let err_pct = ((modeled - cosim) / cosim).abs() * 100.0;
            if let Some(reg) = self.metrics {
                reg.histogram("flow.model_error_pct").observe(err_pct);
            }
            errors.push(err_pct);
        }
        Ok(errors)
    }

    /// Phase 3: formulates the A-D curves for `mpn_add_n` and
    /// `mpn_addmul_1` by measuring the base kernel and every
    /// accelerated resource level on the ISS at `n` limbs (the paper's
    /// Fig. 5(a)/(b)).
    ///
    /// The nine `(op, resource level)` points are measured in parallel
    /// (one fresh ISS each, warmed with seed 7 and measured with seed
    /// 8) and assembled into curves in the fixed serial order. With a
    /// cache attached (and injection off), each point is served under
    /// `fingerprint × variant × "curve:op" × n × seed`. Quarantined
    /// kernels are measured with the fault arm off (action
    /// `quarantined`), so the curves always complete.
    pub fn curves(&self, n: usize) -> BTreeMap<String, AdCurve> {
        self.curves_with_variants(n).0
    }

    /// [`FlowCtx::curves`] plus the per-level generated-variant records
    /// (schema 4's `generated_variants`): for kernels registered with
    /// [`kreg::VariantSource::Generated`], the `xopt` pipeline produces
    /// each resource level's library, both gate halves run (constant-
    /// time lint differential + golden verification under the level's
    /// extension set), and *admitted* variants drive the curve points —
    /// the hand-written library is still measured at every such level
    /// as the side-by-side baseline. A rejected level falls back to the
    /// hand-written variant and records a `fallback-handwritten`
    /// degradation, so the curves always complete.
    pub fn curves_with_variants(
        &self,
        n: usize,
    ) -> (BTreeMap<String, AdCurve>, Vec<GeneratedVariantRecord>) {
        let _phase = self.phase_span("phase3.curves");
        if let Some(sp) = self.spans {
            sp.set_attr("n", n as u64);
            sp.set_attr("core", self.config.core_id());
        }
        // Every kernel with a registered custom-instruction family gets
        // a curve: its base point plus one point per resource level
        // (`mpn_add_n`: add2/4/8/16; `mpn_addmul_1`: mac1/2/4).
        let mut tasks = Vec::new();
        let mut admitted: Vec<AdmittedVariant> = Vec::new();
        let mut pending: Vec<PendingRecord> = Vec::new();
        for desc in kreg::registry() {
            let Some(fam) = desc.family else { continue };
            tasks.push(CurveTask {
                kernel: desc.id,
                variant: KernelVariant::Base,
                insn: None,
                gen: None,
                on_curve: true,
            });
            let gen_outcomes: Vec<Option<Result<AdmittedVariant, xopt::OptError>>> =
                match desc.variants {
                    kreg::VariantSource::Generated => {
                        // The xopt generation + admission pipeline runs
                        // serially here; give it its own span with one
                        // gate-verdict event per level.
                        let gen_span = self
                            .spans
                            .map(|sp| sp.enter(format!("xopt.generate.{}", desc.id.name())));
                        if let Some(sp) = self.spans {
                            // Golden admission sweeps run on the
                            // pre-decoded fast path.
                            sp.set_attr("fidelity", "fast");
                        }
                        let outcomes = genvar::admitted_variants(desc, self.config);
                        if let Some(sp) = self.spans {
                            sp.add_tasks(outcomes.len() as u64);
                            for (level, outcome) in &outcomes {
                                match outcome {
                                    Ok(adm) => sp.event(
                                        "variant-admitted",
                                        Json::obj().set("tag", adm.gen.tag.as_str()),
                                    ),
                                    Err(e) => {
                                        let (lint_ok, golden_ok) = genvar::gate_verdicts(e);
                                        sp.event(
                                            "variant-rejected",
                                            Json::obj()
                                                .set("tag", level.generated_tag())
                                                .set("lint_ok", lint_ok)
                                                .set("golden_ok", golden_ok),
                                        );
                                    }
                                }
                            }
                        }
                        drop(gen_span);
                        outcomes
                            .into_iter()
                            .map(|(_, outcome)| Some(outcome))
                            .collect()
                    }
                    kreg::VariantSource::HandWritten => fam.levels.iter().map(|_| None).collect(),
                };
            for (level, outcome) in fam.levels.iter().zip(gen_outcomes) {
                let is_generated_kernel = outcome.is_some();
                let hand_task = tasks.len();
                let mut gen_task = None;
                let (mut lint_ok, mut golden_ok, mut is_admitted) = (true, true, false);
                let mut error = None;
                match outcome {
                    None => {}
                    Some(Ok(adm)) => {
                        admitted.push(adm);
                        is_admitted = true;
                        gen_task = Some(hand_task + 1);
                    }
                    Some(Err(e)) => {
                        let (l, g) = genvar::gate_verdicts(&e);
                        lint_ok = l;
                        golden_ok = g;
                        error = Some(e.to_string());
                        self.note_degradation(Degradation {
                            phase: "curves",
                            unit: format!("{}@{}", desc.id.name(), level.generated_tag()),
                            kernel: desc.id.name().to_owned(),
                            error: e.to_string(),
                            attempts: 0,
                            retry_seeds: Vec::new(),
                            action: "fallback-handwritten",
                            code: codes::FLOW,
                        });
                    }
                }
                tasks.push(CurveTask {
                    kernel: desc.id,
                    variant: level.variant(),
                    insn: Some((fam.family, level.lanes)),
                    gen: None,
                    on_curve: !is_admitted,
                });
                if is_admitted {
                    tasks.push(CurveTask {
                        kernel: desc.id,
                        variant: level.variant(),
                        insn: Some((fam.family, level.lanes)),
                        gen: Some(admitted.len() - 1),
                        on_curve: true,
                    });
                }
                if is_generated_kernel {
                    pending.push(PendingRecord {
                        kernel: desc.id,
                        family: fam.family,
                        lanes: level.lanes,
                        tag: level.generated_tag(),
                        lint_ok,
                        golden_ok,
                        admitted: is_admitted,
                        error,
                        hand_task,
                        gen_task,
                    });
                }
            }
        }

        let gens = &admitted;
        let config = self.config;
        let fp = config.fingerprint();
        let core_id = config.core_id();
        let cache = self.measurement_cache();
        let policy = self.policy;
        let quarantined: BTreeSet<String> = self.state().quarantined.clone();
        let measured = self.pool().par_map(&tasks, |i, t| {
            let unit_start = Instant::now();
            let unit = kreg::get(t.kernel).expect("curve kernel registered");
            let tag = match t.gen {
                Some(ix) => gens[ix].gen.tag.clone(),
                None => t.variant.tag(),
            };
            let make_iss = || match t.gen {
                Some(ix) => {
                    IssMpn::with_library(config.clone(), &gens[ix].gen.source, gens[ix].ext.clone())
                }
                None => IssMpn::with_variant(config.clone(), t.variant),
            };
            let fault_free = || {
                let mut iss = make_iss();
                iss.set_verify(false);
                let _ = iss.measure32(t.kernel, n, 7); // warm
                iss.measure32(t.kernel, n, 8)
                    .expect("curve kernels use register conventions")
            };
            let report = match cache {
                Some(kc) => UnitReport::clean(kc.scalar(
                    &kcache::key(fp, &tag, &unit.curve_unit_on(&core_id), n as u64, 0x0708),
                    fault_free,
                )),
                None if policy.injecting() && quarantined.contains(t.kernel.name()) => UnitReport {
                    value: fault_free(),
                    degradation: Some(Degradation {
                        phase: "curves",
                        unit: format!("{}@{}", t.kernel.name(), tag),
                        kernel: t.kernel.name().to_owned(),
                        error: "kernel quarantined; measured with the fault arm off".to_owned(),
                        attempts: 1,
                        retry_seeds: Vec::new(),
                        action: "quarantined",
                        code: codes::KERNEL_QUARANTINED,
                    }),
                    failed: false,
                },
                None => run_resilient(
                    &policy,
                    "curves",
                    format!("{}@{}", t.kernel.name(), tag),
                    t.kernel.name(),
                    CURVE_STREAMS + (i as u64) * STREAM_STRIDE,
                    8,
                    |seed, arm| {
                        let mut iss = make_iss();
                        iss.set_verify(arm.is_some());
                        iss.set_cycle_budget(policy.cycle_budget);
                        if let Some((spec, stream)) = arm {
                            iss.set_fault_plan(spec, stream);
                        }
                        let _ = iss.measure32(t.kernel, n, 7); // warm
                        iss.measure32(t.kernel, n, seed).map_err(Error::from)
                    },
                ),
            };
            (report, tag, unit_start.elapsed().as_secs_f64() * 1e3)
        });

        let values: Vec<f64> = measured
            .into_iter()
            .zip(&tasks)
            .map(|((report, tag, unit_wall_ms), t)| {
                let cycles = self.absorb(report);
                if let Some(sp) = self.spans {
                    sp.leaf(
                        format!("{}@{}", t.kernel.name(), tag),
                        cycles,
                        1,
                        Some(unit_wall_ms),
                    );
                }
                cycles
            })
            .collect();
        self.drain_worker_spans();
        let mut curves = BTreeMap::new();
        let mut points_by_op: BTreeMap<&str, Vec<AdPoint>> = BTreeMap::new();
        for (t, &cycles) in tasks.iter().zip(&values) {
            if !t.on_curve {
                continue;
            }
            let point = match t.insn {
                None => AdPoint::base(cycles),
                Some((family, lanes)) => {
                    let area = match family {
                        "add" => crate::insns::add_k(lanes).area,
                        _ => crate::insns::mac_k(lanes).area,
                    };
                    AdPoint::new([ur_ls_insn(), CustomInsn::new(family, lanes, area)], cycles)
                }
            };
            points_by_op.entry(t.kernel.name()).or_default().push(point);
        }
        for (op, points) in points_by_op {
            curves.insert(op.to_owned(), AdCurve::from_points(points));
        }
        let records = pending
            .into_iter()
            .map(|p| GeneratedVariantRecord {
                kernel: p.kernel,
                family: p.family,
                lanes: p.lanes,
                tag: p.tag,
                lint_ok: p.lint_ok,
                golden_ok: p.golden_ok,
                admitted: p.admitted,
                error: p.error,
                cycles_generated: p.gen_task.map(|ix| values[ix]),
                cycles_hand: values[p.hand_task],
            })
            .collect();
        (curves, records)
    }

    /// Builds the paper's Fig. 4 call graph — the optimized modular
    /// exponentiation example — annotated with this platform's measured
    /// leaf cycles. `k` is the operand size in limbs.
    ///
    /// The two leaves are one measurement unit (they share one ISS
    /// sequentially, preserving the serial cache-warmth coupling),
    /// cached under `fingerprint × base × "fig4:leaves" × k` and
    /// measured resiliently under an active fault campaign.
    pub fn fig4_graph(&self, k: usize) -> CallGraph {
        let t0 = Instant::now();
        let config = self.config;
        let policy = self.policy;
        let fault_free = || {
            let mut iss = IssMpn::base(config.clone());
            iss.set_verify(false);
            let _ = iss.measure32(kreg::id::ADD_N, k, 3);
            let addn = iss.measure32(kreg::id::ADD_N, k, 4).expect("registered");
            let _ = iss.measure32(kreg::id::ADDMUL_1, k, 3);
            let addmul = iss.measure32(kreg::id::ADDMUL_1, k, 4).expect("registered");
            vec![addn, addmul]
        };
        let leaves = match self.measurement_cache() {
            Some(kc) => kc.get_or_compute(
                &kcache::key(
                    config.fingerprint(),
                    &KernelVariant::Base.tag(),
                    "fig4:leaves",
                    k as u64,
                    0x0304,
                ),
                2,
                fault_free,
            ),
            None => {
                let report = run_resilient(
                    &policy,
                    "fig4",
                    "fig4:leaves".to_owned(),
                    "fig4:leaves",
                    FIG4_STREAMS,
                    4,
                    |seed, arm| {
                        let mut iss = IssMpn::base(config.clone());
                        iss.set_verify(arm.is_some());
                        iss.set_cycle_budget(policy.cycle_budget);
                        if let Some((spec, stream)) = arm {
                            iss.set_fault_plan(spec, stream);
                        }
                        let _ = iss.measure32(kreg::id::ADD_N, k, 3);
                        let addn = iss
                            .measure32(kreg::id::ADD_N, k, seed)
                            .map_err(Error::from)?;
                        let _ = iss.measure32(kreg::id::ADDMUL_1, k, 3);
                        let addmul = iss
                            .measure32(kreg::id::ADDMUL_1, k, seed)
                            .map_err(Error::from)?;
                        Ok(vec![addn, addmul])
                    },
                );
                self.absorb(report)
            }
        };
        let (addn, addmul) = (leaves[0], leaves[1]);
        if let Some(sp) = self.spans {
            sp.leaf(
                "fig4.leaves",
                addn + addmul,
                2,
                Some(t0.elapsed().as_secs_f64() * 1e3),
            );
        }

        let add_n = kreg::id::ADD_N.name();
        let addmul_1 = kreg::id::ADDMUL_1.name();
        let mut g = CallGraph::new();
        g.add_node("decrypt", 120.0);
        g.add_node("mpz_mul", 40.0);
        g.add_node("mod_hw", 30.0);
        g.add_node("mpz_mod", 60.0);
        g.add_node("mpz_add", 10.0);
        g.add_node("mpz_sub", 10.0);
        g.add_node("mpz_gcdext", 200.0);
        g.add_node(add_n, addn);
        g.add_node(addmul_1, addmul);
        for (caller, callee, count) in [
            ("decrypt", "mpz_mul", 4.0),
            ("decrypt", "mod_hw", 4.0),
            ("decrypt", "mpz_mod", 2.0),
            ("decrypt", "mpz_add", 2.0),
            ("decrypt", "mpz_sub", 2.0),
            ("mpz_mul", addmul_1, k as f64),
            ("mod_hw", addmul_1, k as f64),
            ("mod_hw", add_n, 2.0),
            ("mpz_mod", add_n, 1.0),
            ("mpz_add", add_n, 1.0),
            ("mpz_sub", add_n, 1.0),
            ("mpz_gcdext", add_n, 3.0),
        ] {
            g.add_call(caller, callee, count)
                .expect("nodes declared above");
        }
        g
    }

    /// Phase 4: assembles the global selector from the Fig. 4 call
    /// graph and the formulated curves.
    pub fn selector(&self, k: usize) -> Selector {
        let graph = self.fig4_graph(k);
        let curves = self.curves(k);
        let mut sel = Selector::new(graph);
        for (name, curve) in curves {
            sel.set_leaf_curve(name, curve);
        }
        sel
    }

    /// One axis of the cross-product (core config × accelerator level)
    /// design space: measures the whole mpn registry workload at `n`
    /// limbs under every accelerator level on *this context's* core
    /// model, pricing each point as core area (zero for the in-order
    /// baseline, the ROB/RS/LSQ/predictor gate cost for out-of-order
    /// members) plus the level's custom-instruction area.
    ///
    /// Callers build the full two-axis lattice by collecting the axes
    /// of one context per core configuration and handing the union to
    /// [`mark_pareto_front`]. Points return in the fixed level order
    /// (base, then ascending lanes) regardless of thread count; with a
    /// cache attached (and injection off) each level is served under
    /// `fingerprint × level-tag × "xprod@core" × n`.
    pub fn cross_product_axis(&self, n: usize) -> Vec<CrossPoint> {
        let _phase = self.phase_span("phase4.cross_product");
        let config = self.config;
        let core_id = config.core_id();
        if let Some(sp) = self.spans {
            sp.set_attr("n", n as u64);
            sp.set_attr("core", core_id.as_str());
        }
        let fp = config.fingerprint();
        let core_area = config.core.area_gates();
        let cache = self.measurement_cache();
        let levels = XPROD_LEVELS;
        let measured = self.pool().par_map(&levels, |_, v| {
            let measure = || {
                // The full registry workload, warmed then measured with
                // the phase-3 seeds; verification off (measurement, not
                // admission — xooo_gate owns the co-sim identity check).
                let mut iss = IssMpn::with_variant(config.clone(), *v);
                iss.set_verify(false);
                let mut total = 0.0;
                for desc in kreg::registry().iter().filter(|d| d.lib == LibKind::Mpn) {
                    let _ = iss.measure32(desc.id, n, 7); // warm
                    total += iss
                        .measure32(desc.id, n, 8)
                        .expect("registry kernels use register conventions");
                }
                total
            };
            match cache {
                Some(kc) => kc.scalar(
                    &kcache::key(fp, &v.tag(), &format!("xprod@{core_id}"), n as u64, 0x0708),
                    measure,
                ),
                None => measure(),
            }
        });
        self.drain_worker_spans();
        levels
            .iter()
            .zip(measured)
            .map(|(v, cycles)| {
                let accel_area = match v {
                    KernelVariant::Base => 0,
                    KernelVariant::Accelerated {
                        add_lanes,
                        mac_lanes,
                    } => {
                        crate::insns::ldur().area
                            + crate::insns::stur().area
                            + crate::insns::add_k(*add_lanes).area
                            + crate::insns::mac_k(*mac_lanes).area
                    }
                };
                let point = CrossPoint {
                    core: core_id.clone(),
                    level: v.tag(),
                    area: core_area + accel_area,
                    cycles,
                    on_front: false,
                };
                if let Some(sp) = self.spans {
                    sp.leaf(
                        format!("xprod.{}@{}", point.level, point.core),
                        cycles,
                        1,
                        None,
                    );
                }
                point
            })
            .collect()
    }

    /// One resilient ad-hoc ISS measurement (the bench harnesses' entry
    /// point): measures `kernel` at `n` limbs under `variant`, warming
    /// with `warm_seed` and measuring with `seed`, applying the
    /// context's retry / fallback / quarantine policy.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Quarantined`] without measuring when the
    /// kernel is quarantined (callers degrade to a model estimate), or
    /// the underlying typed error when the kernel fails fault-free.
    pub fn measure_kernel_cycles(
        &self,
        variant: KernelVariant,
        kernel: KernelId,
        n: usize,
        warm_seed: u64,
        seed: u64,
    ) -> Result<f64, KernelError> {
        let t0 = Instant::now();
        let measure_leaf = |cycles: f64| {
            if let Some(sp) = self.spans {
                sp.leaf_with(
                    format!("measure.{}@{}", kernel.name(), variant.tag()),
                    cycles,
                    1,
                    Some(t0.elapsed().as_secs_f64() * 1e3),
                    &[("fidelity", Json::from("accurate"))],
                );
            }
        };
        if self.is_quarantined(kernel.name()) {
            let failures = *self.state().failures.get(kernel.name()).unwrap_or(&0);
            self.note_degradation(Degradation {
                phase: "measure",
                unit: format!("{}@{}", kernel.name(), variant.tag()),
                kernel: kernel.name().to_owned(),
                error: format!("quarantined after {failures} failed units"),
                attempts: 0,
                retry_seeds: Vec::new(),
                action: "quarantined",
                code: codes::KERNEL_QUARANTINED,
            });
            return Err(KernelError::Quarantined { kernel, failures });
        }
        let policy = self.policy;
        let stream_base = ADHOC_STREAMS
            + xpar::memo::checksum(
                &format!("measure:{}@{}", kernel.name(), variant.tag()),
                &[n as f64, seed as f64],
            ) % (1 << 20)
                * STREAM_STRIDE;
        let measure = |seed: u64, arm: Option<(PlanSpec, u64)>| {
            let mut iss = IssMpn::with_variant(self.config.clone(), variant);
            iss.set_verify(arm.is_some());
            iss.set_cycle_budget(policy.cycle_budget);
            if let Some((spec, stream)) = arm {
                iss.set_fault_plan(spec, stream);
            }
            let _ = iss.measure32(kernel, n, warm_seed);
            iss.measure32(kernel, n, seed)
        };
        let mut retry_seeds = Vec::new();
        let mut last_err: Option<KernelError> = None;
        for attempt in 0..=policy.max_retries {
            let s = policy.retry_seed(seed, attempt);
            if attempt > 0 {
                retry_seeds.push(s);
            }
            let arm = policy
                .plan
                .map(|spec| (spec, stream_base.wrapping_add(u64::from(attempt))));
            match measure(s, arm) {
                Ok(cycles) => {
                    if attempt > 0 {
                        self.note_degradation(Degradation {
                            phase: "measure",
                            unit: format!("{}@{}", kernel.name(), variant.tag()),
                            kernel: kernel.name().to_owned(),
                            error: last_err.as_ref().map(|e| e.to_string()).unwrap_or_default(),
                            attempts: attempt + 1,
                            retry_seeds,
                            action: "retried-ok",
                            code: last_err
                                .map(|e| Error::from(e).code())
                                .unwrap_or(codes::FLOW),
                        });
                    }
                    measure_leaf(cycles);
                    return Ok(cycles);
                }
                Err(e) => last_err = Some(e),
            }
            if !policy.injecting() {
                break; // a fault-free failure is genuine; retrying cannot help
            }
        }
        let err = last_err.expect("at least one attempt ran");
        if !policy.injecting() {
            return Err(err);
        }
        match measure(seed, None) {
            Ok(cycles) => {
                let report = UnitReport {
                    value: cycles,
                    degradation: Some(Degradation {
                        phase: "measure",
                        unit: format!("{}@{}", kernel.name(), variant.tag()),
                        kernel: kernel.name().to_owned(),
                        error: err.to_string(),
                        attempts: policy.max_retries + 1,
                        retry_seeds,
                        action: "fallback-fault-free",
                        code: Error::from(err).code(),
                    }),
                    failed: true,
                };
                let cycles = self.absorb(report);
                measure_leaf(cycles);
                Ok(cycles)
            }
            Err(e) => Err(e),
        }
    }
}

/// One resilient measurement outcome, produced inside a worker task and
/// folded into the flow state serially at merge time.
struct UnitReport<T> {
    value: T,
    degradation: Option<Degradation>,
    /// Whether the unit exhausted its injected-fault retries (counts
    /// toward the kernel's quarantine at merge time).
    failed: bool,
}

impl<T> UnitReport<T> {
    fn clean(value: T) -> Self {
        UnitReport {
            value,
            degradation: None,
            failed: false,
        }
    }

    fn map<U>(self, f: impl FnOnce(T) -> U) -> UnitReport<U> {
        UnitReport {
            value: f(self.value),
            degradation: self.degradation,
            failed: self.failed,
        }
    }
}

/// Runs one measurement unit under the resilience protocol: bounded
/// retries with deterministically reseeded stimuli (each attempt on its
/// own fault-plan stream), then a fault-free fallback. Pure w.r.t. the
/// unit's identity — all state effects are deferred to the serial
/// merge via the returned report.
///
/// # Panics
///
/// Panics when the unit fails without injected faults: that is a
/// genuine defect the flow must not paper over.
fn run_resilient<T>(
    policy: &FaultPolicy,
    phase: &'static str,
    unit: String,
    kernel: &str,
    stream_base: u64,
    base_seed: u64,
    measure: impl Fn(u64, Option<(PlanSpec, u64)>) -> Result<T, Error>,
) -> UnitReport<T> {
    let mut retry_seeds = Vec::new();
    let mut last_err: Option<Error> = None;
    for attempt in 0..=policy.max_retries {
        let seed = policy.retry_seed(base_seed, attempt);
        if attempt > 0 {
            retry_seeds.push(seed);
        }
        let arm = policy
            .plan
            .map(|spec| (spec, stream_base.wrapping_add(u64::from(attempt))));
        match measure(seed, arm) {
            Ok(value) => {
                let degradation = (attempt > 0).then(|| Degradation {
                    phase,
                    unit: unit.clone(),
                    kernel: kernel.to_owned(),
                    error: last_err.as_ref().map(|e| e.to_string()).unwrap_or_default(),
                    attempts: attempt + 1,
                    retry_seeds: retry_seeds.clone(),
                    action: "retried-ok",
                    code: last_err.as_ref().map(Error::code).unwrap_or(codes::FLOW),
                });
                return UnitReport {
                    value,
                    degradation,
                    failed: false,
                };
            }
            Err(e) => last_err = Some(e),
        }
        if !policy.injecting() {
            break; // a fault-free failure is genuine; retrying cannot help
        }
    }
    let err_text = last_err.as_ref().map(|e| e.to_string()).unwrap_or_default();
    if policy.injecting() {
        match measure(base_seed, None) {
            Ok(value) => UnitReport {
                value,
                degradation: Some(Degradation {
                    phase,
                    unit,
                    kernel: kernel.to_owned(),
                    error: err_text,
                    attempts: policy.max_retries + 1,
                    retry_seeds,
                    action: "fallback-fault-free",
                    code: last_err.as_ref().map(Error::code).unwrap_or(codes::FLOW),
                }),
                failed: true,
            },
            Err(e) => panic!("{phase} unit {unit} failed even with faults disabled: {e}"),
        }
    } else {
        panic!("{phase} unit {unit} failed fault-free: {err_text}")
    }
}

/// Converts the pool's recorded job traces into `wall_only` per-worker
/// spans under the innermost open span (queue wait and busy fraction as
/// attributes), and publishes the busy fraction as an
/// `xpar.busy_fraction` gauge when a registry is attached. Wall-clock
/// observability only: report normalization drops every span this
/// function creates, so the worker count never leaks into the
/// deterministic tree.
fn drain_worker_spans(spans: Option<&Spans>, pool: &Pool, metrics: Option<&xobs::Registry>) {
    let Some(sp) = spans else { return };
    for job in pool.take_job_traces() {
        let job_wall_ms = job.wall_nanos as f64 / 1e6;
        // Drained right after the fan-out returns, so "now minus the
        // job's wall time" anchors the job start closely enough for a
        // timeline view.
        let job_start_ms = (sp.elapsed_ms() - job_wall_ms).max(0.0);
        let busy_fraction = job.busy_fraction();
        if let Some(reg) = metrics {
            reg.gauge("xpar.busy_fraction").set(busy_fraction);
        }
        for w in &job.workers {
            let queue_wait_ms = w.queue_wait_nanos as f64 / 1e6;
            sp.wall_span(
                format!("xpar.worker-{}", w.worker),
                job_start_ms + queue_wait_ms,
                w.busy_nanos as f64 / 1e6,
                &[
                    ("worker", Json::from(w.worker as u64)),
                    ("items", Json::from((w.hi - w.lo) as u64)),
                    ("queue_wait_ms", Json::from(queue_wait_ms)),
                    ("busy_fraction", Json::from(busy_fraction)),
                ],
            );
        }
    }
}

/// One phase-1 measurement unit: a registered kernel characterized at
/// one radix width against a pre-drawn stimulus plan. The stimulus
/// space, monomial basis and cache-key unit all come from the kernel's
/// registry descriptor.
struct CharactTask {
    width: u32,
    desc: &'static KernelDescriptor,
    basis: Vec<Monomial>,
    plan: StimulusPlan,
}

impl CharactTask {
    fn name(&self) -> &'static str {
        self.desc.id.name()
    }
}

/// Content digest of a stimulus plan (folded into the kernel-cycle
/// cache key so changed characterization options cannot be served stale
/// measurements).
fn plan_digest(plan: &StimulusPlan) -> u64 {
    let flat: Vec<f64> = plan
        .points()
        .flat_map(|p| p.iter().map(|&v| v as f64))
        .collect();
    xpar::memo::checksum(
        &format!("plan:t{}v{}", plan.train.len(), plan.validation.len()),
        &flat,
    )
}

/// Runs one characterization task on a fresh simulation harness (each
/// worker owns its `Cpu`), returning the cycle count of every planned
/// stimulus in plan order. The harness is chosen by the kernel's
/// registered calling convention: register-convention kernels run
/// through the ISS ops provider, block-memory kernels through their
/// dedicated engine. `seed_base` is the pre-advance stimulus seed
/// (`1` is the canonical stream; retries reseed it), and `arm`
/// attaches a fault plan on the given stream — block kernels have no
/// fault ports and always measure clean.
fn measure_charact_task(
    config: &CpuConfig,
    variant: KernelVariant,
    t: &CharactTask,
    seed_base: u64,
    arm: Option<(PlanSpec, u64)>,
    cycle_budget: u64,
) -> Result<Vec<f64>, KernelError> {
    // Characterization measures timing only, and one warm-up stimulus
    // is discarded so every task starts from the same (warm) cache
    // state regardless of which worker runs it.
    if matches!(t.desc.conv, CallConv::BlockMem { .. }) {
        let mut sim = SimSha1::new(config.clone());
        sim.set_verify(false);
        sim.measure_blocks(1, 0x5EED);
        let mut seed = seed_base;
        Ok(t.plan
            .points()
            .map(|params| {
                seed = seed.wrapping_add(SEED_STEP);
                sim.measure_blocks(params[0] as usize, seed)
            })
            .collect())
    } else {
        let kernel = t.desc.id;
        let mut iss = IssMpn::with_variant(config.clone(), variant);
        iss.set_verify(arm.is_some());
        iss.set_cycle_budget(cycle_budget);
        if let Some((spec, stream)) = arm {
            iss.set_fault_plan(spec, stream);
        }
        if t.width == 32 {
            iss.measure32(kernel, 1, 0x5EED)?;
        } else {
            iss.measure16(kernel, 1, 0x5EED)?;
        }
        let mut seed = seed_base;
        let mut out = Vec::with_capacity(t.plan.len());
        for params in t.plan.points() {
            seed = seed.wrapping_add(SEED_STEP);
            let n = params[0] as usize;
            let cycles = if t.width == 32 {
                iss.measure32(kernel, n, seed)
            } else {
                iss.measure16(kernel, n, seed)
            };
            out.push(cycles?);
        }
        Ok(out)
    }
}

/// One evaluated design-space candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration.
    pub config: ModExpConfig,
    /// Estimated cycles for the workload.
    pub cycles: f64,
}

/// Phase 2 result: the ranked design space plus timing bookkeeping.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// All candidates, sorted fastest-first.
    pub ranked: Vec<Candidate>,
    /// Wall-clock time of the whole exploration.
    pub elapsed: Duration,
    /// Candidates evaluated.
    pub evaluated: usize,
}

impl ExplorationResult {
    /// The winning configuration.
    pub fn best(&self) -> &Candidate {
        &self.ranked[0]
    }
}

/// The accelerator levels the cross-product axis sweeps: the base core
/// plus the four A-D resource levels (the same lattice the fast-path
/// equivalence suite covers).
const XPROD_LEVELS: [KernelVariant; 5] = [
    KernelVariant::Base,
    KernelVariant::Accelerated {
        add_lanes: 2,
        mac_lanes: 1,
    },
    KernelVariant::Accelerated {
        add_lanes: 4,
        mac_lanes: 2,
    },
    KernelVariant::Accelerated {
        add_lanes: 8,
        mac_lanes: 4,
    },
    KernelVariant::Accelerated {
        add_lanes: 16,
        mac_lanes: 4,
    },
];

/// One point of the cross-product (core config × accelerator level)
/// design space: its coordinates on both axes, its price and speed, and
/// its Pareto verdict (filled in by [`mark_pareto_front`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossPoint {
    /// The core-configuration id (`"io"`, `"ooo-…"`).
    pub core: String,
    /// The accelerator-level tag (`"base"`, `"accel-a4m2"`, …).
    pub level: String,
    /// Total gate-equivalent price: core structures + custom-instruction
    /// datapaths.
    pub area: u64,
    /// Registry-workload cycles at this point.
    pub cycles: f64,
    /// Whether the point survives Pareto filtering over (area, cycles).
    pub on_front: bool,
}

impl CrossPoint {
    /// The report/JSON form of this point (schema 7's per-point `core`
    /// field included).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("core", self.core.as_str())
            .set("level", self.level.as_str())
            .set("area", self.area)
            .set("cycles", self.cycles)
            .set("on_front", self.on_front)
    }
}

/// Marks every point of the combined (possibly multi-core) lattice that
/// is Pareto-optimal over (area, cycles) — both lower-better — and
/// returns the front size. A point is dominated when another point is
/// no worse on both axes and strictly better on at least one;
/// duplicate coordinates stay on the front together.
pub fn mark_pareto_front(points: &mut [CrossPoint]) -> usize {
    let flags: Vec<bool> = (0..points.len())
        .map(|i| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.area <= points[i].area
                    && q.cycles <= points[i].cycles
                    && (q.area < points[i].area || q.cycles < points[i].cycles)
            })
        })
        .collect();
    let mut size = 0;
    for (p, flag) in points.iter_mut().zip(flags) {
        p.on_front = flag;
        size += usize::from(flag);
    }
    size
}

/// Phase 2 implementation: the 450-candidate lattice is evaluated in
/// parallel (each candidate owns its modeled-ops provider and cache),
/// then ranked and offered to the Pareto front in enumeration order, so
/// the result is bit-identical to the serial run for any thread count.
fn explore_impl(
    models: &KernelModels,
    bits: usize,
    glue_cost: f64,
    metrics: Option<&xobs::Registry>,
    spans: Option<&Spans>,
    pool: &Pool,
    core_id: &str,
) -> Result<ExplorationResult, ModExpError> {
    let phase = spans.map(|sp| {
        pool.set_tracing(true);
        let guard = sp.enter("phase2.explore");
        sp.set_attr("bits", bits as u64);
        sp.set_attr("core", core_id);
        guard
    });
    let scratch;
    let reg = match metrics {
        Some(reg) => reg,
        None => {
            scratch = xobs::Registry::new();
            &scratch
        }
    };
    let evaluated = reg.counter("flow.phase2.candidates_evaluated");
    let cycles_hist = reg.histogram("flow.phase2.candidate_cycles");
    let mut front = ParetoFront::new();
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let m = {
        // An odd modulus with the top bit set.
        let mut m = Natural::random_bits(&mut rng, bits);
        if m.is_even() {
            m = &m + &Natural::one();
        }
        m
    };
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let expect = base.pow_mod(&exp, &m);

    let start = Instant::now();
    let configs = ModExpConfig::enumerate();
    let estimates = pool.par_map(&configs, |_, config| {
        let mut ops = models.modeled_ops(glue_cost);
        let mut cache = ExpCache::new();
        // Caching benefits repeat calls: run twice, cost the second.
        let r1 = mod_exp(&mut ops, &base, &exp, &m, config, &mut cache)?;
        debug_assert_eq!(r1, expect);
        MpnOps::<u32>::reset(&mut ops);
        let r2 = mod_exp(&mut ops, &base, &exp, &m, config, &mut cache)?;
        assert_eq!(r2, expect, "config {config} computed a wrong result");
        Ok(MpnOps::<u32>::cycles(&ops))
    });

    // Serial merge in enumeration order: metric observation order and
    // Pareto tie-breaking match the serial loop exactly.
    let mut ranked = Vec::with_capacity(configs.len());
    for (config, estimate) in configs.into_iter().zip(estimates) {
        let cycles = estimate?;
        evaluated.inc();
        cycles_hist.observe(cycles);
        front.offer(config, cycles, config.table_bytes(bits));
        ranked.push(Candidate { config, cycles });
    }
    ranked.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
    reg.gauge("flow.phase2.best_cycles").set(ranked[0].cycles);
    reg.gauge("flow.phase2.wall_ms")
        .set(start.elapsed().as_secs_f64() * 1e3);
    front.record_metrics(reg);
    if let Some(sp) = spans {
        sp.add_tasks(ranked.len() as u64);
        sp.set_attr("evaluated", ranked.len() as u64);
        sp.set_attr("best_cycles", ranked[0].cycles);
        drain_worker_spans(spans, pool, metrics);
    }
    drop(phase);
    Ok(ExplorationResult {
        evaluated: ranked.len(),
        elapsed: start.elapsed(),
        ranked,
    })
}

/// Evaluates a single candidate with macro-model metering on the same
/// fixed workload as [`FlowCtx::explore`], returning estimated cycles.
///
/// # Errors
///
/// Returns [`ModExpError`] on configuration failure.
pub fn explore_single(
    models: &KernelModels,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
) -> Result<f64, ModExpError> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);
    let mut ops = models.modeled_ops(glue_cost);
    let mut cache = ExpCache::new();
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    MpnOps::<u32>::reset(&mut ops);
    mod_exp(&mut ops, &base, &exp, &m, candidate, &mut cache)?;
    Ok(MpnOps::<u32>::cycles(&ops))
}

/// One ISS co-simulation pass, optionally with a fault arm. Kernel-level
/// errors (divergence, timeout) and — under injection — modexp-level
/// failures are surfaced as the retryable `Err(Error)`; a fault-free
/// [`ModExpError`] is a genuine defect and passes through in the value.
fn cosim_once(
    config: &CpuConfig,
    variant: KernelVariant,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
    arm: Option<(PlanSpec, u64)>,
    policy: FaultPolicy,
) -> Result<Result<f64, ModExpError>, Error> {
    let mut rng = StdRng::seed_from_u64(0xE4B0);
    let mut m = Natural::random_bits(&mut rng, bits);
    if m.is_even() {
        m = &m + &Natural::one();
    }
    let base = Natural::random_below(&mut rng, &m);
    let exp = Natural::random_bits(&mut rng, bits);

    let mut iss = IssMpn::with_variant(config.clone(), variant);
    iss.set_verify(arm.is_some());
    iss.set_cycle_budget(policy.cycle_budget);
    if let Some((spec, stream)) = arm {
        iss.set_fault_plan(spec, stream);
    }
    iss.set_glue_cost(glue_cost);
    let mut cache = ExpCache::new();
    let run: Result<f64, ModExpError> = (|| {
        mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
        MpnOps::<u32>::reset(&mut iss);
        mod_exp(&mut iss, &base, &exp, &m, candidate, &mut cache)?;
        Ok(MpnOps::<u32>::cycles(&iss))
    })();
    if let Some(e) = iss.kernel_errors().first() {
        return Err(Error::from(e.clone()));
    }
    match run {
        Ok(cycles) => Ok(Ok(cycles)),
        // Under injection a modexp failure is a fault artifact: retry.
        Err(e) if arm.is_some() => Err(Error::from(e)),
        Err(e) => Ok(Err(e)),
    }
}

/// Fault-free co-simulation, optionally served from the kernel-cycle
/// cache. The memo key embeds the core fingerprint, the kernel variant,
/// the candidate's display form, the operand size and the glue cost, so
/// any changed determinant recomputes.
fn cosim_cached_impl(
    config: &CpuConfig,
    variant: KernelVariant,
    candidate: &ModExpConfig,
    bits: usize,
    glue_cost: f64,
    cache: Option<&KCache>,
) -> Result<f64, ModExpError> {
    let run = || {
        cosim_once(
            config,
            variant,
            candidate,
            bits,
            glue_cost,
            None,
            FaultPolicy::default(),
        )
        .expect("fault-free co-simulation reports no kernel errors")
    };
    let Some(kc) = cache else {
        return run();
    };
    let key = kcache::key(
        config.fingerprint(),
        &variant.tag(),
        &format!("cosim:{candidate}"),
        bits as u64,
        glue_cost.to_bits(),
    );
    if let Some(v) = kc.get(&key) {
        if let [cycles] = v[..] {
            return Ok(cycles);
        }
    }
    let cycles = run()?;
    kc.insert(&key, vec![cycles]);
    Ok(cycles)
}

/// The shared user-register load/store plumbing as a selection-level
/// instruction (counted once however many datapaths share it).
fn ur_ls_insn() -> CustomInsn {
    let area = crate::insns::ldur().area + crate::insns::stur().area;
    CustomInsn::new("ur_ls", 1, area)
}

/// One phase-3 measurement unit: one kernel under one kernel variant
/// (its resource level), warmed with seed 7 and measured with seed 8 on
/// a private ISS — exactly the serial per-point procedure, so the
/// curves are identical for any thread count.
struct CurveTask {
    kernel: KernelId,
    variant: KernelVariant,
    /// `Some((family, lanes))` for accelerated points; `None` = base.
    insn: Option<(&'static str, u32)>,
    /// Index into the admitted generated variants, when this task
    /// measures an `xopt`-generated library instead of the hand-written
    /// one at the same resource level.
    gen: Option<usize>,
    /// Whether this measurement becomes an A-D curve point (hand-written
    /// shadows of admitted generated variants are measured for the
    /// side-by-side record only).
    on_curve: bool,
}

/// Bookkeeping for one generated level's run-report record: gate
/// verdicts known at generation time plus the task indices whose
/// measured cycles complete the record.
struct PendingRecord {
    kernel: KernelId,
    family: &'static str,
    lanes: u32,
    tag: String,
    lint_ok: bool,
    golden_ok: bool,
    admitted: bool,
    error: Option<String>,
    hand_task: usize,
    gen_task: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubkey::ops::opname;
    use xfault::FaultSite;

    fn quick_options() -> CharactOptions {
        CharactOptions {
            train_samples: 12,
            validation_points: 5,
        }
    }

    #[test]
    fn characterization_fits_linear_kernels_well() {
        let cfg = CpuConfig::default();
        let models = FlowBuilder::new(&cfg)
            .build()
            .unwrap()
            .characterize(16, &quick_options());
        for op in opname::ALL {
            assert!(models.models32.contains_key(op), "{op} missing (r32)");
            assert!(models.models16.contains_key(op), "{op} missing (r16)");
        }
        let q = models.quality[&(opname::ADDMUL_1, 32)];
        assert!(q.mae_pct < 15.0, "addmul_1 fit error {}%", q.mae_pct);
        assert!(models.mean_abs_error_pct() < 20.0);
        // The registered SHA-1 block kernel is characterized too (the
        // registry's extensibility proof): linear in the block count.
        assert!(models.models32.contains_key(opname::SHA1), "sha1 missing");
        let qs = models.quality[&(opname::SHA1, 32)];
        assert!(qs.mae_pct < 15.0, "sha1 fit error {}%", qs.mae_pct);
        let one = models.models32[opname::SHA1].predict(&[1]);
        let four = models.models32[opname::SHA1].predict(&[4]);
        assert!(four > 3.0 * one, "sha1 cycles scale with blocks");
        // Per-limb cost: addmul > add (multiplies dominate).
        let am = models.models32[opname::ADDMUL_1].predict(&[16]);
        let an = models.models32[opname::ADD_N].predict(&[16]);
        assert!(am > an, "addmul {am} vs add {an}");
    }

    #[test]
    fn exploration_ranks_the_space_and_best_beats_baseline() {
        let cfg = CpuConfig::default();
        let ctx = FlowBuilder::new(&cfg).build().unwrap();
        let models = ctx.characterize(8, &quick_options());
        let result = ctx.explore(&models, 128, 4.0).unwrap();
        assert_eq!(result.evaluated, 450);
        let best = result.best();
        let baseline = result
            .ranked
            .iter()
            .find(|c| c.config == ModExpConfig::baseline())
            .expect("baseline in the space");
        assert!(
            best.cycles < baseline.cycles / 2.0,
            "exploration should find large algorithmic wins: best {} vs baseline {}",
            best.cycles,
            baseline.cycles
        );
        // The winner should use a modern reduction, CRT and caching.
        assert_ne!(best.config.mul, pubkey::MulAlgo::MulDiv);
    }

    #[test]
    fn ad_curves_are_monotone_in_resources() {
        let cfg = CpuConfig::default();
        let curves = FlowBuilder::new(&cfg).build().unwrap().curves(32);
        let addn = &curves[opname::ADD_N];
        assert_eq!(addn.len(), 5);
        let pts = addn.points();
        assert_eq!(pts[0].area(), 0);
        for w in pts.windows(2) {
            assert!(w[0].cycles > w[1].cycles, "more lanes, fewer cycles");
        }
        let addmul = &curves[opname::ADDMUL_1];
        assert_eq!(addmul.len(), 4);
    }

    #[test]
    fn generated_variants_drive_the_curves() {
        let cfg = CpuConfig::default();
        let ctx = FlowBuilder::new(&cfg).build().unwrap();
        let (curves, records) = ctx.curves_with_variants(16);
        // One record per resource level of the two Generated kernels.
        assert_eq!(records.len(), 7);
        for r in &records {
            assert!(r.admitted, "{} {} rejected: {:?}", r.kernel, r.tag, r.error);
            assert!(r.lint_ok && r.golden_ok);
            let gen = r.cycles_generated.expect("admitted variants are measured");
            // The generated variant must be within 5% of (or beat) the
            // hand-written library at the same level — the list
            // scheduler recovers the hand-written tail's interlock
            // stalls, so in practice it wins outright.
            assert!(
                gen <= r.cycles_hand * 1.05,
                "{} {}: generated {gen} vs hand-written {}",
                r.kernel,
                r.tag,
                r.cycles_hand
            );
        }
        // The curve points are the generated measurements: each
        // accelerated point's cycles equal the record's.
        let addn = &curves[opname::ADD_N];
        let addn_recs: Vec<_> = records
            .iter()
            .filter(|r| r.kernel == kreg::id::ADD_N)
            .collect();
        for (p, r) in addn.points().iter().skip(1).zip(addn_recs) {
            assert_eq!(p.cycles, r.cycles_generated.unwrap(), "{}", r.tag);
        }
        // No degradations: every level was admitted, nothing fell back.
        assert!(ctx.degradations().is_empty());
    }

    #[test]
    fn selector_improves_with_budget() {
        let cfg = CpuConfig::default();
        let sel = FlowBuilder::new(&cfg).build().unwrap().selector(32);
        let root = sel.root_curve("decrypt").unwrap();
        assert!(root.len() >= 3);
        let no_hw = sel.select("decrypt", 0).unwrap().unwrap();
        let big = sel.select("decrypt", 1_000_000).unwrap().unwrap();
        assert!(no_hw.cycles > big.cycles);
        assert_eq!(no_hw.area(), 0);
    }

    #[test]
    fn cross_product_front_spans_both_cores() {
        // The two-axis lattice: one axis per core configuration, union
        // handed to the Pareto filter. The front must mix core models —
        // the cheap in-order/base corner is undominated on area, and an
        // out-of-order point must win somewhere on cycles.
        let io_cfg = CpuConfig::default();
        let ooo_cfg = CpuConfig::ooo();
        let mut points = FlowBuilder::new(&io_cfg)
            .build()
            .unwrap()
            .cross_product_axis(6);
        points.extend(
            FlowBuilder::new(&ooo_cfg)
                .build()
                .unwrap()
                .cross_product_axis(6),
        );
        assert_eq!(points.len(), 10);
        let front = mark_pareto_front(&mut points);
        assert!(front >= 2, "degenerate front: {points:?}");
        assert_eq!(front, points.iter().filter(|p| p.on_front).count());
        assert!(
            points.iter().any(|p| p.on_front && p.core == "io"),
            "no in-order point on the front: {points:?}"
        );
        assert!(
            points
                .iter()
                .any(|p| p.on_front && p.core.starts_with("ooo-")),
            "no out-of-order point on the front: {points:?}"
        );
        // The in-order/base corner is the unique area minimum, so it is
        // always Pareto-optimal.
        let io_base = points
            .iter()
            .find(|p| p.core == "io" && p.level == "base")
            .unwrap();
        assert_eq!(io_base.area, 0);
        assert!(io_base.on_front);
        // OoO points price in the core structures on top of the level.
        let ooo_base = points
            .iter()
            .find(|p| p.core.starts_with("ooo-") && p.level == "base")
            .unwrap();
        assert_eq!(ooo_base.area, ooo_cfg.core.area_gates());
        assert!(ooo_base.cycles < io_base.cycles, "OoO should beat in-order");
    }

    #[test]
    fn pareto_front_marks_dominance_correctly() {
        let mk = |core: &str, level: &str, area: u64, cycles: f64| CrossPoint {
            core: core.into(),
            level: level.into(),
            area,
            cycles,
            on_front: false,
        };
        let mut pts = vec![
            mk("io", "base", 0, 100.0),
            mk("io", "a", 50, 60.0),
            mk("ooo", "base", 40, 70.0), // dominated by (50,60)? no: area 40<50 → on front
            mk("ooo", "a", 90, 60.0),    // dominated by (50, 60.0)
            mk("ooo", "b", 120, 40.0),
        ];
        let front = mark_pareto_front(&mut pts);
        assert_eq!(front, 4);
        assert!(!pts[3].on_front, "strictly worse on area at equal cycles");
        // Duplicate coordinates stay on the front together.
        let mut dups = vec![mk("io", "x", 10, 10.0), mk("ooo", "x", 10, 10.0)];
        assert_eq!(mark_pareto_front(&mut dups), 2);
    }

    #[test]
    fn cross_product_axis_is_cache_and_thread_invariant() {
        let cfg = CpuConfig::ooo();
        let kc = KCache::new();
        let p4 = Pool::new(4);
        let serial = FlowBuilder::new(&cfg)
            .build()
            .unwrap()
            .cross_product_axis(4);
        let pooled_ctx = FlowBuilder::new(&cfg).pool(&p4).cache(&kc).build().unwrap();
        let cold = pooled_ctx.cross_product_axis(4);
        let warm = pooled_ctx.cross_product_axis(4);
        assert_eq!(serial, cold);
        assert_eq!(cold, warm);
        assert_eq!(kc.misses(), 5, "one computed entry per level");
        assert_eq!(kc.hits(), 5, "warm rerun served entirely from cache");
    }

    #[test]
    fn pooled_flow_is_thread_count_and_cache_invariant() {
        let cfg = CpuConfig::default();
        let opts = quick_options();
        let kc = KCache::new();
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);
        let serial = FlowBuilder::new(&cfg).pool(&p1).build().unwrap();
        let pooled = FlowBuilder::new(&cfg).pool(&p4).cache(&kc).build().unwrap();

        // Phase 1: serial/uncached vs pooled/cold-cache vs pooled/warm.
        let a = serial.characterize(8, &opts);
        let b = pooled.characterize(8, &opts);
        let c = pooled.characterize(8, &opts);
        assert!(kc.hits() > 0, "second run must hit the memo cache");
        for op in opname::ALL {
            for n in [1u64, 4, 8] {
                let pa = a.models32[op].predict(&[n]);
                assert_eq!(pa, b.models32[op].predict(&[n]), "{op} n={n} threads");
                assert_eq!(pa, c.models32[op].predict(&[n]), "{op} n={n} warm cache");
                assert_eq!(
                    a.models16[op].predict(&[n]),
                    c.models16[op].predict(&[n]),
                    "{op} n={n} r16"
                );
            }
            let (qa, qc) = (a.quality[&(op, 32)], c.quality[&(op, 32)]);
            assert_eq!(qa.mae_pct, qc.mae_pct, "{op} fit quality");
        }

        // Phase 2: identical ranking for any thread count.
        let ea = serial.explore(&a, 128, 4.0).unwrap();
        let eb = pooled.explore(&b, 128, 4.0).unwrap();
        assert_eq!(ea.ranked.len(), eb.ranked.len());
        for (x, y) in ea.ranked.iter().zip(&eb.ranked) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.cycles, y.cycles);
        }

        // Phase 3: identical curves, and the warm pass hits the cache.
        let ca = serial.curves(16);
        let misses_before = kc.misses();
        let cb = pooled.curves(16);
        let cc = pooled.curves(16);
        // 2 base + 7 hand-written + 7 admitted generated variants.
        assert_eq!(kc.misses(), misses_before + 16, "sixteen cold curve points");
        for (name, curve) in &ca {
            for (i, p) in curve.points().iter().enumerate() {
                assert_eq!(p.cycles, cb[name].points()[i].cycles, "{name}[{i}]");
                assert_eq!(p.cycles, cc[name].points()[i].cycles, "{name}[{i}] warm");
            }
        }
        // A fault-free flow records no resilience degradations. Fit
        // quality is a workload fact, so `bad-fit` entries may appear —
        // but identically for any thread count or cache state.
        let non_fit = |ds: Vec<Degradation>| -> Vec<Degradation> {
            ds.into_iter().filter(|d| d.action != "bad-fit").collect()
        };
        assert!(non_fit(serial.degradations()).is_empty());
        assert!(non_fit(pooled.degradations()).is_empty());
        // The pooled context characterized twice (cold + warm): the
        // bad-fit log must repeat the serial one exactly both times.
        let sd = serial.degradations();
        let pd = pooled.degradations();
        assert_eq!(pd.len(), 2 * sd.len());
        assert_eq!(&pd[..sd.len()], &sd[..], "cold-cache bad-fit log");
        assert_eq!(&pd[sd.len()..], &sd[..], "warm-cache bad-fit log");
    }

    #[test]
    fn cosimulation_agrees_with_models_roughly() {
        let cpu = CpuConfig::default();
        let ctx = FlowBuilder::new(&cpu).build().unwrap();
        let models = ctx.characterize(8, &quick_options());
        let cfg = ModExpConfig::optimized();
        let modeled = explore_single(&models, &cfg, 128, 4.0).unwrap();
        let cosim = ctx.cosimulate(&models, &cfg, 128, 4.0).unwrap();
        let err = ((modeled - cosim) / cosim).abs() * 100.0;
        assert!(
            err < 30.0,
            "macro-model estimate {modeled:.0} vs co-sim {cosim:.0} ({err:.1}% off)"
        );
    }

    #[test]
    fn faulty_characterization_is_thread_count_invariant() {
        let cfg = CpuConfig::default();
        let opts = quick_options();
        let plan = PlanSpec::all_sites(7, 200);
        let run = |threads: usize| {
            let pool = Pool::new(threads);
            let ctx = FlowBuilder::new(&cfg)
                .pool(&pool)
                .fault_policy(FaultPolicy::with_plan(plan))
                .build()
                .unwrap();
            let models = ctx.characterize(8, &opts);
            (models, ctx.degradations())
        };
        let (ma, da) = run(1);
        let (mb, db) = run(4);
        assert_eq!(da, db, "degradation log must not depend on threads");
        for op in opname::ALL {
            for n in [1u64, 4, 8] {
                assert_eq!(
                    ma.models32[op].predict(&[n]),
                    mb.models32[op].predict(&[n]),
                    "{op} n={n}"
                );
            }
        }
    }

    #[test]
    fn certain_faults_fall_back_fault_free_and_quarantine() {
        let cfg = CpuConfig::default();
        // Every data load flips a bit: every injected attempt diverges.
        let plan = PlanSpec::new(3, 1_000_000, &[FaultSite::DataMem]);
        let ctx = FlowBuilder::new(&cfg)
            .fault_policy(FaultPolicy::with_plan(plan))
            .build()
            .unwrap();
        let clean = FlowBuilder::new(&cfg).build().unwrap();

        let c1 = ctx
            .measure_kernel_cycles(KernelVariant::Base, kreg::id::ADD_N, 8, 7, 8)
            .unwrap();
        let reference = clean
            .measure_kernel_cycles(KernelVariant::Base, kreg::id::ADD_N, 8, 7, 8)
            .unwrap();
        assert_eq!(c1, reference, "fallback measures without faults");
        let degs = ctx.degradations();
        assert_eq!(degs.len(), 1);
        assert_eq!(degs[0].action, "fallback-fault-free");
        assert_eq!(degs[0].attempts, xfault::DEFAULT_MAX_RETRIES + 1);
        assert_eq!(
            degs[0].retry_seeds.len(),
            xfault::DEFAULT_MAX_RETRIES as usize
        );

        // A second failed unit crosses the quarantine threshold…
        let c2 = ctx
            .measure_kernel_cycles(KernelVariant::Base, kreg::id::ADD_N, 8, 7, 8)
            .unwrap();
        assert_eq!(c2, reference);
        assert_eq!(ctx.quarantined(), vec![kreg::id::ADD_N.name().to_owned()]);
        assert_eq!(ctx.degradations()[1].action, "quarantined-fallback");

        // …after which the kernel is refused with a typed error.
        let e = ctx
            .measure_kernel_cycles(KernelVariant::Base, kreg::id::ADD_N, 8, 7, 8)
            .unwrap_err();
        assert!(matches!(e, KernelError::Quarantined { .. }), "{e}");
        assert_eq!(ctx.degradations()[2].action, "quarantined");
    }

    #[test]
    fn quarantined_kernels_degrade_to_macro_models() {
        let cfg = CpuConfig::default();
        let ctx = FlowBuilder::new(&cfg).build().unwrap();
        let models = ctx.characterize(8, &quick_options());
        ctx.quarantine(opname::ADDMUL_1);

        // Co-simulation of a candidate degrades to the macro-model
        // estimate instead of trusting a quarantined kernel's ISS.
        let candidate = ModExpConfig::optimized();
        let cosim = ctx.cosimulate(&models, &candidate, 128, 4.0).unwrap();
        let modeled = explore_single(&models, &candidate, 128, 4.0).unwrap();
        assert_eq!(cosim, modeled);
        let degs = ctx.degradations();
        assert_eq!(degs.last().unwrap().action, "fallback-macro-model");

        // Validation (and with it fig4/fig5-style pipelines) still
        // completes end to end.
        let errs = ctx
            .validate_models(&models, &[candidate], 128, 4.0)
            .unwrap();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0], 0.0, "degraded cosim equals the model estimate");
    }

    #[test]
    fn degradations_render_as_json() {
        let d = Degradation {
            phase: "measure",
            unit: "mpn_add_n@base".to_owned(),
            kernel: "mpn_add_n".to_owned(),
            error: "diverged: \"x\"".to_owned(),
            attempts: 3,
            retry_seeds: vec![10, 20],
            action: "fallback-fault-free",
            code: codes::KERNEL_DIVERGENCE,
        };
        let json = d.to_json();
        assert!(json.contains("\"phase\":\"measure\""), "{json}");
        assert!(json.contains("\"retry_seeds\":[10,20]"), "{json}");
        assert!(json.contains("\"code\":1002"), "{json}");
        assert!(json.contains("\\\"x\\\""), "escapes quotes: {json}");
    }

    #[test]
    fn builder_rejects_fast_fidelity_under_injection() {
        let cfg = CpuConfig::default();
        let plan = PlanSpec::all_sites(7, 200);
        let err = match FlowBuilder::new(&cfg)
            .fidelity(Fidelity::Fast)
            .fault_policy(FaultPolicy::with_plan(plan))
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("conflicting builder must be rejected"),
        };
        assert_eq!(err.code(), codes::FLOW_CONFLICT);
        assert!(err.to_string().contains("Fast fidelity"), "{err}");
        // Either knob alone is fine.
        assert!(FlowBuilder::new(&cfg)
            .fidelity(Fidelity::Fast)
            .build()
            .is_ok());
        let ctx = FlowBuilder::new(&cfg)
            .fault_policy(FaultPolicy::with_plan(plan))
            .build()
            .unwrap();
        assert!(ctx.policy().injecting());
        assert_eq!(ctx.fidelity(), Fidelity::CycleAccurate);
    }
}
