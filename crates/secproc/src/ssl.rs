//! The SSL transaction model behind the paper's Fig. 8.
//!
//! An SSL transaction is modeled as the paper describes: a handshake in
//! which "the server and client authenticate each other, using
//! public-key techniques such as RSA", followed by "rapid encryption and
//! decryption of bulk data" under symmetric keys, plus miscellaneous
//! processing (record MACs, protocol bookkeeping) that no custom
//! instruction accelerates. The workload breakup therefore shifts from
//! public-key-dominated (small transactions) to bulk-dominated (large
//! ones), and the overall speedup follows Amdahl's law over the three
//! components.

/// Cycle costs of one platform for the three SSL workload components.
#[derive(Debug, Clone, Copy)]
pub struct SslCostModel {
    /// Public-key cycles per handshake (RSA private-key operation plus
    /// the peer's public-key work attributed to this endpoint).
    pub handshake_cycles: f64,
    /// Symmetric bulk cipher cycles per byte (3DES in the paper's
    /// setup).
    pub bulk_cycles_per_byte: f64,
    /// Miscellaneous cycles per byte (record MACs — SHA-1 here —
    /// fragmentation, copying).
    pub misc_cycles_per_byte: f64,
    /// Fixed miscellaneous cycles per transaction (session setup,
    /// protocol state).
    pub misc_fixed_cycles: f64,
}

/// Workload breakdown of one transaction, in cycles.
#[derive(Debug, Clone, Copy)]
pub struct Breakdown {
    /// Public-key share.
    pub public_key: f64,
    /// Symmetric-cipher share.
    pub symmetric: f64,
    /// Miscellaneous share.
    pub misc: f64,
}

impl Breakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.public_key + self.symmetric + self.misc
    }

    /// Percentage shares `(pk, sym, misc)`.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        (
            100.0 * self.public_key / t,
            100.0 * self.symmetric / t,
            100.0 * self.misc / t,
        )
    }
}

impl SslCostModel {
    /// Cycles of one transaction moving `bytes` of application data.
    pub fn transaction(&self, bytes: u64) -> Breakdown {
        Breakdown {
            public_key: self.handshake_cycles,
            symmetric: self.bulk_cycles_per_byte * bytes as f64,
            misc: self.misc_cycles_per_byte * bytes as f64 + self.misc_fixed_cycles,
        }
    }
}

/// One point of the Fig. 8 series.
#[derive(Debug, Clone, Copy)]
pub struct SslPoint {
    /// Transaction size in bytes.
    pub bytes: u64,
    /// Baseline transaction cycles.
    pub base_cycles: f64,
    /// Optimized transaction cycles.
    pub opt_cycles: f64,
    /// Baseline workload breakdown.
    pub base_breakdown: Breakdown,
}

impl SslPoint {
    /// Transaction speedup at this size.
    pub fn speedup(&self) -> f64 {
        self.base_cycles / self.opt_cycles
    }
}

/// Computes the Fig. 8 speedup series over the given transaction
/// sizes.
pub fn speedup_series(base: &SslCostModel, opt: &SslCostModel, sizes: &[u64]) -> Vec<SslPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let b = base.transaction(bytes);
            let o = opt.transaction(bytes);
            SslPoint {
                bytes,
                base_cycles: b.total(),
                opt_cycles: o.total(),
                base_breakdown: b,
            }
        })
        .collect()
}

/// Serializes the series for a structured run report: one object per
/// size with cycles, speedup, and the baseline workload breakup.
pub fn series_to_json(points: &[SslPoint]) -> xobs::Json {
    let mut rows = Vec::with_capacity(points.len());
    for p in points {
        let (pk, sym, misc) = p.base_breakdown.percentages();
        rows.push(
            xobs::Json::obj()
                .set("bytes", p.bytes)
                .set("base_cycles", p.base_cycles)
                .set("opt_cycles", p.opt_cycles)
                .set("speedup", p.speedup())
                .set("base_pk_pct", pk)
                .set("base_symmetric_pct", sym)
                .set("base_misc_pct", misc),
        );
    }
    xobs::Json::from(rows)
}

/// Renders the series as the Fig. 8 table: size, breakdown, speedup.
pub fn render_series(points: &[SslPoint]) -> String {
    let mut out = String::from(
        "size (KB) | pub-key % | symmetric % | misc % | speedup\n----------+-----------+-------------+--------+--------\n",
    );
    for p in points {
        let (pk, sym, misc) = p.base_breakdown.percentages();
        out.push_str(&format!(
            "{:>9.0} | {:>9.1} | {:>11.1} | {:>6.1} | {:>6.2}X\n",
            p.bytes as f64 / 1024.0,
            pk,
            sym,
            misc,
            p.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Models shaped like the paper's platform: the optimized side
    /// accelerates the handshake ~66×, bulk ~34×, and misc not at all.
    fn paper_shaped_models() -> (SslCostModel, SslCostModel) {
        let base = SslCostModel {
            handshake_cycles: 1.2e9,
            bulk_cycles_per_byte: 1400.0,
            misc_cycles_per_byte: 180.0,
            misc_fixed_cycles: 3.0e6,
        };
        let opt = SslCostModel {
            handshake_cycles: base.handshake_cycles / 66.0,
            bulk_cycles_per_byte: base.bulk_cycles_per_byte / 34.0,
            misc_cycles_per_byte: base.misc_cycles_per_byte, // unaccelerated
            misc_fixed_cycles: base.misc_fixed_cycles,
        };
        (base, opt)
    }

    #[test]
    fn small_transactions_are_handshake_dominated() {
        let (base, _) = paper_shaped_models();
        let b = base.transaction(1024);
        let (pk, _, _) = b.percentages();
        assert!(pk > 95.0, "1KB transaction pk share {pk:.1}%");
    }

    #[test]
    fn large_transactions_shift_to_bulk() {
        let (base, _) = paper_shaped_models();
        let small = base.transaction(1024).percentages();
        let large = base.transaction(32 * 1024 * 1024).percentages();
        assert!(large.0 < small.0, "pk share falls with size");
        assert!(large.1 > small.1, "symmetric share grows with size");
    }

    #[test]
    fn speedup_declines_from_pk_factor_toward_amdahl_limit() {
        let (base, opt) = paper_shaped_models();
        let sizes: Vec<u64> = (0..=15).map(|i| 1024u64 << i).collect();
        let series = speedup_series(&base, &opt, &sizes);
        // Monotone decreasing after the handshake stops dominating.
        let first = series.first().unwrap().speedup();
        let last = series.last().unwrap().speedup();
        assert!(
            first > 20.0,
            "small transactions near the pk speedup: {first:.1}"
        );
        assert!(last < 10.0, "large transactions Amdahl-limited: {last:.1}");
        assert!(first > last);
        // The limit is bounded by the unaccelerated misc share.
        let limit = (base.bulk_cycles_per_byte + base.misc_cycles_per_byte)
            / (opt.bulk_cycles_per_byte + opt.misc_cycles_per_byte);
        assert!((last - limit).abs() / limit < 0.35);
    }

    #[test]
    fn render_has_one_row_per_size() {
        let (base, opt) = paper_shaped_models();
        let series = speedup_series(&base, &opt, &[1024, 2048, 4096]);
        let text = render_series(&series);
        assert_eq!(text.lines().count(), 2 + 3);
        assert!(text.contains("speedup"));
    }

    #[test]
    fn json_series_round_trips() {
        let (base, opt) = paper_shaped_models();
        let series = speedup_series(&base, &opt, &[1024, 4096]);
        let json = series_to_json(&series);
        let parsed = xobs::json::parse(&json.to_string_compact()).unwrap();
        let rows = parsed.as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("bytes").unwrap().as_f64(), Some(1024.0));
        assert!(rows[1].get("speedup").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let (base, _) = paper_shaped_models();
        let (a, b, c) = base.transaction(8192).percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
    }
}
