//! Table 1 measurements: cycles/byte (symmetric) and cycles/operation
//! (RSA) on the baseline vs. optimized platform.

use crate::issops::{IssMpn, KernelVariant};
use crate::kcache::{self, KCache};
use crate::simcipher::{SimAes, SimDes, Variant};
use mpint::Natural;
use pubkey::modexp::ExpCache;
use pubkey::ops::MpnOps;
use pubkey::rsa::{KeyPair, RsaError};
use pubkey::space::ModExpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xpar::Pool;
use xr32::config::CpuConfig;

/// One symmetric-algorithm row of Table 1.
#[derive(Debug, Clone)]
pub struct SymmetricRow {
    /// Algorithm name as printed.
    pub name: &'static str,
    /// Baseline cycles/byte (original software, Table 1 column 1).
    pub base_cpb: f64,
    /// Optimized-platform cycles/byte (column 2).
    pub opt_cpb: f64,
}

impl SymmetricRow {
    /// The speedup factor (column 3).
    pub fn speedup(&self) -> f64 {
        self.base_cpb / self.opt_cpb
    }
}

/// One RSA row of Table 1 (cycles per operation).
#[derive(Debug, Clone)]
pub struct RsaRow {
    /// Operation name as printed.
    pub name: &'static str,
    /// Baseline cycles.
    pub base_cycles: f64,
    /// Optimized cycles.
    pub opt_cycles: f64,
}

impl RsaRow {
    /// The speedup factor.
    pub fn speedup(&self) -> f64 {
        self.base_cycles / self.opt_cycles
    }
}

/// Measures the DES row over `blocks` blocks.
pub fn measure_des(config: &CpuConfig, blocks: usize) -> SymmetricRow {
    let key = *b"\x13\x34\x57\x79\x9B\xBC\xDF\xF1";
    let mut base = SimDes::new(config.clone(), Variant::Base, key);
    let mut fast = SimDes::new(config.clone(), Variant::Accelerated, key);
    SymmetricRow {
        name: "DES enc./dec.",
        base_cpb: base.cycles_per_byte(blocks),
        opt_cpb: fast.cycles_per_byte(blocks),
    }
}

/// Measures the 3DES row: three chained DES passes (EDE) per block.
pub fn measure_tdes(config: &CpuConfig, blocks: usize) -> SymmetricRow {
    let keys = [
        *b"\x01\x23\x45\x67\x89\xAB\xCD\xEF",
        *b"\x23\x45\x67\x89\xAB\xCD\xEF\x01",
        *b"\x45\x67\x89\xAB\xCD\xEF\x01\x23",
    ];
    let run = |variant: Variant| -> f64 {
        let mut passes: Vec<SimDes> = keys
            .iter()
            .map(|k| SimDes::new(config.clone(), variant, *k))
            .collect();
        let mut x = 0x0123_4567_89ab_cdefu64;
        // Warm all three key schedules' cache footprints.
        for (i, p) in passes.iter_mut().enumerate() {
            let (out, _) = p.crypt_block(x, i == 1);
            x = out;
        }
        let mut total = 0u64;
        for _ in 0..blocks - 1 {
            for (i, p) in passes.iter_mut().enumerate() {
                let (out, cycles) = p.crypt_block(x, i == 1);
                x = out;
                total += cycles;
            }
        }
        total as f64 / ((blocks - 1) as f64 * 8.0)
    };
    SymmetricRow {
        name: "3DES enc./dec.",
        base_cpb: run(Variant::Base),
        opt_cpb: run(Variant::Accelerated),
    }
}

/// Measures the AES-128 row.
pub fn measure_aes(config: &CpuConfig, blocks: usize) -> SymmetricRow {
    let key: [u8; 16] = *b"paper-aes-key128";
    let mut base = SimAes::new(config.clone(), Variant::Base, &key);
    let mut fast = SimAes::new(config.clone(), Variant::Accelerated, &key);
    SymmetricRow {
        name: "AES enc./dec.",
        base_cpb: base.cycles_per_byte(blocks),
        opt_cpb: fast.cycles_per_byte(blocks),
    }
}

/// Measures the RSA rows by full ISS co-simulation: baseline =
/// schoolbook multiply/divide, binary scanning, no CRT, on the base
/// kernels; optimized = the explored configuration (Montgomery, 5-bit
/// windows, Garner CRT, cached contexts) on the accelerated kernels.
///
/// Returns `(encrypt_row, decrypt_row)`. `bits` is the modulus size —
/// use small sizes in tests (co-simulation executes every limb
/// operation cycle-accurately).
///
/// # Errors
///
/// Returns [`RsaError`] if a co-simulated operation fails (a
/// platform defect, not a data-dependent condition).
pub fn measure_rsa(config: &CpuConfig, bits: usize) -> Result<(RsaRow, RsaRow), RsaError> {
    let mut rng = StdRng::seed_from_u64(0x45A);
    let kp = KeyPair::generate(bits, &mut rng);
    let msg = Natural::random_below(&mut rng, &kp.public.n);

    let run = |variant: KernelVariant, cfg: &ModExpConfig| -> Result<(f64, f64), RsaError> {
        let mut iss = IssMpn::with_variant(config.clone(), variant);
        iss.set_verify(false);
        let mut cache = ExpCache::new();
        // Prime the cache (CacheMode::None configs ignore it), then
        // measure one encrypt and one decrypt.
        let ct = kp.public.encrypt_raw(&mut iss, &msg, cfg, &mut cache)?;
        MpnOps::<u32>::reset(&mut iss);
        let ct2 = kp.public.encrypt_raw(&mut iss, &msg, cfg, &mut cache)?;
        assert_eq!(ct, ct2);
        let enc = MpnOps::<u32>::cycles(&iss);

        let pt = kp.private.decrypt_raw(&mut iss, &ct, cfg, &mut cache)?;
        assert_eq!(pt, msg, "RSA roundtrip on the simulator");
        MpnOps::<u32>::reset(&mut iss);
        kp.private.decrypt_raw(&mut iss, &ct, cfg, &mut cache)?;
        let dec = MpnOps::<u32>::cycles(&iss);
        Ok((enc, dec))
    };

    let (enc_base, dec_base) = run(KernelVariant::Base, &ModExpConfig::baseline())?;
    let (enc_opt, dec_opt) = run(
        KernelVariant::Accelerated {
            add_lanes: 16,
            mac_lanes: 4,
        },
        &ModExpConfig::optimized(),
    )?;
    Ok((
        RsaRow {
            name: "RSA enc.",
            base_cycles: enc_base,
            opt_cycles: enc_opt,
        },
        RsaRow {
            name: "RSA dec.",
            base_cycles: dec_base,
            opt_cycles: dec_opt,
        },
    ))
}

/// Serves one symmetric row (`[base_cpb, opt_cpb]`) from the
/// kernel-cycle cache, measuring on a miss. The key embeds the core
/// fingerprint, the row's unit name, and the block count.
fn sym_row_cached(
    config: &CpuConfig,
    unit: &str,
    blocks: usize,
    cache: Option<&KCache>,
    measure: impl FnOnce() -> SymmetricRow,
    name: &'static str,
) -> SymmetricRow {
    let Some(kc) = cache else {
        return measure();
    };
    let key = kcache::key(config.fingerprint(), "sim", unit, blocks as u64, 0);
    let v = kc.get_or_compute(&key, 2, || {
        let row = measure();
        vec![row.base_cpb, row.opt_cpb]
    });
    SymmetricRow {
        name,
        base_cpb: v[0],
        opt_cpb: v[1],
    }
}

/// [`measure_des`] through the kernel-cycle cache (unit `table1:des`).
pub fn measure_des_cached(
    config: &CpuConfig,
    blocks: usize,
    cache: Option<&KCache>,
) -> SymmetricRow {
    sym_row_cached(
        config,
        "table1:des",
        blocks,
        cache,
        || measure_des(config, blocks),
        "DES enc./dec.",
    )
}

/// [`measure_tdes`] through the kernel-cycle cache (unit `table1:tdes`).
pub fn measure_tdes_cached(
    config: &CpuConfig,
    blocks: usize,
    cache: Option<&KCache>,
) -> SymmetricRow {
    sym_row_cached(
        config,
        "table1:tdes",
        blocks,
        cache,
        || measure_tdes(config, blocks),
        "3DES enc./dec.",
    )
}

/// [`measure_aes`] through the kernel-cycle cache (unit `table1:aes`).
pub fn measure_aes_cached(
    config: &CpuConfig,
    blocks: usize,
    cache: Option<&KCache>,
) -> SymmetricRow {
    sym_row_cached(
        config,
        "table1:aes",
        blocks,
        cache,
        || measure_aes(config, blocks),
        "AES enc./dec.",
    )
}

/// [`measure_rsa`] through the kernel-cycle cache: both platforms'
/// encrypt/decrypt co-simulations are one measurement unit
/// (`table1:rsa`, values `[enc_base, dec_base, enc_opt, dec_opt]`).
///
/// # Errors
///
/// Returns [`RsaError`] under the same conditions as
/// [`measure_rsa`] (never on a cache hit).
pub fn measure_rsa_cached(
    config: &CpuConfig,
    bits: usize,
    cache: Option<&KCache>,
) -> Result<(RsaRow, RsaRow), RsaError> {
    let Some(kc) = cache else {
        return measure_rsa(config, bits);
    };
    let key = kcache::key(
        config.fingerprint(),
        "iss",
        "table1:rsa",
        bits as u64,
        0x45A,
    );
    // get + insert (not get_or_compute): only successful measurements
    // are cached.
    let v = match kc.get(&key).filter(|v| v.len() == 4) {
        Some(v) => v,
        None => {
            let (enc, dec) = measure_rsa(config, bits)?;
            let v = vec![
                enc.base_cycles,
                dec.base_cycles,
                enc.opt_cycles,
                dec.opt_cycles,
            ];
            kc.insert(&key, v.clone());
            v
        }
    };
    Ok((
        RsaRow {
            name: "RSA enc.",
            base_cycles: v[0],
            opt_cycles: v[2],
        },
        RsaRow {
            name: "RSA dec.",
            base_cycles: v[1],
            opt_cycles: v[3],
        },
    ))
}

/// The full Table 1: symmetric rows plus RSA rows, with a text
/// renderer.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// DES / 3DES / AES rows.
    pub symmetric: Vec<SymmetricRow>,
    /// RSA encrypt/decrypt rows.
    pub rsa: Vec<RsaRow>,
    /// RSA modulus size measured.
    pub rsa_bits: usize,
}

impl Table1 {
    /// Measures everything. `blocks` controls symmetric averaging;
    /// `rsa_bits` the modulus size. Runs the four measurement units on
    /// an environment-sized [`Pool`] without a cache; see
    /// [`Table1::measure_pooled`].
    pub fn measure(config: &CpuConfig, blocks: usize, rsa_bits: usize) -> Self {
        Self::measure_pooled(config, blocks, rsa_bits, &Pool::from_env(), None)
    }

    /// As [`Table1::measure`] on an explicit worker pool: the four
    /// independent measurement units (DES, 3DES, AES, RSA) run in
    /// parallel, each optionally served from the kernel-cycle cache.
    /// The table is identical for any thread count and cache state.
    pub fn measure_pooled(
        config: &CpuConfig,
        blocks: usize,
        rsa_bits: usize,
        pool: &Pool,
        cache: Option<&KCache>,
    ) -> Self {
        let units = [0usize, 1, 2, 3];
        let rows = pool.par_map(&units, |_, &u| match u {
            0 => {
                let r = measure_des_cached(config, blocks, cache);
                vec![r.base_cpb, r.opt_cpb]
            }
            1 => {
                let r = measure_tdes_cached(config, blocks, cache);
                vec![r.base_cpb, r.opt_cpb]
            }
            2 => {
                let r = measure_aes_cached(config, blocks, cache);
                vec![r.base_cpb, r.opt_cpb]
            }
            _ => {
                let (enc, dec) = measure_rsa_cached(config, rsa_bits, cache)
                    .expect("RSA co-simulation is infallible on the bundled platforms");
                vec![
                    enc.base_cycles,
                    dec.base_cycles,
                    enc.opt_cycles,
                    dec.opt_cycles,
                ]
            }
        });
        let symmetric = vec![
            SymmetricRow {
                name: "DES enc./dec.",
                base_cpb: rows[0][0],
                opt_cpb: rows[0][1],
            },
            SymmetricRow {
                name: "3DES enc./dec.",
                base_cpb: rows[1][0],
                opt_cpb: rows[1][1],
            },
            SymmetricRow {
                name: "AES enc./dec.",
                base_cpb: rows[2][0],
                opt_cpb: rows[2][1],
            },
        ];
        let rsa = vec![
            RsaRow {
                name: "RSA enc.",
                base_cycles: rows[3][0],
                opt_cycles: rows[3][2],
            },
            RsaRow {
                name: "RSA dec.",
                base_cycles: rows[3][1],
                opt_cycles: rows[3][3],
            },
        ];
        Table1 {
            symmetric,
            rsa,
            rsa_bits,
        }
    }

    /// Serializes the table for a structured run report: one object per
    /// row with base/optimized costs and the speedup factor.
    pub fn to_json(&self) -> xobs::Json {
        let mut symmetric = Vec::new();
        for row in &self.symmetric {
            symmetric.push(
                xobs::Json::obj()
                    .set("name", row.name)
                    .set("base_cycles_per_byte", row.base_cpb)
                    .set("opt_cycles_per_byte", row.opt_cpb)
                    .set("speedup", row.speedup()),
            );
        }
        let mut rsa = Vec::new();
        for row in &self.rsa {
            rsa.push(
                xobs::Json::obj()
                    .set("name", row.name)
                    .set("base_cycles", row.base_cycles)
                    .set("opt_cycles", row.opt_cycles)
                    .set("speedup", row.speedup()),
            );
        }
        xobs::Json::obj()
            .set("rsa_bits", self.rsa_bits as u64)
            .set("symmetric", symmetric)
            .set("rsa", rsa)
    }

    /// Renders the table in the paper's format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("algorithm        | original (cyc/B) | final (cyc/B) | speedup\n");
        out.push_str("-----------------+------------------+---------------+--------\n");
        for row in &self.symmetric {
            out.push_str(&format!(
                "{:<16} | {:>16.1} | {:>13.1} | {:>6.1}X\n",
                row.name,
                row.base_cpb,
                row.opt_cpb,
                row.speedup()
            ));
        }
        out.push_str(&format!("-- RSA-{} (cycles/op) --\n", self.rsa_bits));
        for row in &self.rsa {
            out.push_str(&format!(
                "{:<16} | {:>16.3e} | {:>13.3e} | {:>6.1}X\n",
                row.name,
                row.base_cycles,
                row.opt_cycles,
                row.speedup()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_row_shape_matches_paper() {
        let row = measure_des(&CpuConfig::default(), 5);
        // Paper: 476.8 -> 15.4 (31.0X). Our shape: hundreds of c/B base,
        // tens optimized, speedup in the tens.
        assert!(row.base_cpb > 150.0, "base {:.1}", row.base_cpb);
        assert!(row.opt_cpb < 60.0, "opt {:.1}", row.opt_cpb);
        assert!(
            row.speedup() > 8.0 && row.speedup() < 80.0,
            "speedup {:.1}",
            row.speedup()
        );
    }

    #[test]
    fn tdes_costs_about_three_des() {
        let des = measure_des(&CpuConfig::default(), 4);
        let tdes = measure_tdes(&CpuConfig::default(), 4);
        let ratio = tdes.base_cpb / des.base_cpb;
        assert!(ratio > 2.5 && ratio < 3.5, "3DES/DES ratio {ratio:.2}");
        assert!(tdes.speedup() > 8.0);
    }

    #[test]
    fn aes_row_shape_matches_paper() {
        let row = measure_aes(&CpuConfig::default(), 4);
        assert!(row.base_cpb > 100.0, "base {:.1}", row.base_cpb);
        assert!(
            row.speedup() > 5.0 && row.speedup() < 60.0,
            "speedup {:.1}",
            row.speedup()
        );
    }

    #[test]
    fn rsa_rows_decrypt_gains_more_than_encrypt() {
        // Small modulus keeps co-simulation fast in tests.
        let (enc, dec) = measure_rsa(&CpuConfig::default(), 128).unwrap();
        assert!(enc.speedup() > 2.0, "enc speedup {:.1}", enc.speedup());
        assert!(dec.speedup() > 5.0, "dec speedup {:.1}", dec.speedup());
        assert!(
            dec.speedup() > enc.speedup(),
            "CRT + windowing favor decryption: dec {:.1} vs enc {:.1}",
            dec.speedup(),
            enc.speedup()
        );
    }

    #[test]
    fn pooled_table_matches_serial_and_warms_to_full_hits() {
        let cfg = CpuConfig::default();
        let kc = KCache::new();
        let a = Table1::measure_pooled(&cfg, 3, 64, &Pool::new(1), None);
        let b = Table1::measure_pooled(&cfg, 3, 64, &Pool::new(4), Some(&kc));
        let c = Table1::measure_pooled(&cfg, 3, 64, &Pool::new(4), Some(&kc));
        assert_eq!(kc.misses(), 4, "four cold units");
        assert_eq!(kc.hits(), 4, "warm re-run serves every unit");
        assert_eq!(kc.hit_rate(), 0.5);
        for (x, y, z) in a
            .symmetric
            .iter()
            .zip(&b.symmetric)
            .zip(&c.symmetric)
            .map(|((x, y), z)| (x, y, z))
        {
            assert_eq!(x.base_cpb, y.base_cpb, "{} threads", x.name);
            assert_eq!(x.opt_cpb, z.opt_cpb, "{} warm", x.name);
        }
        for (x, y) in a.rsa.iter().zip(&c.rsa) {
            assert_eq!(x.base_cycles, y.base_cycles, "{}", x.name);
            assert_eq!(x.opt_cycles, y.opt_cycles, "{}", x.name);
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let t = Table1 {
            symmetric: vec![SymmetricRow {
                name: "DES enc./dec.",
                base_cpb: 476.8,
                opt_cpb: 15.4,
            }],
            rsa: vec![RsaRow {
                name: "RSA dec.",
                base_cycles: 1.2658e10,
                opt_cycles: 1.9078e8,
            }],
            rsa_bits: 1024,
        };
        let text = t.render();
        assert!(text.contains("DES enc./dec."));
        assert!(text.contains("31.0X"));
        assert!(text.contains("66.3X") || text.contains("66.4X"));
    }
}
