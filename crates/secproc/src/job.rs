//! Serializable methodology jobs — the platform's single public entry
//! point for running the flow.
//!
//! A [`JobSpec`] names *what* to run (job kind, core configuration,
//! accelerator variant, kernel set, problem size, seed, fidelity and an
//! optional fault campaign) with no references to live resources, so it
//! can cross a process boundary as one line of JSON. A [`JobEnv`] names
//! *where* to run it (worker pool, kernel-cycle cache, optional
//! metrics/span sinks and a cancellation token). [`JobSpec::run`]
//! combines the two and returns a finished structured
//! [`RunReport`](xobs::RunReport).
//!
//! Both front ends drive the same entry point: the `bench` command-line
//! binaries parse their arguments into a `JobSpec` and call `run`
//! directly, and the `xserve` daemon deserializes the same spec off its
//! socket and schedules `run` onto its shared pool. Because `run`
//! assembles the *entire* report (results, degradations, metrics,
//! spans, and the schema-8 `job` stanza), a daemon-run job's normalized
//! report is byte-identical to the CLI's for every deterministic field
//! — there is no second code path to drift.
//!
//! Specs serialize through [`JobSpec::to_json`] in a fixed canonical
//! key order; [`JobSpec::digest`] checksums that canonical form, giving
//! clients and the daemon a stable identity for deduplication and for
//! the report's `job.digest` field. Numeric fields ride JSON numbers
//! (IEEE doubles), so seeds are exact up to 2^53.

use std::time::Instant;

use kreg::{KernelError, KernelId, KernelVariant};
use macromodel::charact::CharactOptions;
use pubkey::space::ModExpConfig;
use xfault::{FaultPolicy, PlanSpec};
use xobs::span::Spans;
use xobs::{Json, Registry, RunReport};
use xpar::{CancelToken, Pool};
use xr32::config::CpuConfig;
use xr32::xcore::CoreSpec;
use xr32::Fidelity;

use crate::error::{codes, Error};
use crate::flow::{self, FlowBuilder, FlowCtx};
use crate::issops::IssMpn;
use crate::kcache::{self, KCache};

/// Which methodology pipeline a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Phase 1 only: fit kernel macro-models and report their quality.
    Characterize,
    /// The full §4.3 pipeline: characterize, explore the 450-candidate
    /// lattice, co-simulate a sample, sweep the (core × accelerator)
    /// cross-product. Reports under the name `sec43_exploration`.
    Explore,
    /// Phase 3: formulate the area-delay curves.
    Curves,
    /// Ad-hoc resilient kernel-cycle measurements over a kernel set.
    Measure,
    /// [`JobKind::Measure`] under a mandatory fault-injection campaign,
    /// reporting the quarantine outcome.
    FaultCampaign,
}

impl JobKind {
    /// The wire name of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobKind::Characterize => "characterize",
            JobKind::Explore => "explore",
            JobKind::Curves => "curves",
            JobKind::Measure => "measure",
            JobKind::FaultCampaign => "fault_campaign",
        }
    }

    /// Parses a wire name back to the kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for an unknown name.
    pub fn parse(name: &str) -> Result<JobKind, Error> {
        match name {
            "characterize" => Ok(JobKind::Characterize),
            "explore" => Ok(JobKind::Explore),
            "curves" => Ok(JobKind::Curves),
            "measure" => Ok(JobKind::Measure),
            "fault_campaign" => Ok(JobKind::FaultCampaign),
            other => Err(Error::JobSpec {
                detail: format!("unknown job kind {other:?}"),
            }),
        }
    }
}

/// A complete, serializable description of one methodology job.
///
/// Defaults (from [`JobSpec::new`]) reproduce the bench harnesses'
/// conventions: in-order core, base variant, 512-bit exponent, derived
/// limb count, six co-simulation samples, the standard characterization
/// options, seed 8, glue cost 4.0, cycle-accurate fidelity, no faults.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which pipeline to run.
    pub kind: JobKind,
    /// Core-configuration id (`"io"`, `"ooo-…"`; see
    /// [`CoreSpec::id`]).
    pub core: String,
    /// Accelerator-variant tag (`"base"`, `"accel-a4m2"`, …).
    pub variant: String,
    /// Kernel set for measurement kinds; empty means the whole mpn
    /// registry.
    pub kernels: Vec<KernelId>,
    /// Modular-exponentiation operand width in bits (exploration).
    pub bits: usize,
    /// Limb count for characterization/curves/measurement; `0` derives
    /// `(bits / 32).max(8)` like the bench binaries.
    pub limbs: usize,
    /// Candidates re-evaluated by full ISS co-simulation.
    pub cosim_samples: usize,
    /// Characterization stimuli per measurement unit.
    pub train_samples: usize,
    /// Characterization held-out validation points.
    pub validation_points: usize,
    /// Stimulus seed for measurement kinds.
    pub seed: u64,
    /// Software glue cost per modeled call (cycles).
    pub glue_cost: f64,
    /// Simulation fidelity (measurement jobs are always cycle-accurate;
    /// `Fast` conflicts with fault injection).
    pub fidelity: Fidelity,
    /// Optional fault-injection campaign.
    pub faults: Option<PlanSpec>,
}

impl JobSpec {
    /// A job of `kind` with the bench harnesses' default knobs.
    pub fn new(kind: JobKind) -> Self {
        JobSpec {
            kind,
            core: CoreSpec::InOrder.id(),
            variant: KernelVariant::Base.tag(),
            kernels: Vec::new(),
            bits: 512,
            limbs: 0,
            cosim_samples: 6,
            train_samples: 24,
            validation_points: 8,
            seed: 8,
            glue_cost: 4.0,
            fidelity: Fidelity::CycleAccurate,
            faults: None,
        }
    }

    /// The §4.3 exploration job the `sec43_exploration` binary runs.
    pub fn explore(bits: usize, cosim_samples: usize) -> Self {
        JobSpec {
            bits,
            cosim_samples,
            ..JobSpec::new(JobKind::Explore)
        }
    }

    /// The effective limb count: the explicit `limbs`, or the bench
    /// binaries' `(bits / 32).max(8)` rule when left at `0`.
    pub fn effective_limbs(&self) -> usize {
        if self.limbs != 0 {
            self.limbs
        } else {
            (self.bits / 32).max(8)
        }
    }

    /// The characterization options this spec encodes.
    pub fn charact_options(&self) -> CharactOptions {
        CharactOptions {
            train_samples: self.train_samples,
            validation_points: self.validation_points,
        }
    }

    /// The fault policy this spec encodes: the default resilience
    /// policy, with the campaign attached when one is specified.
    pub fn policy(&self) -> FaultPolicy {
        match self.faults {
            Some(plan) => FaultPolicy::with_plan(plan),
            None => FaultPolicy::default(),
        }
    }

    /// Builds the [`CpuConfig`] this spec's core id names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for an unparseable core id.
    pub fn config(&self) -> Result<CpuConfig, Error> {
        let core = CoreSpec::parse(&self.core).ok_or_else(|| Error::JobSpec {
            detail: format!("unknown core id {:?}", self.core),
        })?;
        Ok(CpuConfig {
            core,
            ..CpuConfig::default()
        })
    }

    /// Resolves this spec's accelerator-variant tag.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for an unparseable tag.
    pub fn kernel_variant(&self) -> Result<KernelVariant, Error> {
        KernelVariant::parse_tag(&self.variant).ok_or_else(|| Error::JobSpec {
            detail: format!("unknown variant tag {:?}", self.variant),
        })
    }

    /// Builds the flow context this spec describes over live resources
    /// — the one construction path both front ends share.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for unresolvable ids and
    /// [`Error::Conflict`] when the builder rejects the combination
    /// (e.g. `Fast` fidelity under fault injection).
    pub fn into_ctx<'a>(
        &self,
        config: &'a CpuConfig,
        env: &JobEnv<'a>,
    ) -> Result<FlowCtx<'a>, Error> {
        let mut b = FlowBuilder::new(config)
            .variant(self.kernel_variant()?)
            .pool(env.pool)
            .fault_policy(self.policy())
            .fidelity(self.fidelity);
        if let Some(kc) = env.cache {
            b = b.cache(kc);
        }
        if let Some(reg) = env.metrics {
            b = b.metrics(reg);
        }
        if let Some(sp) = env.spans {
            b = b.spans(sp);
        }
        b.build()
    }

    /// The canonical JSON form of this spec (fixed key order; the
    /// [`digest`](JobSpec::digest) input and the wire format).
    pub fn to_json(&self) -> Json {
        let mut spec = Json::obj()
            .set("kind", self.kind.as_str())
            .set("core", self.core.as_str())
            .set("variant", self.variant.as_str())
            .set(
                "kernels",
                Json::Arr(self.kernels.iter().map(|k| Json::from(k.name())).collect()),
            )
            .set("bits", self.bits as u64)
            .set("limbs", self.limbs as u64)
            .set("cosim_samples", self.cosim_samples as u64)
            .set("train_samples", self.train_samples as u64)
            .set("validation_points", self.validation_points as u64)
            // Decimal string: seeds use the full u64 range, which JSON
            // numbers (f64 here and in most peers) cannot carry exactly.
            .set("seed", self.seed.to_string())
            .set("glue_cost", self.glue_cost)
            .set(
                "fidelity",
                match self.fidelity {
                    Fidelity::CycleAccurate => "accurate",
                    Fidelity::Fast => "fast",
                },
            );
        if let Some(plan) = &self.faults {
            spec = spec.set("faults", plan.to_string());
        }
        spec
    }

    /// Parses a spec from its JSON object form. Missing fields take the
    /// [`JobSpec::new`] defaults, so wire requests can be terse
    /// (`{"kind":"explore","bits":128}`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for a non-object, an unknown kind,
    /// unresolvable kernel/core/variant names or a malformed fault
    /// spec.
    pub fn from_json(v: &Json) -> Result<JobSpec, Error> {
        let bad = |detail: String| Error::JobSpec { detail };
        let Json::Obj(_) = v else {
            return Err(bad("spec must be a JSON object".into()));
        };
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some(name) => JobKind::parse(name)?,
            None => return Err(bad("missing job kind".into())),
        };
        let mut spec = JobSpec::new(kind);
        if let Some(core) = v.get("core").and_then(Json::as_str) {
            spec.core = core.to_owned();
        }
        if let Some(tag) = v.get("variant").and_then(Json::as_str) {
            spec.variant = tag.to_owned();
        }
        if let Some(Json::Arr(names)) = v.get("kernels") {
            spec.kernels = names
                .iter()
                .map(|n| {
                    let name = n
                        .as_str()
                        .ok_or_else(|| bad("kernel names must be strings".into()))?;
                    KernelId::parse(name).map_err(Error::from)
                })
                .collect::<Result<_, _>>()?;
        }
        let usize_field = |name: &str, into: &mut usize| {
            if let Some(x) = v.get(name).and_then(Json::as_f64) {
                *into = x as usize;
            }
        };
        usize_field("bits", &mut spec.bits);
        usize_field("limbs", &mut spec.limbs);
        usize_field("cosim_samples", &mut spec.cosim_samples);
        usize_field("train_samples", &mut spec.train_samples);
        usize_field("validation_points", &mut spec.validation_points);
        match v.get("seed") {
            None => {}
            Some(Json::Str(text)) => {
                spec.seed = text
                    .parse()
                    .map_err(|_| bad(format!("seed {text:?} is not a u64")))?;
            }
            // Numeric seeds are accepted for terse hand-written specs
            // (exact only below 2^53).
            Some(Json::Num(x)) => spec.seed = *x as u64,
            Some(_) => return Err(bad("seed must be a u64 string or number".into())),
        }
        if let Some(x) = v.get("glue_cost").and_then(Json::as_f64) {
            spec.glue_cost = x;
        }
        match v.get("fidelity").and_then(Json::as_str) {
            None | Some("accurate") => {}
            Some("fast") => spec.fidelity = Fidelity::Fast,
            Some(other) => return Err(bad(format!("unknown fidelity {other:?}"))),
        }
        if let Some(f) = v.get("faults") {
            if !matches!(f, Json::Null) {
                let text = f
                    .as_str()
                    .ok_or_else(|| bad("faults must be a plan-spec string".into()))?;
                spec.faults = Some(PlanSpec::parse(text).map_err(|e| bad(format!("faults: {e}")))?);
            }
        }
        // Validate the resolvable ids eagerly so a bad spec fails at
        // parse time, not mid-run.
        spec.config()?;
        spec.kernel_variant()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`] for malformed JSON or a malformed
    /// spec (see [`JobSpec::from_json`]).
    pub fn parse(text: &str) -> Result<JobSpec, Error> {
        let v = xobs::json::parse(text).map_err(|e| Error::JobSpec {
            detail: format!("malformed JSON: {e}"),
        })?;
        JobSpec::from_json(&v)
    }

    /// A stable identity checksum over the canonical JSON form.
    pub fn digest(&self) -> u64 {
        xpar::memo::checksum(&self.to_json().to_string_compact(), &[])
    }

    /// The schema-8 `job` stanza stamped into every report this spec
    /// produces: kind, digest, and the canonical spec itself — only
    /// spec-derived fields, so CLI and daemon runs emit identical
    /// bytes.
    pub fn job_json(&self) -> Json {
        Json::obj()
            .set("kind", self.kind.as_str())
            .set("digest", format!("{:016x}", self.digest()))
            .set("spec", self.to_json())
    }

    /// Runs the job to completion and returns the finished report,
    /// with results, degradations, metrics, span tree, the wall-clock
    /// fields and the `job` stanza all stamped — callers only emit or
    /// transmit it.
    ///
    /// When `env` carries no metrics registry or span sink, fresh local
    /// ones are used, so the report shape does not depend on the
    /// caller. Cancellation is polled at phase boundaries (and per
    /// co-simulation sample / per kernel); a fired token surfaces as
    /// [`Error::Protocol`] with code
    /// [`codes::PROTO_CANCELLED`](crate::error::codes::PROTO_CANCELLED).
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobSpec`]/[`Error::Conflict`] for an
    /// unbuildable spec, the underlying typed error for genuine
    /// (fault-free) failures, and the cancellation protocol error
    /// above.
    pub fn run(&self, env: &JobEnv<'_>) -> Result<RunReport, Error> {
        let t0 = Instant::now();
        let local_spans;
        let spans = match env.spans {
            Some(sp) => sp,
            None => {
                local_spans = Spans::new();
                &local_spans
            }
        };
        let local_metrics;
        let metrics = match env.metrics {
            Some(reg) => reg,
            None => {
                local_metrics = Registry::new();
                &local_metrics
            }
        };
        let env = JobEnv {
            metrics: Some(metrics),
            spans: Some(spans),
            ..*env
        };
        let report = match self.kind {
            JobKind::Characterize => self.run_characterize(&env, spans)?,
            JobKind::Explore => self.run_explore(&env, spans, metrics)?,
            JobKind::Curves => self.run_curves(&env, spans)?,
            JobKind::Measure | JobKind::FaultCampaign => self.run_measure(&env, spans)?,
        };
        record_env_metrics(&env, metrics);
        let report = report
            .with_job(self.job_json())
            .with_metrics(metrics.snapshot());
        let report = if spans.is_empty() {
            report
        } else {
            report.with_spans(spans.to_json_roots())
        };
        Ok(report
            .with_wall_ms(t0.elapsed().as_secs_f64() * 1e3)
            .with_threads(env.pool.threads())
            .with_memo_hit_rate(env.cache.map_or(0.0, |kc| kc.hit_rate())))
    }

    /// Phase 1 only: fit the kernel macro-models.
    fn run_characterize(&self, env: &JobEnv<'_>, spans: &Spans) -> Result<RunReport, Error> {
        let config = self.config()?;
        let ctx = self.into_ctx(&config, env)?;
        let flow_span = spans.enter("flow");
        check_cancel(env)?;
        let limbs = self.effective_limbs();
        let models = ctx.characterize(limbs, &self.charact_options());
        flow_span.end();
        Ok(RunReport::new("job_characterize")
            .with_fingerprint(config.fingerprint())
            .result("max_limbs", limbs as u64)
            .result("ops_characterized", models.quality.len() as u64)
            .result("mean_abs_error_pct", models.mean_abs_error_pct())
            .with_core_configs([core_config_json(&config)])
            .with_degradations(ctx.degradations_json()))
    }

    /// The full §4.3 pipeline, field-for-field what the
    /// `sec43_exploration` binary historically computed (same report
    /// name, so envelope diffs line up across the reimplementation).
    fn run_explore(
        &self,
        env: &JobEnv<'_>,
        spans: &Spans,
        metrics: &Registry,
    ) -> Result<RunReport, Error> {
        let bits = self.bits;
        let config = self.config()?;
        let ctx = self.into_ctx(&config, env)?;
        let flow_span = spans.enter("flow");
        check_cancel(env)?;
        let models = ctx.characterize(self.effective_limbs(), &self.charact_options());
        check_cancel(env)?;
        let result = ctx
            .explore(&models, bits, self.glue_cost)
            .map_err(Error::from)?;
        let baseline = result
            .ranked
            .iter()
            .find(|c| c.config == ModExpConfig::baseline())
            .ok_or_else(|| Error::flow("baseline missing from the lattice"))?;

        let step = result.ranked.len() / self.cosim_samples.max(1);
        let mut errors = Vec::new();
        let mut speedups = Vec::new();
        let mut samples = Vec::new();
        for i in 0..self.cosim_samples {
            check_cancel(env)?;
            let cand = &result.ranked[i * step];
            let t = Instant::now();
            let cosim = ctx
                .cosimulate(&models, &cand.config, bits, self.glue_cost)
                .map_err(Error::from)?;
            let cosim_time = t.elapsed();
            let t = Instant::now();
            // Re-run the macro-model estimate to time it fairly.
            let _ = flow::explore_single(&models, &cand.config, bits, self.glue_cost);
            let est_time = t.elapsed().max(std::time::Duration::from_nanos(1));
            let err = ((cand.cycles - cosim) / cosim).abs() * 100.0;
            let speedup = cosim_time.as_secs_f64() / est_time.as_secs_f64();
            metrics.histogram("flow.model_error_pct").observe(err);
            samples.push(
                Json::obj()
                    .set("config", cand.config.to_string())
                    .set("estimated_cycles", cand.cycles)
                    .set("cosim_cycles", cosim)
                    .set("error_pct", err)
                    .set("estimation_speedup", speedup),
            );
            errors.push(err);
            speedups.push(speedup);
        }
        let mae = errors.iter().sum::<f64>() / errors.len() as f64;
        let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;

        check_cancel(env)?;
        let ooo_config = CpuConfig::ooo();
        let ctx_ooo = self.into_ctx(&ooo_config, env)?;
        let xprod_n = self.effective_limbs();
        let mut points = ctx.cross_product_axis(xprod_n);
        points.extend(ctx_ooo.cross_product_axis(xprod_n));
        let front_size = flow::mark_pareto_front(&mut points);
        flow_span.end();

        Ok(RunReport::new("sec43_exploration")
            .with_fingerprint(config.fingerprint())
            .result("bits", bits as u64)
            .result("candidates_evaluated", result.evaluated as u64)
            .result("best_config", result.best().config.to_string())
            .result("best_cycles", result.best().cycles)
            .result("baseline_cycles", baseline.cycles)
            .result(
                "algorithmic_speedup",
                baseline.cycles / result.best().cycles,
            )
            .result("cosim_samples", samples)
            .result("mean_abs_error_pct", mae)
            .result("mean_estimation_speedup", mean_speedup)
            .result(
                "cross_product",
                Json::obj()
                    .set("n_limbs", xprod_n as u64)
                    .set(
                        "points",
                        Json::Arr(points.iter().map(|p| p.to_json()).collect()),
                    )
                    .set("pareto_front_size", front_size as u64),
            )
            .with_core_configs([core_config_json(&config), core_config_json(&ooo_config)])
            .with_degradations(ctx.degradations_json()))
    }

    /// Phase 3: formulate the area-delay curves.
    fn run_curves(&self, env: &JobEnv<'_>, spans: &Spans) -> Result<RunReport, Error> {
        let config = self.config()?;
        let ctx = self.into_ctx(&config, env)?;
        let flow_span = spans.enter("flow");
        check_cancel(env)?;
        let n = self.effective_limbs();
        let curves = ctx.curves(n);
        flow_span.end();
        let mut rendered = Json::obj();
        for (op, curve) in &curves {
            rendered = rendered.set(
                op.as_str(),
                Json::Arr(
                    curve
                        .points()
                        .iter()
                        .map(|p| Json::obj().set("area", p.area()).set("cycles", p.cycles))
                        .collect(),
                ),
            );
        }
        Ok(RunReport::new("job_curves")
            .with_fingerprint(config.fingerprint())
            .result("n_limbs", n as u64)
            .result("ops", curves.len() as u64)
            .result("curves", rendered)
            .with_core_configs([core_config_json(&config)])
            .with_degradations(ctx.degradations_json()))
    }

    /// Resilient ad-hoc kernel measurements; doubles as the fault
    /// campaign when a plan is attached.
    fn run_measure(&self, env: &JobEnv<'_>, spans: &Spans) -> Result<RunReport, Error> {
        if self.kind == JobKind::FaultCampaign && self.faults.is_none() {
            return Err(Error::JobSpec {
                detail: "fault_campaign requires a faults plan".into(),
            });
        }
        let config = self.config()?;
        let variant = self.kernel_variant()?;
        let ctx = self.into_ctx(&config, env)?;
        let flow_span = spans.enter("flow");
        let kernels: Vec<KernelId> = if self.kernels.is_empty() {
            kreg::id::MPN.to_vec()
        } else {
            self.kernels.clone()
        };
        let n = self.effective_limbs();
        let mut cycles = Json::obj();
        for kernel in &kernels {
            check_cancel(env)?;
            match ctx.measure_kernel_cycles(variant, *kernel, n, 7, self.seed) {
                Ok(c) => cycles = cycles.set(kernel.name(), c),
                // Quarantined kernels degrade to a null measurement (the
                // degradations list carries the detail); anything else
                // failing fault-free is a genuine defect.
                Err(KernelError::Quarantined { .. }) => {
                    cycles = cycles.set(kernel.name(), Json::Null);
                }
                Err(e) => return Err(e.into()),
            }
        }
        flow_span.end();
        let name = match self.kind {
            JobKind::FaultCampaign => "job_fault_campaign",
            _ => "job_measure",
        };
        let mut report = RunReport::new(name)
            .with_fingerprint(config.fingerprint())
            .result("n_limbs", n as u64)
            .result("seed", self.seed)
            .result("kernels", kernels.len() as u64)
            .result("cycles", cycles);
        if let Some(plan) = &self.faults {
            report = report.result("fault_plan", plan.to_string()).result(
                "quarantined",
                Json::Arr(ctx.quarantined().into_iter().map(Json::from).collect()),
            );
        }
        Ok(report
            .with_core_configs([core_config_json(&config)])
            .with_degradations(ctx.degradations_json()))
    }
}

/// The live resources a job runs against. Everything is borrowed: the
/// caller (a bench binary's harness or the daemon's scheduler) owns the
/// pool and cache and may share them across many jobs.
#[derive(Clone, Copy)]
pub struct JobEnv<'a> {
    /// The worker pool to schedule measurement units onto.
    pub pool: &'a Pool,
    /// The persistent kernel-cycle cache, if warm starts are wanted.
    pub cache: Option<&'a KCache>,
    /// Metrics sink; [`JobSpec::run`] supplies a fresh one when absent.
    pub metrics: Option<&'a Registry>,
    /// Span sink; [`JobSpec::run`] supplies a fresh one when absent.
    pub spans: Option<&'a Spans>,
    /// Cooperative cancellation, polled at phase boundaries.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a> JobEnv<'a> {
    /// An environment with just a pool (no cache, sinks or
    /// cancellation).
    pub fn new(pool: &'a Pool) -> Self {
        JobEnv {
            pool,
            cache: None,
            metrics: None,
            spans: None,
            cancel: None,
        }
    }
}

/// Surfaces a fired cancellation token as the typed protocol error.
fn check_cancel(env: &JobEnv<'_>) -> Result<(), Error> {
    match env.cancel {
        Some(token) if token.is_cancelled() => Err(Error::Protocol {
            code: codes::PROTO_CANCELLED,
            detail: "job cancelled".into(),
        }),
        _ => Ok(()),
    }
}

/// The schema-7 `core_configs` entry for one configuration.
fn core_config_json(config: &CpuConfig) -> Json {
    Json::obj()
        .set("id", config.core_id())
        .set("core_area", config.core.area_gates())
}

/// Publishes the environment's parallel-execution metrics exactly as
/// the bench harness does (`xpar.*` worker stats, `kcache.*` traffic).
fn record_env_metrics(env: &JobEnv<'_>, reg: &Registry) {
    reg.gauge("xpar.threads").set(env.pool.threads() as f64);
    reg.gauge("xpar.utilization").set(env.pool.utilization());
    let (hits, misses, hit_rate, entries) = match env.cache {
        Some(kc) => (kc.hits(), kc.misses(), kc.hit_rate(), kc.len()),
        None => (0, 0, 0.0, 0),
    };
    reg.counter("kcache.hits").add(hits);
    reg.counter("kcache.misses").add(misses);
    reg.gauge("kcache.hit_rate").set(hit_rate);
    reg.gauge("kcache.entries").set(entries as f64);
}

/// One cached, fault-free kernel-cycle measurement — the daemon's
/// query-path primitive. The first query for a `(config, variant,
/// kernel, n, seed)` point pays one ISS run; every later query is a
/// shard-locked cache hit. Keys live in the `query:` unit namespace so
/// they can never collide with the flow's own cache entries.
///
/// # Errors
///
/// Returns the kernel layer's typed error on measurement failure.
pub fn cached_kernel_cycles(
    config: &CpuConfig,
    variant: KernelVariant,
    kernel: KernelId,
    n: usize,
    seed: u64,
    cache: Option<&KCache>,
) -> Result<f64, Error> {
    let measure = || -> Result<f64, KernelError> {
        let mut iss = IssMpn::with_variant(config.clone(), variant);
        iss.set_verify(false);
        let _ = iss.measure32(kernel, n, 7); // warm
        iss.measure32(kernel, n, seed)
    };
    match cache {
        Some(kc) => {
            let key = kcache::key(
                config.fingerprint(),
                &variant.tag(),
                &format!("query:{}@{}", kernel.name(), config.core_id()),
                n as u64,
                seed,
            );
            if let Some(values) = kc.get(&key) {
                if let [cycles] = values[..] {
                    return Ok(cycles);
                }
            }
            let cycles = measure()?;
            kc.insert(&key, vec![cycles]);
            Ok(cycles)
        }
        None => measure().map_err(Error::from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_canonical_json() {
        let mut spec = JobSpec::explore(128, 2);
        spec.kernels = vec![kreg::id::ADD_N, kreg::id::SHA1];
        spec.faults = Some(PlanSpec::all_sites(7, 20_000));
        let text = spec.to_json().to_string_compact();
        let back = JobSpec::parse(&text).expect("round-trips");
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
    }

    #[test]
    fn terse_specs_take_harness_defaults() {
        let spec = JobSpec::parse(r#"{"kind":"explore","bits":128}"#).expect("parses");
        assert_eq!(spec.bits, 128);
        assert_eq!(spec.cosim_samples, 6);
        assert_eq!(spec.core, "io");
        assert_eq!(spec.effective_limbs(), 8);
        assert_eq!(spec.fidelity, Fidelity::CycleAccurate);
        assert!(spec.faults.is_none());
    }

    #[test]
    fn malformed_specs_fail_with_the_job_spec_code() {
        for text in [
            "not json",
            r#"{"bits":128}"#,
            r#"{"kind":"frobnicate"}"#,
            r#"{"kind":"explore","core":"xeon"}"#,
            r#"{"kind":"explore","variant":"accel-zz"}"#,
            r#"{"kind":"explore","kernels":["mpn_nope"]}"#,
            r#"{"kind":"explore","fidelity":"psychic"}"#,
            r#"{"kind":"explore","faults":"rate=banana"}"#,
        ] {
            let err = JobSpec::parse(text).expect_err(text);
            assert!(
                err.code() == codes::JOB_SPEC || err.code() == codes::KERNEL_UNKNOWN,
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn fault_campaign_requires_a_plan() {
        let spec = JobSpec::new(JobKind::FaultCampaign);
        let pool = Pool::new(1);
        let err = spec.run(&JobEnv::new(&pool)).expect_err("rejected");
        assert_eq!(err.code(), codes::JOB_SPEC);
    }

    #[test]
    fn digests_differ_across_specs_and_survive_reparse() {
        let a = JobSpec::explore(128, 2);
        let b = JobSpec::explore(256, 2);
        assert_ne!(a.digest(), b.digest());
        let c = JobSpec::parse(&a.to_json().to_string_compact()).unwrap();
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn cancelled_jobs_surface_the_protocol_code() {
        let spec = JobSpec::explore(64, 1);
        let pool = Pool::new(1);
        let token = CancelToken::new();
        token.cancel();
        let env = JobEnv {
            cancel: Some(&token),
            ..JobEnv::new(&pool)
        };
        let err = spec.run(&env).expect_err("cancelled before phase 1");
        assert_eq!(err.code(), codes::PROTO_CANCELLED);
    }

    #[test]
    fn cached_queries_hit_after_one_compute() {
        let config = CpuConfig::default();
        let kc = KCache::new();
        let first = cached_kernel_cycles(
            &config,
            KernelVariant::Base,
            kreg::id::ADD_N,
            8,
            8,
            Some(&kc),
        )
        .expect("measures");
        let misses = kc.misses();
        let second = cached_kernel_cycles(
            &config,
            KernelVariant::Base,
            kreg::id::ADD_N,
            8,
            8,
            Some(&kc),
        )
        .expect("cached");
        assert_eq!(first, second);
        assert_eq!(kc.misses(), misses, "second query is a pure hit");
        assert!(kc.hits() > 0);
    }
}
