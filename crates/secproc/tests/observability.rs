//! End-to-end observability tests: cycle attribution over full RSA
//! co-simulations, traced cipher blocks, and the metered methodology
//! phases.

use std::cell::RefCell;
use std::rc::Rc;

use macromodel::charact::CharactOptions;
use mpint::Natural;
use pubkey::modexp::ExpCache;
use pubkey::rsa::KeyPair;
use pubkey::space::ModExpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secproc::issops::{IssMpn, KernelVariant};
use secproc::simcipher::{SimDes, Variant};
use secproc::FlowBuilder;
use xobs::trace::Shared;
use xobs::{Attribution, Json, Registry, Spans};
use xpar::Pool;
use xr32::config::CpuConfig;

fn folded_sum(attr: &Attribution) -> u64 {
    attr.folded()
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

/// The PR's acceptance criterion, at test-friendly modulus size (the
/// invariant is exact at any size; `xr32-trace record rsa` runs the
/// full 1024-bit version): an RSA-CRT decrypt co-simulation with an
/// attribution sink attached yields a folded-stack profile whose
/// inclusive root cycles equal the total simulated cycles exactly.
#[test]
fn rsa_crt_decrypt_attribution_covers_every_cycle() {
    let mut rng = StdRng::seed_from_u64(0x45A);
    let kp = KeyPair::generate(128, &mut rng);
    let msg = Natural::random_below(&mut rng, &kp.public.n);

    let mut iss = IssMpn::with_variant(
        CpuConfig::default(),
        KernelVariant::Accelerated {
            add_lanes: 16,
            mac_lanes: 4,
        },
    );
    iss.set_verify(false);
    let attr = Rc::new(RefCell::new(Attribution::new()));
    iss.set_trace_sink(Some(Box::new(Shared::new(attr.clone()))));

    // Montgomery + 5-bit windows + Garner CRT: the explored winner.
    let cfg = ModExpConfig::optimized();
    let mut cache = ExpCache::new();
    let ct = kp
        .public
        .encrypt_raw(&mut iss, &msg, &cfg, &mut cache)
        .expect("encrypt runs");
    let pt = kp
        .private
        .decrypt_raw(&mut iss, &ct, &cfg, &mut cache)
        .expect("decrypt runs");
    assert_eq!(pt, msg, "RSA-CRT roundtrip on the simulator");

    let (c32, c16) = iss.core_cycles();
    let total = c32 + c16;
    assert!(total > 0);
    let attr = attr.borrow();
    assert_eq!(attr.open_frames(), 0, "every kernel frame closed");
    assert_eq!(attr.unmatched_rets(), 0);
    assert_eq!(
        attr.total_cycles(),
        total,
        "inclusive root must equal total ISS cycles exactly"
    );
    assert_eq!(folded_sum(&attr), total, "folded stacks sum to the total");

    // The hot functions are the multi-precision kernels.
    let flat = attr.flat();
    assert!(
        flat.iter().any(|f| f.name.starts_with("mpn_")),
        "expected mpn_* kernels in the profile: {:?}",
        flat.iter().map(|f| &f.name).collect::<Vec<_>>()
    );
}

#[test]
fn traced_des_blocks_attribute_to_des_kernel() {
    let mut sim = SimDes::new(
        CpuConfig::default(),
        Variant::Base,
        0x1334_5779_9BBC_DFF1u64.to_be_bytes(),
    );
    let mut attr = Attribution::new();
    let (ct, c1) = sim.crypt_block_traced(0x0123_4567_89AB_CDEF, false, Some(&mut attr));
    let (pt, c2) = sim.crypt_block_traced(ct, true, Some(&mut attr));
    assert_eq!(ct, 0x85E8_1354_0F0A_B405);
    assert_eq!(pt, 0x0123_4567_89AB_CDEF);
    assert_eq!(attr.open_frames(), 0);
    assert_eq!(attr.total_cycles(), c1 + c2);
    let report = attr.hot_report(3);
    assert!(report.contains("des_block"), "hot report:\n{report}");
}

#[test]
fn metered_flow_publishes_phase_metrics() {
    let reg = Registry::new();
    let options = CharactOptions {
        train_samples: 12,
        validation_points: 5,
    };
    let config = CpuConfig::default();
    let ctx = FlowBuilder::new(&config).metrics(&reg).build().unwrap();
    let models = ctx.characterize(8, &options);
    let result = ctx.explore(&models, 128, 4.0).expect("space explores");
    assert_eq!(result.evaluated, 450);
    let errors = ctx
        .validate_models(&models, &[ModExpConfig::optimized()], 128, 4.0)
        .expect("validation runs");
    assert_eq!(errors.len(), 1);
    // A fault-free run records no *resilience* degradations, but poor
    // regression fits surface as first-class `bad-fit` entries (an op
    // with a near-constant cycle profile fits worse than its mean at
    // small stimulus budgets).
    let degradations = ctx.degradations();
    assert!(
        degradations.iter().all(|d| d.action == "bad-fit"),
        "fault-free run degrades nothing beyond fit quality: {degradations:?}"
    );
    assert!(
        !degradations.is_empty(),
        "negative-r_squared fits must be reported, not buried in a gauge"
    );
    assert!(degradations.iter().all(|d| d.attempts == 0));

    let snap = reg.snapshot();
    // Phase 1: every registered kernel at every supported radix (8 mpn
    // ops × 2 radices + SHA-1 at radix 32), each fit over 12 + 5
    // stimuli.
    assert_eq!(snap.counter("flow.phase1.ops_characterized"), Some(17));
    assert_eq!(snap.counter("charact.stimuli_run"), Some(17 * 17));
    assert!(snap.counter("flow.phase1.iss_cycles").unwrap() > 0);
    assert!(snap.get("flow.phase1.mean_abs_error_pct").is_some());
    // Phase 2: the full 450-point lattice, with Pareto survivors.
    assert_eq!(snap.counter("flow.phase2.candidates_evaluated"), Some(450));
    assert!(snap.get("flow.phase2.best_cycles").is_some());
    assert!(snap.get("space.pareto_survivors").is_some());
    // Model-vs-ISS validation histogram saw one observation.
    assert!(snap.get("flow.model_error_pct").is_some());

    // The whole snapshot serializes into the report JSON layer.
    let json = snap.to_json().to_string_pretty();
    assert!(json.contains("flow.phase2.candidates_evaluated"));
}

/// The schema-5 span contract over a real flow: the root's inclusive
/// cycles equal the summed phase metrics (phase-1 ISS cycles plus the
/// co-simulated sample), the tree validates, and — after report
/// normalization strips wall stamps and per-worker spans — it is
/// byte-identical for 1 and 8 worker threads.
#[test]
fn span_tree_covers_phase_cycles_and_is_thread_invariant() {
    let options = CharactOptions {
        train_samples: 12,
        validation_points: 5,
    };
    let config = CpuConfig::default();
    let mut normalized = Vec::new();
    for threads in [1usize, 8] {
        let pool = Pool::new(threads);
        let reg = Registry::new();
        let spans = Spans::new();
        let ctx = FlowBuilder::new(&config)
            .pool(&pool)
            .metrics(&reg)
            .spans(&spans)
            .build()
            .unwrap();
        let root = spans.enter("flow");
        let models = ctx.characterize(8, &options);
        let result = ctx.explore(&models, 128, 4.0).expect("space explores");
        let best = result.best().config;
        let cosim = ctx
            .cosimulate(&models, &best, 128, 4.0)
            .expect("winner co-simulates");
        root.end();

        let roots = spans.to_json_roots();
        assert_eq!(roots.len(), 1, "one flow root");
        xobs::span::validate_span_json(&roots[0]).expect("well-formed tree");

        let phase1_iss = reg
            .snapshot()
            .counter("flow.phase1.iss_cycles")
            .expect("phase 1 metered") as f64;
        let children = roots[0].get("children").and_then(Json::as_arr).unwrap();
        let p1 = children
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("phase1.characterize"))
            .expect("phase-1 span present");
        assert_eq!(
            p1.get("cycles").and_then(Json::as_f64),
            Some(phase1_iss),
            "phase-1 span rollup equals the flow.phase1.iss_cycles counter"
        );
        assert_eq!(
            roots[0].get("cycles").and_then(Json::as_f64),
            Some(phase1_iss + cosim),
            "root inclusive cycles equal the summed phase metrics"
        );

        normalized.push(xobs::report::normalize(&Json::from(roots)).to_string_compact());
    }
    assert_eq!(
        normalized[0], normalized[1],
        "normalized span tree byte-identical across thread counts"
    );
}
