//! Property tests for `xopt`-generated kernel variants.
//!
//! Two properties, over every kernel that opts into generated
//! variants ([`kreg::VariantSource::Generated`]) and every accelerator
//! level of its instruction family:
//!
//! - **Golden equivalence**: the generated variant, executed on the
//!   ISS under the platform's custom-instruction semantics, computes
//!   the same result and carry as the kernel's golden reference for
//!   arbitrary operand sizes across the kernel's [`kreg::StimulusSpec`]
//!   basis (`Limbs`: any `n`, including sizes that leave a scalar
//!   tail) and arbitrary random operands — not just the sweep the
//!   admission gate ran.
//! - **Constant-time non-regression**: re-generating the variants
//!   under arbitrary core timing parameters (the cost model steers the
//!   list scheduler) never produces a variant that fires a
//!   constant-time lint error the canonical kernel does not, and the
//!   result still passes golden verification.

use std::sync::OnceLock;

use proptest::prelude::*;
use pubkey::ops::MpnOps;
use secproc::genvar::{self, AdmittedVariant};
use secproc::IssMpn;
use xr32::config::CpuConfig;

fn generated_descs() -> Vec<&'static kreg::KernelDescriptor> {
    kreg::registry()
        .iter()
        .filter(|d| d.variants == kreg::VariantSource::Generated)
        .collect()
}

/// Every admitted variant under the default configuration, generated
/// once (generation runs the full lint + golden gate).
fn admitted() -> &'static Vec<(&'static kreg::KernelDescriptor, AdmittedVariant)> {
    static CELL: OnceLock<Vec<(&'static kreg::KernelDescriptor, AdmittedVariant)>> =
        OnceLock::new();
    CELL.get_or_init(|| {
        let config = CpuConfig::default();
        let mut out = Vec::new();
        for desc in generated_descs() {
            for (level, outcome) in genvar::admitted_variants(desc, &config) {
                let adm = outcome.unwrap_or_else(|e| {
                    panic!(
                        "{} level a{}m{} rejected: {e}",
                        desc.id, level.add_lanes, level.mac_lanes
                    )
                });
                out.push((desc, adm));
            }
        }
        assert!(out.len() >= 2, "expected at least two generated kernels");
        out
    })
}

fn limbs(seed: &mut u64, n: usize) -> Vec<u32> {
    (0..n)
        .map(|_| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*seed >> 32) as u32
        })
        .collect()
}

/// Runs one admitted variant on the ISS against the kernel's golden
/// reference for one `(n, seed)` stimulus.
fn check_against_golden(
    desc: &kreg::KernelDescriptor,
    adm: &AdmittedVariant,
    n: usize,
    mut seed: u64,
) {
    let mut iss = IssMpn::with_library(CpuConfig::default(), &adm.gen.source, adm.ext.clone());
    match desc.conv {
        kreg::CallConv::VecVec { golden32, .. } => {
            let a = limbs(&mut seed, n);
            let b = limbs(&mut seed, n);
            let mut want = vec![0u32; n];
            let want_carry = golden32(&mut want, &a, &b);
            let mut got = vec![0u32; n];
            let got_carry = iss.add_n(&mut got, &a, &b);
            prop_assert_eq!(got, want, "{} {} limbs n={}", desc.id, adm.gen.tag, n);
            prop_assert_eq!(got_carry, want_carry, "{} {} carry", desc.id, adm.gen.tag);
        }
        kreg::CallConv::VecScalar {
            accumulate,
            golden32,
            ..
        } => {
            let a = limbs(&mut seed, n);
            let b = limbs(&mut seed, 1)[0];
            let r0 = if accumulate {
                limbs(&mut seed, n)
            } else {
                vec![0u32; n]
            };
            let mut want = r0.clone();
            let want_carry = golden32(&mut want, &a, b);
            let mut got = r0;
            let got_carry = iss.addmul_1(&mut got, &a, b);
            prop_assert_eq!(got, want, "{} {} limbs n={}", desc.id, adm.gen.tag, n);
            prop_assert_eq!(got_carry, want_carry, "{} {} carry", desc.id, adm.gen.tag);
        }
        _ => panic!("unexpected call convention for {}", desc.id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// ISS-vs-golden equivalence across the `Limbs` stimulus basis:
    /// any level, any operand size (blocked loop + scalar tail in all
    /// mixes), any operand values.
    #[test]
    fn generated_variants_match_golden_on_random_stimuli(
        pick in 0usize..64,
        n in 1usize..=40,
        seed in any::<u64>(),
    ) {
        let all = admitted();
        let (desc, adm) = &all[pick % all.len()];
        check_against_golden(desc, adm, n, seed);
    }

    /// Constant-time non-regression under arbitrary core timing: the
    /// scheduler's cost model changes with `mul_latency` and
    /// `branch_penalty`, but whatever order it picks must still pass
    /// the lint differential against the canonical kernel (enforced
    /// inside `xopt::generate`) and golden verification.
    #[test]
    fn generated_variants_survive_arbitrary_timing(
        mul_latency in 1u32..=4,
        branch_penalty in 0u32..=3,
    ) {
        let config = CpuConfig {
            mul_latency,
            branch_penalty,
            ..CpuConfig::default()
        };
        for desc in generated_descs() {
            for (level, outcome) in genvar::admitted_variants(desc, &config) {
                let adm = outcome.unwrap_or_else(|e| {
                    panic!(
                        "{} a{}m{} rejected under mul={mul_latency} bp={branch_penalty}: {e}",
                        desc.id, level.add_lanes, level.mac_lanes
                    )
                });
                prop_assert_eq!(&adm.gen.tag, &level.generated_tag());
            }
        }
    }
}
