//! Property-based tests for the multi-precision layers.

use mpint::{barrett::BarrettCtx, gcd, karatsuba, monty::MontyCtx, mpn, Natural};
use proptest::prelude::*;

/// Strategy: a Natural of up to `max_limbs` random limbs.
fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    prop::collection::vec(any::<u32>(), 0..=max_limbs).prop_map(Natural::from_limbs)
}

/// Strategy: a nonzero Natural.
fn natural_nonzero(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| if n.is_zero() { Natural::one() } else { n })
}

/// Strategy: an odd Natural > 1 (valid Montgomery modulus).
fn odd_modulus(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural_nonzero(max_limbs).prop_map(|n| {
        let n = if n.is_even() { &n + &Natural::one() } else { n };
        if n.is_one() {
            Natural::from_u64(3)
        } else {
            n
        }
    })
}

proptest! {
    #[test]
    fn add_commutes(a in natural(12), b in natural(12)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_then_sub_roundtrips(a in natural(12), b in natural(12)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes_and_distributes(a in natural(8), b in natural(8), c in natural(8)) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn divrem_reconstructs(a in natural(12), d in natural_nonzero(6)) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn karatsuba_equals_basecase(a in prop::collection::vec(any::<u32>(), 1..80),
                                 b in prop::collection::vec(any::<u32>(), 1..80)) {
        let k = karatsuba::mul(&a, &b);
        let mut s = vec![0u32; a.len() + b.len()];
        mpn::mul_basecase(&mut s, &a, &b);
        prop_assert_eq!(k, s);
    }

    #[test]
    fn shifts_are_multiplication_by_powers_of_two(a in natural(8), s in 0usize..200) {
        let shifted = a.clone() << s;
        let back = shifted.clone() >> s;
        prop_assert_eq!(back, a.clone());
        // Shifting left then dividing by 2^s is exact.
        let (q, r) = shifted.div_rem(&(Natural::one() << s));
        prop_assert_eq!(q, a);
        prop_assert!(r.is_zero());
    }

    #[test]
    fn montgomery_mul_matches_divrem(m in odd_modulus(8), a in natural(8), b in natural(8)) {
        let ctx = MontyCtx::new(&m).unwrap();
        let ar = &a % &m;
        let br = &b % &m;
        let got = ctx.from_monty(&ctx.mul(&ctx.to_monty(&ar), &ctx.to_monty(&br)));
        prop_assert_eq!(got, &(&ar * &br) % &m);
    }

    #[test]
    fn barrett_reduce_matches_divrem(m in natural_nonzero(8), x in natural(8)) {
        prop_assume!(!m.is_one());
        let ctx = BarrettCtx::new(&m).unwrap();
        let xr = &x % &m; // keep within range then square for a hard case
        let sq = &xr * &xr;
        prop_assert_eq!(ctx.reduce(&sq), &sq % &m);
    }

    #[test]
    fn pow_mod_strategies_agree(m in odd_modulus(4), b in natural(4), e in natural(2)) {
        let reference = b.pow_mod(&e, &m);
        let monty = MontyCtx::new(&m).unwrap().pow_mod(&b, &e);
        let barrett = BarrettCtx::new(&m).unwrap().pow_mod(&b, &e);
        prop_assert_eq!(&reference, &monty);
        prop_assert_eq!(&reference, &barrett);
    }

    #[test]
    fn gcd_divides_both_and_bezout_holds(a in natural_nonzero(6), b in natural_nonzero(6)) {
        let (g, x, y) = gcd::gcd_ext(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
        use mpint::Integer;
        let lhs = &(&Integer::from(a.clone()) * &x) + &(&Integer::from(b.clone()) * &y);
        prop_assert_eq!(lhs, Integer::from(g.clone()));
        prop_assert_eq!(gcd::gcd_binary(&a, &b), g);
    }

    #[test]
    fn mod_inverse_really_inverts(m in odd_modulus(5), a in natural_nonzero(5)) {
        let ar = &a % &m;
        prop_assume!(!ar.is_zero());
        if let Some(inv) = gcd::mod_inverse(&ar, &m) {
            prop_assert!((&(&ar * &inv) % &m).is_one());
        } else {
            prop_assert!(!gcd::gcd(&ar, &m).is_one());
        }
    }

    #[test]
    fn decimal_roundtrip(a in natural(10)) {
        let s = a.to_string();
        prop_assert_eq!(Natural::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in natural(10)) {
        prop_assert_eq!(Natural::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn radix16_limbs_preserve_value(a in natural(10)) {
        let l16: Vec<u16> = a.to_radix_limbs();
        prop_assert_eq!(Natural::from_radix_limbs(&l16), a);
    }

    #[test]
    fn mpn_divrem_1_matches_full_division(a in natural(10), d in 1u32..) {
        let dn = Natural::from_u32(d);
        let limbs = a.limbs().to_vec();
        let mut q = vec![0u32; limbs.len()];
        let r = mpn::divrem_1(&mut q, &limbs, d);
        let (qq, rr) = a.div_rem(&dn);
        prop_assert_eq!(Natural::from_limbs(q), qq);
        prop_assert_eq!(Natural::from_u32(r), rr);
    }
}
