//! Limb abstraction: the machine word of the multi-precision layer.
//!
//! The paper's algorithm design space includes the *radix* of the
//! multi-precision representation (2^16 vs. 2^32) as an explicit axis.
//! [`Limb`] abstracts over the limb width so the [`crate::mpn`] routines
//! work for both radices. All double-width intermediate arithmetic is done
//! in `u64`, which comfortably holds a product of two 32-bit limbs.

use core::fmt;
use core::hash::Hash;
use core::ops::{BitAnd, BitOr, BitXor, Not, Shl, Shr};

/// A machine limb: an unsigned integer of at most 32 bits.
///
/// Implemented for [`u16`] (radix 2^16) and [`u32`] (radix 2^32).
///
/// # Examples
///
/// ```
/// use mpint::Limb;
///
/// fn top_bit<L: Limb>(x: L) -> bool {
///     (x.to_u64() >> (L::BITS - 1)) & 1 == 1
/// }
/// assert!(top_bit(0x8000u16));
/// assert!(!top_bit(0x8000u32));
/// ```
pub trait Limb:
    Copy
    + Eq
    + Ord
    + Hash
    + Default
    + fmt::Debug
    + fmt::Display
    + fmt::LowerHex
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Number of bits in the limb (16 or 32).
    const BITS: u32;
    /// The zero limb.
    const ZERO: Self;
    /// The one limb.
    const ONE: Self;
    /// All-ones limb (the maximum value).
    const MAX: Self;

    /// Widens the limb to `u64`.
    fn to_u64(self) -> u64;

    /// Truncates a `u64` to a limb, discarding high bits.
    fn from_u64(v: u64) -> Self;

    /// Number of leading zero bits.
    fn leading_zeros(self) -> u32 {
        self.to_u64().leading_zeros() - (64 - Self::BITS)
    }

    /// Full addition with carry-in, returning `(sum, carry_out)`.
    fn add_carry(self, rhs: Self, carry: bool) -> (Self, bool) {
        let t = self.to_u64() + rhs.to_u64() + carry as u64;
        (Self::from_u64(t), (t >> Self::BITS) != 0)
    }

    /// Full subtraction with borrow-in, returning `(difference, borrow_out)`.
    fn sub_borrow(self, rhs: Self, borrow: bool) -> (Self, bool) {
        let t = self
            .to_u64()
            .wrapping_sub(rhs.to_u64())
            .wrapping_sub(borrow as u64);
        (Self::from_u64(t), (t >> Self::BITS) != 0)
    }

    /// Widening multiplication, returning `(low, high)` limbs of the product.
    fn mul_wide(self, rhs: Self) -> (Self, Self) {
        let t = self.to_u64() * rhs.to_u64();
        (Self::from_u64(t), Self::from_u64(t >> Self::BITS))
    }

    /// Divides the double-limb value `(hi, lo)` by `self`, returning
    /// `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero, or if `hi >= self` (quotient would not
    /// fit in a single limb).
    fn div_wide(self, hi: Self, lo: Self) -> (Self, Self) {
        assert!(self != Self::ZERO, "division by zero limb");
        assert!(hi < self, "double-limb quotient overflow");
        let d = self.to_u64();
        let n = (hi.to_u64() << Self::BITS) | lo.to_u64();
        (Self::from_u64(n / d), Self::from_u64(n % d))
    }
}

impl Limb for u16 {
    const BITS: u32 = 16;
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u16::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u16
    }
}

impl Limb for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u32::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_carry_propagates() {
        let (s, c) = 0xffff_ffffu32.add_carry(0, true);
        assert_eq!(s, 0);
        assert!(c);
        let (s, c) = 0xfffeu16.add_carry(1, false);
        assert_eq!(s, 0xffff);
        assert!(!c);
    }

    #[test]
    fn sub_borrow_propagates() {
        let (d, b) = 0u32.sub_borrow(1, false);
        assert_eq!(d, u32::MAX);
        assert!(b);
        let (d, b) = 5u16.sub_borrow(3, true);
        assert_eq!(d, 1);
        assert!(!b);
    }

    #[test]
    fn mul_wide_matches_u64() {
        let (lo, hi) = 0xffff_ffffu32.mul_wide(0xffff_ffff);
        let t = 0xffff_ffffu64 * 0xffff_ffffu64;
        assert_eq!(lo as u64, t & 0xffff_ffff);
        assert_eq!(hi as u64, t >> 32);
    }

    #[test]
    fn div_wide_roundtrip() {
        let d = 0x8000_0001u32;
        let (q, r) = d.div_wide(0x7fff_ffff, 0x1234_5678);
        let n = ((0x7fff_ffffu64) << 32) | 0x1234_5678;
        assert_eq!(q as u64, n / d as u64);
        assert_eq!(r as u64, n % d as u64);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_wide_by_zero_panics() {
        let _ = 0u32.div_wide(0, 1);
    }

    #[test]
    fn leading_zeros_respects_width() {
        assert_eq!(1u16.leading_zeros(), 15);
        assert_eq!(1u32.leading_zeros(), 31);
        assert_eq!(Limb::leading_zeros(0x8000u16), 0);
    }
}
