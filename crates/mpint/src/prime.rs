//! Primality testing and prime generation.
//!
//! The paper's complex-operations layer includes "prime number
//! generation, Miller–Rabin primality testing"; RSA and ElGamal key
//! generation are built on these routines.

use crate::monty::MontyCtx;
use crate::nat::Natural;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpar::Pool;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u32; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Number of Miller–Rabin rounds used by the convenience functions; gives
/// an error probability below 4^-32.
pub const DEFAULT_ROUNDS: u32 = 32;

/// Deterministically checks divisibility by the small-prime table.
/// Returns `Some(true/false)` when trial division settles the question,
/// `None` when Miller–Rabin is needed.
fn trial_division(n: &Natural) -> Option<bool> {
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return Some(false);
        }
        for &p in &SMALL_PRIMES {
            let p = p as u64;
            if v == p {
                return Some(true);
            }
            if v % p == 0 {
                return Some(false);
            }
        }
        if v < 251 * 251 {
            return Some(true);
        }
        return None;
    }
    for &p in &SMALL_PRIMES {
        let r = n % &Natural::from_u32(p);
        if r.is_zero() {
            return Some(false);
        }
    }
    None
}

/// A single Miller–Rabin round with witness `a` (`2 <= a <= n-2`).
/// Returns `false` if `a` proves `n` composite.
fn miller_rabin_round(
    ctx: &MontyCtx,
    n_minus_1: &Natural,
    d: &Natural,
    s: usize,
    a: &Natural,
) -> bool {
    let mut x = ctx.pow_mod(a, d);
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = &(&x * &x) % ctx.modulus();
        if &x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false;
        }
    }
    false
}

/// Miller–Rabin probabilistic primality test with `rounds` random
/// witnesses.
///
/// # Examples
///
/// ```
/// use mpint::{prime, Natural};
///
/// let mut rng = rand::rng();
/// let p = Natural::from_u64(0xffff_ffff_ffff_ffc5); // largest 64-bit prime
/// assert!(prime::is_probable_prime(&p, 16, &mut rng));
/// let composite = Natural::from_u64(0xffff_ffff); // 3 * 5 * 17 * 257 * 65537
/// assert!(!prime::is_probable_prime(&composite, 16, &mut rng));
/// ```
pub fn is_probable_prime<R: Rng + ?Sized>(n: &Natural, rounds: u32, rng: &mut R) -> bool {
    // Constant caller-RNG consumption: exactly one `u64` witness seed
    // per call, independent of `rounds` and of how early a witness
    // fails. The witnesses themselves come from a private derived
    // stream, so they can be drawn up front and checked in parallel.
    is_probable_prime_seeded(n, rounds, rng.random())
}

/// [`is_probable_prime`] with an explicit witness seed: the `rounds`
/// Miller–Rabin witnesses are derived deterministically from
/// `witness_seed`, drawn up front, and evaluated on an
/// environment-sized [`xpar::Pool`] in waves with early exit between
/// waves. The verdict is a pure function of `(n, rounds,
/// witness_seed)` — identical for any thread count.
pub fn is_probable_prime_seeded(n: &Natural, rounds: u32, witness_seed: u64) -> bool {
    if let Some(answer) = trial_division(n) {
        return answer;
    }
    if n.is_even() {
        return false;
    }
    let ctx = MontyCtx::new(n).expect("odd n > 1 checked above");
    let one = Natural::one();
    let n_minus_1 = n - &one;
    // n - 1 = d * 2^s with d odd.
    let mut s = 0usize;
    let mut d = n_minus_1.clone();
    while d.is_even() {
        d = d >> 1;
        s += 1;
    }
    let two = Natural::from_u64(2);
    let span = &n_minus_1 - &two; // witnesses in [2, n-2]
    let mut wrng = StdRng::seed_from_u64(witness_seed);
    let witnesses: Vec<Natural> = (0..rounds)
        .map(|_| &Natural::random_below(&mut wrng, &span) + &two)
        .collect();
    Pool::from_env().par_all(&witnesses, |_, a| {
        miller_rabin_round(&ctx, &n_minus_1, &d, s, a)
    })
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Natural {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut cand = Natural::random_bits(rng, bits);
        if cand.is_even() {
            cand = &cand + &Natural::one();
            if cand.bit_length() != bits {
                continue;
            }
        }
        if is_probable_prime(&cand, DEFAULT_ROUNDS, rng) {
            return cand;
        }
    }
}

/// Returns the smallest probable prime strictly greater than `n`.
pub fn next_prime<R: Rng + ?Sized>(n: &Natural, rng: &mut R) -> Natural {
    let mut cand = n + &Natural::one();
    if cand < Natural::from_u64(2) {
        return Natural::from_u64(2);
    }
    if cand.is_even() && cand != Natural::from_u64(2) {
        cand = &cand + &Natural::one();
    }
    loop {
        if is_probable_prime(&cand, DEFAULT_ROUNDS, rng) {
            return cand;
        }
        cand = &cand + &Natural::from_u64(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xdac_2002)
    }

    #[test]
    fn small_values_classified_correctly() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 97, 251, 257, 65537, 1_000_003];
        let composites = [0u64, 1, 4, 9, 255, 65535, 1_000_001, 251 * 257];
        for p in primes {
            assert!(
                is_probable_prime(&Natural::from_u64(p), 16, &mut r),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&Natural::from_u64(c), 16, &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime_and_composite() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = (Natural::one() << 127) - Natural::one();
        assert!(is_probable_prime(&m127, 16, &mut r));
        // 2^128 - 1 = 3 * 5 * 17 * 257 * ... is composite but has no
        // factor caught by our 8-bit trial division beyond 3/5/17.
        let m128 = (Natural::one() << 128) - Natural::one();
        assert!(!is_probable_prime(&m128, 16, &mut r));
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(
                !is_probable_prime(&Natural::from_u64(c), 16, &mut r),
                "carmichael {c}"
            );
        }
    }

    #[test]
    fn seeded_primality_is_deterministic_and_seed_driven() {
        // 2^127 - 1 is prime; 2^128 - 1 is composite past trial
        // division. Verdicts must be a pure function of the seed.
        let m127 = (Natural::one() << 127) - Natural::one();
        let m128 = (Natural::one() << 128) - Natural::one();
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert!(is_probable_prime_seeded(&m127, 16, seed), "seed {seed}");
            assert!(!is_probable_prime_seeded(&m128, 16, seed), "seed {seed}");
        }
        // The caller-facing wrapper consumes exactly one u64 whatever
        // the verdict or round count, keeping the caller's stream
        // independent of the test's internals.
        let mut a = rng();
        let mut b = rng();
        is_probable_prime(&m127, 16, &mut a); // prime: every round runs
        is_probable_prime(&m128, 2, &mut b); // composite: early exit
        let mut fresh = rng();
        let _ = fresh.random::<u64>();
        let expect = fresh.random::<u64>();
        assert_eq!(a.random::<u64>(), expect);
        assert_eq!(b.random::<u64>(), expect);
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut r = rng();
        for bits in [16usize, 64, 128, 256] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_length(), bits);
            assert!(p.is_odd() || p.to_u64() == Some(2));
        }
    }

    #[test]
    fn next_prime_walks_forward() {
        let mut r = rng();
        assert_eq!(next_prime(&Natural::zero(), &mut r).to_u64(), Some(2));
        assert_eq!(next_prime(&Natural::from_u64(2), &mut r).to_u64(), Some(3));
        assert_eq!(
            next_prime(&Natural::from_u64(13), &mut r).to_u64(),
            Some(17)
        );
        assert_eq!(
            next_prime(&Natural::from_u64(65536), &mut r).to_u64(),
            Some(65537)
        );
    }
}
