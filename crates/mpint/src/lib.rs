//! Multi-precision integer arithmetic for public-key cryptography.
//!
//! This crate is a from-scratch replacement for the GNU MP library used by
//! the DAC 2002 wireless security processing platform paper. It mirrors
//! GMP's layered structure:
//!
//! - [`mpn`]: the *basic operations* layer — low-level functions over
//!   little-endian limb slices (`mpn_add_n`, `mpn_addmul_1`, …). These are
//!   the routines the paper characterizes on the instruction-set simulator
//!   and accelerates with custom instructions. They are generic over the
//!   limb width (radix 2^16 or 2^32), one of the axes of the paper's
//!   algorithm design space.
//! - [`Natural`] / [`Integer`]: the *complex operations* layer — arbitrary
//!   precision unsigned/signed integers with full arithmetic.
//! - [`monty`], [`barrett`], [`karatsuba`], [`prime`], [`gcd`]: modular
//!   reduction strategies, sub-quadratic multiplication and number-theoretic
//!   routines used by RSA/ElGamal.
//!
//! # Examples
//!
//! ```
//! use mpint::Natural;
//!
//! let a = Natural::from_u64(0xdead_beef);
//! let b = Natural::from_u64(0x1234_5678);
//! let p = &a * &b;
//! assert_eq!(p, Natural::from_u64(0xdead_beef * 0x1234_5678));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrett;
pub mod gcd;
pub mod int;
pub mod karatsuba;
pub mod limb;
pub mod monty;
pub mod mpn;
pub mod nat;
pub mod prime;

pub use barrett::BarrettCtx;
pub use int::Integer;
pub use limb::Limb;
pub use monty::MontyCtx;
pub use nat::Natural;
