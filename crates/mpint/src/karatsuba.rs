//! Karatsuba sub-quadratic multiplication.
//!
//! One of the five modular-multiplication strategies explored in the
//! paper's algorithm design space pairs Karatsuba products with Barrett or
//! Montgomery reduction. Below [`KARATSUBA_THRESHOLD`] limbs the schoolbook
//! basecase from [`crate::mpn`] is used.

use crate::limb::Limb;
use crate::mpn;

/// Operand size (in limbs) below which schoolbook multiplication is used.
pub const KARATSUBA_THRESHOLD: usize = 16;

/// Multiplies two limb vectors, returning a vector of exactly
/// `a.len() + b.len()` limbs (not trimmed). Uses Karatsuba recursion above
/// the threshold and the schoolbook basecase below it.
///
/// # Examples
///
/// ```
/// use mpint::karatsuba;
///
/// let a = vec![u32::MAX; 40];
/// let b = vec![u32::MAX; 40];
/// let k = karatsuba::mul(&a, &b);
/// let mut s = vec![0u32; 80];
/// mpint::mpn::mul_basecase(&mut s, &a, &b);
/// assert_eq!(k, s);
/// ```
pub fn mul<L: Limb>(a: &[L], b: &[L]) -> Vec<L> {
    let mut r = vec![L::ZERO; a.len() + b.len()];
    let an = mpn::normalized(a);
    let bn = mpn::normalized(b);
    if an.is_empty() || bn.is_empty() {
        return r;
    }
    let prod = mul_rec(an, bn);
    r[..prod.len()].copy_from_slice(&prod);
    r
}

fn mul_rec<L: Limb>(a: &[L], b: &[L]) -> Vec<L> {
    debug_assert!(!a.is_empty() && !b.is_empty());
    if a.len().min(b.len()) <= KARATSUBA_THRESHOLD {
        let mut r = vec![L::ZERO; a.len() + b.len()];
        mpn::mul_basecase(&mut r, a, b);
        return r;
    }
    let m = a.len().max(b.len()) / 2;
    let (a0, a1) = split(a, m);
    let (b0, b1) = split(b, m);

    let z0 = mul_nonempty(a0, b0);
    let z2 = mul_nonempty(a1, b1);
    let asum = add_vec(a0, a1);
    let bsum = add_vec(b0, b1);
    let mut z1 = mul_nonempty(&asum, &bsum);
    sub_assign(&mut z1, &z0);
    sub_assign(&mut z1, &z2);

    let mut r = vec![L::ZERO; a.len() + b.len()];
    add_at(&mut r, &z0, 0);
    add_at(&mut r, &z1, m);
    add_at(&mut r, &z2, 2 * m);
    r
}

fn mul_nonempty<L: Limb>(a: &[L], b: &[L]) -> Vec<L> {
    let a = mpn::normalized(a);
    let b = mpn::normalized(b);
    if a.is_empty() || b.is_empty() {
        Vec::new()
    } else {
        mul_rec(a, b)
    }
}

fn split<L: Limb>(a: &[L], m: usize) -> (&[L], &[L]) {
    if a.len() <= m {
        (a, &[])
    } else {
        (&a[..m], &a[m..])
    }
}

/// Adds two limb vectors of arbitrary lengths into a fresh vector.
fn add_vec<L: Limb>(a: &[L], b: &[L]) -> Vec<L> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut r = long.to_vec();
    let mut carry = mpn::add_n_in_place(&mut r[..short.len()], short);
    let mut i = short.len();
    while carry && i < r.len() {
        let (s, c) = r[i].add_carry(L::ONE, false);
        r[i] = s;
        carry = c;
        i += 1;
    }
    if carry {
        r.push(L::ONE);
    }
    r
}

/// Subtracts `b` from `a` in place. `a` must be numerically `>= b`.
fn sub_assign<L: Limb>(a: &mut [L], b: &[L]) {
    let b = mpn::normalized(b);
    if b.is_empty() {
        return;
    }
    debug_assert!(a.len() >= b.len());
    let mut borrow = mpn::sub_n_in_place(&mut a[..b.len()], b);
    let mut i = b.len();
    while borrow {
        debug_assert!(i < a.len(), "karatsuba middle term went negative");
        let (d, bo) = a[i].sub_borrow(L::ONE, false);
        a[i] = d;
        borrow = bo;
        i += 1;
    }
}

/// Adds `v` into `r` starting at limb offset `off`, propagating the carry.
/// The final carry must not escape `r`.
fn add_at<L: Limb>(r: &mut [L], v: &[L], off: usize) {
    let v = mpn::normalized(v);
    if v.is_empty() {
        return;
    }
    let mut carry = mpn::add_n_in_place(&mut r[off..off + v.len()], v);
    let mut i = off + v.len();
    while carry {
        debug_assert!(i < r.len(), "karatsuba recombination overflow");
        let (s, c) = r[i].add_carry(L::ONE, false);
        r[i] = s;
        carry = c;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, seed: u32) -> Vec<u32> {
        (0..n)
            .map(|i| {
                let x = seed
                    .wrapping_mul(xpar::SEED_STEP32)
                    .wrapping_add(i as u32)
                    .wrapping_mul(0x85eb_ca6b);
                x ^ (x >> 13)
            })
            .collect()
    }

    #[test]
    fn matches_basecase_square() {
        for n in [1usize, 5, 17, 33, 64, 100] {
            let a = pattern(n, 7);
            let b = pattern(n, 13);
            let k = mul(&a, &b);
            let mut s = vec![0u32; 2 * n];
            mpn::mul_basecase(&mut s, &a, &b);
            assert_eq!(k, s, "n={n}");
        }
    }

    #[test]
    fn matches_basecase_rectangular() {
        let a = pattern(70, 3);
        let b = pattern(21, 9);
        let k = mul(&a, &b);
        let mut s = vec![0u32; 91];
        mpn::mul_basecase(&mut s, &a, &b);
        assert_eq!(k, s);
    }

    #[test]
    fn zero_operand_gives_zero() {
        let a = pattern(40, 1);
        let z = vec![0u32; 40];
        assert_eq!(mul(&a, &z), vec![0u32; 80]);
    }

    #[test]
    fn u16_limbs_match_basecase() {
        let a: Vec<u16> = (0..50).map(|i| (i * 2654 + 7) as u16).collect();
        let b: Vec<u16> = (0..50).map(|i| (i * 40503 + 11) as u16).collect();
        let k = mul(&a, &b);
        let mut s = vec![0u16; 100];
        mpn::mul_basecase(&mut s, &a, &b);
        assert_eq!(k, s);
    }

    #[test]
    fn all_ones_worst_case_carries() {
        let a = vec![u32::MAX; 65];
        let b = vec![u32::MAX; 65];
        let k = mul(&a, &b);
        let mut s = vec![0u32; 130];
        mpn::mul_basecase(&mut s, &a, &b);
        assert_eq!(k, s);
    }
}
