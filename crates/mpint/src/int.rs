//! Signed arbitrary-precision integers ([`Integer`]).
//!
//! The signed layer exists chiefly for the extended Euclidean algorithm
//! ([`crate::gcd`]), whose Bézout coefficients alternate in sign.

use crate::nat::Natural;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// Sign of an [`Integer`]. Zero is represented with [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer (sign–magnitude form).
///
/// # Examples
///
/// ```
/// use mpint::{Integer, Natural};
///
/// let a = Integer::from(Natural::from_u64(5));
/// let b = Integer::from(Natural::from_u64(9));
/// assert_eq!((&a - &b).to_string(), "-4");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    mag: Natural,
}

impl Integer {
    /// The value zero.
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Zero,
            mag: Natural::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Integer {
            sign: Sign::Positive,
            mag: Natural::one(),
        }
    }

    /// Builds an integer from a sign and magnitude. A zero magnitude
    /// always yields the zero integer regardless of `sign`.
    pub fn from_sign_magnitude(sign: Sign, mag: Natural) -> Self {
        if mag.is_zero() {
            Integer::zero()
        } else {
            let sign = match sign {
                Sign::Zero => Sign::Positive,
                s => s,
            };
            Integer { sign, mag }
        }
    }

    /// Creates an integer from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Less => Integer {
                sign: Sign::Negative,
                mag: Natural::from_u64(v.unsigned_abs()),
            },
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => Integer {
                sign: Sign::Positive,
                mag: Natural::from_u64(v as u64),
            },
        }
    }

    /// The sign of the integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value).
    pub fn magnitude(&self) -> &Natural {
        &self.mag
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Converts to a [`Natural`] if non-negative.
    pub fn to_natural(&self) -> Option<Natural> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// Reduces modulo a positive natural, always returning a value in
    /// `[0, m)` (i.e. the mathematical residue, also for negatives).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &Natural) -> Natural {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let r = &self.mag % m;
        match self.sign {
            Sign::Negative if !r.is_zero() => m - &r,
            _ => r,
        }
    }
}

impl From<Natural> for Integer {
    fn from(mag: Natural) -> Self {
        Integer::from_sign_magnitude(Sign::Positive, mag)
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        Integer::from_i64(v)
    }
}

impl Neg for Integer {
    type Output = Integer;

    fn neg(self) -> Integer {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        Integer {
            sign,
            mag: self.mag,
        }
    }
}

impl Add for &Integer {
    type Output = Integer;

    fn add(self, rhs: &Integer) -> Integer {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Integer {
                sign: a,
                mag: &self.mag + &rhs.mag,
            },
            (a, _) => {
                // Opposite signs: subtract the smaller magnitude.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => Integer::zero(),
                    Ordering::Greater => Integer {
                        sign: a,
                        mag: &self.mag - &rhs.mag,
                    },
                    Ordering::Less => Integer {
                        sign: if a == Sign::Positive {
                            Sign::Negative
                        } else {
                            Sign::Positive
                        },
                        mag: &rhs.mag - &self.mag,
                    },
                }
            }
        }
    }
}

impl Sub for &Integer {
    type Output = Integer;

    fn sub(self, rhs: &Integer) -> Integer {
        self + &(-rhs.clone())
    }
}

impl Mul for &Integer {
    type Output = Integer;

    fn mul(self, rhs: &Integer) -> Integer {
        if self.is_zero() || rhs.is_zero() {
            return Integer::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        Integer {
            sign,
            mag: &self.mag * &rhs.mag,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.mag.cmp(&self.mag),
                _ => self.mag.cmp(&other.mag),
            },
            o => o,
        }
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-{:?}", self.mag)
        } else {
            write!(f, "{:?}", self.mag)
        }
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Integer {
        Integer::from_i64(v)
    }

    #[test]
    fn add_covers_all_sign_combinations() {
        for a in [-7i64, -1, 0, 1, 7] {
            for b in [-5i64, -1, 0, 1, 5] {
                assert_eq!(&int(a) + &int(b), int(a + b), "{a}+{b}");
                assert_eq!(&int(a) - &int(b), int(a - b), "{a}-{b}");
                assert_eq!(&int(a) * &int(b), int(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-9i64, -2, 0, 3, 11];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(int(a).cmp(&int(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn rem_euclid_is_nonnegative() {
        let m = Natural::from_u64(7);
        assert_eq!(int(-1).rem_euclid(&m).to_u64(), Some(6));
        assert_eq!(int(-14).rem_euclid(&m).to_u64(), Some(0));
        assert_eq!(int(13).rem_euclid(&m).to_u64(), Some(6));
    }

    #[test]
    fn zero_magnitude_is_canonical() {
        let z = Integer::from_sign_magnitude(Sign::Negative, Natural::zero());
        assert!(z.is_zero());
        assert_eq!(z, Integer::zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(42).to_string(), "42");
    }

    #[test]
    fn to_natural_rejects_negative() {
        assert!(int(-3).to_natural().is_none());
        assert_eq!(int(3).to_natural(), Some(Natural::from_u64(3)));
    }
}
