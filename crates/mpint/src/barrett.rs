//! Barrett modular reduction.
//!
//! Barrett reduction trades the per-multiplication division of the naive
//! `(a*b) mod m` strategy for two multiplications by a precomputed
//! reciprocal. It is one of the five modular-multiplication strategies in
//! the paper's modular-exponentiation design space and, unlike Montgomery,
//! needs no representation conversion.

use crate::nat::Natural;
use core::fmt;

/// Error returned when constructing a [`BarrettCtx`] from an unsuitable
/// modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidModulusError {
    reason: &'static str,
}

impl fmt::Display for InvalidModulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid barrett modulus: {}", self.reason)
    }
}

impl std::error::Error for InvalidModulusError {}

/// Precomputed context for Barrett reduction modulo `m > 1`.
///
/// The context stores `mu = floor(b^(2k) / m)` where `b = 2^32` and `k`
/// is the limb length of `m`. [`BarrettCtx::reduce`] then reduces any
/// value `x < m^2` with two multiplications and at most two conditional
/// subtractions.
///
/// # Examples
///
/// ```
/// use mpint::{BarrettCtx, Natural};
///
/// let m = Natural::from_u64(0x1234_5678_9abc_deff);
/// let ctx = BarrettCtx::new(&m)?;
/// let a = &Natural::from_u64(u64::MAX) % &m;
/// let x = &a * &a; // < m^2, the domain of `reduce`
/// assert_eq!(ctx.reduce(&x), &x % &m);
/// # Ok::<(), mpint::barrett::InvalidModulusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BarrettCtx {
    m: Natural,
    mu: Natural,
    k: usize,
}

impl BarrettCtx {
    /// Builds a Barrett context for modulus `m > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulusError`] if `m <= 1`.
    pub fn new(m: &Natural) -> Result<Self, InvalidModulusError> {
        if m.is_zero() || m.is_one() {
            return Err(InvalidModulusError {
                reason: "modulus must be greater than one",
            });
        }
        let k = m.limbs().len();
        let mu = &(Natural::one() << (64 * k)) / m;
        Ok(BarrettCtx {
            m: m.clone(),
            mu,
            k,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Natural {
        &self.m
    }

    /// Reduces `x` modulo `m`. `x` must be `< m^2` (asserted in debug
    /// builds); this always holds for products of reduced operands.
    pub fn reduce(&self, x: &Natural) -> Natural {
        debug_assert!(x < &(&self.m * &self.m), "barrett input out of range");
        let k = self.k;
        // q1 = floor(x / b^(k-1)); q2 = q1*mu; q3 = floor(q2 / b^(k+1))
        let q1 = x.clone() >> (32 * (k - 1));
        let q2 = &q1 * &self.mu;
        let q3 = q2 >> (32 * (k + 1));
        // r = x - q3*m, corrected into [0, m).
        let r2 = &q3 * &self.m;
        let mut r = x
            .checked_sub(&r2)
            .expect("barrett estimate exceeded the input");
        while r >= self.m {
            r = &r - &self.m;
        }
        r
    }

    /// Modular multiplication `a*b mod m` of two already-reduced values.
    pub fn mul_mod(&self, a: &Natural, b: &Natural) -> Natural {
        self.reduce(&(a * b))
    }

    /// Modular exponentiation `base^exp mod m` via Barrett binary
    /// square-and-multiply.
    pub fn pow_mod(&self, base: &Natural, exp: &Natural) -> Natural {
        if exp.is_zero() {
            return &Natural::one() % &self.m;
        }
        let b = base % &self.m;
        let mut acc = b.clone();
        for i in (0..exp.bit_length() - 1).rev() {
            acc = self.mul_mod(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul_mod(&acc, &b);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_trivial_moduli() {
        assert!(BarrettCtx::new(&Natural::zero()).is_err());
        assert!(BarrettCtx::new(&Natural::one()).is_err());
    }

    #[test]
    fn reduce_matches_divrem() {
        let m = Natural::from_hex_str("fedcba987654321123456789abcdef01").unwrap();
        let ctx = BarrettCtx::new(&m).unwrap();
        let vals = [
            Natural::zero(),
            Natural::one(),
            m.clone() - Natural::one(),
            m.clone(),
            &m * &Natural::from_u64(12345),
            &(&m - &Natural::one()) * &(&m - &Natural::one()),
        ];
        for x in vals {
            assert_eq!(ctx.reduce(&x), &x % &m, "x={x:?}");
        }
    }

    #[test]
    fn mul_mod_matches_divrem() {
        let m = Natural::from_hex_str("100000000000000000000000000000067").unwrap();
        let ctx = BarrettCtx::new(&m).unwrap();
        let a = Natural::from_hex_str("ffffffffffffffffffffffffffffffff").unwrap() % &m;
        let b = Natural::from_hex_str("123456789123456789123456789123456").unwrap() % &m;
        assert_eq!(ctx.mul_mod(&a, &b), &(&a * &b) % &m);
    }

    #[test]
    fn pow_mod_matches_reference() {
        let m = Natural::from_u64(0x1_0000_0000_0063); // even modulus also fine for Barrett
        let ctx = BarrettCtx::new(&m).unwrap();
        let b = Natural::from_u64(0xdead_beef);
        let e = Natural::from_u64(0x1_2345);
        assert_eq!(ctx.pow_mod(&b, &e), b.pow_mod(&e, &m));
        assert_eq!(ctx.pow_mod(&b, &Natural::zero()), Natural::one());
    }

    #[test]
    fn works_on_even_moduli_unlike_montgomery() {
        let m = Natural::from_u64(1 << 20);
        let ctx = BarrettCtx::new(&m).unwrap();
        let a = Natural::from_u64(0xabcdef);
        let b = Natural::from_u64(0x123456);
        assert_eq!(
            ctx.mul_mod(&(&a % &m), &(&b % &m)),
            &(&(&a % &m) * &(&b % &m)) % &m
        );
    }
}
