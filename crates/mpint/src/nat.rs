//! Arbitrary-precision unsigned integers ([`Natural`]).
//!
//! This is the "complex mathematical operations" layer of the paper's
//! software architecture: it composes the limb-level [`crate::mpn`]
//! routines into full arithmetic on unsigned integers of any size.

use crate::karatsuba;
use crate::limb::Limb;
use crate::mpn;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Rem, Shl, Shr, Sub};
use rand::Rng;

/// An arbitrary-precision unsigned integer stored as normalized
/// little-endian `u32` limbs.
///
/// # Examples
///
/// ```
/// use mpint::Natural;
///
/// let a = Natural::from_decimal_str("340282366920938463463374607431768211456")?;
/// assert_eq!(a, Natural::one() << 128);
/// # Ok::<(), mpint::nat::ParseNaturalError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    limbs: Vec<u32>,
}

/// Error returned when parsing a [`Natural`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit found in string: {c:?}"),
        }
    }
}

impl std::error::Error for ParseNaturalError {}

impl Natural {
    /// Creates the value zero.
    pub fn new() -> Self {
        Self::zero()
    }

    /// The value zero.
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Creates a natural from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> 32) as u32];
        trim(&mut limbs);
        Natural { limbs }
    }

    /// Creates a natural from a `u32`.
    pub fn from_u32(v: u32) -> Self {
        Self::from_u64(v as u64)
    }

    /// Creates a natural from little-endian `u32` limbs (high zeros are
    /// trimmed).
    pub fn from_limbs(limbs: Vec<u32>) -> Self {
        let mut limbs = limbs;
        trim(&mut limbs);
        Natural { limbs }
    }

    /// The normalized little-endian limb representation (empty for zero).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Returns the limbs zero-padded (or asserted to fit) to exactly
    /// `n` limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n` limbs.
    pub fn to_limbs_padded(&self, n: usize) -> Vec<u32> {
        assert!(self.limbs.len() <= n, "value does not fit in {n} limbs");
        let mut v = self.limbs.clone();
        v.resize(n, 0);
        v
    }

    /// Converts to generic limbs of radix `2^L::BITS` (little-endian,
    /// normalized). For `u32` limbs this is a copy; for `u16` limbs each
    /// `u32` limb is split in two.
    pub fn to_radix_limbs<L: Limb>(&self) -> Vec<L> {
        let mut out = Vec::with_capacity(self.limbs.len() * (32 / L::BITS as usize));
        for &l in &self.limbs {
            let mut v = l as u64;
            for _ in 0..(32 / L::BITS) {
                out.push(L::from_u64(v));
                v >>= L::BITS;
            }
        }
        while out.last() == Some(&L::ZERO) {
            out.pop();
        }
        out
    }

    /// Builds a natural from generic radix limbs (inverse of
    /// [`Natural::to_radix_limbs`]).
    pub fn from_radix_limbs<L: Limb>(limbs: &[L]) -> Self {
        let per = 32 / L::BITS as usize;
        let mut out: Vec<u32> = Vec::with_capacity(limbs.len().div_ceil(per));
        for chunk in limbs.chunks(per) {
            let mut v = 0u64;
            for (i, &l) in chunk.iter().enumerate() {
                v |= l.to_u64() << (i as u32 * L::BITS);
            }
            out.push(v as u32);
        }
        Self::from_limbs(out)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Parses from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut acc = 0u32;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNaturalError`] if the string is empty or contains a
    /// non-decimal character.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseNaturalError> {
        if s.is_empty() {
            return Err(ParseNaturalError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut v = Natural::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let chunk_len = (bytes.len() - i).min(9);
            let chunk = &s[i..i + chunk_len];
            let mut part: u32 = 0;
            for c in chunk.chars() {
                match c.to_digit(10) {
                    Some(d) => part = part * 10 + d,
                    None => {
                        return Err(ParseNaturalError {
                            kind: ParseErrorKind::InvalidDigit(c),
                        })
                    }
                }
            }
            let scale = 10u32.pow(chunk_len as u32);
            v = &(&v * &Natural::from_u32(scale)) + &Natural::from_u32(part);
            i += chunk_len;
        }
        Ok(v)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseNaturalError`] if the string is empty or contains a
    /// non-hex character.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseNaturalError> {
        if s.is_empty() {
            return Err(ParseNaturalError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs: Vec<u32> = Vec::with_capacity(s.len().div_ceil(8));
        let bytes = s.as_bytes();
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(8);
            let mut v = 0u32;
            for &c in &bytes[start..end] {
                let d = (c as char).to_digit(16).ok_or(ParseNaturalError {
                    kind: ParseErrorKind::InvalidDigit(c as char),
                })?;
                v = (v << 4) | d;
            }
            limbs.push(v);
            end = start;
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Formats as a lowercase hexadecimal string (no prefix; `"0"` for
    /// zero).
    pub fn to_hex_string(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs[self.limbs.len() - 1]);
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:08x}"));
        }
        s
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        mpn::bit_length(&self.limbs)
    }

    /// Tests bit `i` (bits beyond the value are zero).
    pub fn bit(&self, i: usize) -> bool {
        mpn::test_bit(&self.limbs, i)
    }

    /// Extracts the `width`-bit window starting at bit `lo`
    /// (`width <= 32`). Used by windowed exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn bits(&self, lo: usize, width: u32) -> u32 {
        assert!((1..=32).contains(&width));
        let mut v = 0u32;
        for k in (0..width as usize).rev() {
            v = (v << 1) | self.bit(lo + k) as u32;
        }
        v
    }

    /// Checked subtraction: `self - rhs`, or `None` if it would underflow.
    pub fn checked_sub(&self, rhs: &Natural) -> Option<Natural> {
        if self < rhs {
            return None;
        }
        let mut r = self.limbs.clone();
        let borrow = mpn::sub_n_in_place(&mut r[..rhs.limbs.len()], &rhs.limbs);
        if borrow {
            let mut i = rhs.limbs.len();
            let mut b = true;
            while b {
                let (d, bo) = r[i].sub_borrow(1, false);
                r[i] = d;
                b = bo;
                i += 1;
            }
        }
        Some(Self::from_limbs(r))
    }

    /// Euclidean division: returns `(self / rhs, self % rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Natural) -> (Natural, Natural) {
        let (q, r) = mpn::divrem(&self.limbs, &rhs.limbs);
        (Self::from_limbs(q), Self::from_limbs(r))
    }

    /// Modular exponentiation `self^exp mod m` by simple binary
    /// square-and-multiply with division-based reduction. This is the
    /// *reference* implementation; optimized variants live in the
    /// `pubkey` crate.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn pow_mod(&self, exp: &Natural, m: &Natural) -> Natural {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m.is_one() {
            return Natural::zero();
        }
        let mut result = Natural::one();
        let mut base = self % m;
        for i in 0..exp.bit_length() {
            if exp.bit(i) {
                result = &(&result * &base) % m;
            }
            base = &(&base * &base) % m;
        }
        result
    }

    /// A uniformly random natural with exactly `bits` bits (the top bit is
    /// set), from the given RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Natural {
        assert!(bits > 0);
        let limbs = bits.div_ceil(32);
        let mut v: Vec<u32> = (0..limbs).map(|_| rng.random()).collect();
        let top_bits = bits - (limbs - 1) * 32;
        let top = &mut v[limbs - 1];
        if top_bits < 32 {
            *top &= (1u32 << top_bits) - 1;
        }
        *top |= 1 << (top_bits - 1);
        Self::from_limbs(v)
    }

    /// A uniformly random natural in `[0, bound)`, by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Natural) -> Natural {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bit_length();
        let limbs = bits.div_ceil(32);
        let top_bits = bits - (limbs - 1) * 32;
        let mask = if top_bits == 32 {
            u32::MAX
        } else {
            (1u32 << top_bits) - 1
        };
        loop {
            let mut v: Vec<u32> = (0..limbs).map(|_| rng.random()).collect();
            v[limbs - 1] &= mask;
            let cand = Self::from_limbs(v);
            if &cand < bound {
                return cand;
            }
        }
    }
}

fn trim(v: &mut Vec<u32>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        mpn::cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural(0x{})", self.to_hex_string())
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeated division by 10^9.
        let mut digits = String::new();
        let mut cur = self.limbs.clone();
        while !cur.is_empty() {
            let mut q = vec![0u32; cur.len()];
            let r = mpn::divrem_1(&mut q, &cur, 1_000_000_000);
            trim(&mut q);
            if q.is_empty() {
                digits.insert_str(0, &format!("{r}"));
            } else {
                digits.insert_str(0, &format!("{r:09}"));
            }
            cur = q;
        }
        f.pad_integral(true, "", &digits)
    }
}

impl fmt::LowerHex for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex_string())
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        Natural::from_u64(v)
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from_u32(v)
    }
}

impl std::str::FromStr for Natural {
    type Err = ParseNaturalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Natural::from_decimal_str(s)
    }
}

impl Add for &Natural {
    type Output = Natural;

    fn add(self, rhs: &Natural) -> Natural {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut r = long.clone();
        let mut carry = mpn::add_n_in_place(&mut r[..short.len()], short);
        let mut i = short.len();
        while carry && i < r.len() {
            let (s, c) = r[i].add_carry(1, false);
            r[i] = s;
            carry = c;
            i += 1;
        }
        if carry {
            r.push(1);
        }
        Natural::from_limbs(r)
    }
}

impl Sub for &Natural {
    type Output = Natural;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Natural::checked_sub`] for a non-panicking variant.
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs)
            .expect("attempt to subtract with underflow on Natural")
    }
}

impl Mul for &Natural {
    type Output = Natural;

    fn mul(self, rhs: &Natural) -> Natural {
        if self.is_zero() || rhs.is_zero() {
            return Natural::zero();
        }
        Natural::from_limbs(karatsuba::mul(&self.limbs, &rhs.limbs))
    }
}

impl Div for &Natural {
    type Output = Natural;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl Rem for &Natural {
    type Output = Natural;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for Natural {
    type Output = Natural;

    fn shl(self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self;
        }
        let limb_shift = bits / 32;
        let bit_shift = (bits % 32) as u32;
        let mut r = vec![0u32; self.limbs.len() + limb_shift + 1];
        r[limb_shift..limb_shift + self.limbs.len()].copy_from_slice(&self.limbs);
        if bit_shift > 0 {
            let src = r[limb_shift..limb_shift + self.limbs.len()].to_vec();
            let out = mpn::lshift(
                &mut r[limb_shift..limb_shift + self.limbs.len()],
                &src,
                bit_shift,
            );
            let top = limb_shift + self.limbs.len();
            r[top] = out;
        }
        Natural::from_limbs(r)
    }
}

impl Shr<usize> for Natural {
    type Output = Natural;

    fn shr(self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self;
        }
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let bit_shift = (bits % 32) as u32;
        let mut r = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let src = r.clone();
            mpn::rshift(&mut r, &src, bit_shift);
        }
        Natural::from_limbs(r)
    }
}

// Owned/mixed-operand conveniences delegate to the borrowed
// implementations.
macro_rules! forward_binop {
    ($tr:ident, $method:ident) => {
        impl $tr<&Natural> for Natural {
            type Output = Natural;
            fn $method(self, rhs: &Natural) -> Natural {
                $tr::$method(&self, rhs)
            }
        }
        impl $tr<Natural> for &Natural {
            type Output = Natural;
            fn $method(self, rhs: Natural) -> Natural {
                $tr::$method(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl Sub for Natural {
    type Output = Natural;
    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: Natural) -> Natural {
        &self - &rhs
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl Div for Natural {
    type Output = Natural;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Natural) -> Natural {
        &self / &rhs
    }
}

impl Rem for Natural {
    type Output = Natural;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: Natural) -> Natural {
        &self % &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_roundtrips() {
        for v in [0u64, 1, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            assert_eq!(Natural::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Natural::from_u64(u64::MAX);
        let b = Natural::from_u64(u64::MAX - 1);
        let s = &a + &b;
        assert_eq!(&s - &b, a);
        assert_eq!(&s - &a, b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &Natural::from_u64(1) - &Natural::from_u64(2);
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = Natural::from_hex_str("fedcba9876543210fedcba9876543210").unwrap();
        let b = Natural::from_hex_str("123456789abcdef").unwrap();
        let p = &a * &b;
        let (q, r) = p.div_rem(&a);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let v = Natural::from_decimal_str(s).unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn decimal_parse_rejects_garbage() {
        assert!(Natural::from_decimal_str("").is_err());
        assert!(Natural::from_decimal_str("12x4").is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let s = "deadbeefcafebabe0123456789abcdef";
        let v = Natural::from_hex_str(s).unwrap();
        assert_eq!(v.to_hex_string(), s);
        assert_eq!(Natural::zero().to_hex_string(), "0");
    }

    #[test]
    fn bytes_roundtrip() {
        let v = Natural::from_hex_str("0102030405060708090a").unwrap();
        let b = v.to_bytes_be();
        assert_eq!(b, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(Natural::from_bytes_be(&b), v);
    }

    #[test]
    fn shifts() {
        let v = Natural::from_u64(0x1234);
        assert_eq!((v.clone() << 100).bit_length(), 13 + 100);
        assert_eq!((v.clone() << 100) >> 100, v);
        assert_eq!(Natural::from_u64(0xff) >> 8, Natural::zero());
    }

    #[test]
    fn bits_window_extraction() {
        let v = Natural::from_u64(0b1101_0110);
        assert_eq!(v.bits(0, 4), 0b0110);
        assert_eq!(v.bits(4, 4), 0b1101);
        assert_eq!(v.bits(6, 4), 0b0011);
    }

    #[test]
    fn pow_mod_small_cases() {
        let b = Natural::from_u64(7);
        let e = Natural::from_u64(128);
        let m = Natural::from_u64(1000);
        // 7^128 mod 1000 computed independently: pow cycle of 7 mod 1000 has period 20; 128 % 20 = 8; 7^8 = 5764801 -> 801.
        assert_eq!(b.pow_mod(&e, &m).to_u64(), Some(801));
        assert_eq!(b.pow_mod(&Natural::zero(), &m).to_u64(), Some(1));
        assert_eq!(b.pow_mod(&e, &Natural::one()).to_u64(), Some(0));
    }

    #[test]
    fn radix_limbs_roundtrip() {
        let v = Natural::from_hex_str("0123456789abcdef00ff").unwrap();
        let l16: Vec<u16> = v.to_radix_limbs();
        assert_eq!(Natural::from_radix_limbs(&l16), v);
        let l32: Vec<u32> = v.to_radix_limbs();
        assert_eq!(Natural::from_radix_limbs(&l32), v);
        assert_eq!(l32, v.limbs());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::rng();
        let bound = Natural::from_u64(1000);
        for _ in 0..50 {
            let v = Natural::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = rand::rng();
        for bits in [1usize, 31, 32, 33, 512, 1024] {
            let v = Natural::random_bits(&mut rng, bits);
            assert_eq!(v.bit_length(), bits);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Natural::from_u64(u64::MAX);
        let b = Natural::one() << 64;
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
