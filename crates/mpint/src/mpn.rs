//! The basic-operations layer: GMP-style functions over limb slices.
//!
//! All slices store limbs **least-significant first**. These routines are
//! the "basic mathematical operations" of the paper's layered software
//! architecture: they are the granularity at which the instruction-set
//! simulator characterizes performance and at which custom instructions
//! are formulated (`mpn_add_n`, `mpn_addmul_1`, …).
//!
//! Functions follow GMP naming: the `_n` suffix means both operands have
//! the same length, `_1` means the second operand is a single limb.
//!
//! # Examples
//!
//! ```
//! use mpint::mpn;
//!
//! let a = [0xffff_ffffu32, 1];
//! let b = [1u32, 0];
//! let mut r = [0u32; 2];
//! let carry = mpn::add_n(&mut r, &a, &b);
//! assert_eq!(r, [0, 2]);
//! assert!(!carry);
//! ```

use crate::limb::Limb;
use core::cmp::Ordering;

/// Adds `a` and `b` (same length) into `r`, returning the carry-out.
///
/// # Panics
///
/// Panics if `r`, `a` and `b` do not all have the same length.
pub fn add_n<L: Limb>(r: &mut [L], a: &[L], b: &[L]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(r.len(), a.len());
    let mut carry = false;
    for i in 0..a.len() {
        let (s, c) = a[i].add_carry(b[i], carry);
        r[i] = s;
        carry = c;
    }
    carry
}

/// Adds `b` into `r` in place (same length), returning the carry-out.
///
/// # Panics
///
/// Panics if `r` and `b` have different lengths.
pub fn add_n_in_place<L: Limb>(r: &mut [L], b: &[L]) -> bool {
    assert_eq!(r.len(), b.len());
    let mut carry = false;
    for i in 0..b.len() {
        let (s, c) = r[i].add_carry(b[i], carry);
        r[i] = s;
        carry = c;
    }
    carry
}

/// Subtracts `b` from `a` (same length) into `r`, returning the borrow-out.
///
/// # Panics
///
/// Panics if `r`, `a` and `b` do not all have the same length.
pub fn sub_n<L: Limb>(r: &mut [L], a: &[L], b: &[L]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(r.len(), a.len());
    let mut borrow = false;
    for i in 0..a.len() {
        let (d, bo) = a[i].sub_borrow(b[i], borrow);
        r[i] = d;
        borrow = bo;
    }
    borrow
}

/// Subtracts `b` from `r` in place (same length), returning the borrow-out.
///
/// # Panics
///
/// Panics if `r` and `b` have different lengths.
pub fn sub_n_in_place<L: Limb>(r: &mut [L], b: &[L]) -> bool {
    assert_eq!(r.len(), b.len());
    let mut borrow = false;
    for i in 0..b.len() {
        let (d, bo) = r[i].sub_borrow(b[i], borrow);
        r[i] = d;
        borrow = bo;
    }
    borrow
}

/// Adds the single limb `b` to `a` into `r`, returning the carry-out.
///
/// # Panics
///
/// Panics if `r` and `a` have different lengths.
pub fn add_1<L: Limb>(r: &mut [L], a: &[L], b: L) -> bool {
    assert_eq!(r.len(), a.len());
    let mut carry = b;
    for i in 0..a.len() {
        let (s, c) = a[i].add_carry(carry, false);
        r[i] = s;
        carry = if c { L::ONE } else { L::ZERO };
        if carry == L::ZERO && i + 1 < a.len() {
            r[i + 1..].copy_from_slice(&a[i + 1..]);
            return false;
        }
    }
    carry != L::ZERO
}

/// Subtracts the single limb `b` from `a` into `r`, returning the borrow-out.
///
/// # Panics
///
/// Panics if `r` and `a` have different lengths.
pub fn sub_1<L: Limb>(r: &mut [L], a: &[L], b: L) -> bool {
    assert_eq!(r.len(), a.len());
    let mut borrow = b;
    for i in 0..a.len() {
        let (d, bo) = a[i].sub_borrow(borrow, false);
        r[i] = d;
        borrow = if bo { L::ONE } else { L::ZERO };
        if borrow == L::ZERO && i + 1 < a.len() {
            r[i + 1..].copy_from_slice(&a[i + 1..]);
            return false;
        }
    }
    borrow != L::ZERO
}

/// Multiplies `a` by the single limb `b` into `r`, returning the high
/// (carry-out) limb.
///
/// # Panics
///
/// Panics if `r` and `a` have different lengths.
pub fn mul_1<L: Limb>(r: &mut [L], a: &[L], b: L) -> L {
    assert_eq!(r.len(), a.len());
    let mut carry = 0u64;
    for i in 0..a.len() {
        let t = a[i].to_u64() * b.to_u64() + carry;
        r[i] = L::from_u64(t);
        carry = t >> L::BITS;
    }
    L::from_u64(carry)
}

/// Multiply-accumulate: `r += a * b` where `b` is a single limb. Returns
/// the carry-out limb. This is the inner kernel of schoolbook
/// multiplication and the paper's `mpn_addmul_1`.
///
/// # Panics
///
/// Panics if `r` is shorter than `a`.
pub fn addmul_1<L: Limb>(r: &mut [L], a: &[L], b: L) -> L {
    assert!(r.len() >= a.len());
    let mut carry = 0u64;
    for i in 0..a.len() {
        let t = a[i].to_u64() * b.to_u64() + r[i].to_u64() + carry;
        r[i] = L::from_u64(t);
        carry = t >> L::BITS;
    }
    L::from_u64(carry)
}

/// Multiply-subtract: `r -= a * b` where `b` is a single limb. Returns the
/// borrow-out limb. Used by the Knuth division inner loop.
///
/// # Panics
///
/// Panics if `r` is shorter than `a`.
pub fn submul_1<L: Limb>(r: &mut [L], a: &[L], b: L) -> L {
    assert!(r.len() >= a.len());
    let mut carry = 0u64;
    for i in 0..a.len() {
        let prod = a[i].to_u64() * b.to_u64() + carry;
        let lo = L::from_u64(prod);
        carry = prod >> L::BITS;
        let (d, borrow) = r[i].sub_borrow(lo, false);
        r[i] = d;
        carry += borrow as u64;
    }
    L::from_u64(carry)
}

/// Schoolbook multiplication: `r = a * b`.
///
/// # Panics
///
/// Panics if `r.len() != a.len() + b.len()`.
pub fn mul_basecase<L: Limb>(r: &mut [L], a: &[L], b: &[L]) {
    assert_eq!(r.len(), a.len() + b.len());
    for x in r.iter_mut() {
        *x = L::ZERO;
    }
    for (j, &bj) in b.iter().enumerate() {
        let carry = addmul_1(&mut r[j..j + a.len()], a, bj);
        r[j + a.len()] = carry;
    }
}

/// Schoolbook squaring: `r = a * a`, exploiting symmetry of cross terms.
///
/// # Panics
///
/// Panics if `r.len() != 2 * a.len()`.
pub fn sqr_basecase<L: Limb>(r: &mut [L], a: &[L]) {
    assert_eq!(r.len(), 2 * a.len());
    for x in r.iter_mut() {
        *x = L::ZERO;
    }
    let n = a.len();
    // Off-diagonal products (each counted once).
    for i in 0..n {
        if i + 1 < n {
            let carry = addmul_1(&mut r[2 * i + 1..i + n], &a[i + 1..], a[i]);
            r[i + n] = carry;
        }
    }
    // Double the off-diagonal part.
    let mut carry = false;
    for x in r.iter_mut() {
        let hi = x.to_u64() >> (L::BITS - 1) != 0;
        *x = L::from_u64((x.to_u64() << 1) | carry as u64);
        carry = hi;
    }
    // Add the diagonal squares.
    let mut c = 0u64;
    for i in 0..n {
        let sq = a[i].to_u64() * a[i].to_u64();
        let t0 = r[2 * i].to_u64() + (sq & L::MAX.to_u64()) + c;
        r[2 * i] = L::from_u64(t0);
        let t1 = r[2 * i + 1].to_u64() + (sq >> L::BITS) + (t0 >> L::BITS);
        r[2 * i + 1] = L::from_u64(t1);
        c = t1 >> L::BITS;
    }
    debug_assert_eq!(c, 0);
}

/// Shifts `a` left by `cnt` bits (0 < cnt < limb bits) into `r`, returning
/// the bits shifted out of the top limb.
///
/// # Panics
///
/// Panics if `cnt` is zero or at least the limb width, or if `r` and `a`
/// have different lengths.
pub fn lshift<L: Limb>(r: &mut [L], a: &[L], cnt: u32) -> L {
    assert!(cnt > 0 && cnt < L::BITS, "shift count out of range");
    assert_eq!(r.len(), a.len());
    let mut out = L::ZERO;
    for i in 0..a.len() {
        let v = a[i];
        r[i] = (v << cnt) | out;
        out = v >> (L::BITS - cnt);
    }
    out
}

/// Shifts `a` right by `cnt` bits (0 < cnt < limb bits) into `r`, returning
/// the bits shifted out of the bottom limb (left-aligned).
///
/// # Panics
///
/// Panics if `cnt` is zero or at least the limb width, or if `r` and `a`
/// have different lengths.
pub fn rshift<L: Limb>(r: &mut [L], a: &[L], cnt: u32) -> L {
    assert!(cnt > 0 && cnt < L::BITS, "shift count out of range");
    assert_eq!(r.len(), a.len());
    let mut out = L::ZERO;
    for i in (0..a.len()).rev() {
        let v = a[i];
        r[i] = (v >> cnt) | out;
        out = v << (L::BITS - cnt);
    }
    out
}

/// Compares two equal-length limb vectors numerically.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn cmp_n<L: Limb>(a: &[L], b: &[L]) -> Ordering {
    assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

/// Compares two limb vectors of possibly different lengths (both
/// interpreted with implicit high zero limbs).
pub fn cmp<L: Limb>(a: &[L], b: &[L]) -> Ordering {
    let a = normalized(a);
    let b = normalized(b);
    match a.len().cmp(&b.len()) {
        Ordering::Equal => cmp_n(a, b),
        o => o,
    }
}

/// Reference implementation of the 3-by-2 quotient-limb estimate used
/// by schoolbook division (Knuth's D3 step with correction): divides
/// `(n2, n1, n0)` by the normalized two-limb divisor `(d1, d0)`. All
/// metered basic-operation providers and the ISS kernel must agree with
/// this function exactly.
pub fn div_qhat_reference<L: Limb>(n2: L, n1: L, n0: L, d1: L, d0: L) -> L {
    debug_assert!(d1.to_u64() >> (L::BITS - 1) == 1, "divisor not normalized");
    let b = 1u64 << L::BITS;
    let num = (n2.to_u64() << L::BITS) | n1.to_u64();
    let mut qhat = num / d1.to_u64();
    let mut rhat = num - qhat * d1.to_u64();
    // Knuth D3: decrease qhat while it does not fit a limb or while the
    // two-limb test shows it is too large; the product test is only
    // evaluated while rhat fits a limb. Exits with qhat < b.
    while qhat >= b || (rhat < b && qhat * d0.to_u64() > ((rhat << L::BITS) | n0.to_u64())) {
        qhat -= 1;
        rhat += d1.to_u64();
    }
    L::from_u64(qhat)
}

/// Returns the slice with high zero limbs trimmed.
pub fn normalized<L: Limb>(a: &[L]) -> &[L] {
    let mut n = a.len();
    while n > 0 && a[n - 1] == L::ZERO {
        n -= 1;
    }
    &a[..n]
}

/// Number of significant bits in `a` (0 for the empty/zero vector).
pub fn bit_length<L: Limb>(a: &[L]) -> usize {
    let a = normalized(a);
    match a.last() {
        None => 0,
        Some(&top) => a.len() * L::BITS as usize - top.leading_zeros() as usize,
    }
}

/// Tests bit `i` of `a` (bits beyond the vector are zero).
pub fn test_bit<L: Limb>(a: &[L], i: usize) -> bool {
    let limb = i / L::BITS as usize;
    if limb >= a.len() {
        return false;
    }
    (a[limb].to_u64() >> (i as u32 % L::BITS)) & 1 == 1
}

/// Divides `n` by the single limb `d`, writing the quotient to `q` and
/// returning the remainder.
///
/// # Panics
///
/// Panics if `d` is zero or if `q` and `n` have different lengths.
pub fn divrem_1<L: Limb>(q: &mut [L], n: &[L], d: L) -> L {
    assert!(d != L::ZERO, "division by zero");
    assert_eq!(q.len(), n.len());
    let mut rem = L::ZERO;
    for i in (0..n.len()).rev() {
        let (qi, r) = d.div_wide(rem, n[i]);
        q[i] = qi;
        rem = r;
    }
    rem
}

/// Knuth algorithm D division for a multi-limb divisor.
///
/// Requirements (asserted):
/// - `d.len() >= 2` and the top bit of `d`'s most significant limb is set
///   (the divisor is *normalized*);
/// - `n` holds the dividend with **one extra high limb** appended (which
///   may be non-zero only as produced by the normalizing left shift);
/// - `q.len() == n.len() - 1 - d.len() + 1`.
///
/// On return `q` holds the quotient and the low `d.len()` limbs of `n`
/// hold the remainder (the rest of `n` is cleared).
///
/// # Panics
///
/// Panics if the requirements above do not hold.
pub fn divrem_knuth<L: Limb>(q: &mut [L], n: &mut [L], d: &[L]) {
    let dn = d.len();
    assert!(dn >= 2, "use divrem_1 for single-limb divisors");
    let d1 = d[dn - 1].to_u64();
    assert!(
        d1 >> (L::BITS - 1) == 1,
        "divisor must be normalized (top bit set)"
    );
    let m = n.len() - 1;
    assert!(m >= dn, "dividend shorter than divisor");
    assert_eq!(q.len(), m - dn + 1);
    let d0 = d[dn - 2].to_u64();
    let b = 1u64 << L::BITS;

    for j in (0..=m - dn).rev() {
        let n2 = n[j + dn].to_u64();
        let n1 = n[j + dn - 1].to_u64();
        let n0 = n[j + dn - 2].to_u64();
        let num = (n2 << L::BITS) | n1;
        let mut qhat = num / d1;
        let mut rhat = num - qhat * d1;
        // Knuth D3: decrease qhat while it does not fit a limb or while
        // the two-limb test shows it is too large. The product test is
        // only meaningful (and only evaluated) while rhat fits a limb.
        while qhat >= b || (rhat < b && qhat * d0 > ((rhat << L::BITS) | n0)) {
            qhat -= 1;
            rhat += d1;
        }
        let borrow = submul_1(&mut n[j..j + dn], d, L::from_u64(qhat));
        let (t, under) = n[j + dn].sub_borrow(borrow, false);
        n[j + dn] = t;
        if under {
            // qhat was one too large; add the divisor back.
            qhat -= 1;
            let carry = {
                let (head, _) = n.split_at_mut(j + dn);
                add_n_in_place(&mut head[j..], d)
            };
            let (t, _) = n[j + dn].add_carry(L::from_u64(carry as u64), false);
            n[j + dn] = t;
        }
        q[j] = L::from_u64(qhat);
    }
    // Clear the quotient area of n so only the remainder survives.
    for x in n[dn..].iter_mut() {
        *x = L::ZERO;
    }
}

/// Convenience full division: returns `(quotient, remainder)` limb vectors
/// for arbitrary (normalized-or-not) operands. Handles the normalizing
/// shift internally.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn divrem<L: Limb>(n: &[L], d: &[L]) -> (Vec<L>, Vec<L>) {
    let d = normalized(d);
    assert!(!d.is_empty(), "division by zero");
    let n = normalized(n);
    if cmp(n, d) == Ordering::Less {
        return (Vec::new(), n.to_vec());
    }
    if d.len() == 1 {
        let mut q = vec![L::ZERO; n.len()];
        let r = divrem_1(&mut q, n, d[0]);
        let rv = if r == L::ZERO { Vec::new() } else { vec![r] };
        return (normalized(&q).to_vec(), rv);
    }
    // Normalize: shift both so the divisor's top bit is set.
    let shift = d[d.len() - 1].leading_zeros();
    let mut dv = d.to_vec();
    let mut nv = vec![L::ZERO; n.len() + 1];
    if shift > 0 {
        lshift(&mut dv, d, shift);
        let out = lshift(&mut nv[..n.len()], n, shift);
        nv[n.len()] = out;
    } else {
        nv[..n.len()].copy_from_slice(n);
    }
    let mut q = vec![L::ZERO; nv.len() - 1 - dv.len() + 1];
    divrem_knuth(&mut q, &mut nv, &dv);
    let mut rem = nv[..dv.len()].to_vec();
    if shift > 0 {
        let tmp = rem.clone();
        rshift(&mut rem, &tmp, shift);
    }
    (normalized(&q).to_vec(), normalized(&rem).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_u128(a: &[u32]) -> u128 {
        a.iter()
            .rev()
            .fold(0u128, |acc, &l| (acc << 32) | l as u128)
    }

    fn from_u128(v: u128, len: usize) -> Vec<u32> {
        (0..len).map(|i| (v >> (32 * i)) as u32).collect()
    }

    #[test]
    fn add_n_carries_across_limbs() {
        let a = from_u128(u64::MAX as u128, 3);
        let b = from_u128(1, 3);
        let mut r = [0u32; 3];
        let c = add_n(&mut r, &a, &b);
        assert!(!c);
        assert_eq!(to_u128(&r), u64::MAX as u128 + 1);
    }

    #[test]
    fn add_n_reports_overflow() {
        let a = [u32::MAX; 2];
        let b = from_u128(1, 2);
        let mut r = [0u32; 2];
        assert!(add_n(&mut r, &a, &b));
        assert_eq!(to_u128(&r), 0);
    }

    #[test]
    fn sub_n_borrows() {
        let a = from_u128(1 << 64, 3);
        let b = from_u128(1, 3);
        let mut r = [0u32; 3];
        assert!(!sub_n(&mut r, &a, &b));
        assert_eq!(to_u128(&r), (1 << 64) - 1);
    }

    #[test]
    fn mul_1_matches_u128() {
        let a = from_u128(0x1234_5678_9abc_def0, 2);
        let mut r = [0u32; 2];
        let hi = mul_1(&mut r, &a, 0xdead_beef);
        let expect = 0x1234_5678_9abc_def0u128 * 0xdead_beefu128;
        assert_eq!(to_u128(&r) | ((hi as u128) << 64), expect);
    }

    #[test]
    fn addmul_1_accumulates() {
        let a = from_u128(0xffff_ffff_ffff_ffff, 2);
        let mut r = from_u128(0x1111_1111_2222_2222, 2);
        let hi = addmul_1(&mut r, &a, 3);
        let expect = 0x1111_1111_2222_2222u128 + 0xffff_ffff_ffff_ffffu128 * 3;
        assert_eq!(to_u128(&r) | ((hi as u128) << 64), expect);
    }

    #[test]
    fn submul_1_is_inverse_of_addmul_1() {
        let a = from_u128(0xdead_beef_0bad_f00d, 2);
        let orig = from_u128(0x7777_7777_7777_7777, 3);
        let mut r = orig.clone();
        let c = addmul_1(&mut r[..2], &a, 0x1234_5678);
        r[2] += c;
        let b = submul_1(&mut r[..2], &a, 0x1234_5678);
        r[2] -= b;
        assert_eq!(r, orig);
    }

    #[test]
    fn mul_basecase_matches_u128() {
        let a = from_u128(0xffff_ffff_ffff_ffff, 2);
        let b = from_u128(0xffff_ffff, 1);
        let mut r = vec![0u32; 3];
        mul_basecase(&mut r, &a, &b);
        assert_eq!(to_u128(&r), 0xffff_ffff_ffff_ffffu128 * 0xffff_ffff);
    }

    #[test]
    fn sqr_basecase_matches_mul() {
        let a = from_u128(0xdead_beef_cafe_babe, 2);
        let mut r1 = vec![0u32; 4];
        let mut r2 = vec![0u32; 4];
        sqr_basecase(&mut r1, &a);
        mul_basecase(&mut r2, &a, &a);
        assert_eq!(r1, r2);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = from_u128(0x0123_4567_89ab_cdef_fedc_ba98, 3);
        let mut l = [0u32; 3];
        let mut r = [0u32; 3];
        let out = lshift(&mut l, &a, 7);
        assert_eq!(out, 0); // top limb has >= 7 leading zeros
        rshift(&mut r, &l, 7);
        assert_eq!(r.to_vec(), a);
    }

    #[test]
    fn divrem_1_matches_u128() {
        let n = from_u128(0x0123_4567_89ab_cdef_0f1e_2d3c, 3);
        let mut q = [0u32; 3];
        let r = divrem_1(&mut q, &n, 0x8765_4321);
        let nv = to_u128(&n);
        assert_eq!(to_u128(&q), nv / 0x8765_4321);
        assert_eq!(r as u128, nv % 0x8765_4321);
    }

    #[test]
    fn divrem_matches_u128() {
        let n = from_u128(0xfedc_ba98_7654_3210_0123_4567_89ab_cdef, 4);
        let d = from_u128(0x1_0000_0001_0000_0003, 3);
        let (q, r) = divrem(&n, &d);
        let nv = to_u128(&n);
        let dv = to_u128(&d);
        assert_eq!(to_u128(&q), nv / dv);
        assert_eq!(to_u128(&r), nv % dv);
    }

    #[test]
    fn divrem_small_dividend() {
        let n = from_u128(5, 1);
        let d = from_u128(0x1_0000_0000, 2);
        let (q, r) = divrem(&n, &d);
        assert!(q.is_empty());
        assert_eq!(to_u128(&r), 5);
    }

    #[test]
    fn divrem_exact() {
        let d = from_u128(0xdead_beef_1234_5679, 2);
        let q0 = from_u128(0x9999_8888_7777_6666, 2);
        let mut n = vec![0u32; 4];
        mul_basecase(&mut n, &d, &q0);
        let (q, r) = divrem(&n, &d);
        assert_eq!(to_u128(&q), to_u128(&q0));
        assert!(r.is_empty());
    }

    #[test]
    fn bit_length_and_test_bit() {
        let a = from_u128(0x8000_0000_0000_0001, 3);
        assert_eq!(bit_length(&a), 64);
        assert!(test_bit(&a, 0));
        assert!(test_bit(&a, 63));
        assert!(!test_bit(&a, 62));
        assert!(!test_bit(&a, 200));
        assert_eq!(bit_length::<u32>(&[]), 0);
    }

    #[test]
    fn cmp_handles_unequal_lengths() {
        let a = from_u128(5, 4);
        let b = from_u128(5, 1);
        assert_eq!(cmp(&a, &b), Ordering::Equal);
        let c = from_u128(6, 1);
        assert_eq!(cmp(&a, &c), Ordering::Less);
    }

    #[test]
    fn u16_limbs_work_too() {
        let a: Vec<u16> = vec![0xffff, 0xffff, 0x1];
        let b: Vec<u16> = vec![1, 0, 0];
        let mut r = vec![0u16; 3];
        assert!(!add_n(&mut r, &a, &b));
        assert_eq!(r, vec![0, 0, 2]);
        let (q, rem) = divrem(&a, &b);
        assert_eq!(normalized(&q), normalized(&a[..]));
        assert!(rem.is_empty());
    }

    #[test]
    fn add_1_early_exit_copies_rest() {
        let a = from_u128(0x5_0000_0001, 3);
        let mut r = [9u32; 3];
        let c = add_1(&mut r, &a, 7);
        assert!(!c);
        assert_eq!(to_u128(&r), 0x5_0000_0008);
    }

    #[test]
    fn sub_1_borrows_through() {
        let a = from_u128(1 << 32, 2);
        let mut r = [0u32; 2];
        let b = sub_1(&mut r, &a, 1);
        assert!(!b);
        assert_eq!(to_u128(&r), (1 << 32) - 1);
    }
}
