//! Greatest common divisor, extended Euclid and modular inverse.
//!
//! The paper's call graph for optimized modular exponentiation (Fig. 4)
//! includes `mpz_gcdext`, used to derive Montgomery constants and CRT
//! coefficients; this module provides those routines.

use crate::int::Integer;
use crate::nat::Natural;

/// Computes `gcd(a, b)` by the Euclidean algorithm.
///
/// # Examples
///
/// ```
/// use mpint::{gcd, Natural};
///
/// let g = gcd::gcd(&Natural::from_u64(48), &Natural::from_u64(36));
/// assert_eq!(g, Natural::from_u64(12));
/// ```
pub fn gcd(a: &Natural, b: &Natural) -> Natural {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y = g = gcd(a, b)`.
///
/// # Examples
///
/// ```
/// use mpint::{gcd, Integer, Natural};
///
/// let a = Natural::from_u64(240);
/// let b = Natural::from_u64(46);
/// let (g, x, y) = gcd::gcd_ext(&a, &b);
/// assert_eq!(g, Natural::from_u64(2));
/// let lhs = &(&Integer::from(a) * &x) + &(&Integer::from(b) * &y);
/// assert_eq!(lhs, Integer::from(g));
/// ```
pub fn gcd_ext(a: &Natural, b: &Natural) -> (Natural, Integer, Integer) {
    let mut r0 = Integer::from(a.clone());
    let mut r1 = Integer::from(b.clone());
    let mut s0 = Integer::one();
    let mut s1 = Integer::zero();
    let mut t0 = Integer::zero();
    let mut t1 = Integer::one();
    while !r1.is_zero() {
        let r0n = r0.magnitude();
        let r1n = r1.magnitude();
        let (q, _) = r0n.div_rem(r1n);
        let q = Integer::from(q);
        let r2 = &r0 - &(&q * &r1);
        let s2 = &s0 - &(&q * &s1);
        let t2 = &t0 - &(&q * &t1);
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s1 = s2;
        t0 = t1;
        t1 = t2;
    }
    let g = r0
        .to_natural()
        .expect("gcd remainder is nonnegative by construction");
    (g, s0, t0)
}

/// Computes the modular inverse of `a` modulo `m`, if it exists
/// (`gcd(a, m) == 1`). The result is in `[0, m)`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_inverse(a: &Natural, m: &Natural) -> Option<Natural> {
    assert!(!m.is_zero(), "modulus must be nonzero");
    if m.is_one() {
        return Some(Natural::zero());
    }
    let (g, x, _) = gcd_ext(&(a % m), m);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(m))
}

/// Binary (Stein) gcd — division-free variant used when the target
/// platform lacks a fast divider.
pub fn gcd_binary(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let mut shift = 0usize;
    while a.is_even() && b.is_even() {
        a = a >> 1;
        b = b >> 1;
        shift += 1;
    }
    while a.is_even() {
        a = a >> 1;
    }
    loop {
        while b.is_even() {
            b = b >> 1;
        }
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b = &b - &a;
        if b.is_zero() {
            break;
        }
    }
    a << shift
}

/// Least common multiple.
///
/// # Panics
///
/// Panics if both inputs are zero.
pub fn lcm(a: &Natural, b: &Natural) -> Natural {
    let g = gcd(a, b);
    assert!(!g.is_zero(), "lcm(0, 0) is undefined");
    &(a / &g) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from_u64(v)
    }

    #[test]
    fn gcd_matches_euclid_on_small_values() {
        fn ref_gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        }
        for a in [0u64, 1, 12, 35, 100, 97] {
            for b in [0u64, 1, 18, 35, 64, 89] {
                assert_eq!(gcd(&nat(a), &nat(b)).to_u64(), Some(ref_gcd(a, b)));
                if a != 0 || b != 0 {
                    assert_eq!(gcd_binary(&nat(a), &nat(b)).to_u64(), Some(ref_gcd(a, b)));
                }
            }
        }
    }

    #[test]
    fn gcd_ext_bezout_identity() {
        let a = Natural::from_hex_str("ffeeddccbbaa99887766554433221101").unwrap();
        let b = Natural::from_hex_str("fedcba9876543210").unwrap();
        let (g, x, y) = gcd_ext(&a, &b);
        let lhs = &(&Integer::from(a.clone()) * &x) + &(&Integer::from(b.clone()) * &y);
        assert_eq!(lhs, Integer::from(g.clone()));
        assert!((&a % &g).is_zero());
        assert!((&b % &g).is_zero());
    }

    #[test]
    fn mod_inverse_works_for_coprime() {
        let m = nat(1_000_003); // prime
        for a in [2u64, 3, 65537, 999_999] {
            let inv = mod_inverse(&nat(a), &m).unwrap();
            let prod = &(&nat(a) * &inv) % &m;
            assert!(prod.is_one(), "a={a}");
        }
    }

    #[test]
    fn mod_inverse_rejects_non_coprime() {
        assert!(mod_inverse(&nat(6), &nat(9)).is_none());
        assert!(mod_inverse(&nat(0), &nat(7)).is_none());
    }

    #[test]
    fn mod_inverse_modulus_one() {
        assert_eq!(mod_inverse(&nat(5), &nat(1)), Some(Natural::zero()));
    }

    #[test]
    fn lcm_small() {
        assert_eq!(lcm(&nat(4), &nat(6)).to_u64(), Some(12));
        assert_eq!(lcm(&nat(7), &nat(13)).to_u64(), Some(91));
    }
}
