//! Montgomery modular multiplication.
//!
//! Montgomery reduction is one of the five modular-multiplication
//! strategies in the paper's modular-exponentiation design space. It
//! replaces division by the modulus with shifts and limb-level
//! multiply-accumulate (`mpn_addmul_1`) — exactly the kernels the paper
//! accelerates with custom instructions.

use crate::limb::Limb;
use crate::mpn;
use crate::nat::Natural;
use core::fmt;

/// Error returned when constructing a [`MontyCtx`] from an unsuitable
/// modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidModulusError {
    reason: &'static str,
}

impl fmt::Display for InvalidModulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid montgomery modulus: {}", self.reason)
    }
}

impl std::error::Error for InvalidModulusError {}

/// Precomputed context for Montgomery arithmetic modulo an odd modulus.
///
/// Values in *Montgomery form* are plain [`Natural`]s `< m` representing
/// `a·R mod m` with `R = 2^(32·len)`.
///
/// # Examples
///
/// ```
/// use mpint::{MontyCtx, Natural};
///
/// let m = Natural::from_u64(0xffff_ffff_ffff_ffc5); // odd
/// let ctx = MontyCtx::new(&m)?;
/// let a = Natural::from_u64(123456789);
/// let b = Natural::from_u64(987654321);
/// let am = ctx.to_monty(&a);
/// let bm = ctx.to_monty(&b);
/// let pm = ctx.mul(&am, &bm);
/// assert_eq!(ctx.from_monty(&pm), &(&a * &b) % &m);
/// # Ok::<(), mpint::monty::InvalidModulusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MontyCtx {
    n: Vec<u32>,
    n0inv: u32,
    rr: Vec<u32>,
    modulus: Natural,
}

/// Computes the inverse of an odd `u32` modulo `2^32` by Newton iteration.
fn inv_u32(x: u32) -> u32 {
    debug_assert!(x & 1 == 1);
    let mut y = x; // correct to 3 bits
    for _ in 0..5 {
        y = y.wrapping_mul(2u32.wrapping_sub(x.wrapping_mul(y)));
    }
    debug_assert_eq!(x.wrapping_mul(y), 1);
    y
}

impl MontyCtx {
    /// Builds a Montgomery context for the odd modulus `m > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulusError`] if `m` is even or `<= 1`.
    pub fn new(m: &Natural) -> Result<Self, InvalidModulusError> {
        if m.is_even() {
            return Err(InvalidModulusError {
                reason: "modulus must be odd",
            });
        }
        if m.is_one() || m.is_zero() {
            return Err(InvalidModulusError {
                reason: "modulus must be greater than one",
            });
        }
        let n = m.limbs().to_vec();
        let len = n.len();
        let n0inv = inv_u32(n[0]).wrapping_neg();
        // R^2 mod m with R = 2^(32*len).
        let r2 = (Natural::one() << (64 * len)) % m.clone();
        let rr = r2.to_limbs_padded(len);
        Ok(MontyCtx {
            n,
            n0inv,
            rr,
            modulus: m.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Natural {
        &self.modulus
    }

    /// The modulus size in 32-bit limbs.
    pub fn limb_len(&self) -> usize {
        self.n.len()
    }

    /// Converts `a` (must be `< m`… larger values are reduced first) into
    /// Montgomery form.
    pub fn to_monty(&self, a: &Natural) -> Natural {
        let a = if a >= &self.modulus {
            a % &self.modulus
        } else {
            a.clone()
        };
        self.mul_limbs(&a.to_limbs_padded(self.n.len()), &self.rr)
    }

    /// Converts a Montgomery-form value back to the plain representation.
    pub fn from_monty(&self, a: &Natural) -> Natural {
        let mut one = vec![0u32; self.n.len()];
        one[0] = 1;
        self.mul_limbs(&a.to_limbs_padded(self.n.len()), &one)
    }

    /// Montgomery product of two Montgomery-form values:
    /// `a·b·R^{-1} mod m`.
    pub fn mul(&self, a: &Natural, b: &Natural) -> Natural {
        self.mul_limbs(
            &a.to_limbs_padded(self.n.len()),
            &b.to_limbs_padded(self.n.len()),
        )
    }

    /// Montgomery square.
    pub fn sqr(&self, a: &Natural) -> Natural {
        self.mul(a, a)
    }

    /// Modular exponentiation `base^exp mod m` via Montgomery binary
    /// square-and-multiply. `base` is a plain (non-Montgomery) value.
    pub fn pow_mod(&self, base: &Natural, exp: &Natural) -> Natural {
        if exp.is_zero() {
            return &Natural::one() % &self.modulus;
        }
        let bm = self.to_monty(base);
        let mut acc = bm.clone();
        for i in (0..exp.bit_length() - 1).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, &bm);
            }
        }
        self.from_monty(&acc)
    }

    /// Core operation on padded limb vectors: multiply then Montgomery
    /// reduce.
    fn mul_limbs(&self, a: &[u32], b: &[u32]) -> Natural {
        let len = self.n.len();
        debug_assert_eq!(a.len(), len);
        debug_assert_eq!(b.len(), len);
        // t = a * b, with room for len reduction carries plus one limb.
        let mut t = vec![0u32; 2 * len + 1];
        mpn::mul_basecase(&mut t[..2 * len], a, b);
        self.reduce_in_place(&mut t)
    }

    /// Montgomery-reduces the double-length value in `t`
    /// (`t.len() == 2*len + 1`), returning `t · R^{-1} mod m`.
    fn reduce_in_place(&self, t: &mut [u32]) -> Natural {
        let len = self.n.len();
        debug_assert_eq!(t.len(), 2 * len + 1);
        for i in 0..len {
            let m = t[i].wrapping_mul(self.n0inv);
            let carry = mpn::addmul_1(&mut t[i..i + len], &self.n, m);
            // Propagate the carry limb into the upper part.
            let mut j = i + len;
            let mut c = carry;
            while c != 0 {
                let (s, over) = t[j].add_carry(c, false);
                t[j] = s;
                c = over as u32;
                j += 1;
            }
            debug_assert_eq!(t[i], 0);
        }
        let mut r = t[len..2 * len].to_vec();
        let extra = t[2 * len];
        if extra != 0 || mpn::cmp(&r, &self.n) != core::cmp::Ordering::Less {
            let borrow = mpn::sub_n_in_place(&mut r, &self.n);
            debug_assert_eq!(borrow as u32, extra);
        }
        Natural::from_limbs(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat_hex(s: &str) -> Natural {
        Natural::from_hex_str(s).unwrap()
    }

    #[test]
    fn inv_u32_inverts_odd_values() {
        for x in [1u32, 3, 5, 0xdead_beef | 1, u32::MAX] {
            assert_eq!(x.wrapping_mul(inv_u32(x)), 1, "x={x}");
        }
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontyCtx::new(&Natural::from_u64(10)).is_err());
        assert!(MontyCtx::new(&Natural::one()).is_err());
        assert!(MontyCtx::new(&Natural::zero()).is_err());
    }

    #[test]
    fn roundtrip_to_from_monty() {
        let m = nat_hex("f000000000000000000000000000000d"); // odd 128-bit
        let ctx = MontyCtx::new(&m).unwrap();
        for v in [0u64, 1, 2, 0xffff_ffff, u64::MAX] {
            let a = Natural::from_u64(v);
            assert_eq!(ctx.from_monty(&ctx.to_monty(&a)), a, "v={v:#x}");
        }
    }

    #[test]
    fn mul_matches_divrem_reduction() {
        let m = nat_hex("c59cdafb3e8b2f1d00000000000000000000000000000061");
        let ctx = MontyCtx::new(&m).unwrap();
        let a = nat_hex("123456789abcdef0fedcba9876543210aaaaaaaabbbbbbbb") % &m;
        let b = nat_hex("9f8e7d6c5b4a39281726354453627181deadbeefcafebabe") % &m;
        let expect = &(&a * &b) % &m;
        let got = ctx.from_monty(&ctx.mul(&ctx.to_monty(&a), &ctx.to_monty(&b)));
        assert_eq!(got, expect);
    }

    #[test]
    fn pow_mod_matches_reference() {
        let m = Natural::from_u64(0xffff_ffff_ffff_ffc5);
        let ctx = MontyCtx::new(&m).unwrap();
        let b = Natural::from_u64(0x1234_5678_9abc_def1);
        let e = Natural::from_u64(0xfedc_ba98);
        assert_eq!(ctx.pow_mod(&b, &e), b.pow_mod(&e, &m));
        assert_eq!(ctx.pow_mod(&b, &Natural::zero()), Natural::one());
        assert_eq!(ctx.pow_mod(&b, &Natural::one()), &b % &m);
    }

    #[test]
    fn values_larger_than_modulus_are_reduced() {
        let m = Natural::from_u64(0x1_0000_000f); // odd
        let ctx = MontyCtx::new(&m).unwrap();
        let big = Natural::from_hex_str("ffffffffffffffffffffffff").unwrap();
        let got = ctx.from_monty(&ctx.to_monty(&big));
        assert_eq!(got, &big % &m);
    }

    #[test]
    fn single_limb_modulus() {
        let m = Natural::from_u32(0xfffffffb); // prime
        let ctx = MontyCtx::new(&m).unwrap();
        let a = Natural::from_u32(0x12345678);
        let b = Natural::from_u32(0x9abcdef1);
        let expect = &(&a * &b) % &m;
        assert_eq!(
            ctx.from_monty(&ctx.mul(&ctx.to_monty(&a), &ctx.to_monty(&b))),
            expect
        );
    }
}
