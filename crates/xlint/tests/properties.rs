//! Property tests for the dataflow core.
//!
//! Random programs are generated in two shapes — straight-line, and
//! forward-branching (a DAG) — and the solvers are checked against
//! independent ground-truth computations:
//!
//! - straight-line: liveness/dead-stores, reaching definitions and
//!   must-defined have *exact* closed forms (a linear scan);
//! - forward-branching: the CFG is acyclic, so a single reverse
//!   (resp. forward) topological sweep with the textbook equations is
//!   exact, and the distributive frameworks make the fixpoint solution
//!   coincide with it.

use proptest::prelude::*;

use xlint::cfg::Cfg;
use xlint::dataflow::{Liveness, MustDefined, ReachingDefs, RegSet, ENTRY_DEF};
use xlint::{analyze, Rule, SecretSpec};
use xr32::asm::{assemble, Program};
use xr32::isa::Reg;

/// One generated instruction: `(kind, rd, rs1, rs2, imm)` over
/// registers `a0..a9`. Kind 5 becomes a forward conditional branch
/// when branches are enabled, a `mov` otherwise.
type RawOp = (u8, u8, u8, u8, i32);

const KINDS: u8 = 6;

fn op_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((0u8..KINDS, 0u8..10, 0u8..10, 0u8..10, -8i32..8), 1..24)
}

/// Renders ops to assembly. With `branches`, kind-5 ops become
/// `beq rs1, rs2, .l<target>` with a strictly forward target; every
/// instruction gets a local label so targets always resolve.
fn render(ops: &[RawOp], branches: bool) -> String {
    let n = ops.len();
    let mut out = String::from("main:\n");
    for (i, &(kind, rd, rs1, rs2, imm)) in ops.iter().enumerate() {
        let (d, s1, s2) = (rd % 10, rs1 % 10, rs2 % 10);
        out.push_str(&format!(".l{i}:\n"));
        let line = match kind {
            0 => format!("movi a{d}, {imm}"),
            1 => format!("add a{d}, a{s1}, a{s2}"),
            2 => format!("xor a{d}, a{s1}, a{s2}"),
            3 => format!("addi a{d}, a{s1}, {imm}"),
            4 => format!("sltu a{d}, a{s1}, a{s2}"),
            _ if branches => {
                let span = (n - i) as i32;
                let target = i + 1 + (imm.rem_euclid(span)) as usize;
                format!("beq a{s1}, a{s2}, .l{target}")
            }
            _ => format!("mov a{d}, a{s1}"),
        };
        out.push_str("    ");
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(".l{n}:\n    halt\n"));
    out
}

/// `(reads, write)` of the instruction at `pc`, mirroring the
/// generator (not the analyzer) so the ground truth is independent.
fn sem(ops: &[RawOp], pc: usize, branches: bool) -> (Vec<u8>, Option<u8>) {
    if pc == ops.len() {
        return (Vec::new(), None); // halt
    }
    let (kind, rd, rs1, rs2, _) = ops[pc];
    let (d, s1, s2) = (rd % 10, rs1 % 10, rs2 % 10);
    match kind {
        0 => (vec![], Some(d)),
        1 | 2 | 4 => (vec![s1, s2], Some(d)),
        3 => (vec![s1], Some(d)),
        _ if branches => (vec![s1, s2], None),
        _ => (vec![s1], Some(d)),
    }
}

/// Successors of `pc`, mirroring the generator's branch encoding.
fn succs(ops: &[RawOp], pc: usize, branches: bool) -> Vec<usize> {
    if pc == ops.len() {
        return Vec::new(); // halt
    }
    let (kind, _, _, _, imm) = ops[pc];
    let mut out = vec![pc + 1];
    if branches && kind == 5 {
        let span = (ops.len() - pc) as i32;
        let target = pc + 1 + (imm.rem_euclid(span)) as usize;
        if target != pc + 1 {
            out.push(target);
        }
    }
    out
}

fn reg(i: u8) -> Reg {
    Reg::new(i)
}

/// Exit-live assumption matching `xlint`'s lint engine: `a0`/`a1`
/// carry return values, `sp` must balance.
fn exit_live() -> RegSet {
    let mut s = RegSet::of(reg(0));
    s.insert(reg(1));
    s.insert(Reg::SP);
    s
}

fn build(src: &str) -> (Program, Cfg, SecretSpec) {
    let program = assemble(src).expect("generated program assembles");
    let cfg = Cfg::build(&program);
    (program, cfg, SecretSpec::default())
}

/// Ground-truth per-pc live-out for an acyclic program, by a reverse
/// sweep (exact: forward branches make reverse pc order topological).
fn dag_live_out(ops: &[RawOp], branches: bool) -> Vec<RegSet> {
    let n = ops.len() + 1; // + halt
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut live_out = vec![RegSet::EMPTY; n];
    for pc in (0..n).rev() {
        let mut out = if pc == n - 1 {
            exit_live()
        } else {
            RegSet::EMPTY
        };
        for s in succs(ops, pc, branches) {
            out = out.union(live_in[s]);
        }
        live_out[pc] = out;
        let (reads, write) = sem(ops, pc, branches);
        let mut inn = out;
        if let Some(d) = write {
            inn.remove(reg(d));
        }
        for r in reads {
            inn.insert(reg(r));
        }
        live_in[pc] = inn;
    }
    live_out
}

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// A register never read after its last definition must be
    /// reported as a dead store — and nothing live may be. Exact
    /// equivalence against a linear scan, straight-line programs.
    #[test]
    fn dead_stores_are_exact_on_straight_lines(ops in op_strategy()) {
        let src = render(&ops, false);
        let (program, _, spec) = build(&src);
        let report = analyze(&program, &spec);
        let flagged: Vec<usize> = report
            .findings()
            .iter()
            .filter(|f| f.rule == Rule::DeadStore)
            .map(|f| f.pc)
            .collect();

        let mut expected = Vec::new();
        'defs: for (i, _) in ops.iter().enumerate() {
            let (_, write) = sem(&ops, i, false);
            let Some(d) = write else { continue };
            for j in i + 1..ops.len() {
                let (reads, w) = sem(&ops, j, false);
                if reads.contains(&d) {
                    continue 'defs; // read before any redefinition
                }
                if w == Some(d) {
                    expected.push(i); // overwritten unread
                    continue 'defs;
                }
            }
            if !exit_live().contains(reg(d)) {
                expected.push(i); // falls off the end unread
            }
        }
        prop_assert_eq!(flagged, expected, "src:\n{}", src);
    }

    /// Reaching definitions on a straight line: exactly the nearest
    /// preceding def, or the entry definition.
    #[test]
    fn reaching_defs_are_exact_on_straight_lines(ops in op_strategy()) {
        let src = render(&ops, false);
        let (program, cfg, spec) = build(&src);
        let rd = ReachingDefs::solve(&cfg, program.insns(), &spec, 0);
        for pc in 0..program.len() {
            for r in 0..10u8 {
                let last = (0..pc)
                    .rev()
                    .find(|&i| sem(&ops, i, false).1 == Some(r));
                let got = rd.defs_at(pc, reg(r));
                prop_assert_eq!(got.len(), 1, "src:\n{}", src);
                let expect = last.unwrap_or(ENTRY_DEF);
                prop_assert!(got.contains(&expect), "pc {} a{}: src:\n{}", pc, r, src);
            }
        }
    }

    /// Must-defined on a straight line: the entry set plus everything
    /// written earlier.
    #[test]
    fn must_defined_is_exact_on_straight_lines(ops in op_strategy()) {
        let src = render(&ops, false);
        let (program, cfg, spec) = build(&src);
        let entry = exit_live();
        let md = MustDefined::solve(&cfg, program.insns(), &spec, 0, entry);
        let mut defined = entry;
        for (pc, _) in ops.iter().enumerate() {
            prop_assert_eq!(md.defined_at(pc), defined, "pc {}: src:\n{}", pc, src);
            if let (_, Some(d)) = sem(&ops, pc, false) {
                defined.insert(reg(d));
            }
        }
    }

    /// On forward-branching (acyclic) programs the worklist solution
    /// must coincide with the exact topological-sweep solution.
    #[test]
    fn liveness_matches_topological_sweep_on_dags(ops in op_strategy()) {
        let src = render(&ops, true);
        let (program, cfg, spec) = build(&src);
        let halt = program.len() - 1;
        let lv = Liveness::solve(&cfg, program.insns(), &spec, exit_live(), &[halt]);
        let truth = dag_live_out(&ops, true);
        for (pc, &expect) in truth.iter().enumerate().take(program.len()) {
            prop_assert_eq!(
                lv.live_out(pc),
                expect,
                "pc {}: src:\n{}",
                pc,
                src
            );
        }
    }

    /// Must-defined on DAGs: intersection over all paths, by forward
    /// topological sweep.
    #[test]
    fn must_defined_matches_topological_sweep_on_dags(ops in op_strategy()) {
        let src = render(&ops, true);
        let (program, cfg, spec) = build(&src);
        let entry = exit_live();
        let md = MustDefined::solve(&cfg, program.insns(), &spec, 0, entry);

        let n = program.len();
        let mut preds = vec![Vec::new(); n];
        for pc in 0..n {
            for s in succs(&ops, pc, true) {
                preds[s].push(pc);
            }
        }
        let mut out = vec![RegSet::EMPTY; n];
        for pc in 0..n {
            let inn = if pc == 0 {
                entry
            } else {
                preds[pc]
                    .iter()
                    .fold(RegSet::ALL, |acc, &p| acc.intersect(out[p]))
            };
            prop_assert_eq!(md.defined_at(pc), inn, "pc {}: src:\n{}", pc, src);
            let mut o = inn;
            if let (_, Some(d)) = sem(&ops, pc, true) {
                o.insert(reg(d));
            }
            out[pc] = o;
        }
    }
}
