//! The non-taint lint rules.

use xr32::asm::Program;
use xr32::isa::{Insn, Reg};

use crate::cfg::Cfg;
use crate::dataflow::{insn_dests, Liveness, MustDefined, ReachingDefs, RegSet, ENTRY_DEF};
use crate::report::{Finding, Report, Rule};
use crate::spec::SecretSpec;

/// Pushes a finding unless the source line allowlists the rule.
pub(crate) fn emit(
    report: &mut Report,
    program: &Program,
    spec: &SecretSpec,
    pc: usize,
    rule: Rule,
    entry: Option<&str>,
    message: String,
) {
    let line = program.line_of(pc);
    if spec.is_allowed(line, rule) {
        return;
    }
    report.push(Finding {
        pc,
        rule,
        line,
        entry: entry.map(str::to_owned),
        message,
    });
}

/// Registers assumed live when control returns to the host: the return
/// value pair and the stack pointer.
pub(crate) fn exit_live() -> RegSet {
    let mut s = RegSet::EMPTY;
    s.insert(Reg::new(0));
    s.insert(Reg::new(1));
    s.insert(Reg::SP);
    s
}

/// The pcs where control can leave the program entirely: `halt`,
/// indirect jumps, falling off the end, and `ret` inside a region whose
/// start is a declared entry (host-callable).
pub(crate) fn exit_pcs(program: &Program, cfg: &Cfg, entry_pcs: &[usize]) -> Vec<usize> {
    let insns = program.insns();
    let mut out = Vec::new();
    for (pc, insn) in insns.iter().enumerate() {
        let is_exit = match insn {
            Insn::Halt | Insn::Jr(_) => true,
            Insn::Ret => entry_pcs.contains(&cfg.region_of(pc)),
            _ => pc + 1 == insns.len() && insn.falls_through(),
        };
        if is_exit {
            out.push(pc);
        }
    }
    out
}

/// Flags instructions unreachable from every entry (one finding per
/// basic block).
pub(crate) fn check_unreachable(
    report: &mut Report,
    program: &Program,
    cfg: &Cfg,
    spec: &SecretSpec,
    entry_pcs: &[usize],
) -> Vec<bool> {
    let reach = cfg.reachable_from(entry_pcs, program.insns());
    for block in cfg.blocks() {
        if !reach[block.start] {
            let label = program
                .label_at(block.start)
                .map(|l| format!(" (label `{l}`)"))
                .unwrap_or_default();
            emit(
                report,
                program,
                spec,
                block.start,
                Rule::Unreachable,
                None,
                format!(
                    "{} instruction(s) unreachable from any entry{label}",
                    block.end - block.start
                ),
            );
        }
    }
    reach
}

/// Flags reads of registers (or the carry flag) not definitely written
/// on every path from `entry_pc`.
pub(crate) fn check_read_before_write(
    report: &mut Report,
    program: &Program,
    cfg: &Cfg,
    spec: &SecretSpec,
    entry_label: &str,
    entry_pc: usize,
    inputs: RegSet,
) {
    let insns = program.insns();
    let md = MustDefined::solve(cfg, insns, spec, entry_pc, inputs);
    for (pc, insn) in insns.iter().enumerate() {
        if !md.reachable(pc) {
            continue;
        }
        let defined = md.defined_at(pc);
        for src in insn.sources() {
            if !defined.contains(src) {
                emit(
                    report,
                    program,
                    spec,
                    pc,
                    Rule::ReadBeforeWrite,
                    Some(entry_label),
                    format!("`{src}` may be read before it is written"),
                );
            }
        }
        let reads_carry = matches!(insn, Insn::Addc(..) | Insn::Subc(..))
            || matches!(insn, Insn::Custom(op) if spec.sig(&op.name).is_some_and(|s| s.reads_carry));
        if reads_carry && !defined.has_carry() {
            emit(
                report,
                program,
                spec,
                pc,
                Rule::ReadBeforeWrite,
                Some(entry_label),
                "the carry flag may be read before `clc` or a carry-setting op".to_owned(),
            );
        }
    }
}

/// Flags register writes whose value no execution can observe.
pub(crate) fn check_dead_stores(
    report: &mut Report,
    program: &Program,
    cfg: &Cfg,
    spec: &SecretSpec,
    entry_pcs: &[usize],
    reach: &[bool],
) {
    let insns = program.insns();
    let exits = exit_pcs(program, cfg, entry_pcs);
    let lv = Liveness::solve(cfg, insns, spec, exit_live(), &exits);
    for (pc, insn) in insns.iter().enumerate() {
        if !reach[pc] {
            continue; // already reported as unreachable
        }
        // `call` writing `ra` and custom instructions (memory and ureg
        // side effects) are never "dead".
        if matches!(insn, Insn::Call(_) | Insn::Custom(_)) {
            continue;
        }
        let Some(d) = insn.dest() else { continue };
        let out = lv.live_out(pc);
        if out.contains(d) {
            continue;
        }
        // A carry-setting op is still useful if the carry is consumed.
        let writes_carry = matches!(insn, Insn::Addc(..) | Insn::Subc(..));
        if writes_carry && out.has_carry() {
            continue;
        }
        emit(
            report,
            program,
            spec,
            pc,
            Rule::DeadStore,
            None,
            format!("value written to `{d}` is never read"),
        );
    }
}

/// Net `sp` displacement lattice for the stack-discipline lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpDelta {
    Unvisited,
    Delta(i32),
    Unknown,
}

impl SpDelta {
    fn join(self, other: SpDelta) -> SpDelta {
        use SpDelta::*;
        match (self, other) {
            (Unvisited, x) | (x, Unvisited) => x,
            (Delta(a), Delta(b)) if a == b => Delta(a),
            _ => Unknown,
        }
    }
}

/// Checks that `sp` is balanced (net delta zero) at every `ret` of the
/// entry's function, and that `ra` still holds the caller's return
/// address there.
pub(crate) fn check_stack_discipline(
    report: &mut Report,
    program: &Program,
    cfg: &Cfg,
    spec: &SecretSpec,
    entry_label: &str,
    entry_pc: usize,
) {
    let insns = program.insns();

    // Forward sp-delta propagation.
    let mut delta_in = vec![SpDelta::Unvisited; insns.len()];
    delta_in[entry_pc] = SpDelta::Delta(0);
    let mut work = vec![entry_pc];
    while let Some(pc) = work.pop() {
        let out = match (&insns[pc], delta_in[pc]) {
            (Insn::Addi(d, s, imm), SpDelta::Delta(v)) if *d == Reg::SP && *s == Reg::SP => {
                SpDelta::Delta(v.wrapping_add(*imm))
            }
            (insn, inn) => {
                if insn_dests(insn, spec).contains(&Reg::SP) {
                    SpDelta::Unknown
                } else {
                    inn
                }
            }
        };
        for s in cfg.insn_succs(pc, insns) {
            let joined = delta_in[s].join(out);
            if joined != delta_in[s] {
                delta_in[s] = joined;
                work.push(s);
            }
        }
    }

    let rd = ReachingDefs::solve(cfg, insns, spec, entry_pc);
    let entry_region = cfg.region_of(entry_pc);
    for (pc, insn) in insns.iter().enumerate() {
        if !matches!(insn, Insn::Ret) || cfg.region_of(pc) != entry_region {
            continue;
        }
        match delta_in[pc] {
            SpDelta::Unvisited => continue, // not reachable from this entry
            SpDelta::Delta(0) => {}
            SpDelta::Delta(d) => emit(
                report,
                program,
                spec,
                pc,
                Rule::StackMismatch,
                Some(entry_label),
                format!("`sp` is off by {d} byte(s) at `ret`"),
            ),
            SpDelta::Unknown => emit(
                report,
                program,
                spec,
                pc,
                Rule::StackMismatch,
                Some(entry_label),
                "`sp` displacement at `ret` differs across paths or is not statically known"
                    .to_owned(),
            ),
        }
        // If any definition of `ra` reaching this `ret` is a `call`,
        // the function would return into itself instead of its caller.
        for &def in rd.defs_at(pc, Reg::RA) {
            if def != ENTRY_DEF && matches!(insns[def], Insn::Call(_)) {
                let at = program
                    .line_of(def)
                    .map(|l| format!("line {l}"))
                    .unwrap_or_else(|| format!("pc {def}"));
                emit(
                    report,
                    program,
                    spec,
                    pc,
                    Rule::RaClobber,
                    Some(entry_label),
                    format!("`ra` clobbered by the call at {at} may reach this `ret` unrestored"),
                );
            }
        }
    }
}

/// Flags explicit load/store offsets that break the access width's
/// alignment (bases are word-aligned by convention).
pub(crate) fn check_alignment(
    report: &mut Report,
    program: &Program,
    spec: &SecretSpec,
    reach: &[bool],
) {
    for (pc, insn) in program.insns().iter().enumerate() {
        if !reach[pc] {
            continue;
        }
        let (Some((_, off)), Some(w)) = (insn.mem_addr(), insn.mem_width()) else {
            continue;
        };
        if w > 1 && off.rem_euclid(w as i32) != 0 {
            emit(
                report,
                program,
                spec,
                pc,
                Rule::MisalignedMem,
                None,
                format!("offset {off} breaks {w}-byte alignment"),
            );
        }
    }
}

/// Checks `cust` operand shapes against the registered signatures.
/// Silent when no signatures are registered at all.
pub(crate) fn check_custom_ops(
    report: &mut Report,
    program: &Program,
    spec: &SecretSpec,
    reach: &[bool],
) {
    if !spec.has_sigs() {
        return;
    }
    for (pc, insn) in program.insns().iter().enumerate() {
        if !reach[pc] {
            continue;
        }
        let Insn::Custom(op) = insn else { continue };
        match spec.sig(&op.name) {
            None => emit(
                report,
                program,
                spec,
                pc,
                Rule::CustomUnknown,
                None,
                format!(
                    "no signature registered for custom instruction `{}`",
                    op.name
                ),
            ),
            Some(sig) => {
                if op.regs.len() != sig.regs || op.uregs.len() != sig.uregs {
                    emit(
                        report,
                        program,
                        spec,
                        pc,
                        Rule::CustomOperands,
                        None,
                        format!(
                            "`{}` expects {} register and {} user-register operand(s), got {} and {}",
                            op.name,
                            sig.regs,
                            sig.uregs,
                            op.regs.len(),
                            op.uregs.len()
                        ),
                    );
                }
            }
        }
    }
}
