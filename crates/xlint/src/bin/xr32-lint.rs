//! Command-line front end: `cargo run -p xlint --bin xr32-lint -- <file.s>...`
//!
//! Assembles each file, picks up its `;!` annotations (entries,
//! secrets, custom-instruction signatures, allowlists), runs the full
//! analysis, and prints the findings. Exits non-zero when any file
//! fails to parse or produces an error-severity finding.

use std::io::{ErrorKind, Write};
use std::process::ExitCode;

/// Prints one line to stdout; a closed pipe (`xr32-lint ... | head`)
/// ends the program quietly with the current verdict.
fn emit(failed: bool, line: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = writeln!(out, "{line}") {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(if failed { 1 } else { 0 });
        }
        eprintln!("xr32-lint: {e}");
        std::process::exit(1);
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let ir_mode = args.iter().any(|a| a == "--ir");
    args.retain(|a| a != "--ir");
    let files = args;
    if files.is_empty() {
        eprintln!("usage: xr32-lint [--ir] <file.s>...");
        eprintln!();
        eprintln!("Lints XR32 assembly: dataflow checks (read-before-write, dead");
        eprintln!("stores, unreachable code, stack discipline, alignment) plus a");
        eprintln!("constant-time secret-taint checker driven by `;!` annotations.");
        eprintln!();
        eprintln!("With --ir, instead of linting, dumps each unit's CFG and");
        eprintln!("liveness/reaching-defs facts as stable JSON (one document per");
        eprintln!("file) for inspection and CI diffing.");
        return ExitCode::from(2);
    }
    let mut failed = false;
    if ir_mode {
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    failed = true;
                    continue;
                }
            };
            match xlint::ir::UnitIr::from_source(&src) {
                Ok(ir) => {
                    let doc = ir.to_json().set("file", path.as_str());
                    emit(failed, format_args!("{}", doc.to_string_pretty()));
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match xlint::analyze_source(&src) {
            Ok(report) => {
                if report.is_clean() {
                    emit(failed, format_args!("{path}: clean"));
                } else {
                    failed |= !report.no_errors();
                    for f in report.findings() {
                        emit(failed, format_args!("{path}:{f}"));
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
