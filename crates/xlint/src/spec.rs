//! Analysis specifications: entry points, secret inputs, custom
//! instruction signatures, and allowlist annotations.
//!
//! Specs can be built programmatically or parsed from `;!` annotation
//! comments embedded in assembly source. Annotations live behind `;`,
//! so the assembler never sees them and annotated sources assemble
//! unchanged.
//!
//! ```text
//! ;! entry mpn_add_n inputs=a0-a3,sp,ra secret-ptr=a1,a2
//! ;! secret-mem 0x30000 0x60
//! ;! cust ldur regs=1 uregs=1 kind=load
//! lw a4, a1, 0        ;! allow(secret-load)
//! ```
//!
//! Grammar, one annotation per line:
//!
//! - `;! entry <label> [inputs=<regs>] [secret=<regs>] [secret-ptr=<regs>] [public]`
//!   — declares a lint/taint entry point. `<regs>` is a comma list of
//!   `a0`–`a15`, `sp`, `ra`, ranges (`a1-a3`), `carry`, or `none`.
//!   `inputs` defaults to `a0-a5,sp,ra`. `secret` regs hold secret
//!   *values*; `secret-ptr` regs *point to* secret data. `public`
//!   documents a deliberately taint-free entry.
//! - `;! secret-mem <base> <len>` — a byte range holding secret data.
//! - `;! cust <name> regs=<n> uregs=<n> kind=compute|load|store`
//!   `[writes-reg=<i,...>] [reads-carry] [writes-carry]` — the operand
//!   signature of a custom instruction. For `load`/`store`, `regs[0]`
//!   is the pointer and `uregs[0]` the data; the accessed byte count is
//!   `4 * imm`.
//! - `<code> ;! allow(<rule>[, <rule>...])` — suppresses the named
//!   rules on this source line.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use xr32::isa::Reg;

use crate::dataflow::RegSet;
use crate::report::Rule;

/// A byte range in data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    /// First byte address.
    pub base: u32,
    /// Length in bytes.
    pub len: u32,
}

impl MemRange {
    /// Whether `[addr, addr + width)` overlaps this range.
    pub fn overlaps(&self, addr: u32, width: u32) -> bool {
        let end = self.base.saturating_add(self.len);
        let a_end = addr.saturating_add(width);
        addr < end && self.base < a_end
    }
}

/// What a custom instruction does with memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomKind {
    /// Pure register/ureg computation.
    Compute,
    /// Loads `4 * imm` bytes from the address in `regs[0]` into
    /// `uregs[0]`.
    Load,
    /// Stores `4 * imm` bytes from `uregs[0]` to the address in
    /// `regs[0]`.
    Store,
}

/// The operand signature of one custom instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomSig {
    /// Expected general-register operand count.
    pub regs: usize,
    /// Expected user-register operand count.
    pub uregs: usize,
    /// Memory behaviour.
    pub kind: CustomKind,
    /// Indices into the instruction's `regs` that it writes (e.g. the
    /// carry-limb GPR of `mac`/`msub`).
    pub reg_writes: Vec<usize>,
    /// Whether the instruction consumes the carry flag.
    pub reads_carry: bool,
    /// Whether the instruction sets the carry flag.
    pub writes_carry: bool,
}

impl CustomSig {
    /// A pure compute signature with the given operand counts.
    pub fn compute(regs: usize, uregs: usize) -> CustomSig {
        CustomSig {
            regs,
            uregs,
            kind: CustomKind::Compute,
            reg_writes: Vec::new(),
            reads_carry: false,
            writes_carry: false,
        }
    }
}

/// One analysis entry point (a global label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrySpec {
    /// The global label to start from.
    pub label: String,
    /// Registers holding meaningful values at entry (defined).
    pub inputs: RegSet,
    /// Registers holding secret values at entry.
    pub secret: RegSet,
    /// Registers pointing to secret data at entry.
    pub secret_ptr: RegSet,
}

impl EntrySpec {
    /// An entry with the default input set (`a0`–`a5`, `sp`, `ra`) and
    /// no secrets.
    pub fn new(label: impl Into<String>) -> EntrySpec {
        EntrySpec {
            label: label.into(),
            inputs: default_inputs(),
            secret: RegSet::EMPTY,
            secret_ptr: RegSet::EMPTY,
        }
    }

    /// Marks registers as secret values.
    pub fn with_secret(mut self, regs: &[Reg]) -> EntrySpec {
        for &r in regs {
            self.secret.insert(r);
            self.inputs.insert(r);
        }
        self
    }

    /// Marks registers as pointers to secret data.
    pub fn with_secret_ptr(mut self, regs: &[Reg]) -> EntrySpec {
        for &r in regs {
            self.secret_ptr.insert(r);
            self.inputs.insert(r);
        }
        self
    }
}

/// The default entry input set: argument registers plus `sp` and `ra`.
pub fn default_inputs() -> RegSet {
    let mut s = RegSet::EMPTY;
    for i in 0..6 {
        s.insert(Reg::new(i));
    }
    s.insert(Reg::SP);
    s.insert(Reg::RA);
    s
}

/// The full specification driving [`crate::analyze`].
#[derive(Debug, Clone, Default)]
pub struct SecretSpec {
    entries: Vec<EntrySpec>,
    secret_mem: Vec<MemRange>,
    allows: BTreeMap<usize, BTreeSet<Rule>>,
    sigs: BTreeMap<String, CustomSig>,
}

/// An annotation parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending annotation.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: bad annotation: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

impl SecretSpec {
    /// Parses every `;!` annotation in `src`.
    pub fn from_source(src: &str) -> Result<SecretSpec, SpecError> {
        let mut spec = SecretSpec::default();
        for (ix, raw) in src.lines().enumerate() {
            let line_no = ix + 1;
            let Some(at) = raw.find(";!") else { continue };
            let ann = raw[at + 2..].trim();
            let err = |message: String| SpecError {
                line: line_no,
                message,
            };
            let mut words = ann.split_whitespace();
            match words.next() {
                Some("entry") => {
                    let label = words
                        .next()
                        .ok_or_else(|| err("entry needs a label".into()))?;
                    let mut entry = EntrySpec::new(label);
                    for w in words {
                        if let Some(list) = w.strip_prefix("inputs=") {
                            entry.inputs = parse_reg_list(list).map_err(&err)?;
                        } else if let Some(list) = w.strip_prefix("secret=") {
                            entry.secret = parse_reg_list(list).map_err(&err)?;
                        } else if let Some(list) = w.strip_prefix("secret-ptr=") {
                            entry.secret_ptr = parse_reg_list(list).map_err(&err)?;
                        } else if w == "public" {
                            // Documentation only: entry has no secrets.
                        } else {
                            return Err(err(format!("unknown entry attribute `{w}`")));
                        }
                    }
                    // Every entry has a valid stack and return address.
                    entry.inputs.insert(Reg::SP);
                    entry.inputs.insert(Reg::RA);
                    entry.inputs = entry.inputs.union(entry.secret).union(entry.secret_ptr);
                    spec.entries.push(entry);
                }
                Some("secret-mem") => {
                    let base = words
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("secret-mem needs a base address".into()))?;
                    let len = words
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("secret-mem needs a length".into()))?;
                    spec.secret_mem.push(MemRange { base, len });
                }
                Some("cust") => {
                    let name = words
                        .next()
                        .ok_or_else(|| err("cust needs a name".into()))?;
                    let mut sig = CustomSig::compute(0, 0);
                    for w in words {
                        if let Some(n) = w.strip_prefix("regs=") {
                            sig.regs = n
                                .parse()
                                .map_err(|_| err(format!("bad regs count `{n}`")))?;
                        } else if let Some(n) = w.strip_prefix("uregs=") {
                            sig.uregs = n
                                .parse()
                                .map_err(|_| err(format!("bad uregs count `{n}`")))?;
                        } else if let Some(k) = w.strip_prefix("kind=") {
                            sig.kind = match k {
                                "compute" => CustomKind::Compute,
                                "load" => CustomKind::Load,
                                "store" => CustomKind::Store,
                                other => return Err(err(format!("unknown kind `{other}`"))),
                            };
                        } else if let Some(list) = w.strip_prefix("writes-reg=") {
                            for part in list.split(',') {
                                let ix = part
                                    .parse()
                                    .map_err(|_| err(format!("bad operand index `{part}`")))?;
                                sig.reg_writes.push(ix);
                            }
                        } else if w == "reads-carry" {
                            sig.reads_carry = true;
                        } else if w == "writes-carry" {
                            sig.writes_carry = true;
                        } else {
                            return Err(err(format!("unknown cust attribute `{w}`")));
                        }
                    }
                    spec.sigs.insert(name.to_owned(), sig);
                }
                Some(word) if word.starts_with("allow(") => {
                    let inner = ann
                        .strip_prefix("allow(")
                        .and_then(|rest| rest.strip_suffix(')'))
                        .ok_or_else(|| err("allow(...) is unterminated".into()))?;
                    for part in inner.split(',') {
                        let name = part.trim();
                        let rule = Rule::from_name(name)
                            .ok_or_else(|| err(format!("unknown rule `{name}`")))?;
                        spec.allows.entry(line_no).or_default().insert(rule);
                    }
                }
                Some(other) => {
                    return Err(err(format!("unknown annotation `{other}`")));
                }
                None => return Err(err("empty annotation".into())),
            }
        }
        Ok(spec)
    }

    /// Adds an entry point.
    pub fn add_entry(&mut self, entry: EntrySpec) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Adds a secret memory range.
    pub fn add_secret_mem(&mut self, base: u32, len: u32) -> &mut Self {
        self.secret_mem.push(MemRange { base, len });
        self
    }

    /// Registers a custom-instruction signature.
    pub fn add_sig(&mut self, name: impl Into<String>, sig: CustomSig) -> &mut Self {
        self.sigs.insert(name.into(), sig);
        self
    }

    /// Suppresses `rule` findings on 1-based source `line`.
    pub fn add_allow(&mut self, line: usize, rule: Rule) -> &mut Self {
        self.allows.entry(line).or_default().insert(rule);
        self
    }

    /// Declared entry points.
    pub fn entries(&self) -> &[EntrySpec] {
        &self.entries
    }

    /// Declared secret memory ranges.
    pub fn secret_mem(&self) -> &[MemRange] {
        &self.secret_mem
    }

    /// Looks up a custom-instruction signature.
    pub fn sig(&self, name: &str) -> Option<&CustomSig> {
        self.sigs.get(name)
    }

    /// Whether any signatures are registered at all (if none are, the
    /// custom lints stay silent rather than flag every `cust`).
    pub fn has_sigs(&self) -> bool {
        !self.sigs.is_empty()
    }

    /// Whether `rule` is allowlisted on `line`.
    pub fn is_allowed(&self, line: Option<usize>, rule: Rule) -> bool {
        line.and_then(|l| self.allows.get(&l))
            .is_some_and(|rules| rules.contains(&rule))
    }
}

fn parse_num(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    match s {
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    let ix: u8 = s
        .strip_prefix('a')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("unknown register `{s}`"))?;
    if ix > 15 {
        return Err(format!("register index out of range in `{s}`"));
    }
    Ok(Reg::new(ix))
}

fn parse_reg_list(list: &str) -> Result<RegSet, String> {
    let mut out = RegSet::EMPTY;
    if list == "none" {
        return Ok(out);
    }
    for part in list.split(',') {
        let part = part.trim();
        if part == "carry" {
            out.insert_carry();
        } else if let Some((lo, hi)) = part.split_once('-') {
            let lo = parse_reg(lo)?;
            let hi = parse_reg(hi)?;
            if lo.index() > hi.index() {
                return Err(format!("empty register range `{part}`"));
            }
            for ix in lo.index()..=hi.index() {
                out.insert(Reg::new(ix as u8));
            }
        } else {
            out.insert(parse_reg(part)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entry_with_lists_and_ranges() {
        let spec = SecretSpec::from_source(
            ";! entry mpn_add_n inputs=a0-a3,sp,ra secret-ptr=a1,a2\nmain: halt\n",
        )
        .unwrap();
        let e = &spec.entries()[0];
        assert_eq!(e.label, "mpn_add_n");
        assert!(e.inputs.contains(Reg::new(0)));
        assert!(e.inputs.contains(Reg::new(3)));
        assert!(!e.inputs.contains(Reg::new(4)));
        assert!(e.inputs.contains(Reg::SP));
        assert!(e.secret_ptr.contains(Reg::new(1)));
        assert!(e.secret_ptr.contains(Reg::new(2)));
        // secret-ptr regs are implicitly inputs.
        assert!(e.inputs.contains(Reg::new(2)));
    }

    #[test]
    fn parses_secret_mem_and_cust() {
        let spec = SecretSpec::from_source(
            ";! secret-mem 0x30000 96\n;! cust mac4 regs=2 uregs=2 kind=compute writes-reg=1\n",
        )
        .unwrap();
        assert_eq!(spec.secret_mem()[0].base, 0x30000);
        assert_eq!(spec.secret_mem()[0].len, 96);
        let sig = spec.sig("mac4").unwrap();
        assert_eq!(sig.regs, 2);
        assert_eq!(sig.reg_writes, vec![1]);
    }

    #[test]
    fn parses_trailing_allow() {
        let spec =
            SecretSpec::from_source("main:\n lw a1, a0, 0 ;! allow(secret-load, dead-store)\n")
                .unwrap();
        assert!(spec.is_allowed(Some(2), Rule::SecretLoad));
        assert!(spec.is_allowed(Some(2), Rule::DeadStore));
        assert!(!spec.is_allowed(Some(2), Rule::SecretBranch));
        assert!(!spec.is_allowed(Some(1), Rule::SecretLoad));
    }

    #[test]
    fn rejects_unknown_annotation() {
        let e = SecretSpec::from_source(";! entrypoint f\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("entrypoint"));
    }

    #[test]
    fn rejects_unknown_rule_in_allow() {
        assert!(SecretSpec::from_source("nop ;! allow(no-such-rule)\n").is_err());
    }

    #[test]
    fn mem_range_overlap() {
        let r = MemRange {
            base: 0x100,
            len: 16,
        };
        assert!(r.overlaps(0x100, 4));
        assert!(r.overlaps(0x10c, 4));
        assert!(!r.overlaps(0x110, 4));
        assert!(r.overlaps(0xfd, 4));
        assert!(!r.overlaps(0xfc, 4));
    }
}
