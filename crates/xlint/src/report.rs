//! Findings and reports.

use std::fmt;

/// Every rule the analyzer can fire, with a stable kebab-case name used
/// in diagnostics and `;! allow(...)` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A register is read on some path before any write reaches it.
    ReadBeforeWrite,
    /// A register write that no instruction can ever observe.
    DeadStore,
    /// Instructions unreachable from every entry point.
    Unreachable,
    /// `sp` adjustments don't balance at `ret`, or differ across joins.
    StackMismatch,
    /// `ra` was clobbered by a `call` and not restored before `ret`.
    RaClobber,
    /// A load/store offset that breaks the access width's alignment.
    MisalignedMem,
    /// A `cust` instruction not present in the provided signature set.
    CustomUnknown,
    /// A `cust` instruction whose operand shape disagrees with its
    /// signature.
    CustomOperands,
    /// A branch whose condition depends on secret data.
    SecretBranch,
    /// A load whose address depends on secret data (table lookup).
    SecretLoad,
    /// A store whose address depends on secret data.
    SecretStore,
    /// An indirect jump (`jr`) through a secret-dependent register.
    SecretJump,
}

impl Rule {
    /// The rule's stable name (as used by `;! allow(name)`).
    pub fn name(self) -> &'static str {
        use Rule::*;
        match self {
            ReadBeforeWrite => "read-before-write",
            DeadStore => "dead-store",
            Unreachable => "unreachable",
            StackMismatch => "stack-mismatch",
            RaClobber => "ra-clobber",
            MisalignedMem => "misaligned-mem",
            CustomUnknown => "custom-unknown",
            CustomOperands => "custom-operands",
            SecretBranch => "secret-branch",
            SecretLoad => "secret-load",
            SecretStore => "secret-store",
            SecretJump => "secret-jump",
        }
    }

    /// Parses a rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        use Rule::*;
        Some(match s {
            "read-before-write" => ReadBeforeWrite,
            "dead-store" => DeadStore,
            "unreachable" => Unreachable,
            "stack-mismatch" => StackMismatch,
            "ra-clobber" => RaClobber,
            "misaligned-mem" => MisalignedMem,
            "custom-unknown" => CustomUnknown,
            "custom-operands" => CustomOperands,
            "secret-branch" => SecretBranch,
            "secret-load" => SecretLoad,
            "secret-store" => SecretStore,
            "secret-jump" => SecretJump,
            _ => return None,
        })
    }

    /// Whether a firing of this rule is an error (fails the lint) or a
    /// warning.
    pub fn severity(self) -> Severity {
        use Rule::*;
        match self {
            ReadBeforeWrite | StackMismatch | RaClobber | SecretBranch | SecretLoad
            | SecretStore | SecretJump | CustomOperands => Severity::Error,
            DeadStore | Unreachable | MisalignedMem | CustomUnknown => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but potentially intended.
    Warning,
    /// A correctness or constant-time violation.
    Error,
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Instruction index the finding anchors to.
    pub pc: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based source line of `pc`, when the program carries line info.
    pub line: Option<usize>,
    /// Entry point (global label) whose analysis produced the finding;
    /// `None` for whole-program rules like unreachability.
    pub entry: Option<String>,
    /// Human-readable description with register/operand specifics.
    pub message: String,
}

impl Finding {
    /// The finding's severity (from its rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match self.line {
            Some(line) => write!(f, "line {line}: ")?,
            None => write!(f, "pc {}: ", self.pc)?,
        }
        write!(f, "{sev}[{}]: {}", self.rule, self.message)?;
        if let Some(entry) = &self.entry {
            write!(f, " (analyzing entry `{entry}`)")?;
        }
        Ok(())
    }
}

/// The analyzer's output: all findings, sorted by program position.
#[derive(Debug, Clone, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    pub(crate) fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    pub(crate) fn finish(&mut self) {
        self.findings.sort();
        self.findings.dedup();
    }

    /// Rebases every finding's 1-based line so line 1 of the analyzed
    /// unit reports as `first_line` — used when the unit was sliced out
    /// of a larger file and diagnostics must be file-absolute.
    pub(crate) fn rebase_lines(&mut self, first_line: usize) {
        let delta = first_line.saturating_sub(1);
        for f in &mut self.findings {
            if let Some(line) = &mut f.line {
                *line += delta;
            }
        }
    }

    /// All findings in program order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Findings of error severity.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity() == Severity::Error)
    }

    /// True when no rule fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when no *error* fired (warnings allowed).
    pub fn no_errors(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Findings for a specific rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        let errors = self.errors().count();
        let warnings = self.findings.len() - errors;
        writeln!(f, "{errors} error(s), {warnings} warning(s)")
    }
}
