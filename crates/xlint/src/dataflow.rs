//! Classic dataflow passes at instruction granularity.
//!
//! All three solvers run a worklist to a fixpoint over the
//! interprocedural successor relation from [`Cfg::insn_succs`]:
//!
//! - [`Liveness`] — backward may-analysis (`live_out` per instruction);
//! - [`MustDefined`] — forward must-analysis of definitely-written
//!   registers (drives the read-before-write lint);
//! - [`ReachingDefs`] — forward may-analysis of which definition sites
//!   reach each instruction (drives the `ra`-clobber lint).
//!
//! Registers are tracked as a bitset with one extra bit for the carry
//! flag, which XR32 multi-precision chains treat as a real dataflow
//! value (`clc`/`addc`/`subc`).

use std::collections::BTreeSet;

use xr32::isa::{Insn, Reg};

use crate::cfg::Cfg;
use crate::spec::SecretSpec;

/// Bit index used for the carry flag in [`RegSet`].
pub const CARRY_BIT: u32 = 16;

/// Synthetic definition site meaning "defined before entry" in
/// [`ReachingDefs`].
pub const ENTRY_DEF: usize = usize::MAX;

/// A set of general registers plus the carry flag, as a 17-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// All sixteen registers and the carry flag.
    pub const ALL: RegSet = RegSet((1 << 17) - 1);

    /// The singleton set `{r}`.
    pub fn of(r: Reg) -> RegSet {
        RegSet(1 << r.index())
    }

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Inserts the carry flag.
    pub fn insert_carry(&mut self) {
        self.0 |= 1 << CARRY_BIT;
    }

    /// Removes the carry flag.
    pub fn remove_carry(&mut self) {
        self.0 &= !(1 << CARRY_BIT);
    }

    /// Whether the carry flag is in the set.
    pub fn has_carry(self) -> bool {
        self.0 & (1 << CARRY_BIT) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Iterates the general registers in the set (not the carry bit).
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..16u8)
            .filter(move |&i| self.0 & (1 << i) != 0)
            .map(Reg::new)
    }
}

/// Carry-flag behaviour of an instruction, custom signatures included.
fn carry_effect(insn: &Insn, spec: &SecretSpec) -> (bool, bool) {
    // (reads, writes)
    match insn {
        Insn::Addc(..) | Insn::Subc(..) => (true, true),
        Insn::Clc => (false, true),
        Insn::Custom(op) => match spec.sig(&op.name) {
            Some(sig) => (sig.reads_carry, sig.writes_carry),
            None => (false, false),
        },
        _ => (false, false),
    }
}

/// General registers written by an instruction, custom signatures
/// included (`mac`/`msub` write their carry-limb GPR operand).
pub fn insn_dests(insn: &Insn, spec: &SecretSpec) -> Vec<Reg> {
    match insn {
        Insn::Custom(op) => match spec.sig(&op.name) {
            Some(sig) => sig
                .reg_writes
                .iter()
                .filter_map(|&ix| op.regs.get(ix).copied())
                .collect(),
            None => Vec::new(),
        },
        _ => insn.dest().into_iter().collect(),
    }
}

/// Instruction-level predecessor lists for the whole program.
pub fn build_preds(cfg: &Cfg, insns: &[Insn]) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); insns.len()];
    for pc in 0..insns.len() {
        for s in cfg.insn_succs(pc, insns) {
            preds[s].push(pc);
        }
    }
    preds
}

/// Backward liveness: `live_out[pc]` is the set of registers (and the
/// carry flag) that some later execution may read before writing.
pub struct Liveness {
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solves liveness over the whole program. `exit_live` is the set
    /// assumed live when control leaves the program (host return,
    /// `halt`, falling off the end); `exit_pcs` are the instructions
    /// where that can happen.
    pub fn solve(
        cfg: &Cfg,
        insns: &[Insn],
        spec: &SecretSpec,
        exit_live: RegSet,
        exit_pcs: &[usize],
    ) -> Liveness {
        let n = insns.len();
        let is_exit = {
            let mut v = vec![false; n];
            for &pc in exit_pcs {
                if pc < n {
                    v[pc] = true;
                }
            }
            v
        };
        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        // Seed every pc once; iterate to fixpoint.
        let mut work: Vec<usize> = (0..n).rev().collect();
        let preds = build_preds(cfg, insns);
        while let Some(pc) = work.pop() {
            let mut out = if is_exit[pc] {
                exit_live
            } else {
                RegSet::EMPTY
            };
            for s in cfg.insn_succs(pc, insns) {
                out = out.union(live_in[s]);
            }
            live_out[pc] = out;
            let mut inn = out;
            let (reads_c, writes_c) = carry_effect(&insns[pc], spec);
            for d in insn_dests(&insns[pc], spec) {
                inn.remove(d);
            }
            if writes_c {
                inn.remove_carry();
            }
            for s in insns[pc].sources() {
                inn.insert(s);
            }
            if reads_c {
                inn.insert_carry();
            }
            if inn != live_in[pc] {
                live_in[pc] = inn;
                work.extend(preds[pc].iter().copied());
            }
        }
        Liveness { live_out }
    }

    /// Registers live immediately after `pc`.
    pub fn live_out(&self, pc: usize) -> RegSet {
        self.live_out[pc]
    }
}

/// Forward must-analysis: which registers are definitely written on
/// *every* path from the entry to a point.
pub struct MustDefined {
    /// `in_defined[pc]`; `RegSet::ALL` for unreachable pcs.
    in_defined: Vec<RegSet>,
    reachable: Vec<bool>,
}

impl MustDefined {
    /// Solves from a single entry pc whose incoming state is
    /// `entry_defined`.
    pub fn solve(
        cfg: &Cfg,
        insns: &[Insn],
        spec: &SecretSpec,
        entry: usize,
        entry_defined: RegSet,
    ) -> MustDefined {
        let n = insns.len();
        let mut in_defined = vec![RegSet::ALL; n];
        let reachable = cfg.reachable_from(&[entry], insns);
        if entry < n {
            in_defined[entry] = entry_defined;
        }
        let mut work = vec![entry];
        while let Some(pc) = work.pop() {
            let mut out = in_defined[pc];
            let (_, writes_c) = carry_effect(&insns[pc], spec);
            for d in insn_dests(&insns[pc], spec) {
                out.insert(d);
            }
            if writes_c {
                out.insert_carry();
            }
            for s in cfg.insn_succs(pc, insns) {
                let joined = in_defined[s].intersect(out);
                if joined != in_defined[s] {
                    in_defined[s] = joined;
                    work.push(s);
                }
            }
        }
        MustDefined {
            in_defined,
            reachable,
        }
    }

    /// Registers definitely defined when control reaches `pc`.
    pub fn defined_at(&self, pc: usize) -> RegSet {
        self.in_defined[pc]
    }

    /// Whether `pc` is reachable from the analyzed entry.
    pub fn reachable(&self, pc: usize) -> bool {
        self.reachable[pc]
    }
}

/// Forward reaching definitions: for each pc and register, the set of
/// definition sites (pcs, or [`ENTRY_DEF`]) whose value may still be in
/// the register.
pub struct ReachingDefs {
    /// `in_defs[pc][reg]`.
    in_defs: Vec<[BTreeSet<usize>; 16]>,
}

impl ReachingDefs {
    /// Solves from a single entry pc; every register initially holds
    /// the synthetic [`ENTRY_DEF`] definition.
    pub fn solve(cfg: &Cfg, insns: &[Insn], spec: &SecretSpec, entry: usize) -> ReachingDefs {
        let n = insns.len();
        let empty: [BTreeSet<usize>; 16] = Default::default();
        let mut in_defs = vec![empty; n];
        if entry < n {
            for set in in_defs[entry].iter_mut() {
                set.insert(ENTRY_DEF);
            }
        }
        let mut work = vec![entry];
        while let Some(pc) = work.pop() {
            if pc >= n {
                continue;
            }
            let mut out = in_defs[pc].clone();
            for d in insn_dests(&insns[pc], spec) {
                let set = &mut out[d.index()];
                set.clear();
                set.insert(pc);
            }
            for s in cfg.insn_succs(pc, insns) {
                let mut changed = false;
                for r in 0..16 {
                    for &def in &out[r] {
                        changed |= in_defs[s][r].insert(def);
                    }
                }
                if changed {
                    work.push(s);
                }
            }
        }
        ReachingDefs { in_defs }
    }

    /// Definition sites of `r` that may reach `pc`.
    pub fn defs_at(&self, pc: usize, r: Reg) -> &BTreeSet<usize> {
        &self.in_defs[pc][r.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::asm::assemble;

    fn setup(src: &str) -> (xr32::asm::Program, Cfg, SecretSpec) {
        let p = assemble(src).expect("assembles");
        let c = Cfg::build(&p);
        (p, c, SecretSpec::default())
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        s.insert(Reg::new(3));
        s.insert(Reg::SP);
        s.insert_carry();
        assert!(s.contains(Reg::new(3)));
        assert!(s.contains(Reg::SP));
        assert!(s.has_carry());
        assert!(!s.contains(Reg::new(0)));
        assert_eq!(s.iter().count(), 2);
        s.remove(Reg::new(3));
        assert!(!s.contains(Reg::new(3)));
    }

    #[test]
    fn liveness_sees_branch_uses() {
        let (p, c, spec) = setup(
            "main:
                movi a0, 4
                movi a1, 0
            loop:
                addi a0, a0, -1
                bne  a0, a1, loop
                halt",
        );
        let lv = Liveness::solve(&c, p.insns(), &spec, RegSet::EMPTY, &[p.len() - 1]);
        // After `movi a0, 4`, both a0 and (soon) a1 are live.
        assert!(lv.live_out(0).contains(Reg::new(0)));
        // Around the loop, a1 stays live for the branch.
        assert!(lv.live_out(2).contains(Reg::new(1)));
    }

    #[test]
    fn liveness_kills_overwritten() {
        let (p, c, spec) = setup(
            "main:
                movi a0, 1
                movi a0, 2
                halt",
        );
        let lv = Liveness::solve(&c, p.insns(), &spec, RegSet::of(Reg::new(0)), &[2]);
        // The first movi's value is never observable.
        assert!(!lv.live_out(0).contains(Reg::new(0)));
        assert!(lv.live_out(1).contains(Reg::new(0)));
    }

    #[test]
    fn must_defined_requires_all_paths() {
        let (p, c, spec) = setup(
            "main:
                beq a0, a1, skip
                movi a2, 1
            skip:
                addi a3, a2, 0
                halt",
        );
        let entry = RegSet::of(Reg::new(0)).union(RegSet::of(Reg::new(1)));
        let md = MustDefined::solve(&c, p.insns(), &spec, 0, entry);
        let skip = p.label("skip").unwrap();
        // a2 is written on only one path into `skip`.
        assert!(!md.defined_at(skip).contains(Reg::new(2)));
        assert!(md.defined_at(skip).contains(Reg::new(0)));
    }

    #[test]
    fn reaching_defs_merge_at_joins() {
        let (p, c, spec) = setup(
            "main:
                movi a2, 1
                beq a0, a1, skip
                movi a2, 2
            skip:
                halt",
        );
        let rd = ReachingDefs::solve(&c, p.insns(), &spec, 0);
        let skip = p.label("skip").unwrap();
        let defs = rd.defs_at(skip, Reg::new(2));
        assert!(defs.contains(&0), "fall-through def reaches");
        assert!(defs.contains(&2), "taken-path def reaches");
        assert!(!defs.contains(&ENTRY_DEF), "entry def killed on both paths");
    }

    #[test]
    fn carry_is_tracked_like_a_register() {
        let (p, c, spec) = setup(
            "main:
                clc
                addc a2, a0, a1
                halt",
        );
        let lv = Liveness::solve(&c, p.insns(), &spec, RegSet::EMPTY, &[2]);
        // The carry written by clc is consumed by addc.
        assert!(lv.live_out(0).has_carry());
        let md = MustDefined::solve(&c, p.insns(), &spec, 0, RegSet::EMPTY);
        assert!(md.defined_at(1).has_carry());
    }
}
