//! The secret-taint constant-time checker.
//!
//! Forward may-analysis from each declared entry. Every register
//! carries two taint bits — VAL (holds a secret value) and PTR (points
//! at secret data) — plus a small constant lattice used to resolve
//! absolute and `sp`-relative addresses. The carry flag and the wide
//! user registers carry VAL bits of their own.
//!
//! Flagged as errors:
//!
//! - **secret-branch** — a conditional branch comparing VAL-tainted
//!   registers (execution time depends on a secret);
//! - **secret-load** / **secret-store** — a memory access whose
//!   *address* is VAL-tainted (classic table-lookup / cache timing
//!   leak). Loading *through* a PTR-tainted base is fine — that is how
//!   secrets legitimately enter the datapath — but the loaded value
//!   becomes VAL-tainted;
//! - **secret-jump** — an indirect jump through a VAL-tainted register.
//!
//! Memory taint is tracked flow-insensitively: declared `secret-mem`
//! ranges, plus ranges and `sp`-relative stack slots that the program
//! itself stores secrets into. The register analysis re-runs until
//! that global memory state reaches a fixpoint; findings are collected
//! across iterations (taint only grows, so early findings stay valid).
//!
//! PTR taint survives `sp`-relative spills (storing a secret pointer
//! to a stack slot and reloading it keeps the PTR bit — the DES kernel
//! does exactly this with its key-schedule argument).
//!
//! Known soundness limits (documented, deliberate): a secret stored
//! through an address that is neither constant, `sp`-relative, nor
//! PTR-tainted is not tracked, and a pointer spilled anywhere other
//! than a `sp`-relative slot loses its PTR bit.

use std::collections::BTreeSet;

use xr32::asm::Program;
use xr32::isa::{Insn, Reg};

use crate::cfg::Cfg;
use crate::dataflow::RegSet;
use crate::lints::emit;
use crate::report::{Report, Rule};
use crate::spec::{CustomKind, EntrySpec, MemRange, SecretSpec};

/// Constant-propagation lattice for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Const {
    /// Absolute value known.
    Known(i64),
    /// `sp`-at-entry plus a known displacement.
    SpRel(i64),
    /// Unknown.
    Top,
}

impl Const {
    fn join(self, other: Const) -> Const {
        match (self, other) {
            (a, b) if a == b => a,
            _ => Const::Top,
        }
    }
}

/// Per-program-point analysis state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    /// VAL taint (carry bit included via [`RegSet`]'s carry slot).
    val: RegSet,
    /// PTR taint.
    ptr: RegSet,
    /// VAL taint of the 16 user registers.
    ureg_val: u16,
    konst: [Const; 16],
}

impl State {
    fn entry(entry: &EntrySpec) -> State {
        let mut konst = [Const::Top; 16];
        konst[Reg::SP.index()] = Const::SpRel(0);
        State {
            val: entry.secret,
            ptr: entry.secret_ptr,
            ureg_val: 0,
            konst,
        }
    }

    fn join(&self, other: &State) -> State {
        let mut konst = [Const::Top; 16];
        for (i, k) in konst.iter_mut().enumerate() {
            *k = self.konst[i].join(other.konst[i]);
        }
        State {
            val: self.val.union(other.val),
            ptr: self.ptr.union(other.ptr),
            ureg_val: self.ureg_val | other.ureg_val,
            konst,
        }
    }
}

/// Memory taint accumulated across the whole analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct MemTaint {
    /// Declared plus program-written secret address ranges.
    ranges: Vec<(u32, u32)>,
    /// Secret `sp`-relative byte displacements.
    slots: BTreeSet<i64>,
    /// `sp`-relative byte displacements holding a spilled secret
    /// *pointer*.
    ptr_slots: BTreeSet<i64>,
}

impl MemTaint {
    fn range_hit(&self, addr: i64, width: u32) -> bool {
        if addr < 0 || addr > u32::MAX as i64 {
            return false;
        }
        self.ranges
            .iter()
            .any(|&(base, len)| MemRange { base, len }.overlaps(addr as u32, width))
    }

    fn add_range(&mut self, addr: i64, width: u32) {
        if (0..=u32::MAX as i64).contains(&addr) && !self.range_hit(addr, width) {
            self.ranges.push((addr as u32, width));
        }
    }

    fn slot_hit(&self, disp: i64, width: u32) -> bool {
        (disp..disp + width as i64).any(|b| self.slots.contains(&b))
    }

    fn add_slot(&mut self, disp: i64, width: u32) {
        for b in disp..disp + width as i64 {
            self.slots.insert(b);
        }
    }

    fn ptr_slot_hit(&self, disp: i64, width: u32) -> bool {
        (disp..disp + width as i64).any(|b| self.ptr_slots.contains(&b))
    }

    fn add_ptr_slot(&mut self, disp: i64, width: u32) {
        for b in disp..disp + width as i64 {
            self.ptr_slots.insert(b);
        }
    }
}

/// Runs the constant-time check for every entry in `spec`.
pub(crate) fn check(report: &mut Report, program: &Program, cfg: &Cfg, spec: &SecretSpec) {
    for entry in spec.entries() {
        if entry.secret == RegSet::EMPTY
            && entry.secret_ptr == RegSet::EMPTY
            && spec.secret_mem().is_empty()
        {
            continue; // public entry, nothing to taint
        }
        let Some(entry_pc) = program.label(&entry.label) else {
            continue; // analyze() has already validated labels
        };
        check_entry(report, program, cfg, spec, entry, entry_pc);
    }
}

fn check_entry(
    report: &mut Report,
    program: &Program,
    cfg: &Cfg,
    spec: &SecretSpec,
    entry: &EntrySpec,
    entry_pc: usize,
) {
    let insns = program.insns();
    let mut mem = MemTaint {
        ranges: spec.secret_mem().iter().map(|r| (r.base, r.len)).collect(),
        slots: BTreeSet::new(),
        ptr_slots: BTreeSet::new(),
    };
    // Deduped across fixpoint iterations.
    let mut findings: BTreeSet<(usize, Rule, String)> = BTreeSet::new();

    loop {
        let mem_before = mem.clone();
        let mut in_states: Vec<Option<State>> = vec![None; insns.len()];
        in_states[entry_pc] = Some(State::entry(entry));
        let mut work = vec![entry_pc];
        while let Some(pc) = work.pop() {
            let Some(state) = in_states[pc].clone() else {
                continue;
            };
            let out = transfer(&state, pc, insns, spec, &mut mem, &mut findings);
            for s in cfg.insn_succs(pc, insns) {
                let joined = match &in_states[s] {
                    Some(old) => {
                        let j = old.join(&out);
                        if j == *old {
                            continue;
                        }
                        j
                    }
                    None => out.clone(),
                };
                in_states[s] = Some(joined);
                work.push(s);
            }
        }
        if mem == mem_before {
            break;
        }
    }

    for (pc, rule, message) in findings {
        emit(report, program, spec, pc, rule, Some(&entry.label), message);
    }
}

/// Applies one instruction to the state, recording findings and memory
/// taint as side effects.
fn transfer(
    state: &State,
    pc: usize,
    insns: &[Insn],
    spec: &SecretSpec,
    mem: &mut MemTaint,
    findings: &mut BTreeSet<(usize, Rule, String)>,
) -> State {
    use Insn::*;
    let insn = &insns[pc];
    let mut out = state.clone();

    let src_val = |st: &State| insn.sources().iter().any(|&r| st.val.contains(r));
    let src_ptr = |st: &State| insn.sources().iter().any(|&r| st.ptr.contains(r));

    match insn {
        // Conditional branches: comparing anything secret leaks timing.
        Beq(a, b, _)
        | Bne(a, b, _)
        | Bltu(a, b, _)
        | Bgeu(a, b, _)
        | Blt(a, b, _)
        | Bge(a, b, _) => {
            for r in [a, b] {
                if state.val.contains(*r) {
                    findings.insert((
                        pc,
                        Rule::SecretBranch,
                        format!("branch condition depends on secret value in `{r}`"),
                    ));
                }
            }
        }
        Jr(r) => {
            if state.val.contains(*r) {
                findings.insert((
                    pc,
                    Rule::SecretJump,
                    format!("indirect jump through secret-dependent `{r}`"),
                ));
            }
        }
        Lw(d, base, off) | Lbu(d, base, off) | Lhu(d, base, off) => {
            let w = insn.mem_width().unwrap_or(1);
            if state.val.contains(*base) {
                findings.insert((
                    pc,
                    Rule::SecretLoad,
                    format!("load address in `{base}` depends on a secret (table lookup?)"),
                ));
            }
            let loaded_secret = state.val.contains(*base)
                || state.ptr.contains(*base)
                || match state.konst[base.index()] {
                    Const::Known(k) => mem.range_hit(k + *off as i64, w),
                    Const::SpRel(k) => mem.slot_hit(k + *off as i64, w),
                    Const::Top => false,
                };
            let loaded_ptr = matches!(state.konst[base.index()], Const::SpRel(k)
                if mem.ptr_slot_hit(k + *off as i64, w));
            set_val(&mut out, *d, loaded_secret);
            if loaded_ptr {
                out.ptr.insert(*d);
            } else {
                out.ptr.remove(*d);
            }
            out.konst[d.index()] = Const::Top;
        }
        Sw(v, base, off) | Sb(v, base, off) | Sh(v, base, off) => {
            let w = insn.mem_width().unwrap_or(1);
            if state.val.contains(*base) {
                findings.insert((
                    pc,
                    Rule::SecretStore,
                    format!("store address in `{base}` depends on a secret"),
                ));
            }
            if state.val.contains(*v) {
                match state.konst[base.index()] {
                    Const::Known(k) => mem.add_range(k + *off as i64, w),
                    Const::SpRel(k) => mem.add_slot(k + *off as i64, w),
                    Const::Top => {} // untracked (documented limitation)
                }
            }
            if state.ptr.contains(*v) {
                if let Const::SpRel(k) = state.konst[base.index()] {
                    mem.add_ptr_slot(k + *off as i64, w);
                }
            }
        }
        Custom(op) => {
            transfer_custom(op, state, &mut out, pc, spec, mem, findings);
        }
        Call(_) => {
            set_val(&mut out, Reg::RA, false);
            out.ptr.remove(Reg::RA);
            out.konst[Reg::RA.index()] = Const::Top;
        }
        Clc => {
            out.val.remove_carry();
        }
        Addc(..) | Subc(..) => {
            let d = insn.dest().expect("addc/subc write a register");
            let t = src_val(state) || state.val.has_carry();
            set_val(&mut out, d, t);
            if t {
                out.val.insert_carry();
            } else {
                out.val.remove_carry();
            }
            out.ptr.remove(d);
            out.konst[d.index()] = Const::Top;
        }
        _ => {
            // Plain ALU / move / immediate forms.
            if let Some(d) = insn.dest() {
                set_val(&mut out, d, src_val(state));
                if src_ptr(state) {
                    out.ptr.insert(d);
                } else {
                    out.ptr.remove(d);
                }
                out.konst[d.index()] = eval_const(insn, state);
                // A known address inside a secret range is a secret
                // pointer: indexing from it must keep the PTR bit.
                if let Const::Known(k) = out.konst[d.index()] {
                    if mem.range_hit(k, 1) {
                        out.ptr.insert(d);
                    }
                }
            }
        }
    }
    out
}

fn set_val(state: &mut State, r: Reg, tainted: bool) {
    if tainted {
        state.val.insert(r);
    } else {
        state.val.remove(r);
    }
}

fn eval_const(insn: &Insn, state: &State) -> Const {
    use Insn::*;
    let k = |r: &Reg| state.konst[r.index()];
    match insn {
        Movi(_, imm) => Const::Known(*imm as i64),
        Mov(_, s) => k(s),
        Addi(_, s, imm) => match k(s) {
            Const::Known(v) => Const::Known(v + *imm as i64),
            Const::SpRel(v) => Const::SpRel(v + *imm as i64),
            Const::Top => Const::Top,
        },
        Add(_, a, b) => match (k(a), k(b)) {
            (Const::Known(x), Const::Known(y)) => Const::Known(x + y),
            (Const::SpRel(x), Const::Known(y)) | (Const::Known(y), Const::SpRel(x)) => {
                Const::SpRel(x + y)
            }
            _ => Const::Top,
        },
        Sub(_, a, b) => match (k(a), k(b)) {
            (Const::Known(x), Const::Known(y)) => Const::Known(x - y),
            (Const::SpRel(x), Const::Known(y)) => Const::SpRel(x - y),
            _ => Const::Top,
        },
        Slli(_, s, sh) => match k(s) {
            Const::Known(v) => Const::Known((v as u32).wrapping_shl(*sh) as i64),
            _ => Const::Top,
        },
        _ => Const::Top,
    }
}

fn transfer_custom(
    op: &xr32::isa::CustomOp,
    state: &State,
    out: &mut State,
    pc: usize,
    spec: &SecretSpec,
    mem: &mut MemTaint,
    findings: &mut BTreeSet<(usize, Rule, String)>,
) {
    let Some(sig) = spec.sig(&op.name) else {
        return; // unknown instruction: the custom-unknown lint warns
    };
    let ureg_bit = |u: xr32::isa::UserReg| 1u16 << u.index();
    match sig.kind {
        CustomKind::Load | CustomKind::Store => {
            let base = op.regs.first();
            let data = op.uregs.first();
            let width = 4 * op.imm.max(0) as u32;
            if let Some(&b) = base {
                if state.val.contains(b) {
                    let rule = if sig.kind == CustomKind::Load {
                        Rule::SecretLoad
                    } else {
                        Rule::SecretStore
                    };
                    findings.insert((
                        pc,
                        rule,
                        format!("`{}` address in `{b}` depends on a secret", op.name),
                    ));
                }
            }
            match (sig.kind, base, data) {
                (CustomKind::Load, Some(&b), Some(&d)) => {
                    let secret = state.val.contains(b)
                        || state.ptr.contains(b)
                        || match state.konst[b.index()] {
                            Const::Known(k) => mem.range_hit(k, width),
                            Const::SpRel(k) => mem.slot_hit(k, width),
                            Const::Top => false,
                        };
                    if secret {
                        out.ureg_val |= ureg_bit(d);
                    } else {
                        out.ureg_val &= !ureg_bit(d);
                    }
                }
                (CustomKind::Store, Some(&b), Some(&d)) if state.ureg_val & ureg_bit(d) != 0 => {
                    match state.konst[b.index()] {
                        Const::Known(k) => mem.add_range(k, width),
                        Const::SpRel(k) => mem.add_slot(k, width),
                        Const::Top => {}
                    }
                }
                _ => {}
            }
        }
        CustomKind::Compute => {
            let mut t = op.regs.iter().any(|&r| state.val.contains(r))
                || op.uregs.iter().any(|&u| state.ureg_val & ureg_bit(u) != 0);
            if sig.reads_carry {
                t |= state.val.has_carry();
            }
            // Conservative: every ureg operand and every declared GPR
            // write receives the combined taint.
            for &u in &op.uregs {
                if t {
                    out.ureg_val |= ureg_bit(u);
                } else {
                    out.ureg_val &= !ureg_bit(u);
                }
            }
            for &ix in &sig.reg_writes {
                if let Some(&r) = op.regs.get(ix) {
                    set_val(out, r, t);
                    out.ptr.remove(r);
                    out.konst[r.index()] = Const::Top;
                }
            }
            if sig.writes_carry {
                if t {
                    out.val.insert_carry();
                } else {
                    out.val.remove_carry();
                }
            }
        }
    }
}
