//! Public IR: the analyzer's facts packaged for downstream consumers.
//!
//! `xlint`'s CFG and dataflow solvers were built for the lint engine,
//! but the optimizing pipeline (`xopt`) needs the same facts — which
//! definitions reach a use, what is live after each instruction, where
//! the loop back-edges are. [`UnitIr`] bundles one assembled unit with
//! its [`Cfg`], a whole-program [`Liveness`] solution, and a
//! [`ReachingDefs`] solution per entry point, so rewriters consume the
//! *same* analysis the lints are gated on rather than re-deriving a
//! private (and possibly divergent) one.
//!
//! [`UnitIr::to_json`] serializes the facts as stable, insertion-ordered
//! JSON (instructions by pc, entries in spec order) for the
//! `xr32-lint --ir` dump mode, so optimizer decisions are inspectable
//! and diffable in CI.

use xobs::json::Json;
use xr32::asm::{assemble, Program};

use crate::cfg::Cfg;
use crate::dataflow::{Liveness, ReachingDefs, RegSet, ENTRY_DEF};
use crate::spec::{EntrySpec, SecretSpec};
use crate::{lints, AnalyzeError};

/// Reaching-definition facts for one entry point.
pub struct EntryIr {
    /// The entry's global label.
    pub label: String,
    /// Instruction index of the entry.
    pub pc: usize,
    /// Reaching definitions solved from this entry.
    pub reaching: ReachingDefs,
    /// Per-pc reachability from this entry.
    pub reachable: Vec<bool>,
}

/// One assembled unit plus every dataflow fact the lints compute,
/// exposed as a public IR.
pub struct UnitIr {
    /// The assembled program.
    pub program: Program,
    /// The unit's `;!` annotation spec (custom signatures included).
    pub spec: SecretSpec,
    /// Basic blocks and instruction-level successors.
    pub cfg: Cfg,
    /// Whole-program backward liveness (same exit assumptions as the
    /// dead-store lint: `a0`, `a1` and `sp` live at program exits).
    pub liveness: Liveness,
    /// Per-entry forward facts, in spec order (or global-label order
    /// when the spec declares no entries).
    pub entries: Vec<EntryIr>,
}

impl UnitIr {
    /// Assembles `src`, parses its `;!` annotations, and solves every
    /// dataflow pass.
    ///
    /// # Errors
    ///
    /// Propagates assembler and annotation errors; an entry annotation
    /// naming an unknown label is [`AnalyzeError::UnknownEntry`].
    pub fn from_source(src: &str) -> Result<UnitIr, AnalyzeError> {
        let program = assemble(src)?;
        let spec = SecretSpec::from_source(src)?;
        UnitIr::build(program, spec)
    }

    /// Solves the dataflow passes for an already-assembled `program`
    /// under `spec`. When the spec declares no entries, every global
    /// label is used (matching [`crate::analyze`]).
    ///
    /// # Errors
    ///
    /// [`AnalyzeError::UnknownEntry`] if a spec entry names a label the
    /// program does not define.
    pub fn build(program: Program, spec: SecretSpec) -> Result<UnitIr, AnalyzeError> {
        let entry_specs: Vec<EntrySpec> = if spec.entries().is_empty() {
            program
                .global_labels()
                .map(|(name, _)| EntrySpec::new(name))
                .collect()
        } else {
            spec.entries().to_vec()
        };
        let mut entry_pcs = Vec::with_capacity(entry_specs.len());
        for e in &entry_specs {
            match program.label(&e.label) {
                Some(pc) => entry_pcs.push(pc),
                None => return Err(AnalyzeError::UnknownEntry(e.label.clone())),
            }
        }

        let insns = program.insns();
        let cfg = Cfg::build(&program);
        let exits = lints::exit_pcs(&program, &cfg, &entry_pcs);
        let liveness = if insns.is_empty() {
            Liveness::solve(&cfg, insns, &spec, RegSet::EMPTY, &[])
        } else {
            Liveness::solve(&cfg, insns, &spec, lints::exit_live(), &exits)
        };
        let entries = entry_specs
            .iter()
            .zip(&entry_pcs)
            .map(|(e, &pc)| EntryIr {
                label: e.label.clone(),
                pc,
                reaching: ReachingDefs::solve(&cfg, insns, &spec, pc),
                reachable: cfg.reachable_from(&[pc], insns),
            })
            .collect();
        Ok(UnitIr {
            program,
            spec,
            cfg,
            liveness,
            entries,
        })
    }

    /// The facts for entry `label`, if it was analyzed.
    pub fn entry(&self, label: &str) -> Option<&EntryIr> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// Serializes the IR as stable JSON: instructions and blocks in pc
    /// order, entries in analysis order, register sets as sorted name
    /// arrays. The output is deterministic for a given source, so CI
    /// can diff dumps across commits.
    pub fn to_json(&self) -> Json {
        let insns = self.program.insns();

        let blocks: Vec<Json> = self
            .cfg
            .blocks()
            .iter()
            .map(|b| {
                Json::obj()
                    .set("start", b.start)
                    .set("end", b.end)
                    .set(
                        "succs",
                        Json::Arr(b.succs.iter().map(|&s| s.into()).collect()),
                    )
                    .set(
                        "preds",
                        Json::Arr(b.preds.iter().map(|&p| p.into()).collect()),
                    )
            })
            .collect();

        let insn_rows: Vec<Json> = insns
            .iter()
            .enumerate()
            .map(|(pc, insn)| {
                let mut row = Json::obj().set("pc", pc).set("op", insn.to_string());
                if let Some(line) = self.program.line_of(pc) {
                    row = row.set("line", line);
                }
                row.set("block", self.cfg.block_of(pc))
                    .set("live_out", regset_json(self.liveness.live_out(pc)))
            })
            .collect();

        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                // Reaching definitions of each *used* register, only at
                // pcs this entry can reach — the compact slice xopt's
                // SSA construction actually consumes.
                let mut uses = Vec::new();
                for (pc, insn) in insns.iter().enumerate() {
                    if !e.reachable[pc] {
                        continue;
                    }
                    let mut srcs = insn.sources();
                    srcs.sort_unstable();
                    srcs.dedup();
                    for r in srcs {
                        let defs: Vec<Json> = e
                            .reaching
                            .defs_at(pc, r)
                            .iter()
                            .map(|&d| {
                                if d == ENTRY_DEF {
                                    Json::Str("entry".into())
                                } else {
                                    d.into()
                                }
                            })
                            .collect();
                        uses.push(
                            Json::obj()
                                .set("pc", pc)
                                .set("reg", r.to_string())
                                .set("defs", Json::Arr(defs)),
                        );
                    }
                }
                Json::obj()
                    .set("label", e.label.as_str())
                    .set("pc", e.pc)
                    .set("reaching", Json::Arr(uses))
            })
            .collect();

        Json::obj()
            .set("schema", "xlint.unit-ir")
            .set("schema_version", 1u64)
            .set("insns", Json::Arr(insn_rows))
            .set("blocks", Json::Arr(blocks))
            .set("entries", Json::Arr(entries))
    }
}

fn regset_json(set: RegSet) -> Json {
    let mut names: Vec<Json> = set.iter().map(|r| Json::Str(r.to_string())).collect();
    if set.has_carry() {
        names.push(Json::Str("carry".into()));
    }
    Json::Arr(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::isa::Reg;

    const LOOP_SRC: &str = ";! entry f inputs=a0,a1,sp,ra
         f:
            movi a2, 0
         .lp:
            addi a2, a2, 1
            bne  a2, a0, .lp
            mov  a0, a2
            ret";

    #[test]
    fn builds_facts_for_a_loop() {
        let ir = UnitIr::from_source(LOOP_SRC).unwrap();
        assert_eq!(ir.entries.len(), 1);
        let e = ir.entry("f").unwrap();
        assert_eq!(e.pc, 0);
        // Inside the loop, a2's reaching defs are both the init (pc 0)
        // and the back-edge redefinition (pc 1).
        let defs = e.reaching.defs_at(1, Reg::new(2));
        assert!(defs.contains(&0) && defs.contains(&1), "got {defs:?}");
        // a0 is live around the loop (branch bound + return value).
        assert!(ir.liveness.live_out(1).contains(Reg::new(0)));
    }

    #[test]
    fn json_dump_is_stable_and_parsable() {
        let ir = UnitIr::from_source(LOOP_SRC).unwrap();
        let a = ir.to_json().to_string_pretty();
        let b = UnitIr::from_source(LOOP_SRC).unwrap().to_json();
        assert_eq!(a, b.to_string_pretty(), "dump must be deterministic");
        let parsed = xobs::json::parse(&a).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("xlint.unit-ir")
        );
        let insns = parsed.get("insns").and_then(Json::as_arr).unwrap();
        assert_eq!(insns.len(), ir.program.len());
        assert_eq!(
            insns[0].get("op").and_then(Json::as_str),
            Some("movi a2, 0")
        );
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries[0].get("label").and_then(Json::as_str), Some("f"));
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let Err(err) = UnitIr::from_source(";! entry ghost inputs=a0\nf: ret") else {
            panic!("expected UnknownEntry");
        };
        assert!(matches!(err, AnalyzeError::UnknownEntry(ref l) if l == "ghost"));
    }
}
