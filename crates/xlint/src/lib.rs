//! `xlint` — dataflow static analysis for XR32 kernel assembly.
//!
//! The crate builds an interprocedural CFG over an assembled
//! [`Program`], runs classic dataflow passes (reaching definitions,
//! liveness, must-defined, reachability), and layers two products on
//! top:
//!
//! 1. a **lint engine** — read-before-write registers (carry flag
//!    included), dead stores, unreachable blocks, stack discipline
//!    (`sp` balance and `ra` clobber at `ret`), misaligned memory
//!    offsets, and custom-instruction operand shapes;
//! 2. a **constant-time checker** — secret-taint propagation from
//!    declared secret registers and memory ranges, flagging
//!    secret-dependent branches, loads, stores, and indirect jumps
//!    (see [`taint`](crate::report::Rule::SecretBranch) rules).
//!
//! Analysis intent is declared with `;!` annotation comments inside
//! the assembly source (invisible to the assembler); see
//! [`SecretSpec::from_source`] for the grammar. Use [`analyze`] with a
//! programmatic spec, or [`analyze_source`] to assemble and pick up
//! annotations in one step:
//!
//! ```
//! let report = xlint::analyze_source(
//!     ";! entry leak secret=a1
//!      leak:
//!          beq a1, a0, done   ; branches on the key!
//!      done:
//!          ret",
//! )
//! .unwrap();
//! assert!(!report.no_errors());
//! assert_eq!(report.findings()[0].rule, xlint::Rule::SecretBranch);
//! ```

pub mod cfg;
pub mod dataflow;
pub mod ir;
mod lints;
mod report;
mod spec;
mod taint;

use std::fmt;

use xr32::asm::{assemble, AssembleError, Program};

pub use report::{Finding, Report, Rule, Severity};
pub use spec::{CustomKind, CustomSig, EntrySpec, MemRange, SecretSpec, SpecError};

/// Analyzes `program` under `spec` and returns every finding.
///
/// When the spec declares no entries, every global label is analyzed
/// as an entry with the default input set and no secrets (lints only).
///
/// # Panics
///
/// Panics if a spec entry names a label the program does not define —
/// that is a configuration bug the caller should fix, not a finding.
pub fn analyze(program: &Program, spec: &SecretSpec) -> Report {
    let mut report = Report::default();
    if program.is_empty() {
        return report;
    }

    let entries: Vec<EntrySpec> = if spec.entries().is_empty() {
        program
            .global_labels()
            .map(|(name, _)| EntrySpec::new(name))
            .collect()
    } else {
        spec.entries().to_vec()
    };
    let entry_pcs: Vec<usize> = entries
        .iter()
        .map(|e| {
            program
                .label(&e.label)
                .unwrap_or_else(|| panic!("spec entry `{}` is not a label in the program", e.label))
        })
        .collect();

    let cfg = cfg::Cfg::build(program);
    let reach = lints::check_unreachable(&mut report, program, &cfg, spec, &entry_pcs);
    for (entry, &pc) in entries.iter().zip(&entry_pcs) {
        lints::check_read_before_write(
            &mut report,
            program,
            &cfg,
            spec,
            &entry.label,
            pc,
            entry.inputs,
        );
        lints::check_stack_discipline(&mut report, program, &cfg, spec, &entry.label, pc);
    }
    lints::check_dead_stores(&mut report, program, &cfg, spec, &entry_pcs, &reach);
    lints::check_alignment(&mut report, program, spec, &reach);
    lints::check_custom_ops(&mut report, program, spec, &reach);

    // Taint runs against the declared spec entries only (the default
    // no-annotation entries carry no secrets).
    let taint_spec;
    let spec_for_taint = if spec.entries().is_empty() {
        taint_spec = {
            let mut s = spec.clone();
            for e in &entries {
                s.add_entry(e.clone());
            }
            s
        };
        &taint_spec
    } else {
        spec
    };
    taint::check(&mut report, program, &cfg, spec_for_taint);

    report.finish();
    report
}

/// Everything that can go wrong in [`analyze_source`].
#[derive(Debug)]
pub enum AnalyzeError {
    /// The source did not assemble.
    Assemble(AssembleError),
    /// A `;!` annotation did not parse.
    Spec(SpecError),
    /// A `;! entry` annotation names a label the program does not
    /// define.
    UnknownEntry(String),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Assemble(e) => write!(f, "{e}"),
            AnalyzeError::Spec(e) => write!(f, "{e}"),
            AnalyzeError::UnknownEntry(label) => {
                write!(f, "`;! entry {label}` names no label in the program")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<AssembleError> for AnalyzeError {
    fn from(e: AssembleError) -> Self {
        AnalyzeError::Assemble(e)
    }
}

impl From<SpecError> for AnalyzeError {
    fn from(e: SpecError) -> Self {
        AnalyzeError::Spec(e)
    }
}

/// Assembles `src`, parses its `;!` annotations, and analyzes it.
///
/// Unlike [`analyze`], an entry annotation naming an unknown label is
/// reported as an [`AnalyzeError::UnknownEntry`] rather than a panic —
/// the annotation came from the same untrusted source text.
pub fn analyze_source(src: &str) -> Result<Report, AnalyzeError> {
    analyze_source_at(src, 1)
}

/// Like [`analyze_source`], for a unit that starts at 1-based line
/// `first_line` of a larger file: every finding's line is rebased to be
/// file-absolute, so diagnostics for units sliced out of a library
/// (e.g. one kernel's section of a `kreg-audit --dump` unit) point at
/// the real source line instead of the slice-relative one.
pub fn analyze_source_at(src: &str, first_line: usize) -> Result<Report, AnalyzeError> {
    let program = assemble(src)?;
    let spec = SecretSpec::from_source(src)?;
    for entry in spec.entries() {
        if program.label(&entry.label).is_none() {
            return Err(AnalyzeError::UnknownEntry(entry.label.clone()));
        }
    }
    let mut report = analyze(&program, &spec);
    if first_line > 1 {
        report.rebase_lines(first_line);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(report: &Report) -> Vec<Rule> {
        report.findings().iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_kernel_is_clean() {
        let report = analyze_source(
            ";! entry sum inputs=a0,a1,sp,ra
             sum:
                add a0, a0, a1
                ret",
        )
        .unwrap();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn read_before_write_fires_with_line_info() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             f:
                add a0, a0, a7
                ret",
        )
        .unwrap();
        let f = &report.findings()[0];
        assert_eq!(f.rule, Rule::ReadBeforeWrite);
        assert_eq!(f.line, Some(3));
        assert!(f.message.contains("a7"));
    }

    #[test]
    fn analyze_source_at_reports_file_absolute_lines() {
        let src = ";! entry f inputs=a0,sp,ra
             f:
                add a0, a0, a7
                ret";
        let rel = analyze_source(src).unwrap();
        assert_eq!(rel.findings()[0].line, Some(3));
        // The same unit sliced out of a library starting at line 40:
        // findings point at the real file line, not the slice line.
        let abs = analyze_source_at(src, 40).unwrap();
        assert_eq!(abs.findings()[0].line, Some(42));
        assert_eq!(abs.findings()[0].rule, rel.findings()[0].rule);
    }

    #[test]
    fn partial_path_definition_is_flagged() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra
             f:
                beq a0, a1, skip
                movi a2, 1
             skip:
                add a0, a2, a0
                ret",
        )
        .unwrap();
        assert!(rules_of(&report).contains(&Rule::ReadBeforeWrite));
    }

    #[test]
    fn dead_store_and_unreachable_warn() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             f:
                movi a3, 7
                ret
             orphan:
                nop
                halt",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::DeadStore));
        assert!(rules.contains(&Rule::Unreachable));
        assert!(report.no_errors(), "both are warnings: {report}");
    }

    #[test]
    fn unbalanced_sp_and_clobbered_ra_error() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             f:
                addi sp, sp, -16
                call helper
                addi sp, sp, 12
                ret
             helper:
                ret",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::StackMismatch), "got {report}");
        assert!(rules.contains(&Rule::RaClobber), "got {report}");
    }

    #[test]
    fn saved_ra_and_balanced_sp_pass() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             f:
                addi sp, sp, -4
                sw ra, sp, 0
                call helper
                lw ra, sp, 0
                addi sp, sp, 4
                ret
             helper:
                movi a0, 1
                ret",
        )
        .unwrap();
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn misaligned_offset_warns() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             f:
                lw a1, a0, 2
                ret",
        )
        .unwrap();
        assert!(rules_of(&report).contains(&Rule::MisalignedMem));
    }

    #[test]
    fn secret_branch_and_secret_load_error() {
        let report = analyze_source(
            ";! entry leak inputs=a0,a1,sp,ra secret=a1
             leak:
                beq a1, a0, skip
                movi a2, 0x1000
                add a2, a2, a1
                lw a3, a2, 0
             skip:
                ret",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::SecretBranch), "got {report}");
        assert!(rules.contains(&Rule::SecretLoad), "got {report}");
    }

    #[test]
    fn allow_annotation_suppresses() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret=a1
             f:
                movi a2, 0x1000
                add a2, a2, a1
                lw a3, a2, 0 ;! allow(secret-load)
                ret",
        )
        .unwrap();
        assert!(
            !rules_of(&report).contains(&Rule::SecretLoad),
            "got {report}"
        );
    }

    #[test]
    fn loading_through_secret_pointer_is_fine_but_taints_value() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret-ptr=a1
             f:
                lw a2, a1, 0
                beq a2, a0, skip
                nop
             skip:
                ret",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(!rules.contains(&Rule::SecretLoad), "got {report}");
        assert!(rules.contains(&Rule::SecretBranch), "got {report}");
    }

    #[test]
    fn secret_mem_ranges_taint_constant_loads() {
        let report = analyze_source(
            ";! entry f inputs=a0,sp,ra
             ;! secret-mem 0x30000 32
             f:
                movi a1, 0x30000
                lw a2, a1, 4
                bne a2, a0, out
                nop
             out:
                ret",
        )
        .unwrap();
        assert!(
            rules_of(&report).contains(&Rule::SecretBranch),
            "got {report}"
        );
    }

    #[test]
    fn taint_flows_through_stack_spills() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret=a1
             f:
                addi sp, sp, -4
                sw a1, sp, 0
                lw a2, sp, 0
                beq a2, a0, out
                nop
             out:
                addi sp, sp, 4
                ret",
        )
        .unwrap();
        assert!(
            rules_of(&report).contains(&Rule::SecretBranch),
            "got {report}"
        );
    }

    #[test]
    fn pointer_taint_survives_stack_spills() {
        // The DES kernel spills its key-schedule pointer to the stack
        // and reloads it; the PTR bit must survive the round trip.
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret-ptr=a1
             f:
                addi sp, sp, -4
                sw a1, sp, 0
                lw a2, sp, 0
                lw a3, a2, 0
                beq a3, a0, out
                nop
             out:
                addi sp, sp, 4
                ret",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(!rules.contains(&Rule::SecretLoad), "got {report}");
        assert!(rules.contains(&Rule::SecretBranch), "got {report}");
    }

    #[test]
    fn xor_clears_nothing_masking_still_tainted() {
        // Masking a secret with itself is still treated as tainted —
        // the checker is a may-analysis, not an algebra.
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret=a1
             f:
                xor a2, a1, a1
                beq a2, a0, out
                nop
             out:
                ret",
        )
        .unwrap();
        assert!(rules_of(&report).contains(&Rule::SecretBranch));
    }

    #[test]
    fn custom_signature_checks_operands_and_taint() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,sp,ra secret-ptr=a1
             ;! cust ldur regs=1 uregs=1 kind=load
             ;! cust bogus regs=2 uregs=0 kind=compute
             f:
                cust ldur ur0, a1, 4
                cust bogus a0, 1
                ret",
        )
        .unwrap();
        let rules = rules_of(&report);
        assert!(rules.contains(&Rule::CustomOperands), "got {report}");
        assert!(
            !rules.contains(&Rule::SecretLoad),
            "ptr-based wide load is fine"
        );
    }

    #[test]
    fn custom_compute_propagates_ureg_taint_to_store() {
        let report = analyze_source(
            ";! entry f inputs=a0,a1,a2,sp,ra secret-ptr=a1
             ;! cust ldur regs=1 uregs=1 kind=load
             ;! cust stur regs=1 uregs=1 kind=store
             ;! cust add4 regs=0 uregs=3 kind=compute reads-carry writes-carry
             f:
                clc
                cust ldur ur0, a1, 4
                cust add4 ur1, ur0, ur2
                cust stur ur1, a2, 4
                ret
             ;! entry g inputs=a0,sp,ra
             g:
                movi a3, 0x40000
                cust ldur ur3, a3, 4
                ret",
        )
        .unwrap();
        // `f` stores secrets through an untracked pointer (a2: Top) —
        // silent by design; `g` loads public memory — clean.
        assert!(report.no_errors(), "got {report}");
    }

    #[test]
    fn unknown_entry_label_panics() {
        let program = assemble("main: halt").unwrap();
        let mut spec = SecretSpec::default();
        spec.add_entry(EntrySpec::new("missing"));
        let r = std::panic::catch_unwind(|| analyze(&program, &spec));
        assert!(r.is_err());
    }

    #[test]
    fn unknown_entry_label_is_an_error_from_source() {
        let err = analyze_source(
            ";! entry ghost inputs=a0
             f:
                ret",
        )
        .unwrap_err();
        assert!(matches!(err, AnalyzeError::UnknownEntry(ref l) if l == "ghost"));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn no_entries_defaults_to_global_labels() {
        let report = analyze_source(
            "f:
                add a0, a0, a7
                ret",
        )
        .unwrap();
        assert!(rules_of(&report).contains(&Rule::ReadBeforeWrite));
    }
}
