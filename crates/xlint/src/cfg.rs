//! Control-flow graph over an assembled [`Program`].
//!
//! Basic blocks split on branch/jump/call/ret boundaries and on label
//! targets. Control flow is interprocedural: a `call` edge enters the
//! callee, and each `ret` edge returns to the continuation of every
//! call site of the *function region* the `ret` belongs to.
//!
//! Function regions exploit the kernel libraries' layout convention:
//! global (non-`.`) labels start functions, and a function's body is
//! the contiguous range up to the next global label. This keeps return
//! edges precise without a context-sensitive analysis.

use std::collections::BTreeMap;
use xr32::asm::Program;
use xr32::isa::Insn;

/// A maximal straight-line instruction sequence `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

/// The control-flow graph: blocks plus instruction-level successor
/// lookup.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Block index of each instruction.
    block_of: Vec<usize>,
    /// Function-region start of each instruction (global-label pc, or 0).
    region_of: Vec<usize>,
    /// Call continuations per callee region start: `region -> [pc+1...]`.
    returns_to: BTreeMap<usize, Vec<usize>>,
    insn_count: usize,
}

impl Cfg {
    /// Builds the CFG for `program`.
    pub fn build(program: &Program) -> Cfg {
        let insns = program.insns();
        let n = insns.len();

        // Function regions from global labels.
        let mut region_starts: Vec<usize> = program.global_labels().map(|(_, at)| at).collect();
        region_starts.sort_unstable();
        region_starts.dedup();
        let mut region_of = vec![0usize; n];
        {
            let mut current = 0usize;
            let mut next_ix = 0usize;
            for (pc, region) in region_of.iter_mut().enumerate() {
                while next_ix < region_starts.len() && region_starts[next_ix] == pc {
                    current = pc;
                    next_ix += 1;
                }
                *region = current;
            }
        }

        // Call continuations grouped by callee region.
        let mut returns_to: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pc, insn) in insns.iter().enumerate() {
            if let Insn::Call(target) = insn {
                returns_to.entry(*target).or_default().push(pc + 1);
            }
        }

        // Block leaders: 0, label targets, branch targets, and
        // instructions after block enders.
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        for &at in program.labels().values() {
            if at < n {
                leader[at] = true;
            }
        }
        for (pc, insn) in insns.iter().enumerate() {
            if let Some(t) = insn.branch_target() {
                leader[t] = true;
            }
            if insn.ends_block() && pc + 1 < n {
                leader[pc + 1] = true;
            }
            // Every call continuation is a leader (ret edges land there).
            if matches!(insn, Insn::Call(_)) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &is_leader) in leader.iter().enumerate() {
            if pc > start && is_leader {
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock {
                start,
                end: n,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        for (ix, b) in blocks.iter().enumerate() {
            for slot in &mut block_of[b.start..b.end] {
                *slot = ix;
            }
        }

        let mut cfg = Cfg {
            blocks,
            block_of,
            region_of,
            returns_to,
            insn_count: n,
        };

        // Block-level edges from the last instruction of each block.
        for ix in 0..cfg.blocks.len() {
            let last = cfg.blocks[ix].end - 1;
            let succ_pcs = cfg.insn_succs(last, insns);
            let mut succs: Vec<usize> = succ_pcs
                .into_iter()
                .filter(|&pc| pc < n)
                .map(|pc| cfg.block_of[pc])
                .collect();
            succs.sort_unstable();
            succs.dedup();
            cfg.blocks[ix].succs = succs;
        }
        for ix in 0..cfg.blocks.len() {
            for s in cfg.blocks[ix].succs.clone() {
                cfg.blocks[s].preds.push(ix);
            }
        }
        cfg
    }

    /// The basic blocks in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Block index containing `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// The function-region start (global label pc) containing `pc`.
    pub fn region_of(&self, pc: usize) -> usize {
        self.region_of[pc]
    }

    /// Successor *instruction* indices of the instruction at `pc`.
    /// Indices `== program.len()` never appear; falling off the end or
    /// returning to the host are simply edges to nowhere.
    pub fn insn_succs(&self, pc: usize, insns: &[Insn]) -> Vec<usize> {
        let insn = &insns[pc];
        let mut out = Vec::with_capacity(2);
        match insn {
            Insn::Ret => {
                // Return to the continuation of each call site of this
                // function region (none when called from the host).
                let region = self.region_of[pc];
                if let Some(sites) = self.returns_to.get(&region) {
                    out.extend(sites.iter().copied().filter(|&s| s < self.insn_count));
                }
            }
            Insn::Jr(_) | Insn::Halt => {}
            // A call's continuation is reached through the callee's
            // `ret`, not directly — no fall-through edge here.
            Insn::Call(t) => {
                if *t < self.insn_count {
                    out.push(*t);
                }
            }
            _ => {
                if let Some(t) = insn.branch_target() {
                    out.push(t);
                }
                if insn.falls_through() && pc + 1 < self.insn_count {
                    out.push(pc + 1);
                }
            }
        }
        out
    }

    /// Instruction indices reachable from the given entry pcs.
    pub fn reachable_from(&self, entries: &[usize], insns: &[Insn]) -> Vec<bool> {
        let mut seen = vec![false; self.insn_count];
        let mut work: Vec<usize> = entries
            .iter()
            .copied()
            .filter(|&e| e < self.insn_count)
            .collect();
        while let Some(pc) = work.pop() {
            if seen[pc] {
                continue;
            }
            seen[pc] = true;
            for s in self.insn_succs(pc, insns) {
                if !seen[s] {
                    work.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::asm::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble(src).expect("assembles");
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("main: movi a0, 1\n addi a0, a0, 1\n halt");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.blocks()[0].start, 0);
        assert_eq!(c.blocks()[0].end, 3);
        assert!(c.blocks()[0].succs.is_empty());
    }

    #[test]
    fn loop_splits_blocks_and_links_edges() {
        let (_, c) = cfg_of(
            "main:
                movi a0, 4
                movi a1, 0
            loop:
                addi a0, a0, -1
                bne  a0, a1, loop
                halt",
        );
        // Blocks: [movi,movi] [addi,bne] [halt]
        assert_eq!(c.blocks().len(), 3);
        assert_eq!(c.blocks()[0].succs, vec![1]);
        assert_eq!(c.blocks()[1].succs, vec![1, 2]);
        assert!(c.blocks()[2].succs.is_empty());
        assert_eq!(c.blocks()[1].preds, vec![0, 1]);
    }

    #[test]
    fn call_and_ret_connect_interprocedurally() {
        let (p, c) = cfg_of(
            "main:
                call f
                halt
            f:
                addi a0, a0, 1
                ret",
        );
        let f = p.label("f").expect("label");
        // call -> f
        assert_eq!(c.insn_succs(0, p.insns()), vec![f]);
        // ret -> continuation of the call (pc 1)
        let ret_pc = p.len() - 1;
        assert_eq!(c.insn_succs(ret_pc, p.insns()), vec![1]);
        let reach = c.reachable_from(&[0], p.insns());
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn ret_regions_keep_distinct_functions_separate() {
        let (p, c) = cfg_of(
            "main:
                call f
                call g
                halt
            f:
                ret
            g:
                ret",
        );
        let f_ret = p.label("f").expect("f");
        let g_ret = p.label("g").expect("g");
        assert_eq!(c.insn_succs(f_ret, p.insns()), vec![1]);
        assert_eq!(c.insn_succs(g_ret, p.insns()), vec![2]);
    }

    #[test]
    fn unreachable_code_not_marked() {
        let (p, c) = cfg_of(
            "main:
                halt
            orphan:
                nop
                halt",
        );
        let reach = c.reachable_from(&[0], p.insns());
        assert!(reach[0]);
        assert!(!reach[1]);
        assert!(!reach[2]);
    }
}
