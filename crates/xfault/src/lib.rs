//! Deterministic fault injection and resilience policy.
//!
//! The methodology flow assumes every ISS measurement succeeds. A
//! production-scale platform must keep characterizing, exploring and
//! selecting even when a kernel diverges, a cache line is poisoned or
//! the simulated hardware misbehaves. This crate supplies the two
//! halves of that robustness story:
//!
//! * **Injection** — a [`FaultPlan`] is a seeded, stream-addressed
//!   source of fault decisions that the XR32 ISS consults at four
//!   architectural sites ([`FaultSite`]): data-memory loads, the
//!   register file, cache tags, and custom-instruction results. Every
//!   decision is a pure function of `(seed, stream, draw index)`, so a
//!   campaign with a fixed seed is byte-identical on any host at any
//!   thread count.
//! * **Policy** — a [`FaultPolicy`] tells the flow layer how to react
//!   to measurement failures: how many reseeded retries to attempt on
//!   a divergence, when to quarantine a kernel, and what cycle budget
//!   bounds a runaway (corrupted) kernel.
//!
//! Like `xobs`, this crate is dependency-free; `xr32` and `secproc`
//! depend on it, never the reverse.

use std::fmt;

/// Architectural sites where a [`FaultPlan`] can inject faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Bit-flips in values loaded from data memory.
    DataMem,
    /// Bit-flips in a register after an instruction retires.
    RegFile,
    /// Cache-tag corruption: a lookup that should hit is forced to
    /// miss (the tag was corrupted, so the line no longer matches).
    CacheTag,
    /// Stuck-at faults in the result of a custom instruction.
    CustomResult,
}

impl FaultSite {
    /// All sites, in canonical order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::DataMem,
        FaultSite::RegFile,
        FaultSite::CacheTag,
        FaultSite::CustomResult,
    ];

    /// The short name used in `WSP_FAULTS` specs and campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DataMem => "data",
            FaultSite::RegFile => "reg",
            FaultSite::CacheTag => "tag",
            FaultSite::CustomResult => "custom",
        }
    }

    /// Parses a short site name (see [`FaultSite::name`]).
    pub fn parse(s: &str) -> Option<FaultSite> {
        match s {
            "data" => Some(FaultSite::DataMem),
            "reg" => Some(FaultSite::RegFile),
            "tag" => Some(FaultSite::CacheTag),
            "custom" => Some(FaultSite::CustomResult),
            _ => None,
        }
    }

    fn bit(self) -> u8 {
        match self {
            FaultSite::DataMem => 1,
            FaultSite::RegFile => 2,
            FaultSite::CacheTag => 4,
            FaultSite::CustomResult => 8,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// sebastiano vigna's splitmix64 — the statelessly seedable generator
/// behind every fault decision. One step per draw keeps decisions a
/// pure function of the draw index.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible fault-campaign specification: the seed, the injection
/// rate, and the set of sites to attack.
///
/// The spec is the *identity* of a campaign; a [`FaultPlan`] is derived
/// from it per measurement unit via [`PlanSpec::plan`], keyed by a
/// caller-chosen stream id, so concurrent units draw from independent
/// deterministic streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Campaign seed. Same seed, same spec, same stream → identical
    /// injections.
    pub seed: u64,
    /// Injection probability per opportunity, in parts per million.
    /// Integer so specs hash/compare exactly.
    pub rate_ppm: u32,
    /// Bitmask of enabled [`FaultSite`]s.
    sites: u8,
}

impl PlanSpec {
    /// A spec attacking `sites` at `rate_ppm` with `seed`.
    pub fn new(seed: u64, rate_ppm: u32, sites: &[FaultSite]) -> Self {
        let mut mask = 0u8;
        for s in sites {
            mask |= s.bit();
        }
        PlanSpec {
            seed,
            rate_ppm,
            sites: mask,
        }
    }

    /// A spec attacking every site.
    pub fn all_sites(seed: u64, rate_ppm: u32) -> Self {
        Self::new(seed, rate_ppm, &FaultSite::ALL)
    }

    /// Whether `site` is enabled.
    pub fn targets(&self, site: FaultSite) -> bool {
        self.sites & site.bit() != 0
    }

    /// The enabled sites, in canonical order.
    pub fn sites(&self) -> Vec<FaultSite> {
        FaultSite::ALL
            .into_iter()
            .filter(|s| self.targets(*s))
            .collect()
    }

    /// Derives the per-unit [`FaultPlan`] for `stream`. Distinct
    /// streams (e.g. one per kernel × size × attempt) yield independent
    /// deterministic decision sequences from the same campaign seed.
    pub fn plan(&self, stream: u64) -> FaultPlan {
        // Mix seed and stream through one splitmix step each so
        // adjacent streams land far apart in the state space.
        let mut s = self.seed;
        let a = splitmix64(&mut s);
        let mut s = stream.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
        let b = splitmix64(&mut s);
        FaultPlan {
            spec: *self,
            state: a ^ b,
            fired: [0; 4],
        }
    }

    /// Parses a `WSP_FAULTS`-style spec: comma-separated
    /// `seed=<u64>`, `rate=<ppm>`, `sites=<name+name+...>` fields, e.g.
    /// `seed=7,rate=20000,sites=data+custom`. Omitted fields default to
    /// seed 1, rate 10000 ppm, all sites.
    pub fn parse(spec: &str) -> Result<PlanSpec, String> {
        let mut seed = 1u64;
        let mut rate_ppm = 10_000u32;
        let mut sites = FaultSite::ALL.to_vec();
        for field in spec.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{field}` is not key=value"))?;
            match k.trim() {
                "seed" => {
                    seed = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault seed `{v}`"))?;
                }
                "rate" => {
                    rate_ppm = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault rate `{v}` (ppm)"))?;
                }
                "sites" => {
                    sites = v
                        .split('+')
                        .map(|s| {
                            FaultSite::parse(s.trim())
                                .ok_or_else(|| format!("unknown fault site `{s}`"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(PlanSpec::new(seed, rate_ppm, &sites))
    }

    /// Reads a spec from the `WSP_FAULTS` environment variable.
    /// `None` when unset or empty; `Err` when set but malformed.
    pub fn from_env() -> Result<Option<PlanSpec>, String> {
        match std::env::var("WSP_FAULTS") {
            Ok(s) if !s.trim().is_empty() => PlanSpec::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

impl fmt::Display for PlanSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sites: Vec<&str> = self.sites().iter().map(|s| s.name()).collect();
        write!(
            f,
            "seed={},rate={},sites={}",
            self.seed,
            self.rate_ppm,
            sites.join("+")
        )
    }
}

/// A live, per-unit fault injector: the decision stream the ISS
/// consults at each opportunity.
///
/// Each hook consumes exactly one deterministic draw per opportunity
/// (two when the fault fires, to pick the corruption), so the decision
/// at opportunity *k* never depends on host, thread count, or what
/// other units are doing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: PlanSpec,
    state: u64,
    fired: [u64; 4],
}

impl FaultPlan {
    fn site_index(site: FaultSite) -> usize {
        match site {
            FaultSite::DataMem => 0,
            FaultSite::RegFile => 1,
            FaultSite::CacheTag => 2,
            FaultSite::CustomResult => 3,
        }
    }

    /// The spec this plan was derived from.
    pub fn spec(&self) -> &PlanSpec {
        &self.spec
    }

    /// One Bernoulli draw at the campaign rate for `site`; `false`
    /// without consuming a draw when the site is disabled.
    fn fires(&mut self, site: FaultSite) -> bool {
        if !self.spec.targets(site) {
            return false;
        }
        let draw = splitmix64(&mut self.state);
        // Map the draw to [0, 1e6) and compare against the ppm rate.
        let hit = draw % 1_000_000 < u64::from(self.spec.rate_ppm);
        if hit {
            self.fired[Self::site_index(site)] += 1;
        }
        hit
    }

    /// Data-memory load hook: returns `value` possibly with one bit
    /// flipped.
    pub fn data(&mut self, value: u32) -> u32 {
        if self.fires(FaultSite::DataMem) {
            let bit = splitmix64(&mut self.state) % 32;
            value ^ (1u32 << bit)
        } else {
            value
        }
    }

    /// Register-file hook, called once per retired instruction:
    /// `Some((reg, mask))` means XOR register `reg` with `mask`.
    pub fn regfile(&mut self, num_regs: usize) -> Option<(usize, u32)> {
        if self.fires(FaultSite::RegFile) {
            let draw = splitmix64(&mut self.state);
            let reg = (draw as usize) % num_regs.max(1);
            let bit = (draw >> 32) % 32;
            Some((reg, 1u32 << bit))
        } else {
            None
        }
    }

    /// Cache-tag hook, called once per cache access: `true` means the
    /// addressed line's tag has been corrupted and the line must be
    /// invalidated before the lookup (forcing a miss).
    pub fn cache_tag(&mut self) -> bool {
        self.fires(FaultSite::CacheTag)
    }

    /// Custom-instruction result hook: `Some(mask)` means OR the
    /// destination register with `mask` (a stuck-at-one fault on one
    /// result line).
    pub fn custom_result(&mut self) -> Option<u32> {
        if self.fires(FaultSite::CustomResult) {
            let bit = splitmix64(&mut self.state) % 32;
            Some(1u32 << bit)
        } else {
            None
        }
    }

    /// Faults actually injected at `site` so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[Self::site_index(site)]
    }

    /// Total faults injected across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// Default bound on reseeded retries after a divergent measurement.
pub const DEFAULT_MAX_RETRIES: u32 = 2;
/// Default number of failed units before a kernel is quarantined.
pub const DEFAULT_QUARANTINE_AFTER: u32 = 2;
/// Default cycle budget for a single kernel call under fault injection
/// (a corrupted loop must time out, not hang the pool).
pub const DEFAULT_CYCLE_BUDGET: u64 = 50_000_000;

/// How the flow layer reacts to measurement failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Bounded reseeded-stimulus retries per failed unit.
    pub max_retries: u32,
    /// Failed units before the kernel is quarantined (0 disables
    /// quarantine).
    pub quarantine_after: u32,
    /// Instruction budget per kernel call; exceeding it is a typed
    /// timeout. `u64::MAX` disables the watchdog.
    pub cycle_budget: u64,
    /// The injection campaign, if any. `None` is the production
    /// default: no injection, watchdog still armed.
    pub plan: Option<PlanSpec>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: DEFAULT_MAX_RETRIES,
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            plan: None,
        }
    }
}

impl FaultPolicy {
    /// The default policy with an injection campaign attached.
    pub fn with_plan(spec: PlanSpec) -> Self {
        FaultPolicy {
            plan: Some(spec),
            ..FaultPolicy::default()
        }
    }

    /// Builds the policy from the environment: `WSP_FAULTS` supplies
    /// the campaign spec (see [`PlanSpec::parse`]); a malformed spec
    /// falls back to no injection rather than aborting the run.
    pub fn from_env() -> Self {
        match PlanSpec::from_env() {
            Ok(plan) => FaultPolicy {
                plan,
                ..FaultPolicy::default()
            },
            Err(e) => {
                eprintln!("xfault: ignoring malformed WSP_FAULTS: {e}");
                FaultPolicy::default()
            }
        }
    }

    /// Whether any injection campaign is active.
    pub fn injecting(&self) -> bool {
        self.plan.is_some()
    }

    /// The deterministic stimulus seed for retry `attempt` (attempt 0
    /// is the original seed). The backoff sequence is a pure function
    /// of the original seed so reports can record and replay it.
    pub fn retry_seed(&self, original: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return original;
        }
        let mut s = original ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(&mut s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_round_trip_names() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("bogus"), None);
    }

    #[test]
    fn spec_parses_fields_and_defaults() {
        let spec = PlanSpec::parse("seed=7,rate=20000,sites=data+custom").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rate_ppm, 20_000);
        assert!(spec.targets(FaultSite::DataMem));
        assert!(spec.targets(FaultSite::CustomResult));
        assert!(!spec.targets(FaultSite::RegFile));
        assert!(!spec.targets(FaultSite::CacheTag));

        let dflt = PlanSpec::parse("").unwrap();
        assert_eq!(dflt.seed, 1);
        assert_eq!(dflt.rate_ppm, 10_000);
        assert_eq!(dflt.sites(), FaultSite::ALL.to_vec());

        assert!(PlanSpec::parse("seed=x").is_err());
        assert!(PlanSpec::parse("sites=warp").is_err());
        assert!(PlanSpec::parse("nonsense").is_err());
    }

    #[test]
    fn spec_display_round_trips() {
        let spec = PlanSpec::new(42, 1234, &[FaultSite::RegFile, FaultSite::CacheTag]);
        let round = PlanSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn same_seed_same_stream_identical_decisions() {
        let spec = PlanSpec::all_sites(99, 500_000);
        let mut a = spec.plan(3);
        let mut b = spec.plan(3);
        for i in 0..1000u32 {
            assert_eq!(a.data(i), b.data(i));
            assert_eq!(a.regfile(16), b.regfile(16));
            assert_eq!(a.cache_tag(), b.cache_tag());
            assert_eq!(a.custom_result(), b.custom_result());
        }
        assert_eq!(a.total_fired(), b.total_fired());
        assert!(a.total_fired() > 0, "a 50% rate must fire in 4000 draws");
    }

    #[test]
    fn distinct_streams_decorrelate() {
        let spec = PlanSpec::all_sites(99, 500_000);
        let mut a = spec.plan(0);
        let mut b = spec.plan(1);
        let mut differs = false;
        for i in 0..200u32 {
            if a.data(i) != b.data(i) {
                differs = true;
            }
        }
        assert!(differs, "independent streams must diverge");
    }

    #[test]
    fn rate_zero_never_fires_rate_max_always_fires() {
        let spec = PlanSpec::all_sites(1, 0);
        let mut p = spec.plan(0);
        for i in 0..100 {
            assert_eq!(p.data(i), i);
        }
        assert_eq!(p.total_fired(), 0);

        let spec = PlanSpec::all_sites(1, 1_000_000);
        let mut p = spec.plan(0);
        for i in 0..100u32 {
            assert_ne!(p.data(i), i, "a certain fault must flip a bit");
        }
        assert_eq!(p.fired(FaultSite::DataMem), 100);
    }

    #[test]
    fn disabled_site_costs_no_draws() {
        // A data-only plan's data decisions must not shift when the
        // other hooks are interleaved (they draw nothing).
        let spec = PlanSpec::new(5, 250_000, &[FaultSite::DataMem]);
        let mut solo = spec.plan(7);
        let solo_vals: Vec<u32> = (0..64).map(|i| solo.data(i)).collect();
        let mut mixed = spec.plan(7);
        let mut mixed_vals = Vec::new();
        for i in 0..64 {
            assert!(mixed.regfile(16).is_none());
            assert!(!mixed.cache_tag());
            mixed_vals.push(mixed.data(i));
            assert!(mixed.custom_result().is_none());
        }
        assert_eq!(solo_vals, mixed_vals);
    }

    #[test]
    fn retry_seeds_are_deterministic_and_distinct() {
        let policy = FaultPolicy::default();
        assert_eq!(policy.retry_seed(42, 0), 42);
        let s1 = policy.retry_seed(42, 1);
        let s2 = policy.retry_seed(42, 2);
        assert_ne!(s1, 42);
        assert_ne!(s1, s2);
        assert_eq!(s1, policy.retry_seed(42, 1), "pure function of inputs");
    }

    #[test]
    fn policy_defaults_are_safe() {
        let p = FaultPolicy::default();
        assert!(!p.injecting());
        assert!(p.max_retries >= 1);
        assert!(p.cycle_budget > 1_000_000);
    }
}
