//! XR32 assembly kernel for the SHA-1 compression function.
//!
//! SHA-1 is the *miscellaneous* (unaccelerated) share of SSL record
//! processing in the platform's Fig. 8 workload model, so only a base
//! software kernel exists — its cycles are the Amdahl term that bounds
//! large-transaction speedup.
//!
//! `sha1_compress` takes no register arguments: the 5-word state and the
//! 16-word message block (already big-endian-decoded words) live at the
//! fixed addresses of [`MemoryMap`]; an 80-word scratch area holds the
//! expanded schedule.

use xr32::cpu::Cpu;

/// Memory layout used by the SHA-1 kernel.
#[derive(Debug, Clone, Copy)]
pub struct MemoryMap {
    /// 5-word hash state.
    pub state: u32,
    /// 16-word message block.
    pub block: u32,
    /// 80-word schedule scratch.
    pub sched: u32,
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            state: 0x0003_0000,
            block: 0x0003_0020,
            sched: 0x0003_0080,
        }
    }
}

/// Writes the hash state.
pub fn write_state(cpu: &mut Cpu, map: &MemoryMap, state: &[u32; 5]) {
    cpu.mem_mut().write_words(map.state, state).expect("state");
}

/// Reads the hash state back.
pub fn read_state(cpu: &Cpu, map: &MemoryMap) -> [u32; 5] {
    cpu.mem()
        .read_words(map.state, 5)
        .expect("state")
        .try_into()
        .expect("5 words")
}

/// Writes one 64-byte message block (as 16 big-endian-decoded words).
pub fn write_block(cpu: &mut Cpu, map: &MemoryMap, block: &[u8; 64]) {
    let words: Vec<u32> = block
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().expect("4 bytes")))
        .collect();
    cpu.mem_mut().write_words(map.block, &words).expect("block");
}

/// The SHA-1 compression kernel source.
pub fn source(map: &MemoryMap) -> String {
    format!(
        "
;! entry sha1_compress inputs=none
;! secret-mem {state} 20
;! secret-mem {block} 64
;! secret-mem {sched} 320
sha1_compress:
    ; copy block words into the schedule area
    movi a0, {block}
    movi a1, {sched}
    movi a2, 0
    movi a3, 16
.cp_loop:
    lw   a4, a0, 0
    sw   a4, a1, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 1
    bne  a2, a3, .cp_loop
    ; expand: w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16])
    movi a2, 16
    movi a3, 80
    movi a0, {sched}
.ex_loop:
    slli a1, a2, 2
    add  a1, a1, a0        ; &w[i]
    lw   a4, a1, -12       ; w[i-3]
    lw   a5, a1, -32       ; w[i-8]
    xor  a4, a4, a5
    lw   a5, a1, -56       ; w[i-14]
    xor  a4, a4, a5
    lw   a5, a1, -64       ; w[i-16]
    xor  a4, a4, a5
    slli a5, a4, 1
    srli a4, a4, 31
    or   a4, a4, a5
    sw   a4, a1, 0
    addi a2, a2, 1
    bne  a2, a3, .ex_loop
    ; load state into a4..a8 (a, b, c, d, e)
    movi a0, {state}
    lw   a4, a0, 0
    lw   a5, a0, 4
    lw   a6, a0, 8
    lw   a7, a0, 12
    lw   a8, a0, 16
    movi a2, 0             ; round
    movi a0, {sched}
.round:
    ; select (f, k) by round range into (a9, a10)
    movi a11, 20
    bltu a2, a11, .r0
    movi a11, 40
    bltu a2, a11, .r1
    movi a11, 60
    bltu a2, a11, .r2
    ; 60..79: parity
    xor  a9, a5, a6
    xor  a9, a9, a7
    movi a10, 0xca62c1d6
    j .mix
.r0:
    ; ch: (b & c) | (~b & d)
    and  a9, a5, a6
    movi a10, 0xffffffff
    xor  a10, a5, a10
    and  a10, a10, a7
    or   a9, a9, a10
    movi a10, 0x5a827999
    j .mix
.r1:
    xor  a9, a5, a6
    xor  a9, a9, a7
    movi a10, 0x6ed9eba1
    j .mix
.r2:
    ; maj: (b & c) | (b & d) | (c & d)
    and  a9, a5, a6
    and  a11, a5, a7
    or   a9, a9, a11
    and  a11, a6, a7
    or   a9, a9, a11
    movi a10, 0x8f1bbcdc
.mix:
    ; t = rotl5(a) + f + e + k + w[i]
    slli a11, a4, 5
    srli a12, a4, 27
    or   a11, a11, a12
    add  a11, a11, a9
    add  a11, a11, a8
    add  a11, a11, a10
    slli a12, a2, 2
    add  a12, a12, a0
    lw   a12, a12, 0
    add  a11, a11, a12
    ; e = d; d = c; c = rotl30(b); b = a; a = t
    mov  a8, a7
    mov  a7, a6
    slli a6, a5, 30
    srli a12, a5, 2
    or   a6, a6, a12
    mov  a5, a4
    mov  a4, a11
    addi a2, a2, 1
    movi a11, 80
    bne  a2, a11, .round
    ; add back into the state
    movi a0, {state}
    lw   a9, a0, 0
    add  a9, a9, a4
    sw   a9, a0, 0
    lw   a9, a0, 4
    add  a9, a9, a5
    sw   a9, a0, 4
    lw   a9, a0, 8
    add  a9, a9, a6
    sw   a9, a0, 8
    lw   a9, a0, 12
    add  a9, a9, a7
    sw   a9, a0, 12
    lw   a9, a0, 16
    add  a9, a9, a8
    sw   a9, a0, 16
    ret
",
        block = map.block,
        sched = map.sched,
        state = map.state,
    )
}
