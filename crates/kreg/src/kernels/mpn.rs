//! XR32 assembly kernels for the multi-precision basic operations.
//!
//! Three kernel libraries share the same entry labels and calling
//! convention, so the ISS-backed ops provider can swap them freely:
//!
//! - [`base32_source`]: plain RISC code, 32-bit limbs (the paper's
//!   optimized-software baseline);
//! - [`accel32_source`]: custom-instruction datapaths (`ldur`/`stur`,
//!   `add<k>`, `mac<k>`, …) with scalar tail loops;
//! - [`base16_source`]: 16-bit limbs using only the 32-bit multiplier's
//!   low half (radix-2¹⁶ axis of the design space).
//!
//! Calling convention (32-bit limbs; 16-bit variants take halfword
//! counts/pointers):
//!
//! | label | a0 | a1 | a2 | a3 | a4 | returns a0 |
//! |---|---|---|---|---|---|---|
//! | `mpn_add_n` | rp | ap | bp | n | — | carry 0/1 |
//! | `mpn_sub_n` | rp | ap | bp | n | — | borrow 0/1 |
//! | `mpn_mul_1` | rp | ap | n | b | — | carry limb |
//! | `mpn_addmul_1` | rp | ap | n | b | — | carry limb |
//! | `mpn_submul_1` | rp | ap | n | b | — | borrow limb |
//! | `mpn_lshift` | rp | ap | n | cnt | — | bits out |
//! | `mpn_rshift` | rp | ap | n | cnt | — | bits out |
//! | `div_qhat` | n2 | n1 | n0 | d1 | d0 | qhat |
//!
//! All vector arguments require `n >= 1`.

/// The base (no custom instructions) 32-bit limb kernel library.
pub fn base32_source() -> String {
    let mut s = String::new();
    s.push_str(ADD_N_32);
    s.push_str(SUB_N_32);
    s.push_str(MUL1_32);
    s.push_str(ADDMUL1_32);
    s.push_str(SUBMUL1_32);
    s.push_str(LSHIFT_32);
    s.push_str(RSHIFT_32);
    s.push_str(DIV_QHAT_32);
    s
}

/// The canonical (base RISC, 32-bit) source of one kernel as a
/// standalone annotated unit — the input the `xopt` rewriting pipeline
/// consumes. `None` for kernels outside the 32-bit mpn library.
pub fn canonical_source32(kernel: crate::KernelId) -> Option<&'static str> {
    use crate::id;
    Some(match kernel {
        id::ADD_N => ADD_N_32,
        id::SUB_N => SUB_N_32,
        id::MUL_1 => MUL1_32,
        id::ADDMUL_1 => ADDMUL1_32,
        id::SUBMUL_1 => SUBMUL1_32,
        id::LSHIFT => LSHIFT_32,
        id::RSHIFT => RSHIFT_32,
        id::DIV_QHAT => DIV_QHAT_32,
        _ => return None,
    })
}

const ADD_N_32: &str = "
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:                 ; a0=rp a1=ap a2=bp a3=n -> a0=carry
    movi a6, 0
    clc
.an_loop:
    lw   a4, a1, 0
    lw   a5, a2, 0
    addi a1, a1, 4
    addi a2, a2, 4
    addc a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a3, a3, -1
    bne  a3, a6, .an_loop
    movi a0, 0
    movi a5, 0
    addc a0, a0, a5
    ret
";

const SUB_N_32: &str = "
;! entry mpn_sub_n inputs=a0-a3 secret-ptr=a1,a2
mpn_sub_n:                 ; a0=rp a1=ap a2=bp a3=n -> a0=borrow
    movi a6, 0
    clc
.sn_loop:
    lw   a4, a1, 0
    lw   a5, a2, 0
    addi a1, a1, 4
    addi a2, a2, 4
    subc a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a3, a3, -1
    bne  a3, a6, .sn_loop
    movi a9, 0
    subc a9, a9, a9        ; a9 = 0 - borrow (0 or 0xffffffff)
    movi a0, 0
    sub  a0, a0, a9        ; a0 = borrow
    ret
";

const MUL1_32: &str = "
;! entry mpn_mul_1 inputs=a0-a3 secret=a3 secret-ptr=a1
mpn_mul_1:                 ; a0=rp a1=ap a2=n a3=b -> a0=carry limb
    movi a6, 0
    movi a7, 0             ; carry
.m1_loop:
    lw    a4, a1, 0
    addi  a1, a1, 4
    mul   a5, a4, a3
    mulhu a4, a4, a3
    add   a5, a5, a7
    sltu  a7, a5, a7
    add   a7, a7, a4
    sw    a5, a0, 0
    addi  a0, a0, 4
    addi  a2, a2, -1
    bne   a2, a6, .m1_loop
    mov   a0, a7
    ret
";

const ADDMUL1_32: &str = "
;! entry mpn_addmul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_addmul_1:              ; a0=rp a1=ap a2=n a3=b -> a0=carry limb
    movi a6, 0
    movi a7, 0             ; carry
.am_loop:
    lw    a4, a1, 0
    lw    a5, a0, 0
    addi  a1, a1, 4
    mul   a8, a4, a3
    mulhu a9, a4, a3
    add   a8, a8, a7
    sltu  a10, a8, a7
    add   a9, a9, a10
    add   a8, a8, a5
    sltu  a10, a8, a5
    add   a9, a9, a10
    sw    a8, a0, 0
    addi  a0, a0, 4
    mov   a7, a9
    addi  a2, a2, -1
    bne   a2, a6, .am_loop
    mov   a0, a7
    ret
";

const SUBMUL1_32: &str = "
;! entry mpn_submul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_submul_1:              ; a0=rp a1=ap a2=n a3=b -> a0=borrow limb
    movi a6, 0
    movi a7, 0             ; borrow
.sm_loop:
    lw    a4, a1, 0
    lw    a5, a0, 0
    addi  a1, a1, 4
    mul   a8, a4, a3
    mulhu a9, a4, a3
    add   a8, a8, a7
    sltu  a10, a8, a7
    add   a9, a9, a10
    sltu  a10, a5, a8      ; borrow out of r - lo
    sub   a5, a5, a8
    add   a7, a9, a10
    sw    a5, a0, 0
    addi  a0, a0, 4
    addi  a2, a2, -1
    bne   a2, a6, .sm_loop
    mov   a0, a7
    ret
";

const LSHIFT_32: &str = "
;! entry mpn_lshift inputs=a0-a3 secret-ptr=a1
mpn_lshift:                ; a0=rp a1=ap a2=n a3=cnt -> a0=bits out
    movi a6, 0
    movi a7, 0
    movi a8, 32
    sub  a8, a8, a3
.ls_loop:
    lw   a4, a1, 0
    addi a1, a1, 4
    sll  a5, a4, a3
    or   a5, a5, a7
    srl  a7, a4, a8
    sw   a5, a0, 0
    addi a0, a0, 4
    addi a2, a2, -1
    bne  a2, a6, .ls_loop
    mov  a0, a7
    ret
";

const RSHIFT_32: &str = "
;! entry mpn_rshift inputs=a0-a3 secret-ptr=a1
mpn_rshift:                ; a0=rp a1=ap a2=n a3=cnt -> a0=bits out
    movi a6, 0
    movi a7, 0
    movi a8, 32
    sub  a8, a8, a3
    slli a9, a2, 2
    add  a0, a0, a9
    add  a1, a1, a9
.rs_loop:
    addi a1, a1, -4
    lw   a4, a1, 0
    srl  a5, a4, a3
    or   a5, a5, a7
    sll  a7, a4, a8
    addi a0, a0, -4
    sw   a5, a0, 0
    addi a2, a2, -1
    bne  a2, a6, .rs_loop
    mov  a0, a7
    ret
";

const DIV_QHAT_32: &str = "
; div_qhat is bit-serial restoring division: variable-time by
; algorithm, so it is exempt from the constant-time policy (declared
; `public`); see DESIGN.md for the rationale.
;! entry div_qhat inputs=a0-a4 public
div_qhat:                  ; a0=n2 a1=n1 a2=n0 a3=d1 a4=d0 -> a0=qhat
    movi a11, 0
    sltu a5, a0, a3        ; a5 = n2 < d1
    xori a5, a5, 1         ; a5 = qhi = (n2 >= d1)
    beq  a5, a11, .dq_norest
    sub  a0, a0, a3
.dq_norest:
    mov  a7, a0            ; rem
    movi a6, 0             ; qlo
    movi a8, 32
.dq_loop:
    srli a9, a7, 31        ; hibit
    slli a7, a7, 1
    srli a10, a1, 31
    or   a7, a7, a10
    slli a1, a1, 1
    slli a6, a6, 1
    bne  a9, a11, .dq_sub
    sltu a9, a7, a3
    bne  a9, a11, .dq_next
.dq_sub:
    sub  a7, a7, a3
    ori  a6, a6, 1
.dq_next:
    addi a8, a8, -1
    bne  a8, a11, .dq_loop
    movi a10, 0            ; rhat high
.dq_corr:
    beq  a5, a11, .dq_qfit
    bne  a6, a11, .dq_declo
    addi a5, a5, -1
.dq_declo:
    addi a6, a6, -1
    add  a7, a7, a3
    sltu a9, a7, a3
    add  a10, a10, a9
    j .dq_corr
.dq_qfit:
    bne  a10, a11, .dq_done ; rhat >= b
    mul   a9, a6, a4
    mulhu a12, a6, a4
    bltu a7, a12, .dq_toobig
    bltu a12, a7, .dq_done
    bgeu a2, a9, .dq_done
.dq_toobig:
    addi a6, a6, -1
    add  a7, a7, a3
    sltu a9, a7, a3
    add  a10, a10, a9
    j .dq_qfit
.dq_done:
    mov a0, a6
    ret
";

/// The custom-instruction-accelerated 32-bit kernel library.
/// `add_lanes` selects the `add<k>`/`sub<k>` datapath width
/// (2/4/8/16); `mac_lanes` selects the `mac<k>`/`msub<k>` width
/// (1/2/4). The corresponding extension set must be configured into the
/// core (see `secproc::insns::mpn_extension_set`).
pub fn accel32_source(add_lanes: u32, mac_lanes: u32) -> String {
    assert!(matches!(add_lanes, 2 | 4 | 8 | 16));
    assert!(matches!(mac_lanes, 1 | 2 | 4));
    let al = add_lanes;
    let ab = 4 * add_lanes; // byte stride
    let ml = mac_lanes;
    let mb = 4 * mac_lanes;
    format!(
        "
;! cust ldur regs=1 uregs=1 kind=load
;! cust stur regs=1 uregs=1 kind=store
;! cust add{al} regs=0 uregs=3 kind=compute reads-carry writes-carry
;! cust sub{al} regs=0 uregs=3 kind=compute reads-carry writes-carry
;! cust mac{ml} regs=2 uregs=2 kind=compute writes-reg=1
;! cust msub{ml} regs=2 uregs=2 kind=compute writes-reg=1
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:                 ; accelerated: {al}-lane adder
    movi a6, 0
    movi a7, {al}
    clc
.aa_blk:
    bltu a3, a7, .aa_tail
    cust ldur ur0, a1, {al}
    cust ldur ur1, a2, {al}
    cust add{al} ur2, ur0, ur1
    cust stur ur2, a0, {al}
    addi a0, a0, {ab}
    addi a1, a1, {ab}
    addi a2, a2, {ab}
    addi a3, a3, -{al}
    j .aa_blk
.aa_tail:
    beq  a3, a6, .aa_done
    lw   a4, a1, 0
    lw   a5, a2, 0
    addc a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi a3, a3, -1
    j .aa_tail
.aa_done:
    movi a4, 0
    movi a0, 0
    addc a0, a0, a4
    ret

;! entry mpn_sub_n inputs=a0-a3 secret-ptr=a1,a2
mpn_sub_n:                 ; accelerated: {al}-lane subtractor
    movi a6, 0
    movi a7, {al}
    clc
.as_blk:
    bltu a3, a7, .as_tail
    cust ldur ur0, a1, {al}
    cust ldur ur1, a2, {al}
    cust sub{al} ur2, ur0, ur1
    cust stur ur2, a0, {al}
    addi a0, a0, {ab}
    addi a1, a1, {ab}
    addi a2, a2, {ab}
    addi a3, a3, -{al}
    j .as_blk
.as_tail:
    beq  a3, a6, .as_done
    lw   a4, a1, 0
    lw   a5, a2, 0
    subc a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi a3, a3, -1
    j .as_tail
.as_done:
    movi a9, 0
    subc a9, a9, a9
    movi a0, 0
    sub  a0, a0, a9
    ret

;! entry mpn_addmul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_addmul_1:              ; accelerated: {ml}-lane MAC
    movi a6, 0
    movi a4, 0             ; carry limb in GPR
    movi a7, {ml}
.am_blk:
    bltu a2, a7, .am_tail
    cust ldur ur0, a0, {ml}
    cust ldur ur1, a1, {ml}
    cust mac{ml} ur0, ur1, a3, a4
    cust stur ur0, a0, {ml}
    addi a0, a0, {mb}
    addi a1, a1, {mb}
    addi a2, a2, -{ml}
    j .am_blk
.am_tail:
    beq  a2, a6, .am_done
    lw    a5, a1, 0
    lw    a8, a0, 0
    mul   a9, a5, a3
    mulhu a10, a5, a3
    add   a9, a9, a4
    sltu  a11, a9, a4
    add   a10, a10, a11
    add   a9, a9, a8
    sltu  a11, a9, a8
    add   a10, a10, a11
    sw    a9, a0, 0
    mov   a4, a10
    addi  a0, a0, 4
    addi  a1, a1, 4
    addi  a2, a2, -1
    j .am_tail
.am_done:
    mov a0, a4
    ret

;! entry mpn_submul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_submul_1:              ; accelerated: {ml}-lane multiply-subtract
    movi a6, 0
    movi a4, 0
    movi a7, {ml}
.sm_blk:
    bltu a2, a7, .sm_tail
    cust ldur ur0, a0, {ml}
    cust ldur ur1, a1, {ml}
    cust msub{ml} ur0, ur1, a3, a4
    cust stur ur0, a0, {ml}
    addi a0, a0, {mb}
    addi a1, a1, {mb}
    addi a2, a2, -{ml}
    j .sm_blk
.sm_tail:
    beq  a2, a6, .sm_done
    lw    a5, a1, 0
    lw    a8, a0, 0
    mul   a9, a5, a3
    mulhu a10, a5, a3
    add   a9, a9, a4
    sltu  a11, a9, a4
    add   a10, a10, a11
    sltu  a11, a8, a9
    sub   a8, a8, a9
    add   a4, a10, a11
    sw    a8, a0, 0
    addi  a0, a0, 4
    addi  a1, a1, 4
    addi  a2, a2, -1
    j .sm_tail
.sm_done:
    mov a0, a4
    ret
{mul1}
{lshift}
{rshift}
{divq}
",
        mul1 = MUL1_32,
        lshift = LSHIFT_32,
        rshift = RSHIFT_32,
        divq = DIV_QHAT_32,
    )
}

/// The base 16-bit limb (radix 2¹⁶) kernel library. Pointers address
/// halfwords; `n` counts 16-bit limbs. Only the multiplier's 32-bit
/// product is needed — no `mulhu` — which is the radix's attraction on
/// narrow cores.
pub fn base16_source() -> String {
    "
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:                 ; a0=rp a1=ap a2=bp a3=n -> a0=carry
    movi a6, 0
    movi a7, 0             ; carry
.an_loop:
    lhu  a4, a1, 0
    lhu  a5, a2, 0
    addi a1, a1, 2
    addi a2, a2, 2
    add  a4, a4, a5
    add  a4, a4, a7
    srli a7, a4, 16
    sh   a4, a0, 0
    addi a0, a0, 2
    addi a3, a3, -1
    bne  a3, a6, .an_loop
    mov  a0, a7
    ret

;! entry mpn_sub_n inputs=a0-a3 secret-ptr=a1,a2
mpn_sub_n:                 ; a0=rp a1=ap a2=bp a3=n -> a0=borrow
    movi a6, 0
    movi a7, 0             ; borrow
.sn_loop:
    lhu  a4, a1, 0
    lhu  a5, a2, 0
    addi a1, a1, 2
    addi a2, a2, 2
    sub  a4, a4, a5
    sub  a4, a4, a7
    srli a7, a4, 16
    andi a7, a7, 1         ; borrow propagates through bit 16 of the wrap
    slli a4, a4, 16
    srli a4, a4, 16
    sh   a4, a0, 0
    addi a0, a0, 2
    addi a3, a3, -1
    bne  a3, a6, .sn_loop
    mov  a0, a7
    ret

;! entry mpn_mul_1 inputs=a0-a3 secret=a3 secret-ptr=a1
mpn_mul_1:                 ; a0=rp a1=ap a2=n a3=b -> a0=carry limb
    movi a6, 0
    movi a7, 0
.m1_loop:
    lhu  a4, a1, 0
    addi a1, a1, 2
    mul  a5, a4, a3        ; 16x16 -> 32, no mulhu needed
    add  a5, a5, a7
    slli a4, a5, 16
    srli a4, a4, 16
    srli a7, a5, 16
    sh   a4, a0, 0
    addi a0, a0, 2
    addi a2, a2, -1
    bne  a2, a6, .m1_loop
    mov  a0, a7
    ret

;! entry mpn_addmul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_addmul_1:              ; a0=rp a1=ap a2=n a3=b -> a0=carry limb
    movi a6, 0
    movi a7, 0
.am_loop:
    lhu  a4, a1, 0
    lhu  a5, a0, 0
    addi a1, a1, 2
    mul  a8, a4, a3
    add  a8, a8, a5
    add  a8, a8, a7
    slli a4, a8, 16
    srli a4, a4, 16
    srli a7, a8, 16
    sh   a4, a0, 0
    addi a0, a0, 2
    addi a2, a2, -1
    bne  a2, a6, .am_loop
    mov  a0, a7
    ret

;! entry mpn_submul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_submul_1:              ; a0=rp a1=ap a2=n a3=b -> a0=borrow limb
    movi a6, 0
    movi a7, 0
.sm_loop:
    lhu  a4, a1, 0
    lhu  a5, a0, 0
    addi a1, a1, 2
    mul  a8, a4, a3
    add  a8, a8, a7        ; prod += borrow-in
    slli a9, a8, 16
    srli a9, a9, 16        ; lo
    srli a7, a8, 16        ; hi
    sltu a10, a5, a9
    sub  a5, a5, a9
    add  a7, a7, a10
    slli a5, a5, 16
    srli a5, a5, 16
    sh   a5, a0, 0
    addi a0, a0, 2
    addi a2, a2, -1
    bne  a2, a6, .sm_loop
    mov  a0, a7
    ret

;! entry mpn_lshift inputs=a0-a3 secret-ptr=a1
mpn_lshift:                ; a0=rp a1=ap a2=n a3=cnt(1..15) -> a0=bits out
    movi a6, 0
    movi a7, 0
    movi a8, 16
    sub  a8, a8, a3
.ls_loop:
    lhu  a4, a1, 0
    addi a1, a1, 2
    sll  a5, a4, a3
    or   a5, a5, a7
    slli a9, a5, 16
    srli a9, a9, 16
    srl  a7, a4, a8
    sh   a9, a0, 0
    addi a0, a0, 2
    addi a2, a2, -1
    bne  a2, a6, .ls_loop
    mov  a0, a7
    ret

;! entry mpn_rshift inputs=a0-a3 secret-ptr=a1
mpn_rshift:                ; a0=rp a1=ap a2=n a3=cnt(1..15) -> a0=bits out
    movi a6, 0
    movi a7, 0
    movi a8, 16
    sub  a8, a8, a3
    slli a9, a2, 1
    add  a0, a0, a9
    add  a1, a1, a9
.rs_loop:
    addi a1, a1, -2
    lhu  a4, a1, 0
    srl  a5, a4, a3
    or   a5, a5, a7
    sll  a7, a4, a8
    slli a7, a7, 16
    srli a7, a7, 16
    addi a0, a0, -2
    sh   a5, a0, 0
    addi a2, a2, -1
    bne  a2, a6, .rs_loop
    mov  a0, a7
    ret

; Variable-time by algorithm (restoring division), exempt from the
; constant-time policy; see DESIGN.md.
;! entry div_qhat inputs=a0-a4 public
div_qhat:                  ; a0=n2 a1=n1 a2=n0 a3=d1 a4=d0 -> a0=qhat (16-bit values)
    movi a11, 0
    sltu a5, a0, a3
    xori a5, a5, 1         ; qhi = n2 >= d1
    beq  a5, a11, .dq_norest
    sub  a0, a0, a3
.dq_norest:
    slli a7, a0, 16        ; num = (n2<<16) | n1, fits 32 bits
    or   a7, a7, a1
    movi a6, 0             ; qlo via restoring division of num / d1
    movi a8, 0             ; rem
    movi a9, 32            ; iterate over all 32 bits of num
.dq_loop:
    srli a10, a7, 31
    slli a7, a7, 1
    slli a8, a8, 1
    or   a8, a8, a10
    slli a6, a6, 1
    sltu a10, a8, a3
    bne  a10, a11, .dq_next
    sub  a8, a8, a3
    ori  a6, a6, 1
.dq_next:
    addi a9, a9, -1
    bne  a9, a11, .dq_loop
    ; qhat = (qhi<<16)+qlo conceptually; qlo here is full num/d1 which
    ; already includes the high part, so fold qhi back in.
    slli a5, a5, 16
    add  a6, a6, a5
    mov  a7, a8            ; rhat
    movi a10, 0
.dq_corr:
    srli a9, a6, 16        ; qhat >= 2^16 ?
    beq  a9, a11, .dq_qfit
    addi a6, a6, -1
    add  a7, a7, a3
    srli a9, a7, 16
    add  a10, a10, a9
    slli a7, a7, 16
    srli a7, a7, 16
    j .dq_corr
.dq_qfit:
    bne  a10, a11, .dq_done
    mul  a9, a6, a4        ; qlo*d0 fits 32 bits
    slli a12, a7, 16
    or   a12, a12, a2      ; (rhat<<16)|n0
    bgeu a12, a9, .dq_done
    addi a6, a6, -1
    add  a7, a7, a3
    srli a9, a7, 16
    add  a10, a10, a9
    slli a7, a7, 16
    srli a7, a7, 16
    j .dq_qfit
.dq_done:
    mov a0, a6
    ret
"
    .to_owned()
}
