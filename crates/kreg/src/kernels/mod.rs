//! The XR32 assembly kernel libraries backing the registry.
//!
//! Each module returns annotated assembly source (with `;!` entry,
//! secret and custom-instruction annotations) for one library; the
//! registry's [`crate::lint_units`] enumerates every configuration for
//! the CI lint gate.

pub mod mpn;
pub mod sha;
