//! The typed kernel registry shared by all four methodology phases.
//!
//! The paper's methodology — performance characterization, algorithm
//! exploration, custom-instruction formulation, global selection —
//! iterates over *one* set of library kernels. This crate is the single
//! source of truth for that set: each kernel is named by a [`KernelId`]
//! and described by a [`KernelDescriptor`] carrying
//!
//! - the assembly source (via [`kernels`]) and entry symbol,
//! - the ISS calling convention and host golden-reference functions
//!   ([`CallConv`]),
//! - the stimulus parameter space and monomial basis used for
//!   macro-model characterization ([`StimulusSpec`]),
//! - the custom-instruction family and its A-D resource levels
//!   ([`InsnFamilySpec`]),
//! - the kernel-cycle cache tag ([`KernelDescriptor::cache_tag`] and
//!   the `charact`/`curve` measurement-unit names derived from it).
//!
//! Consumers (the ISS-backed ops provider, the methodology driver, the
//! bench harnesses, CI) enumerate [`registry`] instead of keeping their
//! own kernel lists, so adding a workload means adding one descriptor
//! here — the phases, the lint gate and the property tests pick it up
//! automatically. The SHA-1 compression kernel is registered exactly
//! this way, as the extensibility proof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

use macromodel::model::Monomial;
use macromodel::stimulus::ParamSpace;
use mpint::mpn;
use std::fmt;
use tie::insn::CustomInsn;

/// A registered kernel's identity: a typed handle over the canonical
/// kernel name. Obtain ids from the constants in [`id`]; the inner name
/// is deliberately private so new names can only enter the system
/// through the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(&'static str);

impl KernelId {
    /// The canonical kernel name (entry label, macro-model registry key
    /// and kernel-cycle cache tag).
    pub const fn name(self) -> &'static str {
        self.0
    }

    /// Resolves a canonical kernel name back to its typed id — the
    /// wire-deserialization inverse of [`KernelId::name`]. Only names
    /// the registry knows resolve, so a parsed id is always runnable.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Unknown`] for unregistered names.
    pub fn parse(name: &str) -> Result<KernelId, KernelError> {
        lookup(name)
            .map(|d| d.id)
            .ok_or_else(|| KernelError::Unknown(name.to_owned()))
    }
}

impl std::str::FromStr for KernelId {
    type Err = KernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelId::parse(s)
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The registered kernel ids.
pub mod id {
    use super::KernelId;

    /// `r = a + b` over limb vectors, carry out.
    pub const ADD_N: KernelId = KernelId("mpn_add_n");
    /// `r = a - b` over limb vectors, borrow out.
    pub const SUB_N: KernelId = KernelId("mpn_sub_n");
    /// `r = a * b` for single-limb `b`, high limb out.
    pub const MUL_1: KernelId = KernelId("mpn_mul_1");
    /// `r += a * b`, carry limb out.
    pub const ADDMUL_1: KernelId = KernelId("mpn_addmul_1");
    /// `r -= a * b`, borrow limb out.
    pub const SUBMUL_1: KernelId = KernelId("mpn_submul_1");
    /// Left shift by `0 < cnt < width`.
    pub const LSHIFT: KernelId = KernelId("mpn_lshift");
    /// Right shift by `0 < cnt < width`.
    pub const RSHIFT: KernelId = KernelId("mpn_rshift");
    /// 3-by-2 quotient-limb estimate of schoolbook division.
    pub const DIV_QHAT: KernelId = KernelId("div_qhat");
    /// SHA-1 compression over one 64-byte block (fixed memory map).
    pub const SHA1: KernelId = KernelId("sha1_compress");

    /// The multi-precision basic operations, in the stable order every
    /// phase iterates them.
    pub const MPN: [KernelId; 8] = [
        ADD_N, SUB_N, MUL_1, ADDMUL_1, SUBMUL_1, LSHIFT, RSHIFT, DIV_QHAT,
    ];
    /// Every registered kernel, in registry order.
    pub const ALL: [KernelId; 9] = [
        ADD_N, SUB_N, MUL_1, ADDMUL_1, SUBMUL_1, LSHIFT, RSHIFT, DIV_QHAT, SHA1,
    ];
}

/// Canonical kernel names as plain strings (the macro-model registry
/// and call-count keys). Prefer [`id`] for anything that dispatches;
/// these exist for map keys and display.
pub mod opname {
    use super::id;

    /// `mpn_add_n`
    pub const ADD_N: &str = id::ADD_N.name();
    /// `mpn_sub_n`
    pub const SUB_N: &str = id::SUB_N.name();
    /// `mpn_mul_1`
    pub const MUL_1: &str = id::MUL_1.name();
    /// `mpn_addmul_1`
    pub const ADDMUL_1: &str = id::ADDMUL_1.name();
    /// `mpn_submul_1`
    pub const SUBMUL_1: &str = id::SUBMUL_1.name();
    /// `mpn_lshift`
    pub const LSHIFT: &str = id::LSHIFT.name();
    /// `mpn_rshift`
    pub const RSHIFT: &str = id::RSHIFT.name();
    /// 3-by-2 quotient-limb estimation step of schoolbook division
    pub const DIV_QHAT: &str = id::DIV_QHAT.name();
    /// SHA-1 compression
    pub const SHA1: &str = id::SHA1.name();
    /// All basic-operation names, in a stable order.
    pub const ALL: [&str; 8] = [
        ADD_N, SUB_N, MUL_1, ADDMUL_1, SUBMUL_1, LSHIFT, RSHIFT, DIV_QHAT,
    ];
}

/// Which kernel library the 32-bit side of an ISS provider runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Plain RISC kernels (the optimized-software baseline).
    Base,
    /// Custom-instruction kernels with the given adder/MAC lane counts.
    Accelerated {
        /// `add<k>`/`sub<k>` datapath lanes (2, 4, 8 or 16).
        add_lanes: u32,
        /// `mac<k>`/`msub<k>` datapath lanes (1, 2 or 4).
        mac_lanes: u32,
    },
}

impl KernelVariant {
    /// A short stable tag naming this variant, used in kernel-cycle
    /// cache keys.
    pub fn tag(&self) -> String {
        match self {
            KernelVariant::Base => "base".to_owned(),
            KernelVariant::Accelerated {
                add_lanes,
                mac_lanes,
            } => format!("accel-a{add_lanes}m{mac_lanes}"),
        }
    }

    /// Parses a tag produced by [`KernelVariant::tag`] back to the
    /// variant (`"base"`, `"accel-a<add>m<mac>"`); `None` for anything
    /// else — including xopt-generated `gen-…` tags, which name
    /// synthesized libraries rather than selectable variants.
    pub fn parse_tag(tag: &str) -> Option<KernelVariant> {
        if tag == "base" {
            return Some(KernelVariant::Base);
        }
        let rest = tag.strip_prefix("accel-a")?;
        let (add, mac) = rest.split_once('m')?;
        Some(KernelVariant::Accelerated {
            add_lanes: add.parse().ok()?,
            mac_lanes: mac.parse().ok()?,
        })
    }
}

/// A typed kernel-layer failure. Divergences are *recorded*, not
/// panicked, so a bench run surfaces them through its run report
/// instead of aborting mid-measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The name does not correspond to a registered kernel.
    Unknown(String),
    /// The kernel's ISS result disagreed with its host golden
    /// reference.
    Divergence {
        /// The diverging kernel.
        kernel: KernelId,
        /// What disagreed (operand size, which output).
        detail: String,
    },
    /// The kernel is registered but the requested operation does not
    /// apply to it (wrong radix width, non-register calling
    /// convention).
    Unsupported {
        /// The kernel the request named.
        kernel: KernelId,
        /// Why it cannot be served.
        detail: String,
    },
    /// The kernel exceeded its cycle budget — a corrupted (or genuinely
    /// runaway) kernel was stopped by the watchdog instead of hanging
    /// the measurement pool.
    Timeout {
        /// The kernel that ran away.
        kernel: KernelId,
        /// Instructions executed when the watchdog fired.
        executed: u64,
    },
    /// The simulated hardware faulted while running the kernel (bad
    /// memory access, illegal instruction — typically the downstream
    /// effect of an injected fault).
    Faulted {
        /// The kernel that faulted.
        kernel: KernelId,
        /// The underlying simulator error.
        detail: String,
    },
    /// The kernel failed too many measurement units and has been
    /// quarantined by the flow's fault policy; its results now come
    /// from fallbacks (macro models or fault-free remeasurement).
    Quarantined {
        /// The quarantined kernel.
        kernel: KernelId,
        /// Failed units that triggered the quarantine.
        failures: u32,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Unknown(name) => write!(f, "unknown kernel `{name}`"),
            KernelError::Divergence { kernel, detail } => {
                write!(
                    f,
                    "kernel `{kernel}` diverged from golden reference: {detail}"
                )
            }
            KernelError::Unsupported { kernel, detail } => {
                write!(f, "kernel `{kernel}` unsupported here: {detail}")
            }
            KernelError::Timeout { kernel, executed } => {
                write!(
                    f,
                    "kernel `{kernel}` exceeded its cycle budget after {executed} instructions"
                )
            }
            KernelError::Faulted { kernel, detail } => {
                write!(f, "kernel `{kernel}` faulted in the ISS: {detail}")
            }
            KernelError::Quarantined { kernel, failures } => {
                write!(
                    f,
                    "kernel `{kernel}` quarantined after {failures} failed units"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// The ISS calling convention of a kernel, with the host
/// golden-reference function for each supported radix width embedded in
/// the matching shape. The ISS-backed provider both *drives* the kernel
/// (argument registers, operand buffers, result extraction) and
/// *checks* it from this one description.
#[derive(Debug, Clone, Copy)]
pub enum CallConv {
    /// `(rp, ap, bp, n)` in `a0..a3`; carry/borrow flag returned in
    /// `a0`.
    VecVec {
        /// 32-bit-limb reference.
        golden32: fn(&mut [u32], &[u32], &[u32]) -> bool,
        /// 16-bit-limb reference.
        golden16: fn(&mut [u16], &[u16], &[u16]) -> bool,
    },
    /// `(rp, ap, n, b)` in `a0..a3`; carry/borrow limb returned in
    /// `a0`.
    VecScalar {
        /// Whether the kernel reads `rp` before writing it
        /// (`addmul`/`submul` accumulate; `mul_1` overwrites).
        accumulate: bool,
        /// 32-bit-limb reference.
        golden32: fn(&mut [u32], &[u32], u32) -> u32,
        /// 16-bit-limb reference.
        golden16: fn(&mut [u16], &[u16], u16) -> u16,
    },
    /// `(rp, ap, n, cnt)` in `a0..a3`; shifted-out bits returned in
    /// `a0`.
    VecShift {
        /// 32-bit-limb reference.
        golden32: fn(&mut [u32], &[u32], u32) -> u32,
        /// 16-bit-limb reference.
        golden16: fn(&mut [u16], &[u16], u32) -> u16,
    },
    /// Five scalars `(n2, n1, n0, d1, d0)` in `a0..a4`; quotient
    /// estimate returned in `a0`.
    Div3by2 {
        /// 32-bit reference.
        golden32: fn(u32, u32, u32, u32, u32) -> u32,
        /// 16-bit reference.
        golden16: fn(u16, u16, u16, u16, u16) -> u16,
    },
    /// No register arguments: operands live at the fixed addresses of
    /// the kernel's memory map (block ciphers, hashes).
    BlockMem {
        /// SHA-1 state-compression reference.
        golden_sha1: fn(&mut [u32; 5], &[u8; 64]),
    },
}

/// Which kernel library provides a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibKind {
    /// The multi-precision libraries: present at both radices
    /// ([`kernels::mpn::base32_source`], [`kernels::mpn::base16_source`])
    /// and in every accelerated 32-bit lane configuration.
    Mpn,
    /// The standalone SHA-1 block program ([`kernels::sha::source`]),
    /// 32-bit core only.
    Sha1,
}

/// How to stimulate a kernel for macro-model characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StimulusSpec {
    /// The operand length in limbs sweeps `1..=max_limbs`; affine
    /// basis.
    Limbs,
    /// A single fixed-size point (scalar kernels); constant basis.
    Point,
    /// `1..=4` message blocks chained through the kernel; affine basis
    /// in the block count.
    Blocks,
}

impl StimulusSpec {
    /// The characterization parameter space at the given maximum
    /// operand size.
    pub fn space(&self, max_limbs: usize) -> ParamSpace {
        match self {
            StimulusSpec::Limbs => ParamSpace::new(vec![(1, max_limbs as u64)]),
            StimulusSpec::Point => ParamSpace::new(vec![(1, 1)]),
            StimulusSpec::Blocks => ParamSpace::new(vec![(1, 4)]),
        }
    }

    /// The monomial basis the macro-model is fitted over.
    pub fn basis(&self) -> Vec<Monomial> {
        match self {
            StimulusSpec::Point => vec![Monomial::constant(1)],
            _ => vec![Monomial::constant(1), Monomial::linear(1, 0)],
        }
    }
}

/// One resource level of a custom-instruction family: the datapath
/// lane count of the A-D curve point and the kernel-library lane
/// configuration that exercises it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelLevel {
    /// Datapath lanes of this point (the `<k>` of the mnemonic).
    pub lanes: u32,
    /// `add<k>` lanes of the library variant to run.
    pub add_lanes: u32,
    /// `mac<k>` lanes of the library variant to run.
    pub mac_lanes: u32,
}

impl AccelLevel {
    /// The kernel-library variant measuring this level.
    pub fn variant(&self) -> KernelVariant {
        KernelVariant::Accelerated {
            add_lanes: self.add_lanes,
            mac_lanes: self.mac_lanes,
        }
    }

    /// The kernel-cycle cache tag of the *xopt-generated* library at
    /// this level, distinct from the hand-written `accel-a{a}m{m}` tag
    /// so the two never share cache entries.
    pub fn generated_tag(&self) -> String {
        format!("gen-a{}m{}", self.add_lanes, self.mac_lanes)
    }
}

/// The canonical loop shape a custom-instruction family replaces — the
/// dataflow pattern `xopt`'s selection pass matches against a kernel's
/// SSA-lite graph before substituting the family's wide datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopPattern {
    /// Two streamed loads combined by a carry-chained add/sub and
    /// stored to a third stream (`mpn_add_n`/`mpn_sub_n`).
    ElementwiseCarry,
    /// A streamed load multiplied by a loop-invariant scalar and
    /// accumulated into a second stream, carry limb threaded through a
    /// GPR (`mpn_addmul_1`/`mpn_submul_1`).
    MulAccumulate,
}

/// The custom-instruction family accelerating a kernel, with its A-D
/// resource levels (the base software point is implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsnFamilySpec {
    /// The `tie` instruction family name (`add`, `mac`).
    pub family: &'static str,
    /// Resource levels, cheapest first.
    pub levels: &'static [AccelLevel],
    /// The canonical loop shape the family's datapath replaces (what
    /// `xopt` pattern-matches during instruction selection).
    pub pattern: LoopPattern,
}

impl InsnFamilySpec {
    /// The [`tie::CustomInsn`] of one level, given its structural area
    /// (areas come from the platform's instruction catalog, which lives
    /// above this crate).
    pub fn insn(&self, level: &AccelLevel, area: u64) -> CustomInsn {
        CustomInsn::new(self.family, level.lanes, area)
    }
}

/// Where a kernel's accelerated variants come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantSource {
    /// Hand-written accelerated assembly
    /// ([`kernels::mpn::accel32_source`]) drives the A-D curve.
    HandWritten,
    /// The `xopt` pipeline rewrites the canonical base source into a
    /// generated variant per [`AccelLevel`]; the hand-written library
    /// is still measured side-by-side as the comparison baseline.
    Generated,
}

/// The single source of truth for one registered kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelDescriptor {
    /// The kernel's identity.
    pub id: KernelId,
    /// The assembly entry label (identical to `id.name()` for every
    /// current kernel; the invariant is pinned by tests).
    pub entry: &'static str,
    /// Which library carries the kernel.
    pub lib: LibKind,
    /// Calling convention + golden references.
    pub conv: CallConv,
    /// Characterization stimulus space, when the kernel is
    /// macro-modeled. `None` would exclude it from phase 1 (no current
    /// kernel opts out; CI fails descriptors missing this).
    pub stimulus: Option<StimulusSpec>,
    /// Custom-instruction family, for kernels with phase-3 A-D curves.
    pub family: Option<InsnFamilySpec>,
    /// Whether the phase-3 variants are hand-written or xopt-generated.
    /// Meaningless (and [`VariantSource::HandWritten`]) for kernels
    /// without a family.
    pub variants: VariantSource,
}

impl KernelDescriptor {
    /// The radix widths this kernel exists at.
    pub fn widths(&self) -> &'static [u32] {
        match self.lib {
            LibKind::Mpn => &[32, 16],
            LibKind::Sha1 => &[32],
        }
    }

    /// Whether the kernel exists at the given radix width.
    pub fn supports_width(&self, width: u32) -> bool {
        self.widths().contains(&width)
    }

    /// The kernel-cycle cache tag (the op component of cache keys).
    pub fn cache_tag(&self) -> &'static str {
        self.id.name()
    }

    /// The phase-1 measurement-unit name at one radix width, as used in
    /// kernel-cycle cache keys.
    pub fn charact_unit(&self, width: u32) -> String {
        format!("charact{width}:{}", self.cache_tag())
    }

    /// The phase-3 measurement-unit name, as used in kernel-cycle cache
    /// keys.
    pub fn curve_unit(&self) -> String {
        format!("curve:{}", self.cache_tag())
    }

    /// [`charact_unit`](Self::charact_unit) qualified with the core
    /// configuration (`CoreConfigId`, e.g. `"io"` or `"ooo-…"`) whose
    /// pipeline produced the measurement: `charact<w>:<tag>@<core>`.
    /// Measurements from different core models never share a unit name
    /// (the cache key also embeds the full config fingerprint; the
    /// suffix keeps human-readable keys and reports unambiguous).
    pub fn charact_unit_on(&self, width: u32, core_id: &str) -> String {
        format!("charact{width}:{}@{core_id}", self.cache_tag())
    }

    /// [`curve_unit`](Self::curve_unit) qualified with the core
    /// configuration: `curve:<tag>@<core>`.
    pub fn curve_unit_on(&self, core_id: &str) -> String {
        format!("curve:{}@{core_id}", self.cache_tag())
    }
}

/// A-D levels of the `add<k>` family (measured with a 1-lane MAC
/// configured, which the add curve does not exercise).
const ADD_LEVELS: [AccelLevel; 4] = [
    AccelLevel {
        lanes: 2,
        add_lanes: 2,
        mac_lanes: 1,
    },
    AccelLevel {
        lanes: 4,
        add_lanes: 4,
        mac_lanes: 1,
    },
    AccelLevel {
        lanes: 8,
        add_lanes: 8,
        mac_lanes: 1,
    },
    AccelLevel {
        lanes: 16,
        add_lanes: 16,
        mac_lanes: 1,
    },
];

/// A-D levels of the `mac<k>` family (measured with a 2-lane adder
/// configured, which the mac curve does not exercise).
const MAC_LEVELS: [AccelLevel; 3] = [
    AccelLevel {
        lanes: 1,
        add_lanes: 2,
        mac_lanes: 1,
    },
    AccelLevel {
        lanes: 2,
        add_lanes: 2,
        mac_lanes: 2,
    },
    AccelLevel {
        lanes: 4,
        add_lanes: 2,
        mac_lanes: 4,
    },
];

static REGISTRY: [KernelDescriptor; 9] = [
    KernelDescriptor {
        id: id::ADD_N,
        entry: "mpn_add_n",
        lib: LibKind::Mpn,
        conv: CallConv::VecVec {
            golden32: mpn::add_n::<u32>,
            golden16: mpn::add_n::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: Some(InsnFamilySpec {
            family: "add",
            levels: &ADD_LEVELS,
            pattern: LoopPattern::ElementwiseCarry,
        }),
        variants: VariantSource::Generated,
    },
    KernelDescriptor {
        id: id::SUB_N,
        entry: "mpn_sub_n",
        lib: LibKind::Mpn,
        conv: CallConv::VecVec {
            golden32: mpn::sub_n::<u32>,
            golden16: mpn::sub_n::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::MUL_1,
        entry: "mpn_mul_1",
        lib: LibKind::Mpn,
        conv: CallConv::VecScalar {
            accumulate: false,
            golden32: mpn::mul_1::<u32>,
            golden16: mpn::mul_1::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::ADDMUL_1,
        entry: "mpn_addmul_1",
        lib: LibKind::Mpn,
        conv: CallConv::VecScalar {
            accumulate: true,
            golden32: mpn::addmul_1::<u32>,
            golden16: mpn::addmul_1::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: Some(InsnFamilySpec {
            family: "mac",
            levels: &MAC_LEVELS,
            pattern: LoopPattern::MulAccumulate,
        }),
        variants: VariantSource::Generated,
    },
    KernelDescriptor {
        id: id::SUBMUL_1,
        entry: "mpn_submul_1",
        lib: LibKind::Mpn,
        conv: CallConv::VecScalar {
            accumulate: true,
            golden32: mpn::submul_1::<u32>,
            golden16: mpn::submul_1::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::LSHIFT,
        entry: "mpn_lshift",
        lib: LibKind::Mpn,
        conv: CallConv::VecShift {
            golden32: mpn::lshift::<u32>,
            golden16: mpn::lshift::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::RSHIFT,
        entry: "mpn_rshift",
        lib: LibKind::Mpn,
        conv: CallConv::VecShift {
            golden32: mpn::rshift::<u32>,
            golden16: mpn::rshift::<u16>,
        },
        stimulus: Some(StimulusSpec::Limbs),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::DIV_QHAT,
        entry: "div_qhat",
        lib: LibKind::Mpn,
        conv: CallConv::Div3by2 {
            golden32: mpn::div_qhat_reference::<u32>,
            golden16: mpn::div_qhat_reference::<u16>,
        },
        stimulus: Some(StimulusSpec::Point),
        family: None,
        variants: VariantSource::HandWritten,
    },
    KernelDescriptor {
        id: id::SHA1,
        entry: "sha1_compress",
        lib: LibKind::Sha1,
        conv: CallConv::BlockMem {
            golden_sha1: ciphers::sha1::compress,
        },
        stimulus: Some(StimulusSpec::Blocks),
        family: None,
        variants: VariantSource::HandWritten,
    },
];

/// Every registered kernel, in the stable iteration order all phases
/// share (the multi-precision ops first, then the block kernels).
pub fn registry() -> &'static [KernelDescriptor] {
    &REGISTRY
}

/// The descriptor of a kernel id, if registered.
pub fn get(kernel: KernelId) -> Option<&'static KernelDescriptor> {
    REGISTRY.iter().find(|d| d.id == kernel)
}

/// Resolves a kernel name (e.g. from a report or CLI) to its
/// descriptor.
pub fn lookup(name: &str) -> Option<&'static KernelDescriptor> {
    REGISTRY.iter().find(|d| d.id.name() == name)
}

/// One lintable assembly library derived from the registry: a stable
/// label plus the full source text (with its `;!` entry/secret/cust
/// annotations).
#[derive(Debug, Clone)]
pub struct LintUnit {
    /// Stable unit name, usable as a file stem.
    pub label: String,
    /// The assembly source.
    pub source: String,
}

/// Enumerates every assembly library the registered kernels live in:
/// the base libraries of each [`LibKind`] present plus every
/// accelerated lane configuration reachable from the registered
/// [`InsnFamilySpec`] levels. This is what the CI lint gate iterates,
/// so a kernel cannot be registered without being linted.
pub fn lint_units() -> Vec<LintUnit> {
    let mut units = Vec::new();
    if REGISTRY.iter().any(|d| d.lib == LibKind::Mpn) {
        units.push(LintUnit {
            label: "mpn_base32".to_owned(),
            source: kernels::mpn::base32_source(),
        });
        units.push(LintUnit {
            label: "mpn_base16".to_owned(),
            source: kernels::mpn::base16_source(),
        });
        let mut adds = Vec::new();
        let mut macs = Vec::new();
        for d in &REGISTRY {
            if let Some(f) = &d.family {
                for level in f.levels {
                    if !adds.contains(&level.add_lanes) {
                        adds.push(level.add_lanes);
                    }
                    if !macs.contains(&level.mac_lanes) {
                        macs.push(level.mac_lanes);
                    }
                }
            }
        }
        adds.sort_unstable();
        macs.sort_unstable();
        for &al in &adds {
            for &ml in &macs {
                units.push(LintUnit {
                    label: format!("mpn_accel32_a{al}m{ml}"),
                    source: kernels::mpn::accel32_source(al, ml),
                });
            }
        }
    }
    if REGISTRY.iter().any(|d| d.lib == LibKind::Sha1) {
        units.push(LintUnit {
            label: "sha1".to_owned(),
            source: kernels::sha::source(&kernels::sha::MemoryMap::default()),
        });
    }
    units
}

/// Audits the registry invariants CI gates on: cache tags unique,
/// every descriptor has a stimulus space, entry labels match ids and
/// appear (annotated) in at least one lint unit. Returns the list of
/// violations (empty = healthy).
pub fn audit() -> Vec<String> {
    let mut problems = Vec::new();
    let mut tags: Vec<&str> = Vec::new();
    let units = lint_units();
    for d in registry() {
        let tag = d.cache_tag();
        if tags.contains(&tag) {
            problems.push(format!("duplicate cache tag `{tag}`"));
        }
        tags.push(tag);
        if d.stimulus.is_none() {
            problems.push(format!(
                "kernel `{}` has no stimulus space (cannot be characterized)",
                d.id
            ));
        }
        if d.entry != d.id.name() {
            problems.push(format!(
                "kernel `{}` entry label `{}` does not match its id",
                d.id, d.entry
            ));
        }
        let annotated = format!(";! entry {}", d.entry);
        if !units.iter().any(|u| u.source.contains(&annotated)) {
            problems.push(format!(
                "kernel `{}` has no annotated `;! entry {}` in any lint unit",
                d.id, d.entry
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_internally_consistent() {
        assert!(audit().is_empty(), "{:?}", audit());
        assert_eq!(registry().len(), id::ALL.len());
        for (d, want) in registry().iter().zip(id::ALL) {
            assert_eq!(d.id, want, "registry order matches id::ALL");
        }
    }

    #[test]
    fn ids_match_by_value_and_pattern() {
        let x = id::ADD_N;
        assert!(matches!(x, id::ADD_N));
        assert_eq!(x.name(), opname::ADD_N);
        assert_ne!(id::ADD_N, id::SUB_N);
        assert_eq!(lookup("div_qhat").unwrap().id, id::DIV_QHAT);
        assert!(lookup("mpn_frobnicate").is_none());
    }

    #[test]
    fn stimulus_spaces_and_bases_have_the_documented_shapes() {
        let limbs = StimulusSpec::Limbs;
        assert_eq!(limbs.space(16).range(0), (1, 16));
        assert_eq!(limbs.basis().len(), 2);
        let point = StimulusSpec::Point;
        assert_eq!(point.space(16).range(0), (1, 1));
        assert_eq!(point.basis().len(), 1);
        let blocks = StimulusSpec::Blocks;
        assert_eq!(blocks.space(64).range(0), (1, 4));
    }

    #[test]
    fn core_qualified_units_are_distinct_per_core() {
        let d = get(id::ADD_N).unwrap();
        assert_eq!(d.charact_unit(32), "charact32:mpn_add_n");
        assert_eq!(d.charact_unit_on(32, "io"), "charact32:mpn_add_n@io");
        assert_eq!(d.curve_unit_on("io"), "curve:mpn_add_n@io");
        assert_ne!(
            d.charact_unit_on(32, "io"),
            d.charact_unit_on(32, "ooo-i2x2-r32s16l8b256"),
            "different cores must never share a measurement unit"
        );
        assert_ne!(
            d.curve_unit_on("io"),
            d.curve_unit_on("ooo-i2x2-r32s16l8b256")
        );
    }

    #[test]
    fn lint_units_cover_all_lane_configurations() {
        let units = lint_units();
        let labels: Vec<&str> = units.iter().map(|u| u.label.as_str()).collect();
        assert!(labels.contains(&"mpn_base32"));
        assert!(labels.contains(&"mpn_base16"));
        assert!(labels.contains(&"sha1"));
        // 4 add-lane values x 3 mac-lane values.
        assert_eq!(
            labels
                .iter()
                .filter(|l| l.starts_with("mpn_accel32"))
                .count(),
            12
        );
    }

    #[test]
    fn canonical_units_compose_the_base_library() {
        // The per-kernel canonical units are exactly the slices the
        // base32 library is concatenated from, in registry order.
        let whole = kernels::mpn::base32_source();
        let mut rebuilt = String::new();
        for k in id::MPN {
            let unit = kernels::mpn::canonical_source32(k).expect("mpn kernel has a unit");
            assert!(unit.contains(&format!(";! entry {}", k.name())));
            rebuilt.push_str(unit);
        }
        assert_eq!(whole, rebuilt);
        assert!(kernels::mpn::canonical_source32(id::SHA1).is_none());
    }

    #[test]
    fn variant_provenance_and_generated_tags() {
        let add = get(id::ADD_N).unwrap();
        assert_eq!(add.variants, VariantSource::Generated);
        let Some(f) = &add.family else {
            panic!("add_n has a family")
        };
        assert_eq!(f.pattern, LoopPattern::ElementwiseCarry);
        assert_eq!(f.levels[0].generated_tag(), "gen-a2m1");
        assert_ne!(f.levels[0].generated_tag(), f.levels[0].variant().tag());

        let mac = get(id::ADDMUL_1).unwrap();
        assert_eq!(mac.variants, VariantSource::Generated);
        assert_eq!(mac.family.unwrap().pattern, LoopPattern::MulAccumulate);
        assert_eq!(get(id::SUB_N).unwrap().variants, VariantSource::HandWritten);
    }

    #[test]
    fn golden_references_compute() {
        let Some(d) = get(id::ADD_N) else {
            panic!("add_n registered")
        };
        let CallConv::VecVec { golden32, .. } = d.conv else {
            panic!("add_n is VecVec")
        };
        let mut r = [0u32; 2];
        let carry = golden32(&mut r, &[u32::MAX, 1], &[1, 2]);
        assert_eq!(r, [0, 4]);
        assert!(!carry);

        let Some(d) = get(id::DIV_QHAT) else {
            panic!("div_qhat registered")
        };
        let CallConv::Div3by2 { golden16, .. } = d.conv else {
            panic!("div_qhat is Div3by2")
        };
        assert_eq!(golden16(0, 1, 0, 0x8000, 0), 0);
    }

    #[test]
    fn errors_render_usefully() {
        let e = KernelError::Divergence {
            kernel: id::MUL_1,
            detail: "n=3".to_owned(),
        };
        assert!(e.to_string().contains("mpn_mul_1"));
        assert!(KernelError::Unknown("nope".into())
            .to_string()
            .contains("nope"));
        let t = KernelError::Timeout {
            kernel: id::ADD_N,
            executed: 1234,
        };
        assert!(t.to_string().contains("cycle budget"));
        assert!(t.to_string().contains("1234"));
        let q = KernelError::Quarantined {
            kernel: id::SHA1,
            failures: 3,
        };
        assert!(q.to_string().contains("quarantined"));
        let f = KernelError::Faulted {
            kernel: id::MUL_1,
            detail: "illegal instruction".into(),
        };
        assert!(f.to_string().contains("faulted"));
    }

    #[test]
    fn kernel_ids_round_trip_through_their_names() {
        for k in id::ALL {
            assert_eq!(KernelId::parse(k.name()).unwrap(), k);
            assert_eq!(k.name().parse::<KernelId>().unwrap(), k);
        }
        let e = KernelId::parse("mpn_frobnicate").unwrap_err();
        assert!(matches!(e, KernelError::Unknown(name) if name == "mpn_frobnicate"));
    }

    #[test]
    fn variant_tags_round_trip() {
        let variants = [
            KernelVariant::Base,
            KernelVariant::Accelerated {
                add_lanes: 4,
                mac_lanes: 2,
            },
            KernelVariant::Accelerated {
                add_lanes: 16,
                mac_lanes: 4,
            },
        ];
        for v in variants {
            assert_eq!(KernelVariant::parse_tag(&v.tag()), Some(v));
        }
        assert_eq!(KernelVariant::parse_tag("gen-a4m2"), None);
        assert_eq!(KernelVariant::parse_tag("accel-a4"), None);
        assert_eq!(KernelVariant::parse_tag("accel-axmy"), None);
    }
}
