//! Registry-exhaustiveness audit for CI.
//!
//! Default mode checks the registry invariants (unique cache tags,
//! stimulus space present, annotated entry labels in the lint units)
//! and exits non-zero on any violation. With `--dump <dir>` it also
//! writes every lint unit to `<dir>/<label>.s` and prints the paths,
//! one per line, so the CI gate can feed them to `xr32-lint` without a
//! hand-maintained file list.

use std::io::{ErrorKind, Write};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dump_dir = match args.as_slice() {
        [] => None,
        [flag, dir] if flag == "--dump" => Some(dir.clone()),
        _ => {
            eprintln!("usage: kreg-audit [--dump <dir>]");
            return ExitCode::from(2);
        }
    };

    let problems = kreg::audit();
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("kreg-audit: {p}");
        }
        return ExitCode::FAILURE;
    }

    let units = kreg::lint_units();
    eprintln!(
        "kreg-audit: {} kernels, {} lint units, all invariants hold",
        kreg::registry().len(),
        units.len()
    );

    if let Some(dir) = dump_dir {
        let dir = Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("kreg-audit: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        // A closed stdout (`kreg-audit --dump d | head`) stops the path
        // listing but not the dump itself: the files on disk are the
        // product, the listing is a convenience.
        let mut out = std::io::stdout().lock();
        let mut listing = true;
        for unit in &units {
            let path = dir.join(format!("{}.s", unit.label));
            if let Err(e) = std::fs::write(&path, &unit.source) {
                eprintln!("kreg-audit: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if listing {
                if let Err(e) = writeln!(out, "{}", path.display()) {
                    if e.kind() != ErrorKind::BrokenPipe {
                        eprintln!("kreg-audit: {e}");
                        return ExitCode::FAILURE;
                    }
                    listing = false;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
