//! Property tests for the observability primitives: JSON round-trips,
//! binary-trace round-trips, and attribution conservation laws.

use proptest::prelude::*;

use xobs::attrib::Attribution;
use xobs::bintrace::{decode_trace, BinaryTraceWriter};
use xobs::json::{self, Json};
use xobs::trace::{CacheSide, OwnedEvent, TraceSink};

/// A strategy producing arbitrary JSON trees of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    // Leaf pool; containers are built by wrapping random leaves so the
    // tree stays shallow but exercises every writer branch.
    let leaf = (any::<u8>(), any::<i64>(), any::<bool>()).prop_map(|(kind, n, b)| match kind % 5 {
        0 => Json::Null,
        1 => Json::from(b),
        2 => Json::from((n % 1_000_000) as f64 / 8.0),
        3 => Json::from(n % 1_000_000_000),
        _ => Json::from(format!("s{n}\"\\\u{1}ü€")),
    });
    prop::collection::vec(leaf, 0..8).prop_map(|leaves| {
        let mut obj = Json::obj();
        let mut arr = Vec::new();
        for (i, l) in leaves.into_iter().enumerate() {
            if i % 2 == 0 {
                obj = obj.set(format!("k{i}"), l);
            } else {
                arr.push(l);
            }
        }
        Json::obj().set("o", obj).set("a", arr)
    })
}

/// A strategy for well-nested Call/Ret sequences with monotone cycles.
/// Returns the events plus the final cycle stamp.
fn arb_callret() -> impl Strategy<Value = (Vec<OwnedEvent>, u64)> {
    prop::collection::vec((any::<u8>(), 1u64..50), 1..60).prop_map(|ops| {
        let names = ["modexp", "mul", "redc", "sq", "helper"];
        let mut events = Vec::new();
        let mut depth = 0usize;
        let mut cycle = 0u64;
        for (sel, dt) in ops {
            cycle += dt;
            // Bias toward call at shallow depth, ret at deep depth, so
            // both trees and towers occur.
            let do_call = depth == 0 || (!(sel as usize).is_multiple_of(3) && depth < 12);
            if do_call {
                events.push(OwnedEvent::Call {
                    pc: depth as u32,
                    callee: names[sel as usize % names.len()].to_owned(),
                    cycle,
                });
                depth += 1;
            } else {
                events.push(OwnedEvent::Ret {
                    pc: depth as u32,
                    cycle,
                });
                depth -= 1;
            }
        }
        // Close every open frame.
        while depth > 0 {
            cycle += 1;
            events.push(OwnedEvent::Ret {
                pc: depth as u32,
                cycle,
            });
            depth -= 1;
        }
        (events, cycle)
    })
}

proptest! {
    #[test]
    fn json_round_trips(j in arb_json()) {
        let compact = j.to_string_compact();
        let pretty = j.to_string_pretty();
        prop_assert_eq!(&json::parse(&compact).unwrap(), &j);
        prop_assert_eq!(&json::parse(&pretty).unwrap(), &j);
    }

    #[test]
    fn binary_trace_round_trips(events in arb_callret()) {
        let (events, _) = events;
        let mut w = BinaryTraceWriter::new(Vec::new()).unwrap();
        for ev in &events {
            w.on_event(&ev.as_event());
        }
        // Mix in non-call events to cover every record tag.
        w.on_event(&xobs::trace::TraceEvent::Cache {
            side: CacheSide::Data,
            addr: 0x40,
            hit: false,
            cycle: 1,
        });
        let bytes = w.finish().unwrap();
        let decoded = decode_trace(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), events.len() + 1);
        for (d, e) in decoded.iter().zip(&events) {
            prop_assert_eq!(&d.as_event(), &e.as_event());
        }
    }

    /// Conservation: for any well-nested trace, top-level inclusive
    /// cycles sum to the final cycle stamp minus the first frame's
    /// start, exclusive cycles across ALL functions sum to the same
    /// total, and the folded-stack line values sum to it too.
    #[test]
    fn attribution_conserves_cycles(gen in arb_callret()) {
        let (events, _final_cycle) = gen;
        let mut attr = Attribution::new();
        let mut expected_total = 0u64;
        let mut depth = 0usize;
        let mut start = 0u64;
        for ev in &events {
            match ev {
                OwnedEvent::Call { cycle, .. } => {
                    if depth == 0 {
                        start = *cycle;
                    }
                    depth += 1;
                }
                OwnedEvent::Ret { cycle, .. } => {
                    depth -= 1;
                    if depth == 0 {
                        expected_total += cycle - start;
                    }
                }
                _ => {}
            }
            attr.on_event(&ev.as_event());
        }
        prop_assert_eq!(attr.open_frames(), 0);
        prop_assert_eq!(attr.unmatched_rets(), 0);
        prop_assert_eq!(attr.total_cycles(), expected_total);

        let excl_sum: u64 = attr.flat().iter().map(|e| e.exclusive).sum();
        prop_assert_eq!(excl_sum, expected_total);

        let folded_sum: u64 = attr
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(folded_sum, expected_total);

        // Topmost-only inclusive: no function's inclusive cycles can
        // exceed the total.
        for e in attr.flat() {
            prop_assert!(e.inclusive <= expected_total);
        }
    }
}
