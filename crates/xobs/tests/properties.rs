//! Property tests for the observability primitives: JSON round-trips,
//! binary-trace round-trips, attribution conservation laws, and span
//! tree well-formedness.

use proptest::prelude::*;

use xobs::attrib::Attribution;
use xobs::bintrace::{decode_trace, BinaryTraceWriter};
use xobs::json::{self, Json};
use xobs::span::{validate_span_json, Spans};
use xobs::trace::{CacheSide, OwnedEvent, TraceSink};

/// A strategy producing arbitrary JSON trees of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    // Leaf pool; containers are built by wrapping random leaves so the
    // tree stays shallow but exercises every writer branch.
    let leaf = (any::<u8>(), any::<i64>(), any::<bool>()).prop_map(|(kind, n, b)| match kind % 5 {
        0 => Json::Null,
        1 => Json::from(b),
        2 => Json::from((n % 1_000_000) as f64 / 8.0),
        3 => Json::from(n % 1_000_000_000),
        _ => Json::from(format!("s{n}\"\\\u{1}ü€")),
    });
    prop::collection::vec(leaf, 0..8).prop_map(|leaves| {
        let mut obj = Json::obj();
        let mut arr = Vec::new();
        for (i, l) in leaves.into_iter().enumerate() {
            if i % 2 == 0 {
                obj = obj.set(format!("k{i}"), l);
            } else {
                arr.push(l);
            }
        }
        Json::obj().set("o", obj).set("a", arr)
    })
}

/// A strategy for well-nested Call/Ret sequences with monotone cycles.
/// Returns the events plus the final cycle stamp.
fn arb_callret() -> impl Strategy<Value = (Vec<OwnedEvent>, u64)> {
    prop::collection::vec((any::<u8>(), 1u64..50), 1..60).prop_map(|ops| {
        let names = ["modexp", "mul", "redc", "sq", "helper"];
        let mut events = Vec::new();
        let mut depth = 0usize;
        let mut cycle = 0u64;
        for (sel, dt) in ops {
            cycle += dt;
            // Bias toward call at shallow depth, ret at deep depth, so
            // both trees and towers occur.
            let do_call = depth == 0 || (!(sel as usize).is_multiple_of(3) && depth < 12);
            if do_call {
                events.push(OwnedEvent::Call {
                    pc: depth as u32,
                    callee: names[sel as usize % names.len()].to_owned(),
                    cycle,
                });
                depth += 1;
            } else {
                events.push(OwnedEvent::Ret {
                    pc: depth as u32,
                    cycle,
                });
                depth -= 1;
            }
        }
        // Close every open frame.
        while depth > 0 {
            cycle += 1;
            events.push(OwnedEvent::Ret {
                pc: depth as u32,
                cycle,
            });
            depth -= 1;
        }
        (events, cycle)
    })
}

/// One span-tree mutation, as produced by [`arb_span_ops`].
#[derive(Debug, Clone)]
enum SpanOp {
    Enter(u8),
    Exit,
    Leaf(u16, u8),
    Event(u8),
    AddCycles(u16),
    AddTasks(u8),
    WallSpan(u8),
}

/// A strategy for arbitrary span-op sequences. Exits may outnumber
/// enters (they become no-ops on an empty stack) and enters may go
/// unclosed (the trailing guards close on drop), so the builder's
/// robustness is part of what's exercised.
fn arb_span_ops() -> impl Strategy<Value = Vec<SpanOp>> {
    let op = (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(|(kind, n, m)| match kind % 7 {
        0 | 1 => SpanOp::Enter(m),
        2 => SpanOp::Exit,
        3 => SpanOp::Leaf(n, m),
        4 => SpanOp::Event(m),
        5 => SpanOp::AddCycles(n),
        _ => {
            if m % 2 == 0 {
                SpanOp::AddTasks(m)
            } else {
                SpanOp::WallSpan(m)
            }
        }
    });
    prop::collection::vec(op, 0..40)
}

/// Replays an op sequence onto a fresh tree and returns it together
/// with the cycles that must appear in the inclusive rollup.
fn build_spans(ops: &[SpanOp]) -> (Spans, f64) {
    let spans = Spans::new();
    let mut guards = Vec::new();
    let mut expected_cycles = 0.0f64;
    for op in ops {
        match op {
            SpanOp::Enter(m) => guards.push(spans.enter(format!("phase{m}"))),
            SpanOp::Exit => {
                if let Some(g) = guards.pop() {
                    g.end();
                }
            }
            SpanOp::Leaf(n, m) => {
                let cycles = f64::from(*n);
                spans.leaf(format!("unit{m}"), cycles, u64::from(*m), Some(0.25));
                expected_cycles += cycles;
            }
            SpanOp::Event(m) => spans.event("event", Json::obj().set("k", u64::from(*m))),
            SpanOp::AddCycles(n) => {
                let cycles = f64::from(*n);
                spans.add_cycles(cycles);
                // Credited to the innermost open span only; dropped on
                // an empty stack.
                if !guards.is_empty() {
                    expected_cycles += cycles;
                }
            }
            SpanOp::AddTasks(m) => spans.add_tasks(u64::from(*m)),
            SpanOp::WallSpan(m) => spans.wall_span(
                format!("xpar.worker-{}", m % 4),
                f64::from(*m),
                0.5,
                &[("worker", Json::from(u64::from(*m % 4)))],
            ),
        }
    }
    drop(guards);
    (spans, expected_cycles)
}

proptest! {
    /// Well-formedness: whatever the op sequence — unbalanced guards,
    /// events on an empty stack, wall-only spans anywhere — every
    /// serialized root passes the schema-5 span validator, and the
    /// inclusive rollup over the forest equals exactly the cycles
    /// credited through `leaf`/`add_cycles`.
    #[test]
    fn span_trees_are_wellformed_and_conserve_cycles(ops in arb_span_ops()) {
        let (spans, expected_cycles) = build_spans(&ops);
        let roots = spans.to_json_roots();
        for root in &roots {
            prop_assert!(
                validate_span_json(root).is_ok(),
                "invalid span: {:?} from {:?}",
                validate_span_json(root),
                root
            );
        }
        let rollup: f64 = roots
            .iter()
            .filter(|r| r.get("wall_only") != Some(&Json::Bool(true)))
            .map(|r| r.get("cycles").and_then(Json::as_f64).unwrap_or(0.0))
            .sum();
        prop_assert!((rollup - expected_cycles).abs() < 1e-6);
        prop_assert!((spans.total_cycles() - expected_cycles).abs() < 1e-6);
    }

    /// Determinism: two trees built from the same op sequence serialize
    /// to byte-identical JSON once report normalization strips the wall
    /// stamps and the wall-only (per-worker) spans — the contract that
    /// lets schema-5 reports diff across thread counts.
    #[test]
    fn span_trees_normalize_reproducibly(ops in arb_span_ops()) {
        let (a, _) = build_spans(&ops);
        let (b, _) = build_spans(&ops);
        let norm = |s: &Spans| {
            xobs::report::normalize(&Json::from(s.to_json_roots())).to_string_compact()
        };
        prop_assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn json_round_trips(j in arb_json()) {
        let compact = j.to_string_compact();
        let pretty = j.to_string_pretty();
        prop_assert_eq!(&json::parse(&compact).unwrap(), &j);
        prop_assert_eq!(&json::parse(&pretty).unwrap(), &j);
    }

    #[test]
    fn binary_trace_round_trips(events in arb_callret()) {
        let (events, _) = events;
        let mut w = BinaryTraceWriter::new(Vec::new()).unwrap();
        for ev in &events {
            w.on_event(&ev.as_event());
        }
        // Mix in non-call events to cover every record tag.
        w.on_event(&xobs::trace::TraceEvent::Cache {
            side: CacheSide::Data,
            addr: 0x40,
            hit: false,
            cycle: 1,
        });
        let bytes = w.finish().unwrap();
        let decoded = decode_trace(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), events.len() + 1);
        for (d, e) in decoded.iter().zip(&events) {
            prop_assert_eq!(&d.as_event(), &e.as_event());
        }
    }

    /// Conservation: for any well-nested trace, top-level inclusive
    /// cycles sum to the final cycle stamp minus the first frame's
    /// start, exclusive cycles across ALL functions sum to the same
    /// total, and the folded-stack line values sum to it too.
    #[test]
    fn attribution_conserves_cycles(gen in arb_callret()) {
        let (events, _final_cycle) = gen;
        let mut attr = Attribution::new();
        let mut expected_total = 0u64;
        let mut depth = 0usize;
        let mut start = 0u64;
        for ev in &events {
            match ev {
                OwnedEvent::Call { cycle, .. } => {
                    if depth == 0 {
                        start = *cycle;
                    }
                    depth += 1;
                }
                OwnedEvent::Ret { cycle, .. } => {
                    depth -= 1;
                    if depth == 0 {
                        expected_total += cycle - start;
                    }
                }
                _ => {}
            }
            attr.on_event(&ev.as_event());
        }
        prop_assert_eq!(attr.open_frames(), 0);
        prop_assert_eq!(attr.unmatched_rets(), 0);
        prop_assert_eq!(attr.total_cycles(), expected_total);

        let excl_sum: u64 = attr.flat().iter().map(|e| e.exclusive).sum();
        prop_assert_eq!(excl_sum, expected_total);

        let folded_sum: u64 = attr
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(folded_sum, expected_total);

        // Topmost-only inclusive: no function's inclusive cycles can
        // exceed the total.
        for e in attr.flat() {
            prop_assert!(e.inclusive <= expected_total);
        }
    }
}
