//! Lightweight metrics: counters, gauges, histograms, and a registry.
//!
//! Instrumented components (`secproc::flow`, `macromodel::charact`,
//! `pubkey::space`) hold `Arc` handles obtained from a [`Registry`];
//! incrementing a [`Counter`] is one relaxed atomic add, so metered and
//! un-metered code paths share the same source. A [`Registry`] is
//! snapshot into a [`MetricsSnapshot`] for inclusion in a run report
//! ([`crate::report`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` sample (bit-cast into an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Replaces the stored value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples observed.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// 50th percentile by nearest-rank over the recorded samples.
    pub p50: f64,
    /// 90th percentile by nearest-rank.
    pub p90: f64,
    /// 99th percentile by nearest-rank.
    pub p99: f64,
}

/// A histogram that keeps its samples (sample counts here are small —
/// hundreds of candidates, dozens of stimuli — so exact percentiles are
/// affordable).
#[derive(Debug, Default)]
pub struct Histogram {
    samples: Mutex<Vec<f64>>,
}

impl Histogram {
    /// Records one sample. Non-finite samples are dropped.
    pub fn observe(&self, v: f64) {
        if v.is_finite() {
            self.samples.lock().expect("histogram poisoned").push(v);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.lock().expect("histogram poisoned").len() as u64
    }

    /// Computes summary statistics over the samples so far.
    pub fn summary(&self) -> HistogramSummary {
        let mut s = self.samples.lock().expect("histogram poisoned").clone();
        if s.is_empty() {
            return HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let count = s.len() as u64;
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let pct = |q: f64| -> f64 {
            let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
            s[rank - 1]
        };
        HistogramSummary {
            count,
            min: s[0],
            max: *s.last().expect("non-empty"),
            mean,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Handles are created on first use and
/// shared thereafter; names are dotted paths (`flow.explore.candidates`).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Captures the current value of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("registry poisoned");
        let mut entries = Vec::with_capacity(m.len());
        for (name, metric) in m.iter() {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
            };
            entries.push((name.clone(), value));
        }
        MetricsSnapshot { entries }
    }
}

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// A point-in-time capture of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: the value of a counter metric.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes the snapshot as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in &self.entries {
            let v = match value {
                MetricValue::Counter(c) => Json::obj().set("type", "counter").set("value", *c),
                MetricValue::Gauge(g) => Json::obj().set("type", "gauge").set("value", *g),
                MetricValue::Histogram(h) => Json::obj()
                    .set("type", "histogram")
                    .set("count", h.count)
                    .set("min", h.min)
                    .set("max", h.max)
                    .set("mean", h.mean)
                    .set("p50", h.p50)
                    .set("p90", h.p90)
                    .set("p99", h.p99),
            };
            obj = obj.set(name, v);
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let reg = Registry::new();
        let a = reg.counter("flow.candidates");
        let b = reg.counter("flow.candidates");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("flow.candidates"), Some(5));
    }

    #[test]
    fn gauge_holds_latest() {
        let g = Gauge::default();
        g.set(0.995);
        assert_eq!(g.get(), 0.995);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn histogram_summary_percentiles() {
        let h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(2.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_serializes_sorted() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.r2").set(0.75);
        let snap = reg.snapshot();
        assert_eq!(snap.entries[0].0, "a.r2");
        let json = snap.to_json();
        assert_eq!(
            json.get("b.count")
                .and_then(|v| v.get("value"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }
}
