//! Incremental framing for large JSON documents.
//!
//! A finished run report (with its metrics snapshot and span tree) can
//! be hundreds of kilobytes of compact JSON — too large to drop on a
//! line-delimited wire as one line without starving every other
//! response on the connection. [`split`] chops the rendered document
//! into bounded [`Frame`]s that interleave with other traffic, and
//! [`Assembler`] rebuilds the document on the receiving side, checking
//! sequence continuity so a dropped or reordered frame surfaces as a
//! typed error instead of a JSON parse failure deep inside the payload.
//!
//! Frames are transport-agnostic: the serving layer wraps each one in
//! its own response envelope (tagging it with the job id), but the
//! `seq`/`last`/`data` triple here is the whole framing contract.

use std::fmt;

/// Default maximum payload bytes per frame. Small enough that a frame
/// never monopolizes a shared connection, large enough that a typical
/// report ships in a handful of frames.
pub const DEFAULT_CHUNK: usize = 8 * 1024;

/// One bounded slice of a framed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Zero-based position of this frame in the document.
    pub seq: u64,
    /// Whether this is the document's final frame.
    pub last: bool,
    /// The payload slice (UTF-8; frames split on character
    /// boundaries).
    pub data: String,
}

/// Splits a rendered document into frames of about `chunk` bytes each
/// (`chunk` is clamped to at least 1; a frame may run up to three
/// bytes over when a multibyte character straddles the cap). Every
/// document — including the empty one — yields at least one frame, so
/// a receiver always sees a `last` frame.
pub fn split(text: &str, chunk: usize) -> Vec<Frame> {
    let chunk = chunk.max(1);
    let mut frames = Vec::new();
    let mut rest = text;
    loop {
        let mut take = rest.len().min(chunk);
        while take < rest.len() && !rest.is_char_boundary(take) {
            take += 1;
        }
        let (head, tail) = rest.split_at(take);
        frames.push(Frame {
            seq: frames.len() as u64,
            last: tail.is_empty(),
            data: head.to_owned(),
        });
        if tail.is_empty() {
            return frames;
        }
        rest = tail;
    }
}

/// Why an [`Assembler`] rejected a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A frame arrived out of order (or was dropped).
    OutOfOrder {
        /// The sequence number the assembler expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// A frame arrived after the `last` frame completed the document.
    AfterLast,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::OutOfOrder { expected, got } => {
                write!(f, "frame {got} arrived where {expected} was expected")
            }
            FrameError::AfterLast => write!(f, "frame arrived after the final frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reassembles a document from its [`Frame`]s, enforcing in-order
/// delivery.
#[derive(Debug, Default)]
pub struct Assembler {
    buf: String,
    next_seq: u64,
    done: bool,
}

impl Assembler {
    /// An empty assembler expecting frame 0.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Accepts the next frame. Returns the completed document when
    /// `frame.last` closes it, `None` while more frames are expected.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on a sequence gap, reorder, or a frame
    /// after completion; the assembler is left unchanged.
    pub fn push(&mut self, frame: &Frame) -> Result<Option<String>, FrameError> {
        if self.done {
            return Err(FrameError::AfterLast);
        }
        if frame.seq != self.next_seq {
            return Err(FrameError::OutOfOrder {
                expected: self.next_seq,
                got: frame.seq,
            });
        }
        self.buf.push_str(&frame.data);
        self.next_seq += 1;
        if frame.last {
            self.done = true;
            return Ok(Some(std::mem::take(&mut self.buf)));
        }
        Ok(None)
    }

    /// Whether the document completed.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str, chunk: usize) -> String {
        let mut asm = Assembler::new();
        let mut out = None;
        for frame in split(text, chunk) {
            assert!(out.is_none(), "frames after last");
            out = asm.push(&frame).expect("in-order frames assemble");
        }
        out.expect("last frame closes the document")
    }

    #[test]
    fn documents_round_trip_at_any_chunk_size() {
        let doc = r#"{"schema_version":8,"report":"r","results":{"x":1}}"#;
        for chunk in [1, 2, 7, 16, doc.len() - 1, doc.len(), doc.len() + 100] {
            assert_eq!(round_trip(doc, chunk), doc, "chunk {chunk}");
        }
    }

    #[test]
    fn empty_documents_still_emit_a_last_frame() {
        let frames = split("", 64);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].last);
        assert_eq!(round_trip("", 64), "");
    }

    #[test]
    fn multibyte_payloads_split_on_char_boundaries() {
        let doc = "§4.3 — 1407×";
        for chunk in 1..=doc.len() {
            assert_eq!(round_trip(doc, chunk), doc, "chunk {chunk}");
        }
    }

    #[test]
    fn gaps_reorders_and_stragglers_are_typed_errors() {
        let frames = split("abcdef", 2);
        let mut asm = Assembler::new();
        assert_eq!(
            asm.push(&frames[1]),
            Err(FrameError::OutOfOrder {
                expected: 0,
                got: 1
            })
        );
        asm.push(&frames[0]).unwrap();
        asm.push(&frames[1]).unwrap();
        assert_eq!(asm.push(&frames[2]), Ok(Some("abcdef".to_owned())));
        assert!(asm.is_done());
        assert_eq!(asm.push(&frames[2]), Err(FrameError::AfterLast));
    }
}
