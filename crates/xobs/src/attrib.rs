//! Cycle attribution: call-stack reconstruction from Call/Ret events
//! into an exclusive/inclusive per-function cycle tree.
//!
//! The executor brackets every run with a synthetic entry Call/Ret
//! pair, so the sum of top-level inclusive cycles equals the core's
//! total simulated cycle count exactly — across an entire co-simulation
//! of many `Cpu::call`s, not just a single run. Folded-stack output
//! ([`Attribution::folded`]) is flamegraph-compatible: one line per
//! unique stack with its exclusive cycle count, and the line values sum
//! back to the total.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{CacheSide, TraceEvent, TraceSink};

#[derive(Debug)]
struct Node {
    name: String,
    parent: usize,
    children: BTreeMap<String, usize>,
    calls: u64,
    inclusive: u64,
    exclusive: u64,
}

#[derive(Debug)]
struct Frame {
    node: usize,
    start_cycle: u64,
    child_cycles: u64,
    /// Whether the same function name is already live deeper in the
    /// stack (recursion): inclusive cycles aggregate topmost-only.
    reentrant: bool,
}

/// Per-function flat totals derived from the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatEntry {
    /// Function label.
    pub name: String,
    /// Number of completed invocations.
    pub calls: u64,
    /// Cycles spent in the function or its callees. Recursive
    /// re-entries are counted topmost-only, so the value never exceeds
    /// total simulated cycles.
    pub inclusive: u64,
    /// Cycles spent in the function's own instructions.
    pub exclusive: u64,
}

/// A [`TraceSink`] that reconstructs the dynamic call tree and
/// attributes every simulated cycle to exactly one function frame.
#[derive(Debug)]
pub struct Attribution {
    nodes: Vec<Node>,
    stack: Vec<Frame>,
    unmatched_rets: u64,
}

const ROOT: usize = 0;

impl Default for Attribution {
    fn default() -> Self {
        Self::new()
    }
}

impl Attribution {
    /// Creates an empty attribution tree.
    pub fn new() -> Self {
        Attribution {
            nodes: vec![Node {
                name: String::new(),
                parent: ROOT,
                children: BTreeMap::new(),
                calls: 0,
                inclusive: 0,
                exclusive: 0,
            }],
            stack: Vec::new(),
            unmatched_rets: 0,
        }
    }

    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            parent,
            children: BTreeMap::new(),
            calls: 0,
            inclusive: 0,
            exclusive: 0,
        });
        self.nodes[parent].children.insert(name.to_owned(), idx);
        idx
    }

    fn on_call(&mut self, callee: &str, cycle: u64) {
        let parent = self.stack.last().map_or(ROOT, |f| f.node);
        let reentrant = self.stack_has(callee);
        let node = self.child(parent, callee);
        self.stack.push(Frame {
            node,
            start_cycle: cycle,
            child_cycles: 0,
            reentrant,
        });
    }

    fn stack_has(&self, name: &str) -> bool {
        self.stack.iter().any(|f| self.nodes[f.node].name == name)
    }

    fn on_ret(&mut self, cycle: u64) {
        let Some(frame) = self.stack.pop() else {
            self.unmatched_rets += 1;
            return;
        };
        let total = cycle.saturating_sub(frame.start_cycle);
        let exclusive = total.saturating_sub(frame.child_cycles);
        let node = &mut self.nodes[frame.node];
        node.calls += 1;
        node.inclusive += total;
        node.exclusive += exclusive;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += total;
        }
        let _ = frame.reentrant; // flat view re-derives re-entrancy per path
    }

    /// Ret events seen with no open frame (0 for well-formed traces).
    pub fn unmatched_rets(&self) -> u64 {
        self.unmatched_rets
    }

    /// Frames still open (0 once the executor has closed its synthetic
    /// entry frame).
    pub fn open_frames(&self) -> usize {
        self.stack.len()
    }

    /// Total attributed cycles: the sum of top-level inclusive cycles.
    /// With the executor's synthetic entry frames this equals the
    /// core's cumulative cycle counter exactly.
    pub fn total_cycles(&self) -> u64 {
        self.nodes[ROOT]
            .children
            .values()
            .map(|&c| self.nodes[c].inclusive)
            .sum()
    }

    /// Flat per-function totals, sorted by exclusive cycles descending.
    /// Inclusive cycles for recursive functions are aggregated
    /// topmost-only: a node whose path already contains the same name
    /// contributes only exclusive cycles.
    pub fn flat(&self) -> Vec<FlatEntry> {
        let mut map: BTreeMap<&str, FlatEntry> = BTreeMap::new();
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            let entry = map.entry(node.name.as_str()).or_insert_with(|| FlatEntry {
                name: node.name.clone(),
                calls: 0,
                inclusive: 0,
                exclusive: 0,
            });
            entry.calls += node.calls;
            entry.exclusive += node.exclusive;
            if !self.path_repeats(idx) {
                entry.inclusive += node.inclusive;
            }
        }
        let mut out: Vec<FlatEntry> = map.into_values().collect();
        out.sort_by(|a, b| b.exclusive.cmp(&a.exclusive).then(a.name.cmp(&b.name)));
        out
    }

    /// Whether the node's name appears again among its ancestors.
    fn path_repeats(&self, idx: usize) -> bool {
        let name = &self.nodes[idx].name;
        let mut cur = self.nodes[idx].parent;
        while cur != ROOT {
            if &self.nodes[cur].name == name {
                return true;
            }
            cur = self.nodes[cur].parent;
        }
        false
    }

    /// Folded-stack text: one `path;to;func cycles` line per tree node
    /// with non-zero exclusive cycles, flamegraph-compatible. Line
    /// values sum to [`Attribution::total_cycles`].
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        self.fold_into(ROOT, &mut String::new(), &mut lines);
        lines.sort();
        let mut out = String::new();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    fn fold_into(&self, idx: usize, path: &mut String, lines: &mut Vec<String>) {
        let node = &self.nodes[idx];
        let saved = path.len();
        if idx != ROOT {
            if !path.is_empty() {
                path.push(';');
            }
            path.push_str(&node.name);
            if node.exclusive > 0 {
                lines.push(format!("{path} {}", node.exclusive));
            }
        }
        for &child in node.children.values() {
            self.fold_into(child, path, lines);
        }
        path.truncate(saved);
    }

    /// A rendered top-`n` hot-function table (by exclusive cycles).
    pub fn hot_report(&self, n: usize) -> String {
        let total = self.total_cycles().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>6}",
            "function", "calls", "excl cyc", "incl cyc", "excl%"
        );
        for e in self.flat().into_iter().take(n) {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12} {:>12} {:>5.1}%",
                e.name,
                e.calls,
                e.exclusive,
                e.inclusive,
                100.0 * e.exclusive as f64 / total as f64
            );
        }
        let _ = writeln!(out, "total attributed cycles: {}", self.total_cycles());
        out
    }
}

impl TraceSink for Attribution {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        match *ev {
            TraceEvent::Call { callee, cycle, .. } => self.on_call(callee, cycle),
            TraceEvent::Ret { cycle, .. } => self.on_ret(cycle),
            _ => {}
        }
    }
}

/// Per-side hit/miss tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTally {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
}

impl CacheTally {
    /// Hit rate in `[0, 1]` (1.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A [`TraceSink`] tallying event categories: retires, stalls, branch
/// penalties, cache behaviour, and custom-instruction dispatches.
#[derive(Debug, Clone, Default)]
pub struct EventStats {
    /// Instructions retired.
    pub retires: u64,
    /// Interlock stalls observed.
    pub stalls: u64,
    /// Cycles lost to interlock stalls.
    pub stall_cycles: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Cycles lost to taken-branch refills.
    pub branch_penalty_cycles: u64,
    /// Instruction-cache tallies.
    pub icache: CacheTally,
    /// Data-cache tallies.
    pub dcache: CacheTally,
    /// Custom-instruction dispatch counts by name.
    pub custom: BTreeMap<String, u64>,
    /// Cycle stamp of the last event seen.
    pub last_cycle: u64,
}

impl EventStats {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// A rendered multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "retired instructions : {}", self.retires);
        let _ = writeln!(
            out,
            "interlock stalls     : {} ({} cycles)",
            self.stalls, self.stall_cycles
        );
        let _ = writeln!(
            out,
            "taken branches       : {} ({} penalty cycles)",
            self.taken_branches, self.branch_penalty_cycles
        );
        let _ = writeln!(
            out,
            "icache               : {} hits / {} misses ({:.2}% hit)",
            self.icache.hits,
            self.icache.misses,
            100.0 * self.icache.hit_rate()
        );
        let _ = writeln!(
            out,
            "dcache               : {} hits / {} misses ({:.2}% hit)",
            self.dcache.hits,
            self.dcache.misses,
            100.0 * self.dcache.hit_rate()
        );
        if !self.custom.is_empty() {
            let _ = writeln!(out, "custom dispatches    :");
            for (name, count) in &self.custom {
                let _ = writeln!(out, "  {name:<20} {count}");
            }
        }
        out
    }
}

impl TraceSink for EventStats {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        self.last_cycle = self.last_cycle.max(ev.cycle());
        match *ev {
            TraceEvent::Retire { .. } => self.retires += 1,
            TraceEvent::Stall { cycles, .. } => {
                self.stalls += 1;
                self.stall_cycles += u64::from(cycles);
            }
            TraceEvent::TakenBranch { penalty, .. } => {
                self.taken_branches += 1;
                self.branch_penalty_cycles += u64::from(penalty);
            }
            TraceEvent::Cache { side, hit, .. } => {
                let tally = match side {
                    CacheSide::Instruction => &mut self.icache,
                    CacheSide::Data => &mut self.dcache,
                };
                if hit {
                    tally.hits += 1;
                } else {
                    tally.misses += 1;
                }
            }
            TraceEvent::Custom { name, .. } => {
                *self.custom.entry(name.to_owned()).or_insert(0) += 1;
            }
            TraceEvent::Call { .. } | TraceEvent::Ret { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(callee: &'static str, cycle: u64) -> TraceEvent<'static> {
        TraceEvent::Call {
            pc: 0,
            callee,
            cycle,
        }
    }

    fn ret(cycle: u64) -> TraceEvent<'static> {
        TraceEvent::Ret { pc: 0, cycle }
    }

    fn feed(attr: &mut Attribution, events: &[TraceEvent<'static>]) {
        for ev in events {
            attr.on_event(ev);
        }
    }

    #[test]
    fn simple_nesting_attributes_exclusive() {
        // main [0,100): calls helper [10,40).
        let mut a = Attribution::new();
        feed(
            &mut a,
            &[call("main", 0), call("helper", 10), ret(40), ret(100)],
        );
        let flat = a.flat();
        let main = flat.iter().find(|e| e.name == "main").unwrap();
        let helper = flat.iter().find(|e| e.name == "helper").unwrap();
        assert_eq!(main.inclusive, 100);
        assert_eq!(main.exclusive, 70);
        assert_eq!(helper.inclusive, 30);
        assert_eq!(helper.exclusive, 30);
        assert_eq!(a.total_cycles(), 100);
        assert_eq!(a.open_frames(), 0);
    }

    #[test]
    fn recursion_counts_inclusive_topmost_only() {
        // fib [0,100) -> fib [10,90) -> fib [20,50).
        let mut a = Attribution::new();
        feed(
            &mut a,
            &[
                call("fib", 0),
                call("fib", 10),
                call("fib", 20),
                ret(50),
                ret(90),
                ret(100),
            ],
        );
        let flat = a.flat();
        let fib = &flat[0];
        assert_eq!(fib.calls, 3);
        assert_eq!(fib.inclusive, 100, "re-entries must not double-count");
        assert_eq!(fib.exclusive, 100);
        assert_eq!(a.total_cycles(), 100);
    }

    #[test]
    fn multiple_top_level_runs_sum_to_total() {
        // Two back-to-back runs, cycle counter continuing across them.
        let mut a = Attribution::new();
        feed(&mut a, &[call("des_block", 0), ret(500)]);
        feed(&mut a, &[call("aes_block", 500), ret(1300)]);
        assert_eq!(a.total_cycles(), 1300);
    }

    #[test]
    fn folded_values_sum_to_total() {
        let mut a = Attribution::new();
        feed(
            &mut a,
            &[
                call("main", 0),
                call("f", 10),
                call("g", 20),
                ret(30),
                ret(50),
                call("g", 60),
                ret(80),
                ret(100),
            ],
        );
        let folded = a.folded();
        let sum: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, a.total_cycles());
        assert!(folded.contains("main;f;g 10"));
        assert!(folded.contains("main;g 20"));
    }

    #[test]
    fn unmatched_ret_is_counted_not_fatal() {
        let mut a = Attribution::new();
        a.on_event(&ret(10));
        assert_eq!(a.unmatched_rets(), 1);
        assert_eq!(a.total_cycles(), 0);
    }

    #[test]
    fn hot_report_orders_by_exclusive() {
        let mut a = Attribution::new();
        feed(
            &mut a,
            &[call("cold", 0), call("hot", 1), ret(91), ret(100)],
        );
        let report = a.hot_report(2);
        let hot_pos = report.find("hot").unwrap();
        let cold_pos = report.find("cold").unwrap();
        assert!(hot_pos < cold_pos);
        assert!(report.contains("total attributed cycles: 100"));
    }

    #[test]
    fn event_stats_tallies_categories() {
        let mut s = EventStats::new();
        s.on_event(&TraceEvent::Retire { pc: 0, cycle: 1 });
        s.on_event(&TraceEvent::Stall {
            pc: 1,
            cycles: 2,
            cycle: 3,
        });
        s.on_event(&TraceEvent::TakenBranch {
            pc: 2,
            target: 9,
            penalty: 2,
            cycle: 5,
        });
        s.on_event(&TraceEvent::Cache {
            side: CacheSide::Instruction,
            addr: 0,
            hit: true,
            cycle: 5,
        });
        s.on_event(&TraceEvent::Cache {
            side: CacheSide::Data,
            addr: 64,
            hit: false,
            cycle: 25,
        });
        s.on_event(&TraceEvent::Custom {
            pc: 3,
            name: "aesround",
            latency: 1,
            cycle: 26,
        });
        assert_eq!(s.retires, 1);
        assert_eq!(s.stall_cycles, 2);
        assert_eq!(s.branch_penalty_cycles, 2);
        assert_eq!(s.icache.hits, 1);
        assert_eq!(s.dcache.misses, 1);
        assert_eq!(s.custom.get("aesround"), Some(&1));
        assert_eq!(s.last_cycle, 26);
        assert!(s.render().contains("aesround"));
    }
}
