//! Streaming compact binary trace format (`.xtrace`).
//!
//! Layout: a 6-byte header (magic `XTRC`, little-endian `u16` version),
//! then a stream of tagged little-endian records. Strings (custom
//! instruction names, callee labels) are interned: the first use of a
//! name emits a `NameDef` record assigning it a dense `u32` id, and all
//! later records refer to the id. A DES block traces to a few tens of
//! kilobytes; a full RSA-1024 co-simulation stays well under typical
//! text-log sizes.
//!
//! The format is versioned: readers reject unknown versions rather than
//! guessing ([`TraceReadError`]). Record tags, in order:
//!
//! | tag  | record      | payload                                     |
//! |------|-------------|---------------------------------------------|
//! | 0x01 | NameDef     | u32 id, u16 len, utf-8 bytes                |
//! | 0x02 | Retire      | u32 pc, u64 cycle                           |
//! | 0x03 | Stall       | u32 pc, u32 cycles, u64 cycle               |
//! | 0x04 | TakenBranch | u32 pc, u32 target, u32 penalty, u64 cycle  |
//! | 0x05 | Cache       | u8 flags (bit0 data-side, bit1 hit), u64 addr, u64 cycle |
//! | 0x06 | Custom      | u32 pc, u32 name-id, u32 latency, u64 cycle |
//! | 0x07 | Call        | u32 pc, u32 callee-id, u64 cycle            |
//! | 0x08 | Ret         | u32 pc, u64 cycle                           |

use std::collections::HashMap;
use std::io::{self, Read, Write};

use crate::trace::{CacheSide, OwnedEvent, TraceEvent, TraceSink};

/// File magic, first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"XTRC";
/// Current format version.
pub const VERSION: u16 = 1;

const TAG_NAMEDEF: u8 = 0x01;
const TAG_RETIRE: u8 = 0x02;
const TAG_STALL: u8 = 0x03;
const TAG_TAKEN_BRANCH: u8 = 0x04;
const TAG_CACHE: u8 = 0x05;
const TAG_CUSTOM: u8 = 0x06;
const TAG_CALL: u8 = 0x07;
const TAG_RET: u8 = 0x08;

/// A [`TraceSink`] that streams events to a writer in the binary
/// format. I/O errors are latched: after the first failure the writer
/// drops events and [`BinaryTraceWriter::finish`] reports the error.
pub struct BinaryTraceWriter<W: Write> {
    out: W,
    names: HashMap<String, u32>,
    error: Option<io::Error>,
    events_written: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Starts a trace, writing the header immediately.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(BinaryTraceWriter {
            out,
            names: HashMap::new(),
            error: None,
            events_written: 0,
        })
    }

    /// Number of events successfully encoded.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Flushes and returns the underlying writer, or the first error
    /// encountered while streaming.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn intern(&mut self, name: &str) -> io::Result<u32> {
        if let Some(&id) = self.names.get(name) {
            return Ok(id);
        }
        let id = self.names.len() as u32;
        self.names.insert(name.to_owned(), id);
        let bytes = name.as_bytes();
        let len = u16::try_from(bytes.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name longer than u16"))?;
        self.out.write_all(&[TAG_NAMEDEF])?;
        self.out.write_all(&id.to_le_bytes())?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(bytes)?;
        Ok(id)
    }

    fn encode(&mut self, ev: &TraceEvent<'_>) -> io::Result<()> {
        match *ev {
            TraceEvent::Retire { pc, cycle } => {
                self.out.write_all(&[TAG_RETIRE])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::Stall { pc, cycles, cycle } => {
                self.out.write_all(&[TAG_STALL])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&cycles.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::TakenBranch {
                pc,
                target,
                penalty,
                cycle,
            } => {
                self.out.write_all(&[TAG_TAKEN_BRANCH])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&target.to_le_bytes())?;
                self.out.write_all(&penalty.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::Cache {
                side,
                addr,
                hit,
                cycle,
            } => {
                let mut flags = 0u8;
                if side == CacheSide::Data {
                    flags |= 1;
                }
                if hit {
                    flags |= 2;
                }
                self.out.write_all(&[TAG_CACHE, flags])?;
                self.out.write_all(&addr.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::Custom {
                pc,
                name,
                latency,
                cycle,
            } => {
                let id = self.intern(name)?;
                self.out.write_all(&[TAG_CUSTOM])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&id.to_le_bytes())?;
                self.out.write_all(&latency.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::Call { pc, callee, cycle } => {
                let id = self.intern(callee)?;
                self.out.write_all(&[TAG_CALL])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&id.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
            TraceEvent::Ret { pc, cycle } => {
                self.out.write_all(&[TAG_RET])?;
                self.out.write_all(&pc.to_le_bytes())?;
                self.out.write_all(&cycle.to_le_bytes())?;
            }
        }
        self.events_written += 1;
        Ok(())
    }
}

impl<W: Write> TraceSink for BinaryTraceWriter<W> {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.encode(ev) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.flush() {
            self.error = Some(e);
        }
    }
}

/// Why a trace could not be decoded.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying reader failed.
    Io(io::Error),
    /// The byte stream is not a trace or is damaged; the message says
    /// what was wrong and roughly where.
    Malformed(String),
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceReadError> {
        if self.pos + n > self.buf.len() {
            return Err(TraceReadError::Malformed(format!(
                "truncated record at byte {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceReadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceReadError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, TraceReadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, TraceReadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Reads an entire trace into owned events.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<OwnedEvent>, TraceReadError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode_trace(&buf)
}

/// Decodes a trace held in memory.
pub fn decode_trace(buf: &[u8]) -> Result<Vec<OwnedEvent>, TraceReadError> {
    let mut d = Decoder { buf, pos: 0 };
    if d.take(4)? != MAGIC {
        return Err(TraceReadError::Malformed("bad magic".into()));
    }
    let version = d.u16()?;
    if version != VERSION {
        return Err(TraceReadError::Malformed(format!(
            "unsupported trace version {version} (reader supports {VERSION})"
        )));
    }
    let mut names: Vec<String> = Vec::new();
    let mut events = Vec::new();
    while d.pos < d.buf.len() {
        let at = d.pos;
        let tag = d.u8()?;
        match tag {
            TAG_NAMEDEF => {
                let id = d.u32()?;
                if id as usize != names.len() {
                    return Err(TraceReadError::Malformed(format!(
                        "non-dense name id {id} at byte {at}"
                    )));
                }
                let len = d.u16()? as usize;
                let s = std::str::from_utf8(d.take(len)?).map_err(|_| {
                    TraceReadError::Malformed(format!("non-utf8 name at byte {at}"))
                })?;
                names.push(s.to_owned());
            }
            TAG_RETIRE => events.push(OwnedEvent::Retire {
                pc: d.u32()?,
                cycle: d.u64()?,
            }),
            TAG_STALL => events.push(OwnedEvent::Stall {
                pc: d.u32()?,
                cycles: d.u32()?,
                cycle: d.u64()?,
            }),
            TAG_TAKEN_BRANCH => events.push(OwnedEvent::TakenBranch {
                pc: d.u32()?,
                target: d.u32()?,
                penalty: d.u32()?,
                cycle: d.u64()?,
            }),
            TAG_CACHE => {
                let flags = d.u8()?;
                events.push(OwnedEvent::Cache {
                    side: if flags & 1 != 0 {
                        CacheSide::Data
                    } else {
                        CacheSide::Instruction
                    },
                    hit: flags & 2 != 0,
                    addr: d.u64()?,
                    cycle: d.u64()?,
                });
            }
            TAG_CUSTOM => {
                let pc = d.u32()?;
                let id = d.u32()? as usize;
                let latency = d.u32()?;
                let cycle = d.u64()?;
                let name = names.get(id).ok_or_else(|| {
                    TraceReadError::Malformed(format!("undefined name id {id} at byte {at}"))
                })?;
                events.push(OwnedEvent::Custom {
                    pc,
                    name: name.clone(),
                    latency,
                    cycle,
                });
            }
            TAG_CALL => {
                let pc = d.u32()?;
                let id = d.u32()? as usize;
                let cycle = d.u64()?;
                let callee = names.get(id).ok_or_else(|| {
                    TraceReadError::Malformed(format!("undefined name id {id} at byte {at}"))
                })?;
                events.push(OwnedEvent::Call {
                    pc,
                    callee: callee.clone(),
                    cycle,
                });
            }
            TAG_RET => events.push(OwnedEvent::Ret {
                pc: d.u32()?,
                cycle: d.u64()?,
            }),
            other => {
                return Err(TraceReadError::Malformed(format!(
                    "unknown record tag {other:#04x} at byte {at}"
                )));
            }
        }
    }
    Ok(events)
}

/// Replays decoded events into any sink.
pub fn replay(events: &[OwnedEvent], sink: &mut dyn TraceSink) {
    for ev in events {
        sink.on_event(&ev.as_event());
    }
    sink.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::Attribution;

    fn sample_events() -> Vec<TraceEvent<'static>> {
        vec![
            TraceEvent::Call {
                pc: 0,
                callee: "des_block",
                cycle: 0,
            },
            TraceEvent::Cache {
                side: CacheSide::Instruction,
                addr: 0,
                hit: false,
                cycle: 20,
            },
            TraceEvent::Retire { pc: 0, cycle: 21 },
            TraceEvent::Stall {
                pc: 1,
                cycles: 1,
                cycle: 23,
            },
            TraceEvent::Custom {
                pc: 2,
                name: "sbox8",
                latency: 1,
                cycle: 24,
            },
            TraceEvent::Custom {
                pc: 3,
                name: "sbox8",
                latency: 1,
                cycle: 25,
            },
            TraceEvent::TakenBranch {
                pc: 4,
                target: 0,
                penalty: 2,
                cycle: 28,
            },
            TraceEvent::Ret { pc: 5, cycle: 40 },
        ]
    }

    fn encode(events: &[TraceEvent<'static>]) -> Vec<u8> {
        let mut w = BinaryTraceWriter::new(Vec::new()).unwrap();
        for ev in events {
            w.on_event(ev);
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let bytes = encode(&events);
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded.len(), events.len());
        for (d, e) in decoded.iter().zip(&events) {
            assert_eq!(&d.as_event(), e);
        }
    }

    #[test]
    fn names_are_interned_once() {
        let bytes = encode(&sample_events());
        // "sbox8" appears once as a NameDef despite two Custom records.
        let needle = b"sbox8";
        let count = bytes.windows(needle.len()).filter(|w| w == needle).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn replay_feeds_attribution() {
        let bytes = encode(&sample_events());
        let decoded = decode_trace(&bytes).unwrap();
        let mut attr = Attribution::new();
        replay(&decoded, &mut attr);
        assert_eq!(attr.total_cycles(), 40);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_trace(b"NOPE\x01\x00").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode(&[]);
        bytes[4] = 0xff; // bump version field
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported trace version"));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut bytes = encode(&sample_events());
        bytes.truncate(bytes.len() - 3);
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = encode(&[]);
        bytes.push(0x7f);
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"));
    }
}
