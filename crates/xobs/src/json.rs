//! A minimal JSON value model, writer and parser.
//!
//! DESIGN §5 keeps the workspace free of third-party crates, so the
//! structured run reports ([`crate::report`]) and metrics snapshots are
//! serialized by this hand-rolled writer instead of serde. The parser
//! exists so reports can be *validated* (CI schema checks,
//! `xr32-trace check-report`) without shelling out to external tools.
//!
//! The model is deliberately small: objects preserve insertion order
//! (reports are diffable), numbers are `f64` (ample for cycle counts up
//! to 2⁵³), and the parser accepts exactly the JSON this writer emits
//! plus ordinary interchange JSON (no comments, no trailing commas).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds or replaces key `k` in an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, k: impl Into<String>, v: impl Into<Json>) -> Json {
        let Json::Obj(ref mut fields) = self else {
            panic!("Json::set on a non-object");
        };
        let k = k.into();
        let v = v.into();
        if let Some(slot) = fields.iter_mut().find(|(key, _)| *key == k) {
            slot.1 = v;
        } else {
            fields.push((k, v));
        }
        self
    }

    /// Looks up key `k` if `self` is an object.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(key, _)| key == k).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (the report format).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values print without a fraction so cycle counts stay
        // exact and greppable.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let j = Json::obj()
            .set("name", "des")
            .set("cycles", 1234u64)
            .set("ok", true)
            .set("items", vec![Json::Num(1.0), Json::Num(2.5)]);
        assert_eq!(j.get("name").and_then(Json::as_str), Some("des"));
        assert_eq!(j.get("cycles").and_then(Json::as_f64), Some(1234.0));
        assert_eq!(
            j.get("items").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn set_replaces_existing_key() {
        let j = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(j.get("k").and_then(Json::as_f64), Some(2.0));
        let Json::Obj(fields) = &j else {
            unreachable!()
        };
        assert_eq!(fields.len(), 1);
    }

    #[test]
    fn compact_output_is_single_line() {
        let j = Json::obj().set("a", 1u64).set("b", vec![Json::Null]);
        assert_eq!(j.to_string_compact(), r#"{"a":1,"b":[null]}"#);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(j.to_string_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .set("schema", "xobs.run-report")
            .set("n", 1.5e9)
            .set("neg", -7i64)
            .set("flag", false)
            .set("nested", Json::obj().set("s", "q\"uote\n"))
            .set("arr", vec![Json::Null, Json::Bool(true), Json::Num(3.0)]);
        for text in [j.to_string_compact(), j.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), j, "round trip of {text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn parse_accepts_interchange_json() {
        let j = parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            j.get("a").and_then(Json::as_arr).unwrap(),
            &[Json::Num(1.0), Json::Num(25.0), Json::Str("A".into())]
        );
    }
}
